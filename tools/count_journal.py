#!/usr/bin/env python3
"""Count the valid records in a write-ahead journal file.

The journal framing (DESIGN.md section 13) is a 12-byte header per record
-- u32le payload length, u64le FNV-1a 64 hash of the payload -- followed by
the payload. A torn tail (truncated header or payload) ends the count
cleanly, mirroring recovery::read_journal. The hash is not re-verified
here: this tool sizes CI kill points, it is not the recovery loader.

Usage: tools/count_journal.py <dir>/journal.swj
"""

import struct
import sys


def count_records(path):
    n = 0
    with open(path, "rb") as fh:
        while True:
            header = fh.read(12)
            if len(header) < 12:
                break
            (length,) = struct.unpack("<I", header[:4])
            if len(fh.read(length)) < length:
                break
            n += 1
    return n


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        print(count_records(sys.argv[1]))
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
