#!/usr/bin/env python3
"""Gate wall-clock perf against a checked-in baseline.

Both inputs are SWALLOW_BENCH_JSON files: one JSON object per line,
{"bench": <name>, "metrics": {"gauges": {<metric>: <value>, ...}, ...}}.

Only timing metrics are gated, with direction taken from the name:

  *_ms           lower is better  -> fail if current > baseline * (1 + tol)
  *.speedup,
  *.scaling      higher is better -> fail if current < baseline / (1 + tol)

Everything else (JCT/CCT gauges, counters) is correctness data owned by the
benches and tests, not a perf gate. The check is one-sided on purpose:
wall-clock baselines are machine-dependent, so getting faster never fails,
and the tolerance absorbs runner jitter.

Usage:
  tools/check_bench_regression.py --baseline BENCH_engine.json \
      --current bench_out.json [--tolerance 0.25]

Exits 0 when every gated metric is within tolerance (or has no baseline),
1 on any regression, 2 on malformed input.
"""

import argparse
import json
import sys


def load_metrics(path):
    """Returns {(bench, metric): value} for all gauge metrics in the file.

    A bench appearing multiple times keeps its last line (a re-run appends).
    """
    out = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"error: {path}:{lineno}: bad JSON line: {e}"
                    )
                bench = row.get("bench", "bench")
                gauges = row.get("metrics", {}).get("gauges", {})
                for metric, value in gauges.items():
                    if isinstance(value, (int, float)):
                        out[(bench, metric)] = float(value)
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return out


def direction(metric):
    """'down' if lower is better, 'up' if higher is better, None if ungated."""
    if metric.endswith("_ms"):
        return "down"
    if metric.endswith(".speedup") or metric.endswith(".scaling"):
        return "up"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    if not current:
        print(f"error: no gauge metrics found in {args.current}")
        return 2

    failures = []
    checked = 0
    for key, base in sorted(baseline.items()):
        sense = direction(key[1])
        if sense is None or key not in current:
            continue
        cur = current[key]
        checked += 1
        if sense == "down":
            limit = base * (1.0 + args.tolerance)
            ok = cur <= limit
            delta = (cur / base - 1.0) if base > 0 else 0.0
        else:
            limit = base / (1.0 + args.tolerance)
            ok = cur >= limit
            delta = (base / cur - 1.0) if cur > 0 else float("inf")
        status = "ok" if ok else "REGRESSED"
        print(
            f"{status:>9}  {key[0]}  {key[1]}: "
            f"baseline={base:.4g} current={cur:.4g} "
            f"({delta:+.1%} vs tolerance {args.tolerance:.0%})"
        )
        if not ok:
            failures.append(key)

    print(
        f"\n{checked} timing metric(s) checked against {args.baseline}; "
        f"{len(failures)} regression(s)"
    )
    if checked == 0:
        print("warning: baseline and current share no timing metrics")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
