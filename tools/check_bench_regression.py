#!/usr/bin/env python3
"""Gate wall-clock perf against a checked-in baseline.

Both inputs are SWALLOW_BENCH_JSON files: one JSON object per line,
{"bench": <name>, "metrics": {"gauges": {<metric>: <value>, ...}, ...}}.

Only timing metrics are gated, with direction taken from the name:

  *_ms            lower is better  -> fail if current > baseline * (1 + tol)
  *_mbps,
  *.speedup,
  *.scaling,
  *.met_fraction  higher is better -> fail if current < baseline / (1 + tol)

(met_fraction is an SLO-quality gauge, not wall-clock, but it gates the same
way: the deadline bench is deterministic, so any drop is a behavior change.)

Everything else (JCT/CCT gauges, counters) is correctness data owned by the
benches and tests, not a perf gate. The check is one-sided on purpose:
wall-clock baselines are machine-dependent, so getting faster never fails,
and the tolerance absorbs runner jitter.

Usage:
  tools/check_bench_regression.py --baseline BENCH_engine.json \
      [--baseline BENCH_scale.json ...] --current bench_out.json \
      [--tolerance 0.25] [--metric-tolerance 'bench_engine_scale/*=0.6' ...]

--baseline is repeatable: the files merge in order, later files winning on
conflicting (bench, metric) keys. --metric-tolerance overrides the global
tolerance for matching metrics; PATTERN is an fnmatch glob tried against
"<bench>/<metric>" and then against the bare metric name, first matching
override (in argument order) wins. Wall-clock-dominated benches get looser
gates that way without loosening the cheap, stable microbenches.

Exits 0 when every gated metric is within tolerance (or has no baseline),
1 on any regression, 2 on malformed input.
"""

import argparse
import fnmatch
import json
import sys


def load_metrics(path):
    """Returns {(bench, metric): value} for all gauge metrics in the file.

    A bench appearing multiple times keeps its last line (a re-run appends).
    """
    out = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"error: {path}:{lineno}: bad JSON line: {e}"
                    )
                bench = row.get("bench", "bench")
                gauges = row.get("metrics", {}).get("gauges", {})
                for metric, value in gauges.items():
                    if isinstance(value, (int, float)):
                        out[(bench, metric)] = float(value)
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return out


def direction(metric):
    """'down' if lower is better, 'up' if higher is better, None if ungated."""
    if metric.endswith("_ms"):
        return "down"
    if (
        metric.endswith("_mbps")
        or metric.endswith(".speedup")
        or metric.endswith(".scaling")
        or metric.endswith(".met_fraction")
    ):
        return "up"
    return None


def parse_metric_tolerances(specs):
    """Parses repeated PATTERN=TOL specs into [(pattern, tol)], in order."""
    out = []
    for spec in specs or []:
        pattern, sep, tol = spec.rpartition("=")
        if not sep or not pattern:
            raise SystemExit(
                f"error: --metric-tolerance {spec!r}: expected PATTERN=TOL"
            )
        try:
            out.append((pattern, float(tol)))
        except ValueError:
            raise SystemExit(
                f"error: --metric-tolerance {spec!r}: TOL must be a number"
            )
    return out


def tolerance_for(key, overrides, default):
    """First override whose glob matches "bench/metric" or the bare metric."""
    qualified = f"{key[0]}/{key[1]}"
    for pattern, tol in overrides:
        if fnmatch.fnmatch(qualified, pattern) or fnmatch.fnmatch(
            key[1], pattern
        ):
            return tol
    return default


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        action="append",
        required=True,
        help="baseline JSON file; repeatable, later files win on conflicts",
    )
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--metric-tolerance",
        action="append",
        metavar="PATTERN=TOL",
        help="per-metric tolerance override; PATTERN is an fnmatch glob "
        "against '<bench>/<metric>' or the bare metric name",
    )
    args = parser.parse_args()
    overrides = parse_metric_tolerances(args.metric_tolerance)

    baseline = {}
    for path in args.baseline:
        baseline.update(load_metrics(path))
    current = load_metrics(args.current)
    if not current:
        print(f"error: no gauge metrics found in {args.current}")
        return 2

    failures = []
    missing = []
    checked = 0
    for key, base in sorted(baseline.items()):
        sense = direction(key[1])
        if sense is None:
            continue
        if key not in current:
            # A gated metric the candidate never reported is a regression in
            # its own right (a silently dropped bench or renamed gauge would
            # otherwise pass the gate by absence).
            print(
                f"  MISSING  {key[0]}  {key[1]}: baseline={base:.4g} "
                f"but the candidate run did not report this metric"
            )
            missing.append(key)
            continue
        cur = current[key]
        checked += 1
        tolerance = tolerance_for(key, overrides, args.tolerance)
        if sense == "down":
            limit = base * (1.0 + tolerance)
            ok = cur <= limit
            delta = (cur / base - 1.0) if base > 0 else 0.0
        else:
            limit = base / (1.0 + tolerance)
            ok = cur >= limit
            delta = (base / cur - 1.0) if cur > 0 else float("inf")
        status = "ok" if ok else "REGRESSED"
        print(
            f"{status:>9}  {key[0]}  {key[1]}: "
            f"baseline={base:.4g} current={cur:.4g} "
            f"({delta:+.1%} vs tolerance {tolerance:.0%})"
        )
        if not ok:
            failures.append(key)

    # New gated metrics without a baseline are fine (the next baseline
    # refresh picks them up) but worth surfacing so the refresh happens.
    for key in sorted(current):
        if direction(key[1]) is not None and key not in baseline:
            print(
                f"warning: {key[0]}  {key[1]}: candidate metric has no "
                f"baseline (refresh the baseline JSON to gate it)"
            )

    print(
        f"\n{checked} timing metric(s) checked against "
        f"{', '.join(args.baseline)}; {len(failures)} regression(s), "
        f"{len(missing)} missing from candidate"
    )
    if checked == 0:
        print("warning: baseline and current share no timing metrics")
    return 1 if failures or missing else 0


if __name__ == "__main__":
    sys.exit(main())
