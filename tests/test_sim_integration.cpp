// Trace-driven integration tests: the paper's headline qualitative claims
// must hold on synthetic workloads — FVDF beats the baselines on CCT at low
// bandwidth, matches its no-compression self at 10 Gbps, reduces traffic by
// about (1 - xi), and the priority upgrade prevents starvation.
#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "sim/experiment.hpp"

namespace swallow::sim {
namespace {

using common::gbps;
using common::mbps;

workload::Trace small_trace(std::uint64_t seed, std::size_t coflows = 30) {
  workload::GeneratorConfig gen;
  gen.num_ports = 10;
  gen.num_coflows = coflows;
  gen.mean_interarrival = 0.5;
  gen.size_lo = 1e6;
  gen.size_hi = 1e9;
  gen.size_alpha = 0.3;
  gen.width_lo = 1;
  gen.width_hi = 5;
  gen.seed = seed;
  return workload::generate_trace(gen);
}

class SimIntegration : public ::testing::Test {
 protected:
  SimIntegration() : trace_(small_trace(21)), cpu_(0.9) {}

  Metrics run(const std::string& name, common::Bps bandwidth,
              bool with_codec = true) {
    const fabric::Fabric fabric(10, bandwidth);
    auto sched = make_scheduler(name);
    SimConfig config;
    if (with_codec) config.codec = &codec::default_codec_model();
    return run_simulation(trace_, fabric, cpu_, *sched, config);
  }

  workload::Trace trace_;
  cpu::ConstantCpu cpu_;
};

TEST_F(SimIntegration, FvdfBeatsBaselinesOnCctAtLowBandwidth) {
  const double fvdf = run("FVDF", mbps(100)).avg_cct();
  for (const char* name : {"SEBF", "FIFO", "PFF", "WSS"}) {
    const double base = run(name, mbps(100)).avg_cct();
    EXPECT_LT(fvdf, base) << name;
  }
}

TEST_F(SimIntegration, FvdfSpeedupOverSebfInPaperBand) {
  // Paper Fig. 6(e): up to 1.62x at 100 Mbps, compression-ratio bound
  // ~1/xi = 1.61 for LZ4. Accept a generous band.
  const double speedup =
      run("SEBF", mbps(100)).avg_cct() / run("FVDF", mbps(100)).avg_cct();
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 1.9);
}

TEST_F(SimIntegration, CompressionDisabledAtTenGbps) {
  // Eq. 3 gate closes: FVDF must behave exactly like FVDF-NC.
  const Metrics with_codec = run("FVDF", gbps(10));
  const Metrics without = run("FVDF-NC", gbps(10));
  EXPECT_NEAR(with_codec.avg_cct(), without.avg_cct(), 1e-9);
  EXPECT_NEAR(with_codec.traffic_reduction(), 0.0, 1e-9);
}

TEST_F(SimIntegration, TrafficReductionTracksCompressionRatio) {
  // At 100 Mbps everything compressible is compressed: reduction ~
  // (1 - xi) * compressible_share. xi = 0.6215, share ~ 0.95.
  const Metrics m = run("FVDF", mbps(100));
  EXPECT_GT(m.traffic_reduction(), 0.25);
  EXPECT_LT(m.traffic_reduction(), 1.0 - 0.6215 + 0.03);
}

TEST_F(SimIntegration, BaselinesNeverReduceTraffic) {
  for (const char* name : {"SEBF", "FIFO", "PFP", "SCF"}) {
    const Metrics m = run(name, mbps(100));
    EXPECT_NEAR(m.traffic_reduction(), 0.0, 1e-9) << name;
  }
}

TEST_F(SimIntegration, FvdfImprovesAvgFctOverFifoAndFair) {
  // Fig. 6(a): FVDF accelerates average FCT over FIFO and FAIR. FIFO loses
  // on every trace; FAIR is close on individual seeds (fair sharing is a
  // strong flow-level baseline), so the claim is asserted in aggregate.
  const double fvdf = run("FVDF", mbps(100)).avg_fct();
  EXPECT_LT(fvdf, run("FIFO", mbps(100)).avg_fct());

  double fvdf_sum = 0, fair_sum = 0;
  for (const std::uint64_t seed : {21ull, 7ull, 99ull}) {
    const workload::Trace trace = small_trace(seed);
    const fabric::Fabric fabric(10, mbps(100));
    SimConfig config;
    config.codec = &codec::default_codec_model();
    auto fvdf_sched = make_scheduler("FVDF");
    auto fair_sched = make_scheduler("FAIR");
    fvdf_sum += run_simulation(trace, fabric, cpu_, *fvdf_sched, config)
                    .avg_fct();
    fair_sum += run_simulation(trace, fabric, cpu_, *fair_sched, config)
                    .avg_fct();
  }
  EXPECT_LT(fvdf_sum, fair_sum);
}

TEST_F(SimIntegration, EverySchedulerCompletesEveryFlow) {
  for (const char* name :
       {"FVDF", "FVDF-NC", "SEBF", "FIFO", "PFF", "WSS", "PFP", "SCF", "NCF",
        "LCF"}) {
    const Metrics m = run(name, gbps(1));
    EXPECT_EQ(m.flows.size(), trace_.total_flows()) << name;
    for (const auto& f : m.flows) {
      EXPECT_GT(f.completion, 0.0) << name;
      EXPECT_GE(f.fct(), -1e-9) << name;
    }
  }
}

TEST_F(SimIntegration, TracerObservesExactlyWhatMetricsRecord) {
  // The tracer rides along the same code paths Metrics does; its lifecycle
  // event counts must agree exactly — no phantom or missing events.
  obs::Tracer tracer;
  const fabric::Fabric fabric(10, mbps(100));
  auto sched = make_scheduler("FVDF");
  SimConfig config;
  config.codec = &codec::default_codec_model();
  config.sink = &tracer;
  const Metrics m = run_simulation(trace_, fabric, cpu_, *sched, config);

  std::size_t arrivals = 0, coflow_completions = 0, flow_completions = 0;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (ev.name == "coflow_arrival") ++arrivals;
    if (ev.name == "coflow_complete") ++coflow_completions;
    if (ev.name == "flow_complete") ++flow_completions;
  }
  EXPECT_EQ(arrivals, m.coflows.size());
  EXPECT_EQ(coflow_completions, m.coflows.size());
  EXPECT_EQ(flow_completions, m.flows.size());
  EXPECT_EQ(tracer.registry().counter("sim.coflows_arrived").value(),
            m.coflows.size());
  EXPECT_EQ(tracer.registry().counter("sim.coflows_completed").value(),
            m.coflows.size());

  // An identical run with no sink attached must produce identical results:
  // instrumentation is observation, never perturbation.
  auto sched2 = make_scheduler("FVDF");
  SimConfig quiet = config;
  quiet.sink = nullptr;
  const Metrics m2 = run_simulation(trace_, fabric, cpu_, *sched2, quiet);
  EXPECT_DOUBLE_EQ(m.avg_cct(), m2.avg_cct());
  EXPECT_DOUBLE_EQ(m.traffic_reduction(), m2.traffic_reduction());
}

TEST(Starvation, UpgradeBoundsLargeCoflowWait) {
  // One large coflow at t=0, then a stream of small coflows on the same
  // ports. Without the priority upgrade FVDF keeps preempting the large
  // coflow; with it the large coflow finishes much earlier.
  workload::Trace t;
  t.num_ports = 2;
  workload::CoflowSpec big;
  big.id = 0;
  big.job = 0;
  big.arrival = 0;
  big.flows = {{0, 1, 5e7, false, 0}};
  t.coflows.push_back(big);
  for (int i = 1; i <= 120; ++i) {
    workload::CoflowSpec small;
    small.id = static_cast<fabric::CoflowId>(i);
    small.job = i;
    small.arrival = 0.2 * i;
    small.flows = {{0, 1, 4e6, false, 0}};
    t.coflows.push_back(small);
  }
  const fabric::Fabric fabric(2, common::mbps(200));
  const cpu::ConstantCpu cpu(0.0);

  auto run_with = [&](const std::string& name) {
    auto sched = make_scheduler(name);
    const Metrics m = run_simulation(t, fabric, cpu, *sched, {});
    return m.coflows.front().cct();  // the large coflow's CCT
  };
  const double with_upgrade = run_with("FVDF-NC");
  const double without = run_with("FVDF-NOUPGRADE");
  EXPECT_LT(with_upgrade, without * 0.8);
}

TEST(Ablation, BackfillNeverSubstantiallyHurtsCct) {
  // Work conservation can reshuffle completion orders slightly, so allow a
  // small regression band; a large one would mean the pass is broken.
  const workload::Trace trace = small_trace(33, 20);
  const fabric::Fabric fabric(10, mbps(500));
  const cpu::ConstantCpu cpu(0.0);
  auto with = make_scheduler("FVDF-NC");
  auto without = make_scheduler("FVDF-NOBACKFILL");
  const Metrics a = run_simulation(trace, fabric, cpu, *with, {});
  const Metrics b = run_simulation(trace, fabric, cpu, *without, {});
  EXPECT_LE(a.avg_cct(), b.avg_cct() * 1.05);
  // It must never hurt the makespan: saturating ports finishes work sooner.
  EXPECT_LE(a.makespan(), b.makespan() * 1.001);
}

TEST(ExperimentHelpers, CompareSchedulersRunsAllNames) {
  const workload::Trace trace = small_trace(44, 10);
  const fabric::Fabric fabric(10, gbps(1));
  const cpu::ConstantCpu cpu(0.5);
  SimConfig config;
  config.codec = &codec::default_codec_model();
  const auto rows =
      compare_schedulers(trace, fabric, cpu, {"FVDF", "SEBF", "FIFO"}, config);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].scheduler, "FVDF");
  EXPECT_EQ(rows[2].scheduler, "FIFO");
  for (const auto& row : rows) EXPECT_FALSE(row.metrics.flows.empty());
}

TEST(ExperimentHelpers, MakeSchedulerCoversBothFamilies) {
  EXPECT_EQ(make_scheduler("FVDF")->name(), "FVDF");
  EXPECT_EQ(make_scheduler("SEBF")->name(), "SEBF");
  EXPECT_THROW(make_scheduler("nothing"), std::out_of_range);
}

}  // namespace
}  // namespace swallow::sim
