// Engine invariants parameterized over every (scheduler, bandwidth) pair:
// whatever the policy, the simulator must conserve bytes, complete every
// flow after its arrival, never beat the physics (per-flow and per-coflow
// lower bounds), and keep traffic reduction consistent with the
// compression switch.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hpp"

namespace swallow::sim {
namespace {

using Param = std::tuple<std::string, double /*Mbps*/>;

class EngineProperty : public ::testing::TestWithParam<Param> {
 protected:
  EngineProperty() {
    workload::GeneratorConfig gen;
    gen.num_ports = 8;
    gen.num_coflows = 20;
    gen.mean_interarrival = 0.4;
    gen.size_lo = 5e5;
    gen.size_hi = 3e8;
    gen.size_alpha = 0.2;
    gen.width_hi = 4;
    gen.seed = 2024;
    trace_ = workload::generate_trace(gen);
  }

  Metrics run() {
    const auto& [name, mbps_value] = GetParam();
    const fabric::Fabric fabric(trace_.num_ports,
                                common::mbps(mbps_value));
    const cpu::ConstantCpu cpu(0.9);
    auto sched = make_scheduler(name);
    SimConfig config;
    config.codec = &codec::default_codec_model();
    return run_simulation(trace_, fabric, cpu, *sched, config);
  }

  workload::Trace trace_;
};

TEST_P(EngineProperty, EveryFlowCompletesAfterArrival) {
  const Metrics m = run();
  ASSERT_EQ(m.flows.size(), trace_.total_flows());
  for (const auto& f : m.flows) {
    EXPECT_GT(f.completion, 0.0);
    EXPECT_GE(f.fct(), 0.0);
  }
  ASSERT_EQ(m.coflows.size(), trace_.coflows.size());
  for (const auto& c : m.coflows) EXPECT_GE(c.cct(), 0.0);
}

TEST_P(EngineProperty, WireBytesNeverExceedOriginal) {
  const Metrics m = run();
  for (const auto& f : m.flows) {
    EXPECT_LE(f.wire_bytes, f.original_bytes * (1 + 1e-9));
    EXPECT_GT(f.wire_bytes, 0.0);
  }
}

TEST_P(EngineProperty, TrafficReductionMatchesCompressionSwitch) {
  const Metrics m = run();
  const auto& [name, mbps_value] = GetParam();
  const bool compressing =
      name == "FVDF" &&
      codec::default_codec_model().beats_bandwidth(
          common::mbps(mbps_value), 0.9);
  if (compressing)
    EXPECT_GT(m.traffic_reduction(), 0.1);
  else
    EXPECT_NEAR(m.traffic_reduction(), 0.0, 1e-9);
}

TEST_P(EngineProperty, FlowsRespectLinkPhysics) {
  const auto& [name, mbps_value] = GetParam();
  const common::Bps bandwidth = common::mbps(mbps_value);
  const Metrics m = run();
  for (const auto& f : m.flows) {
    // A flow can never finish faster than its wire bytes over the link.
    const double lower = f.wire_bytes / bandwidth;
    EXPECT_GE(f.fct(), lower * 0.999 - 0.02)
        << "flow " << f.id << " of size " << f.original_bytes;
  }
}

TEST_P(EngineProperty, CoflowsRespectIsolationBoundModuloCompression) {
  const Metrics m = run();
  for (const auto& c : m.coflows) {
    ASSERT_GT(c.isolation_bound, 0.0);
    // Compression can shrink the transmitted volume to xi of the raw
    // bound; nothing can go below xi * bound.
    const double floor = c.isolation_bound *
                         codec::default_codec_model().ratio * 0.999;
    EXPECT_GE(c.cct(), floor - 0.02) << "coflow " << c.id;
  }
}

TEST_P(EngineProperty, DeterministicAcrossRuns) {
  const Metrics a = run();
  const Metrics b = run();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i)
    EXPECT_DOUBLE_EQ(a.flows[i].completion, b.flows[i].completion);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string s = std::get<0>(info.param) + "_" +
                  std::to_string(static_cast<int>(std::get<1>(info.param))) +
                  "Mbps";
  for (auto& c : s)
    if (c == '-') c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersTimesBandwidths, EngineProperty,
    ::testing::Combine(::testing::Values("FVDF", "FVDF-NC", "SEBF", "FIFO",
                                         "PFF", "WSS", "PFP", "SCF", "NCF",
                                         "LCF", "AALO"),
                       ::testing::Values(100.0, 1000.0)),
    param_name);

}  // namespace
}  // namespace swallow::sim
