// Codec tests: roundtrip correctness across every codec and payload shape
// (parameterized), container self-description, corrupt-input rejection,
// ratio ordering across presets, and varint edge cases.
#include <gtest/gtest.h>

#include <tuple>

#include "codec/codec.hpp"
#include "codec/lz_codec.hpp"
#include "codec/null_codec.hpp"
#include "codec/rle_codec.hpp"
#include "codec/synth_data.hpp"
#include "codec/varint.hpp"

namespace swallow::codec {
namespace {

using common::Rng;

enum class Payload { kEmpty, kOneByte, kRandom, kRuns, kText, kRecords, kMixed };

Buffer make_payload(Payload kind, std::size_t n, Rng& rng) {
  switch (kind) {
    case Payload::kEmpty: return {};
    case Payload::kOneByte: return {0x42};
    case Payload::kRandom: return random_bytes(n, rng);
    case Payload::kRuns: return run_bytes(n, rng);
    case Payload::kText: return text_bytes(n, rng);
    case Payload::kRecords: return record_bytes(n, rng);
    case Payload::kMixed: return mixed_bytes(n, rng, 0.5);
  }
  return {};
}

class RoundtripTest
    : public ::testing::TestWithParam<std::tuple<CodecKind, Payload, int>> {};

std::string roundtrip_name(
    const ::testing::TestParamInfo<std::tuple<CodecKind, Payload, int>>&
        info) {
  static const char* kPayloadNames[] = {"Empty", "OneByte", "Random", "Runs",
                                        "Text",  "Records", "Mixed"};
  std::string s = codec_kind_name(std::get<0>(info.param));
  for (auto& c : s)
    if (c == '-') c = '_';
  return s + "_" + kPayloadNames[static_cast<int>(std::get<1>(info.param))] +
         "_" + std::to_string(std::get<2>(info.param));
}

TEST_P(RoundtripTest, CompressDecompressIsIdentity) {
  const auto [kind, payload_kind, size] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 31 +
          static_cast<std::uint64_t>(payload_kind));
  const Buffer original =
      make_payload(payload_kind, static_cast<std::size_t>(size), rng);
  const auto codec = make_codec(kind);

  const Buffer compressed = codec->compress(original);
  ASSERT_LE(compressed.size(), codec->max_compressed_size(original.size()));
  EXPECT_EQ(codec->decompressed_size(compressed), original.size());
  const Buffer restored = codec->decompress(compressed);
  EXPECT_EQ(restored, original);
}

TEST_P(RoundtripTest, ContainerIsSelfDescribing) {
  const auto [kind, payload_kind, size] = GetParam();
  Rng rng(7);
  const Buffer original =
      make_payload(payload_kind, static_cast<std::size_t>(size), rng);
  const auto codec = make_codec(kind);
  const Buffer compressed = codec->compress(original);
  EXPECT_EQ(decompress_any(compressed), original);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, RoundtripTest,
    ::testing::Combine(
        ::testing::Values(CodecKind::kNull, CodecKind::kRle,
                          CodecKind::kLzFast, CodecKind::kLzBalanced,
                          CodecKind::kLzHigh, CodecKind::kHuffman,
                          CodecKind::kLzHuff),
        ::testing::Values(Payload::kEmpty, Payload::kOneByte, Payload::kRandom,
                          Payload::kRuns, Payload::kText, Payload::kRecords,
                          Payload::kMixed),
        ::testing::Values(64, 4096, 262144)),
    roundtrip_name);

TEST(LzCodec, CompressesTextWell) {
  Rng rng(1);
  const Buffer text = text_bytes(1 << 18, rng);
  const LzCodec codec(LzPreset::kBalanced);
  const Buffer compressed = codec.compress(text);
  EXPECT_LT(compression_ratio(text.size(), compressed.size()), 0.6);
}

TEST(LzCodec, RandomDataStaysNearOriginalSize) {
  Rng rng(2);
  const Buffer noise = random_bytes(1 << 18, rng);
  const LzCodec codec(LzPreset::kBalanced);
  const Buffer compressed = codec.compress(noise);
  const double ratio = compression_ratio(noise.size(), compressed.size());
  EXPECT_GT(ratio, 0.98);
  EXPECT_LE(compressed.size(), codec.max_compressed_size(noise.size()));
}

TEST(LzCodec, HighPresetRatioBeatsFastPreset) {
  Rng rng(3);
  const Buffer text = text_bytes(1 << 18, rng);
  const auto fast = LzCodec(LzPreset::kFast).compress(text);
  const auto balanced = LzCodec(LzPreset::kBalanced).compress(text);
  const auto high = LzCodec(LzPreset::kHigh).compress(text);
  EXPECT_LE(high.size(), balanced.size());
  EXPECT_LE(balanced.size(), fast.size());
}

TEST(LzCodec, OverlappingMatchesReplicateRuns) {
  // A long single-byte run forces offset-1 overlapping copies on decode.
  Buffer run(100000, 0xaa);
  const LzCodec codec(LzPreset::kBalanced);
  const Buffer compressed = codec.compress(run);
  EXPECT_LT(compressed.size(), run.size() / 100);
  EXPECT_EQ(codec.decompress(compressed), run);
}

TEST(LzCodec, RejectsTruncatedContainer) {
  Rng rng(4);
  const Buffer text = text_bytes(4096, rng);
  const LzCodec codec(LzPreset::kBalanced);
  Buffer compressed = codec.compress(text);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(codec.decompress(compressed), CodecError);
}

TEST(LzCodec, RejectsCorruptOffset) {
  // Hand-craft a container whose match offset points before the output.
  const LzCodec codec(LzPreset::kBalanced);
  Buffer original{'a', 'b', 'c', 'd', 'a', 'b', 'c', 'd'};
  Buffer compressed = codec.compress(original);
  // Flip payload bytes until decode fails or output differs; either way it
  // must never crash or read out of bounds.
  int detected = 0;
  for (std::size_t i = 2; i < compressed.size(); ++i) {
    Buffer corrupt = compressed;
    corrupt[i] ^= 0xff;
    try {
      const Buffer out = codec.decompress(corrupt);
      if (out != original) ++detected;
    } catch (const CodecError&) {
      ++detected;
    }
  }
  EXPECT_GT(detected, 0);
}

TEST(LzCodec, RejectsWrongCodecId) {
  const LzCodec balanced(LzPreset::kBalanced);
  const LzCodec fast(LzPreset::kFast);
  const Buffer compressed = balanced.compress(Buffer{1, 2, 3, 4, 5});
  EXPECT_THROW(fast.decompress(compressed), CodecError);
}

TEST(RleCodec, CompressesRunsHard) {
  Rng rng(5);
  const Buffer runs = run_bytes(1 << 16, rng, 128);
  const RleCodec codec;
  const Buffer compressed = codec.compress(runs);
  EXPECT_LT(compression_ratio(runs.size(), compressed.size()), 0.2);
}

TEST(RleCodec, RejectsTrailingGarbage) {
  const RleCodec codec;
  Buffer compressed = codec.compress(Buffer{9, 9, 9, 9, 9, 9});
  compressed.push_back(0x00);  // extra run group beyond declared size
  EXPECT_THROW(codec.decompress(compressed), CodecError);
}

TEST(NullCodec, AddsOnlyHeaderOverhead) {
  Rng rng(6);
  const Buffer data = random_bytes(1000, rng);
  const NullCodec codec;
  const Buffer compressed = codec.compress(data);
  EXPECT_LE(compressed.size(), data.size() + 4);
}

TEST(Codec, CompressRejectsSmallOutputBuffer) {
  const NullCodec codec;
  const Buffer data(100, 1);
  Buffer out(10);
  EXPECT_THROW(codec.compress(data, out), CodecError);
}

TEST(Codec, DecompressRejectsSmallOutputBuffer) {
  const NullCodec codec;
  const Buffer compressed = codec.compress(Buffer(100, 1));
  Buffer out(10);
  EXPECT_THROW(codec.decompress(compressed, out), CodecError);
}

TEST(Codec, DecompressAnyRejectsUnknownId) {
  Buffer bogus{0x7f, 0x00};
  EXPECT_THROW(decompress_any(bogus), CodecError);
  EXPECT_THROW(decompress_any({}), CodecError);
}

TEST(Codec, RatioHelper) {
  EXPECT_DOUBLE_EQ(compression_ratio(100, 50), 0.5);
  EXPECT_DOUBLE_EQ(compression_ratio(0, 10), 1.0);
}

TEST(Varint, RoundtripsBoundaries) {
  Buffer buf(kMaxVarintBytes);
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    const std::size_t n = write_varint(v, buf, 0);
    EXPECT_EQ(n, varint_size(v));
    std::size_t pos = 0;
    EXPECT_EQ(read_varint(std::span<const std::uint8_t>(buf.data(), n), pos),
              v);
    EXPECT_EQ(pos, n);
  }
}

TEST(Varint, RejectsTruncated) {
  const Buffer truncated{0x80};  // continuation bit set, nothing follows
  std::size_t pos = 0;
  EXPECT_THROW(
      read_varint(std::span<const std::uint8_t>(truncated.data(), 1), pos),
      CodecError);
}

TEST(Varint, RejectsOverlong) {
  Buffer overlong(11, 0x80);
  std::size_t pos = 0;
  EXPECT_THROW(read_varint(overlong, pos), CodecError);
}

}  // namespace
}  // namespace swallow::codec
