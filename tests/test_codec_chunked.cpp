// Chunk-parallel container tests (DESIGN.md section 14): round-trip fuzz
// over random chunk geometries (including 1-byte chunks and chunks larger
// than the payload) for every codec kind, byte-identity of pool-parallel
// output against the serial reference path, streaming encoder/decoder
// equivalence under arbitrary wire splits, and the corruption battery —
// torn frames, flipped bytes, forged codec ids — all of which must surface
// as typed CodecError, never as a wrong payload. The CI TSan job runs this
// binary to race-check the pool/encoder/decoder handoffs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "codec/chunk.hpp"
#include "codec/synth_data.hpp"
#include "codec/throughput.hpp"
#include "codec/varint.hpp"

namespace swallow::codec {
namespace {

using common::Rng;

// ---- round-trip matrix ----

class ChunkRoundtrip
    : public ::testing::TestWithParam<std::tuple<CodecKind, int, int>> {};

TEST_P(ChunkRoundtrip, CompressDecompressIsIdentity) {
  const auto [kind, size, chunk] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 31 + chunk);
  const Buffer payload =
      mixed_bytes(static_cast<std::size_t>(size), rng, 0.25);
  const auto codec = make_codec(kind);
  ChunkPool pool(4);
  const Buffer frame = chunk_compress(*codec, payload,
                                      static_cast<std::size_t>(chunk), &pool);
  EXPECT_TRUE(is_chunk_frame(frame));
  EXPECT_EQ(chunk_decompressed_size(frame), payload.size());
  EXPECT_EQ(chunk_decompress(frame, &pool), payload);
  // Serial (no pool) decode of the parallel-built frame, and vice versa.
  EXPECT_EQ(chunk_decompress(frame), payload);
}

std::string chunk_param_name(
    const ::testing::TestParamInfo<std::tuple<CodecKind, int, int>>& info) {
  std::string s = codec_kind_name(std::get<0>(info.param));
  for (auto& c : s)
    if (c == '-') c = '_';
  return s + "_" + std::to_string(std::get<1>(info.param)) + "b_" +
         std::to_string(std::get<2>(info.param)) + "c";
}

// Degenerate chunk geometries (1-byte and 7-byte chunks) pair only with
// small payloads: a 1-byte chunk turns every payload byte into a record,
// and the CI TSan job instruments each pool handoff, so large × tiny
// would dominate the suite's wall clock without adding coverage.
INSTANTIATE_TEST_SUITE_P(
    Degenerate, ChunkRoundtrip,
    ::testing::Combine(::testing::ValuesIn(all_codec_kinds()),
                       // payload sizes: empty, single byte, odd multi-chunk
                       ::testing::Values(0, 1, 4097),
                       // chunk sizes: 1-byte, odd, and larger than every
                       // payload above (single record)
                       ::testing::Values(1, 7, 1 << 20)),
    chunk_param_name);

INSTANTIATE_TEST_SUITE_P(
    Large, ChunkRoundtrip,
    ::testing::Combine(::testing::ValuesIn(all_codec_kinds()),
                       ::testing::Values(100000),
                       // multi-chunk, odd-boundary and single-record shapes
                       ::testing::Values(4096, 16384, 1 << 20)),
    chunk_param_name);

// ---- determinism: parallel output is byte-identical to serial ----

TEST(ChunkDeterminism, PoolOutputMatchesSerialForEveryCodec) {
  Rng rng(11);
  const Buffer payload = mixed_bytes(300000, rng, 0.2);
  ChunkPool pool(4);
  for (const CodecKind kind : all_codec_kinds()) {
    const auto codec = make_codec(kind);
    const Buffer serial = chunk_compress(*codec, payload, 32 * 1024, nullptr);
    const Buffer parallel = chunk_compress(*codec, payload, 32 * 1024, &pool);
    EXPECT_EQ(serial, parallel) << codec_kind_name(kind);
  }
}

TEST(ChunkDeterminism, ThreadCountNeverChangesBytes) {
  Rng rng(12);
  const Buffer payload = text_bytes(200000, rng);
  const auto codec = make_codec(CodecKind::kLzHuff);
  const Buffer reference = chunk_compress(*codec, payload, 24 * 1024, nullptr);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ChunkPool pool(threads);
    EXPECT_EQ(chunk_compress(*codec, payload, 24 * 1024, &pool), reference)
        << threads << " threads";
  }
}

// ---- random-geometry fuzz ----

TEST(ChunkFuzz, RandomGeometriesRoundTrip) {
  Rng rng(77);
  ChunkPool pool(4);
  ThroughputLedger ledger;
  const auto kinds = all_codec_kinds();
  for (int iter = 0; iter < 48; ++iter) {
    const CodecKind kind = kinds[rng.uniform_int(0, kinds.size() - 1)];
    // Log-uniform payload size in [0, ~128 KiB], log-uniform chunk size in
    // [1, 512 KiB] so chunk > payload, chunk == 1 and everything between
    // all come up.
    const auto payload_size = static_cast<std::size_t>(
        rng.uniform_int(0, 1) == 0
            ? rng.uniform_int(0, 64)
            : rng.uniform_int(1, 1 << rng.uniform_int(7, 17)));
    // Cap the record count at ~2k so tiny-chunk draws against large
    // payloads stay affordable under TSan; 1-byte chunks still come up
    // whenever the payload draw is small.
    const auto chunk_bytes = std::max<std::size_t>(
        static_cast<std::size_t>(
            rng.uniform_int(1, 1 << rng.uniform_int(0, 19))),
        payload_size >> 11);
    const Buffer payload = mixed_bytes(payload_size, rng, 0.3);
    const auto codec = make_codec(kind);
    const Buffer serial = chunk_compress(*codec, payload, chunk_bytes);
    const Buffer parallel =
        chunk_compress(*codec, payload, chunk_bytes, &pool, &ledger);
    ASSERT_EQ(serial, parallel)
        << codec_kind_name(kind) << " payload=" << payload_size
        << " chunk=" << chunk_bytes;
    ASSERT_EQ(chunk_decompress(parallel, &pool, &ledger), payload)
        << codec_kind_name(kind) << " payload=" << payload_size
        << " chunk=" << chunk_bytes;
  }
}

// ---- streaming encoder ----

TEST(ChunkEncoder_, PulledStreamMatchesOneShot) {
  Rng rng(21);
  const Buffer payload = mixed_bytes(150000, rng, 0.15);
  const auto codec = make_codec(CodecKind::kLzBalanced);
  const Buffer oneshot = chunk_compress(*codec, payload, 16 * 1024);
  ChunkPool pool(3);
  for (const std::size_t window : {std::size_t{1}, std::size_t{0}}) {
    ChunkEncoder enc(*codec, payload, 16 * 1024, &pool, nullptr, window);
    EXPECT_EQ(enc.num_chunks(), (payload.size() + 16 * 1024 - 1) / (16 * 1024));
    Buffer wire;
    while (enc.has_next()) {
      const Buffer piece = enc.next();
      wire.insert(wire.end(), piece.begin(), piece.end());
    }
    EXPECT_EQ(wire, oneshot) << "window=" << window;
  }
}

TEST(ChunkEncoder_, SerialInlinePathMatchesPool) {
  Rng rng(22);
  const Buffer payload = text_bytes(60000, rng);
  const auto codec = make_codec(CodecKind::kHuffman);
  ChunkEncoder enc(*codec, payload, 8 * 1024);  // no pool: lazy inline
  Buffer wire;
  while (enc.has_next()) {
    const Buffer piece = enc.next();
    wire.insert(wire.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(wire, chunk_compress(*codec, payload, 8 * 1024));
}

// ---- streaming decoder under arbitrary wire splits ----

TEST(ChunkDecoder_, ArbitraryFeedSplitsReassemble) {
  Rng rng(31);
  const Buffer payload = mixed_bytes(120000, rng, 0.2);
  const auto codec = make_codec(CodecKind::kLzFast);
  const Buffer frame = chunk_compress(*codec, payload, 12 * 1024);
  ChunkPool pool(4);
  for (int trial = 0; trial < 8; ++trial) {
    ChunkDecoder dec(trial % 2 == 0 ? &pool : nullptr);
    std::size_t pos = 0;
    while (pos < frame.size()) {
      const auto step = static_cast<std::size_t>(
          std::min<std::uint64_t>(rng.uniform_int(1, 4096),
                                  frame.size() - pos));
      dec.feed(std::span<const std::uint8_t>(frame).subspan(pos, step));
      pos += step;
    }
    EXPECT_TRUE(dec.done());
    EXPECT_EQ(dec.take(), payload) << "trial " << trial;
  }
}

TEST(ChunkDecoder_, ByteAtATime) {
  Rng rng(32);
  const Buffer payload = mixed_bytes(3000, rng, 0.5);
  const auto codec = make_codec(CodecKind::kRle);
  const Buffer frame = chunk_compress(*codec, payload, 512);
  ChunkDecoder dec;
  for (const std::uint8_t b : frame) dec.feed({&b, 1});
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(dec.take(), payload);
}

// ---- decompress_into ----

TEST(ChunkInto, DecodesIntoCallerBuffer) {
  Rng rng(41);
  const Buffer payload = mixed_bytes(50000, rng, 0.3);
  const auto codec = make_codec(CodecKind::kLzHigh);
  const Buffer frame = chunk_compress(*codec, payload, 8 * 1024);
  Buffer out(chunk_decompressed_size(frame) + 17);  // oversized is fine
  ChunkPool pool(2);
  EXPECT_EQ(chunk_decompress_into(frame, out, &pool), payload.size());
  out.resize(payload.size());
  EXPECT_EQ(out, payload);
  Buffer tiny(payload.size() - 1);
  EXPECT_THROW(chunk_decompress_into(frame, tiny), CodecError);
}

// ---- corruption battery ----

// A small, multi-record frame shared by the corruption tests.
Buffer corpus_frame(Buffer* payload_out = nullptr) {
  Rng rng(51);
  Buffer payload = mixed_bytes(2500, rng, 0.4);
  const auto codec = make_codec(CodecKind::kLzBalanced);
  Buffer frame = chunk_compress(*codec, payload, 600);
  if (payload_out != nullptr) *payload_out = std::move(payload);
  return frame;
}

TEST(ChunkCorruption, BadMagic) {
  Buffer frame = corpus_frame();
  frame[0] ^= 0xff;
  EXPECT_FALSE(is_chunk_frame(frame));
  EXPECT_THROW(chunk_decompress(frame), CodecError);
  EXPECT_THROW(chunk_decompressed_size(frame), CodecError);
}

TEST(ChunkCorruption, EveryTruncationThrows) {
  // A torn frame — cut at any byte boundary — must be a typed error, never
  // a short or garbage payload.
  const Buffer frame = corpus_frame();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(
        chunk_decompress(std::span<const std::uint8_t>(frame.data(), cut)),
        CodecError)
        << "cut at " << cut;
  }
}

TEST(ChunkCorruption, TrailingGarbageThrows) {
  Buffer frame = corpus_frame();
  frame.push_back(0x5a);
  EXPECT_THROW(chunk_decompress(frame), CodecError);
}

TEST(ChunkCorruption, FlippedBytesThrow) {
  // Flip one byte at a spread of positions past the header; each must be
  // caught (checksum, size, codec id or container validation), and decoding
  // must never return success with wrong bytes.
  Buffer payload;
  const Buffer reference = corpus_frame(&payload);
  for (std::size_t pos = 8; pos < reference.size();
       pos += std::max<std::size_t>(reference.size() / 23, 1)) {
    Buffer frame = reference;
    frame[pos] ^= 0x01;
    try {
      const Buffer got = chunk_decompress(frame);
      ADD_FAILURE() << "flip at " << pos << " decoded without error";
    } catch (const CodecError&) {
      // expected
    }
  }
}

TEST(ChunkCorruption, RecordCodecIdMismatch) {
  // Forge the first record's leading codec-id byte: the record cross-check
  // against the container's own id byte must reject it.
  Buffer frame = corpus_frame();
  std::size_t pos = 4;                       // skip magic
  read_varint(frame, pos);                   // raw_size
  read_varint(frame, pos);                   // chunk_bytes
  ASSERT_LT(pos, frame.size());
  frame[pos] = frame[pos] == 0 ? 1 : 0;      // record codec id byte
  EXPECT_THROW(chunk_decompress(frame), CodecError);
}

TEST(ChunkCorruption, ZeroChunkSizeRejected) {
  Rng rng(52);
  const Buffer payload = random_bytes(64, rng);
  const auto codec = make_codec(CodecKind::kNull);
  EXPECT_THROW(chunk_compress(*codec, payload, 0), CodecError);
}

TEST(ChunkCorruption, StreamingDecoderSurfacesCorruption) {
  Buffer frame = corpus_frame();
  frame[frame.size() / 2] ^= 0x10;
  ChunkPool pool(2);
  ChunkDecoder dec(&pool);
  bool threw = false;
  try {
    dec.feed(frame);
    dec.take();
  } catch (const CodecError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(ChunkCorruption, StreamingDecoderTruncatedTake) {
  const Buffer frame = corpus_frame();
  ChunkDecoder dec;
  dec.feed(std::span<const std::uint8_t>(frame.data(), frame.size() - 3));
  EXPECT_FALSE(dec.done());
  EXPECT_THROW(dec.take(), CodecError);
}

}  // namespace
}  // namespace swallow::codec
