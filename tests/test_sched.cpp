// Baseline-scheduler tests: per-algorithm ordering semantics on hand-built
// scenarios plus cross-cutting properties (feasibility, work conservation,
// no compression) parameterized over every baseline.
#include <gtest/gtest.h>

#include "codec/codec_model.hpp"
#include "cpu/cpu_model.hpp"
#include "sched/aalo.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"

namespace swallow::sched {
namespace {

/// Two coflows on a 3x3 unit fabric (the Fig. 3 layout): C1 = {f0 (4, A),
/// f1 (4, B), f2 (2, C)}, C2 = {f3 (2, B), f4 (3, C)}.
struct World {
  World()
      : fabric_(std::vector<common::Bps>(3, 100.0),
                std::vector<common::Bps>(3, 1.0)),
        cpu_(1.0) {
    auto add_flow = [&](fabric::FlowId id, fabric::CoflowId cid,
                        fabric::PortId src, fabric::PortId dst, double bytes,
                        double arrival) {
      fabric::Flow f;
      f.id = id;
      f.coflow = cid;
      f.src = src;
      f.dst = dst;
      f.raw_remaining = bytes;
      f.original_bytes = bytes;
      f.arrival = arrival;
      flows_.push_back(f);
    };
    add_flow(0, 1, 0, 0, 4, 0.00);
    add_flow(1, 1, 1, 1, 4, 0.01);
    add_flow(2, 1, 0, 2, 2, 0.03);
    add_flow(3, 2, 2, 1, 2, 0.04);
    add_flow(4, 2, 1, 2, 3, 0.02);
    c1_.id = 1;
    c1_.arrival = 0;
    c1_.flows = {0, 1, 2};
    c2_.id = 2;
    c2_.arrival = 0;
    c2_.flows = {3, 4};
  }

  SchedContext context() {
    SchedContext ctx;
    ctx.fabric = &fabric_;
    ctx.cpu = &cpu_;
    ctx.now = 1.0;
    for (auto& f : flows_)
      if (!f.done()) ctx.flows.push_back(&f);
    ctx.coflows = {&c1_, &c2_};
    return ctx;
  }

  fabric::Fabric fabric_;
  cpu::ConstantCpu cpu_;
  std::vector<fabric::Flow> flows_;
  fabric::Coflow c1_, c2_;
};

class SchedScenario : public ::testing::Test, public World {};

TEST_F(SchedScenario, FifoServesArrivalOrderPerPort) {
  auto sched = make_baseline("FIFO");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  // Port B: f1 (arrival .01) before f3 (.04); port C: f4 (.02) before f2.
  EXPECT_NEAR(a.rate(1), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(3), 0.0, 1e-9);
  EXPECT_NEAR(a.rate(4), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(2), 0.0, 1e-9);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
}

TEST_F(SchedScenario, PfpServesSmallestRemainingPerPort) {
  auto sched = make_baseline("PFP");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  // Port B: f3 (2) < f1 (4); port C: f2 (2) < f4 (3).
  EXPECT_NEAR(a.rate(3), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 0.0, 1e-9);
  EXPECT_NEAR(a.rate(2), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(4), 0.0, 1e-9);
}

TEST_F(SchedScenario, PfpPrefersPartiallySentFlows) {
  flows_[1].raw_remaining = 1.5;  // f1 now smaller than f3
  auto sched = make_baseline("PFP");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_NEAR(a.rate(1), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(3), 0.0, 1e-9);
}

TEST_F(SchedScenario, PffSplitsContendedPortsEvenly) {
  auto sched = make_baseline("PFF");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_NEAR(a.rate(1), 0.5, 1e-9);
  EXPECT_NEAR(a.rate(3), 0.5, 1e-9);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
}

TEST_F(SchedScenario, WssSplitsProportionallyToVolume) {
  auto sched = make_baseline("WSS");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_NEAR(a.rate(1), 2.0 / 3.0, 1e-9);  // 4 vs 2 on port B
  EXPECT_NEAR(a.rate(3), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(2), 0.4, 1e-9);  // 2 vs 3 on port C
  EXPECT_NEAR(a.rate(4), 0.6, 1e-9);
}

TEST_F(SchedScenario, SebfAdmitsSmallerBottleneckFirst) {
  auto sched = make_baseline("SEBF");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  // Gamma(C2) = 3 < Gamma(C1) = 4: C2's flows get their MADD rates.
  EXPECT_NEAR(a.rate(3), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(4), 1.0, 1e-9);
  // C1 backfills: f0 full port, f1 the leftover third of port B.
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(2), 0.0, 1e-9);
}

TEST_F(SchedScenario, SebfWithoutBackfillLeavesResidualIdle) {
  auto sched = make_baseline("SEBF-NOBACKFILL");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_NEAR(a.rate(3), 2.0 / 3.0, 1e-9);
  // f1's MADD want is 4/4 = 1 but only 1/3 remains on port B.
  EXPECT_NEAR(a.rate(1), 1.0 / 3.0, 1e-9);
  // f0's MADD want is exactly 1, satisfied without backfill.
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
}

TEST_F(SchedScenario, ScfPrefersSmallerTotalBytes) {
  auto sched = make_baseline("SCF");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  // C2 total (5) < C1 total (10): C2's flows head both contended ports.
  EXPECT_NEAR(a.rate(3), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(4), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 0.0, 1e-9);
  EXPECT_NEAR(a.rate(2), 0.0, 1e-9);
}

TEST_F(SchedScenario, NcfPrefersNarrowerCoflow) {
  auto sched = make_baseline("NCF");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  // C2 width (2) < C1 width (3).
  EXPECT_NEAR(a.rate(3), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 0.0, 1e-9);
}

TEST_F(SchedScenario, LcfPrefersSmallerMaxFlow) {
  auto sched = make_baseline("LCF");
  SchedContext ctx = context();
  const fabric::Allocation a = sched->schedule(ctx);
  // max(C2) = 3 < max(C1) = 4.
  EXPECT_NEAR(a.rate(3), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 0.0, 1e-9);
}

TEST(Registry, AliasesAndUnknowns) {
  EXPECT_EQ(make_baseline("fair")->name(), "FAIR");
  EXPECT_EQ(make_baseline("srtf")->name(), "SRTF");
  EXPECT_EQ(make_baseline("sebf")->name(), "SEBF");
  EXPECT_THROW(make_baseline("bogus"), std::out_of_range);
  EXPECT_EQ(baseline_names().size(), 10u);
}

class BaselineProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineProperty, AllocationIsFeasible) {
  World scenario;
  auto sched = make_baseline(GetParam());
  SchedContext ctx = scenario.context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_TRUE(feasible(a, ctx.flows, *ctx.fabric));
}

TEST_P(BaselineProperty, WorkConservingOnSaturatedPorts) {
  World scenario;
  auto sched = make_baseline(GetParam());
  SchedContext ctx = scenario.context();
  const fabric::Allocation a = sched->schedule(ctx);
  // Every egress port with pending demand is fully used.
  double port_b = a.rate(1) + a.rate(3);
  double port_c = a.rate(2) + a.rate(4);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
  EXPECT_NEAR(port_b, 1.0, 1e-9);
  EXPECT_NEAR(port_c, 1.0, 1e-9);
}

TEST_P(BaselineProperty, BaselinesNeverCompress) {
  World scenario;
  auto sched = make_baseline(GetParam());
  SchedContext ctx = scenario.context();
  ctx.codec = &codec::default_codec_model();
  const fabric::Allocation a = sched->schedule(ctx);
  for (const auto* f : ctx.flows) EXPECT_FALSE(a.compress(f->id));
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineProperty,
                         ::testing::Values("FIFO", "PFF", "WSS", "PFP",
                                           "SEBF", "SCF", "NCF", "LCF",
                                           "AALO", "SINCRONIA"),
                         [](const auto& info) { return info.param; });

// ---- Aalo (D-CLAS) extension. ----

TEST(Aalo, QueueIndexFollowsGeometricThresholds) {
  AaloScheduler aalo;  // 10 MB first threshold, factor 10
  const double mb = 1024.0 * 1024.0;
  EXPECT_EQ(aalo.queue_of(0), 0u);
  EXPECT_EQ(aalo.queue_of(9 * mb), 0u);
  EXPECT_EQ(aalo.queue_of(10 * mb), 1u);
  EXPECT_EQ(aalo.queue_of(99 * mb), 1u);
  EXPECT_EQ(aalo.queue_of(100 * mb), 2u);
  EXPECT_EQ(aalo.queue_of(1e18), 9u);  // clamped to the last queue
}

TEST(Aalo, RejectsBadConfig) {
  AaloScheduler::Config config;
  config.threshold_factor = 1.0;
  EXPECT_THROW(AaloScheduler{config}, std::invalid_argument);
  config.threshold_factor = 10.0;
  config.num_queues = 0;
  EXPECT_THROW(AaloScheduler{config}, std::invalid_argument);
}

TEST(Aalo, FreshCoflowPreemptsHeavyHitter) {
  // The old coflow has transmitted past the first threshold; a fresh one,
  // regardless of its (unknown) size, sits in queue 0 and wins the port.
  World scenario;
  // Mark C1's flows as having sent 20 MB already.
  for (auto& f : scenario.flows_)
    if (f.coflow == 1) f.sent = 20.0 * 1024 * 1024;
  auto sched = make_baseline("AALO");
  SchedContext ctx = scenario.context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_NEAR(a.rate(3), 1.0, 1e-9);  // C2's flow heads port B
  EXPECT_NEAR(a.rate(1), 0.0, 1e-9);
  EXPECT_NEAR(a.rate(4), 1.0, 1e-9);  // and port C
  EXPECT_NEAR(a.rate(2), 0.0, 1e-9);
}

TEST(Aalo, FifoWithinAQueue) {
  // Both coflows below the first threshold: arrival order decides (C1 and
  // C2 arrive together, id breaks the tie -> C1 first, unlike PFP/SCF).
  World scenario;
  auto sched = make_baseline("AALO");
  SchedContext ctx = scenario.context();
  const fabric::Allocation a = sched->schedule(ctx);
  EXPECT_NEAR(a.rate(1), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(3), 0.0, 1e-9);
}

TEST(SchedScenarioEmpty, SchedulersHandleNoFlows) {
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(1.0);
  for (const auto& name : baseline_names()) {
    auto sched = make_baseline(name);
    SchedContext ctx;
    ctx.fabric = &fabric;
    ctx.cpu = &cpu;
    const fabric::Allocation a = sched->schedule(ctx);
    EXPECT_EQ(a.flow_count(), 0u) << name;
  }
}

}  // namespace
}  // namespace swallow::sched
