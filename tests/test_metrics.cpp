// Metrics tests: derived statistics over hand-built records.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace swallow::sim {
namespace {

Metrics sample_metrics() {
  Metrics m;
  // Two jobs: job 1 = coflows 1, 2; job 2 = coflow 3.
  m.coflows = {
      {1, 1, 2, 1000, 800, 0.0, 4.0},
      {2, 1, 1, 500, 500, 1.0, 3.0},
      {3, 2, 1, 200, 100, 2.0, 8.0},
  };
  m.flows = {
      {0, 1, 1, 600, 500, 0.0, 4.0},
      {1, 1, 1, 400, 300, 0.0, 3.0},
      {2, 2, 1, 500, 500, 1.0, 3.0},
      {3, 3, 2, 200, 100, 2.0, 8.0},
  };
  return m;
}

TEST(Metrics, Averages) {
  const Metrics m = sample_metrics();
  EXPECT_DOUBLE_EQ(m.avg_fct(), (4.0 + 3.0 + 2.0 + 6.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.avg_cct(), (4.0 + 2.0 + 6.0) / 3.0);
}

TEST(Metrics, JobsAggregateCoflows) {
  const Metrics m = sample_metrics();
  const auto jobs = m.jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, 1u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].completion, 4.0);
  EXPECT_DOUBLE_EQ(jobs[1].jct(), 6.0);
  EXPECT_DOUBLE_EQ(m.avg_jct(), (4.0 + 6.0) / 2.0);
}

TEST(Metrics, TrafficAccounting) {
  const Metrics m = sample_metrics();
  EXPECT_DOUBLE_EQ(m.total_original_bytes(), 1700.0);
  EXPECT_DOUBLE_EQ(m.total_wire_bytes(), 1400.0);
  EXPECT_NEAR(m.traffic_reduction(), 1.0 - 1400.0 / 1700.0, 1e-12);
}

TEST(Metrics, CdfsAndMakespan) {
  const Metrics m = sample_metrics();
  EXPECT_DOUBLE_EQ(m.fct_cdf().max(), 6.0);
  EXPECT_DOUBLE_EQ(m.cct_cdf().min(), 2.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 8.0);
}

TEST(Metrics, CumulativeJobsPerUnit) {
  const Metrics m = sample_metrics();
  // Job 1 completes at 4, job 2 at 8.
  const auto units = m.cumulative_jobs_per_unit(3.0, 3);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0], 0u);  // by t=3
  EXPECT_EQ(units[1], 1u);  // by t=6
  EXPECT_EQ(units[2], 2u);  // by t=9
}

TEST(Metrics, FctBySizeBand) {
  const Metrics m = sample_metrics();
  EXPECT_DOUBLE_EQ(m.avg_fct_in_size_band(0, 450), 4.5);     // flows 1 & 3
  EXPECT_DOUBLE_EQ(m.avg_fct_in_size_band(450, 550), 2.0);   // flow 2
  EXPECT_DOUBLE_EQ(m.avg_fct_in_size_band(1000, 2000), 0.0);      // none
}

TEST(Metrics, EmptyMetricsAreZero) {
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.avg_fct(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_cct(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_jct(), 0.0);
  EXPECT_DOUBLE_EQ(m.traffic_reduction(), 0.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 0.0);
  EXPECT_TRUE(m.jobs().empty());
}

}  // namespace
}  // namespace swallow::sim
