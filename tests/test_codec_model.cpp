// Codec model tests: the Table II constants, the Eq. 1/Eq. 3 helpers the
// scheduler relies on, and the Table III ratio-vs-size interpolation.
#include <gtest/gtest.h>

#include "codec/codec_model.hpp"

namespace swallow::codec {
namespace {

using common::gbps;
using common::kGB;
using common::kKB;
using common::kMB;
using common::mbps;

TEST(Table2, CarriesPaperRows) {
  const auto& codecs = table2_codecs();
  ASSERT_EQ(codecs.size(), 5u);
  EXPECT_EQ(codecs[0].name, "LZ4");
  EXPECT_DOUBLE_EQ(codecs[0].ratio, 0.6215);
  EXPECT_DOUBLE_EQ(codecs[0].compress_speed, common::mb_per_s(785));
  EXPECT_EQ(codecs[4].name, "Zstandard");
  EXPECT_DOUBLE_EQ(codecs[4].ratio, 0.3477);
}

TEST(Table2, DefaultIsLz4) { EXPECT_EQ(default_codec_model().name, "LZ4"); }

TEST(Table2, LookupIsCaseInsensitive) {
  EXPECT_EQ(codec_model_by_name("snappy").name, "Snappy");
  EXPECT_EQ(codec_model_by_name("ZSTANDARD").name, "Zstandard");
  EXPECT_THROW(codec_model_by_name("gzip"), std::out_of_range);
}

TEST(CodecModel, DeltaCFollowsEq1) {
  // Eq. 1: Delta_c = R * delta * (1 - xi), with R scaled by headroom.
  const CodecModel m{"t", 100.0, 400.0, 0.25};
  EXPECT_DOUBLE_EQ(m.delta_c(0.5, 1.0), 100.0 * 0.5 * 0.75);
  EXPECT_DOUBLE_EQ(m.delta_c(0.5, 0.5), 50.0 * 0.5 * 0.75);
  EXPECT_DOUBLE_EQ(m.delta_c(0.5, 0.0), 0.0);
  // Headroom clamps into [0, 1].
  EXPECT_DOUBLE_EQ(m.delta_c(1.0, 2.0), m.delta_c(1.0, 1.0));
}

TEST(CodecModel, Eq3GateAcrossBandwidths) {
  // LZ4: R(1-xi) = 785 * 0.3785 MB/s ~ 297 MB/s. Compression must win at
  // 100 Mbps and 1 Gbps but lose at 10 Gbps — the exact behaviour the
  // paper uses to explain FVDF ~ SEBF on fast networks.
  const CodecModel& lz4 = default_codec_model();
  EXPECT_TRUE(lz4.beats_bandwidth(mbps(100), 1.0));
  EXPECT_TRUE(lz4.beats_bandwidth(gbps(1), 1.0));
  EXPECT_FALSE(lz4.beats_bandwidth(gbps(10), 1.0));
}

TEST(CodecModel, Eq3GateScalesWithHeadroom) {
  const CodecModel& lz4 = default_codec_model();
  // At gigabit, LZ4 wins with a free CPU but not with 10% headroom.
  EXPECT_TRUE(lz4.beats_bandwidth(gbps(1), 1.0));
  EXPECT_FALSE(lz4.beats_bandwidth(gbps(1), 0.1));
}

TEST(CodecModel, AllTable2CodecsWinAtMegabit) {
  for (const auto& m : table2_codecs())
    EXPECT_TRUE(m.beats_bandwidth(mbps(100), 1.0)) << m.name;
}

TEST(Table3, EndpointsMatchPaper) {
  EXPECT_DOUBLE_EQ(table3_ratio(10 * kKB), 0.6646);
  EXPECT_DOUBLE_EQ(table3_ratio(10 * kGB), 0.2507);
  // Clamped outside the measured range.
  EXPECT_DOUBLE_EQ(table3_ratio(1 * kKB), 0.6646);
  EXPECT_DOUBLE_EQ(table3_ratio(100 * kGB), 0.2507);
}

TEST(Table3, InterpolationHitsMeasuredPoints) {
  for (const auto& [size, ratio] : table3_points())
    EXPECT_NEAR(table3_ratio(size), ratio, 1e-12) << size;
}

TEST(Table3, RatioDecreasesMonotonicallyWithSize) {
  double prev = 1.0;
  for (double size = 10 * kKB; size <= 10 * kGB; size *= 1.5) {
    const double r = table3_ratio(size);
    EXPECT_LE(r, prev + 1e-12) << size;
    prev = r;
  }
}

TEST(Table3, LargeFlowsApproachAsymptote) {
  EXPECT_NEAR(table3_ratio(1 * kGB), table3_ratio(10 * kGB), 0.001);
}

}  // namespace
}  // namespace swallow::codec
