// Sincronia/BSSI tests: the primal-dual ordering on hand-computable
// instances, its 2-approximation flavour (never catastrophically worse
// than SEBF), and end-to-end simulation behaviour.
#include <gtest/gtest.h>

#include "cpu/cpu_model.hpp"
#include "sched/sincronia.hpp"
#include "sim/experiment.hpp"

namespace swallow::sched {
namespace {

fabric::Flow make_flow(fabric::FlowId id, fabric::CoflowId cid,
                       fabric::PortId src, fabric::PortId dst, double bytes) {
  fabric::Flow f;
  f.id = id;
  f.coflow = cid;
  f.src = src;
  f.dst = dst;
  f.raw_remaining = bytes;
  f.original_bytes = bytes;
  return f;
}

TEST(SincroniaOrder, SingleBottleneckOrdersBySize) {
  // Three coflows sharing one egress port with unit weights: the
  // primal-dual reduces to smallest-first (classic SRPT on one machine).
  fabric::Fabric fabric(2, 1.0);
  cpu::ConstantCpu cpu(0.0);
  std::vector<fabric::Flow> flows{make_flow(0, 10, 0, 1, 5.0),
                                  make_flow(1, 11, 0, 1, 1.0),
                                  make_flow(2, 12, 0, 1, 3.0)};
  fabric::Coflow c10, c11, c12;
  c10.id = 10;
  c10.flows = {0};
  c11.id = 11;
  c11.flows = {1};
  c12.id = 12;
  c12.flows = {2};
  SchedContext ctx;
  ctx.fabric = &fabric;
  ctx.cpu = &cpu;
  for (auto& f : flows) ctx.flows.push_back(&f);
  ctx.coflows = {&c10, &c11, &c12};

  const auto order = SincroniaScheduler::bssi_order(ctx);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 11u);  // 1 byte
  EXPECT_EQ(order[1], 12u);  // 3 bytes
  EXPECT_EQ(order[2], 10u);  // 5 bytes
}

TEST(SincroniaOrder, AccountsForBothPortDirections) {
  // C1 looks small by total bytes but hammers one ingress port; C2 spreads
  // the same volume. The bottleneck-first rule must consider per-port load.
  fabric::Fabric fabric(4, 1.0);
  cpu::ConstantCpu cpu(0.0);
  std::vector<fabric::Flow> flows{
      make_flow(0, 1, 0, 1, 4.0), make_flow(1, 1, 0, 2, 4.0),  // C1: 8 on in0
      make_flow(2, 2, 1, 3, 3.0), make_flow(3, 2, 2, 3, 3.0),  // C2: 6 on out3
  };
  fabric::Coflow c1, c2;
  c1.id = 1;
  c1.flows = {0, 1};
  c2.id = 2;
  c2.flows = {2, 3};
  SchedContext ctx;
  ctx.fabric = &fabric;
  ctx.cpu = &cpu;
  for (auto& f : flows) ctx.flows.push_back(&f);
  ctx.coflows = {&c1, &c2};

  // Bottleneck is ingress 0 (8 bytes, all C1): C1 is placed last there.
  const auto order = SincroniaScheduler::bssi_order(ctx);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
}

TEST(SincroniaOrder, HandlesEmptyAndSingle) {
  fabric::Fabric fabric(2, 1.0);
  cpu::ConstantCpu cpu(0.0);
  SchedContext ctx;
  ctx.fabric = &fabric;
  ctx.cpu = &cpu;
  EXPECT_TRUE(SincroniaScheduler::bssi_order(ctx).empty());

  std::vector<fabric::Flow> flows{make_flow(0, 7, 0, 1, 2.0)};
  fabric::Coflow c;
  c.id = 7;
  c.flows = {0};
  ctx.flows = {&flows[0]};
  ctx.coflows = {&c};
  const auto order = SincroniaScheduler::bssi_order(ctx);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 7u);
}

TEST(SincroniaSim, CompetitiveWithSebfOnCct) {
  workload::GeneratorConfig gen;
  gen.num_ports = 10;
  gen.num_coflows = 30;
  gen.size_lo = 1e5;
  gen.size_hi = 1e9;
  gen.size_alpha = 0.15;
  gen.width_hi = 5;
  gen.seed = 19;
  const workload::Trace trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(10, common::mbps(100));
  const cpu::ConstantCpu cpu(0.0);

  auto run = [&](const char* name) {
    auto sched = sim::make_scheduler(name);
    return sim::run_simulation(trace, fabric, cpu, *sched, {});
  };
  const double sincronia = run("SINCRONIA").avg_cct();
  const double sebf = run("SEBF").avg_cct();
  const double fifo = run("FIFO").avg_cct();
  // The ordering guarantee is about total CCT; empirically it tracks SEBF
  // closely and dominates FIFO.
  EXPECT_LT(sincronia, fifo);
  EXPECT_LT(sincronia, sebf * 1.5);
  EXPECT_GT(sincronia, sebf * 0.5);
}

TEST(SincroniaSim, RegistryAliases) {
  EXPECT_EQ(make_baseline("sincronia")->name(), "SINCRONIA");
  EXPECT_EQ(make_baseline("BSSI")->name(), "SINCRONIA");
}

}  // namespace
}  // namespace swallow::sched
