// FVDF core tests: the volume-disposal equations (1-3), expected FCT
// (Eq. 7), TimeCalculation/Gamma_C (Eq. 8), the compression-strategy truth
// table (Pseudocode 1), priority upgrade (Pseudocode 3) and the full
// allocation (Pseudocode 2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/compression_strategy.hpp"
#include "core/fvdf.hpp"
#include "core/online.hpp"
#include "cpu/cpu_model.hpp"

namespace swallow::core {
namespace {

using common::gbps;
using common::mbps;

const codec::CodecModel kUnitCodec{"unit", 4.0, 16.0, 0.5};

fabric::Flow make_flow(fabric::FlowId id, fabric::CoflowId cid, double bytes,
                       fabric::PortId src = 0, fabric::PortId dst = 0) {
  fabric::Flow f;
  f.id = id;
  f.coflow = cid;
  f.src = src;
  f.dst = dst;
  f.raw_remaining = bytes;
  f.original_bytes = bytes;
  return f;
}

TEST(VolumeDisposal, DeltaCFollowsEq1) {
  EXPECT_DOUBLE_EQ(delta_c(kUnitCodec, 0.5, 1.0), 4.0 * 0.5 * 0.5);
  EXPECT_DOUBLE_EQ(delta_c(kUnitCodec, 0.5, 0.5), 2.0 * 0.5 * 0.5);
}

TEST(VolumeDisposal, DeltaTFollowsEq2) {
  EXPECT_DOUBLE_EQ(delta_t(1.0, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(delta_t(125.0, 0.01), 1.25);
}

TEST(ExpectedFct, FollowsEq7WithoutCompression) {
  const fabric::Flow f = make_flow(0, 0, 10.0);
  // Gamma_F = delta + (V - B*delta)/B = V/B.
  EXPECT_DOUBLE_EQ(expected_fct(f, false, kUnitCodec, 1.0, 2.0, 0.1), 5.0);
}

TEST(ExpectedFct, FollowsEq7WithCompression) {
  const fabric::Flow f = make_flow(0, 0, 10.0);
  // Delta_c = 4 * 0.1 * 0.5 = 0.2; Gamma_F = 0.1 + (10 - 0.2)/2 = 5.0.
  EXPECT_DOUBLE_EQ(expected_fct(f, true, kUnitCodec, 1.0, 2.0, 0.1), 5.0);
  // With a bigger slice the compression term matters: delta = 1 ->
  // Delta_c = 2; Gamma_F = 1 + 8/2 = 5; without compression 1 + 8/2 = 5
  // with Delta_t = 2: identical here because R(1-xi) == B.
  const codec::CodecModel faster{"fast", 8.0, 32.0, 0.5};
  // Delta_c = 8*1*0.5 = 4 -> Gamma = 1 + 6/2 = 4 < 5.
  EXPECT_DOUBLE_EQ(expected_fct(f, true, faster, 1.0, 2.0, 1.0), 4.0);
}

TEST(ExpectedFct, ClampsDisposalToVolume) {
  const fabric::Flow f = make_flow(0, 0, 0.1);
  // Disposal exceeds the volume: remaining term is zero, only the slice.
  EXPECT_DOUBLE_EQ(expected_fct(f, false, kUnitCodec, 1.0, 10.0, 1.0), 1.0);
  EXPECT_THROW(expected_fct(f, false, kUnitCodec, 1.0, 0.0, 1.0),
               std::invalid_argument);
}

// ---- Pseudocode 1: compression strategy. ----

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest() : fabric_(2, 1.0), idle_(1.0), busy_(0.0) {}
  fabric::Fabric fabric_;
  cpu::ConstantCpu idle_;
  cpu::ConstantCpu busy_;
};

TEST_F(StrategyTest, EnablesWhenAllConditionsHold) {
  const fabric::Flow f = make_flow(0, 0, 10.0, 0, 1);
  const auto d = compression_strategy(f, kUnitCodec, idle_, fabric_, 0.0);
  // R(1 - xi) = 2 > B = 1.
  EXPECT_TRUE(d.enabled);
  EXPECT_DOUBLE_EQ(d.bandwidth, 1.0);
  EXPECT_DOUBLE_EQ(d.cpu_headroom, 1.0);
}

TEST_F(StrategyTest, DisabledForIncompressiblePayload) {
  fabric::Flow f = make_flow(0, 0, 10.0);
  f.compressible = false;
  EXPECT_FALSE(compression_strategy(f, kUnitCodec, idle_, fabric_, 0).enabled);
}

TEST_F(StrategyTest, DisabledWhenNoRawBytesLeft) {
  fabric::Flow f = make_flow(0, 0, 10.0);
  f.raw_remaining = 0;
  f.compressed_pending = 10.0;
  EXPECT_FALSE(compression_strategy(f, kUnitCodec, idle_, fabric_, 0).enabled);
}

TEST_F(StrategyTest, DisabledWhenCpuBusy) {
  const fabric::Flow f = make_flow(0, 0, 10.0);
  EXPECT_FALSE(compression_strategy(f, kUnitCodec, busy_, fabric_, 0).enabled);
}

TEST_F(StrategyTest, DisabledWhenEq3Fails) {
  const fabric::Flow f = make_flow(0, 0, 10.0);
  const codec::CodecModel slow{"slow", 1.5, 6.0, 0.5};  // R(1-xi)=0.75 < 1
  EXPECT_FALSE(compression_strategy(f, slow, idle_, fabric_, 0).enabled);
}

TEST(Strategy, Lz4GateMatchesPaperBandwidthStory) {
  // LZ4 from Table II: compression on at 100 Mbps and 1 Gbps, off at
  // 10 Gbps (Section VI-B2 of the paper).
  const cpu::ConstantCpu idle(1.0);
  const fabric::Flow f = make_flow(0, 0, 1e9, 0, 1);
  for (const auto& [bw, expect] :
       std::vector<std::pair<common::Bps, bool>>{
           {mbps(100), true}, {gbps(1), true}, {gbps(10), false}}) {
    const fabric::Fabric fabric(2, bw);
    const auto d = compression_strategy(f, codec::default_codec_model(),
                                        idle, fabric, 0.0);
    EXPECT_EQ(d.enabled, expect) << bw;
  }
}

TEST(FlowBottleneck, IsMinOfPortCapacities) {
  const fabric::Fabric fabric({4.0, 8.0}, {6.0, 2.0});
  fabric::Flow f = make_flow(0, 0, 1.0, 0, 1);
  EXPECT_DOUBLE_EQ(flow_bottleneck(f, fabric), 2.0);
  f.dst = 0;
  EXPECT_DOUBLE_EQ(flow_bottleneck(f, fabric), 4.0);
}

// ---- TimeCalculation + allocation. ----

class FvdfContext : public ::testing::Test {
 protected:
  FvdfContext()
      : fabric_(std::vector<common::Bps>(3, 100.0),
                std::vector<common::Bps>(3, 1.0)),
        cpu_(1.0) {
    flows_.push_back(make_flow(0, 1, 4.0, 0, 0));
    flows_.push_back(make_flow(1, 1, 4.0, 1, 1));
    flows_.push_back(make_flow(2, 1, 2.0, 0, 2));
    flows_.push_back(make_flow(3, 2, 2.0, 2, 1));
    flows_.push_back(make_flow(4, 2, 3.0, 1, 2));
    c1_.id = 1;
    c1_.flows = {0, 1, 2};
    c2_.id = 2;
    c2_.flows = {3, 4};
  }

  sched::SchedContext context(const codec::CodecModel* codec) {
    sched::SchedContext ctx;
    ctx.fabric = &fabric_;
    ctx.cpu = &cpu_;
    ctx.slice = 0.01;
    for (auto& f : flows_) ctx.flows.push_back(&f);
    ctx.coflows = {&c1_, &c2_};
    ctx.codec = codec;
    return ctx;
  }

  fabric::Fabric fabric_;
  cpu::ConstantCpu cpu_;
  std::vector<fabric::Flow> flows_;
  fabric::Coflow c1_, c2_;
};

TEST_F(FvdfContext, TimeCalculationComputesGammaPerCoflow) {
  auto ctx = context(nullptr);
  const auto estimates = time_calculation(ctx, false);
  ASSERT_EQ(estimates.size(), 2u);
  // Without compression Gamma_C = max flow volume / B (up to the slice
  // term which cancels): C1 -> 4, C2 -> 3.
  EXPECT_NEAR(estimates[0].gamma, 4.0, 0.02);
  EXPECT_NEAR(estimates[1].gamma, 3.0, 0.02);
  for (const auto& est : estimates)
    for (const bool beta : est.beta) EXPECT_FALSE(beta);
}

TEST_F(FvdfContext, TimeCalculationEnablesCompression) {
  auto ctx = context(&kUnitCodec);
  const auto estimates = time_calculation(ctx, false);
  for (const auto& est : estimates)
    for (const bool beta : est.beta) EXPECT_TRUE(beta);
  // Gamma shrinks: compressed volume ~ half.
  EXPECT_LT(estimates[0].gamma, 4.0);
}

TEST_F(FvdfContext, OnlineModeDividesByPriority) {
  c1_.priority = 10.0;
  auto ctx = context(nullptr);
  const auto estimates = time_calculation(ctx, true);
  EXPECT_NEAR(estimates[0].adjusted_gamma, estimates[0].gamma / 10.0, 1e-9);
  EXPECT_NEAR(estimates[1].adjusted_gamma, estimates[1].gamma, 1e-9);
}

TEST_F(FvdfContext, AllocateServesShortestGammaFirst) {
  auto ctx = context(nullptr);
  const fabric::Allocation a = fvdf_allocate(ctx, false);
  // C2 (Gamma 3) first: its flows get their volume/Gamma rates; port B
  // leftover backfills f1.
  EXPECT_GT(a.rate(3), 0.5);
  EXPECT_NEAR(a.rate(4), 1.0, 1e-6);
  EXPECT_TRUE(feasible(a, ctx.flows, fabric_));
}

TEST_F(FvdfContext, AllocateGivesCompressingFlowsZeroRate) {
  auto ctx = context(&kUnitCodec);
  const fabric::Allocation a = fvdf_allocate(ctx, false);
  for (const auto* f : ctx.flows) {
    EXPECT_TRUE(a.compress(f->id));
    EXPECT_DOUBLE_EQ(a.rate(f->id), 0.0);
  }
}

TEST_F(FvdfContext, PriorityInversionFlipsServiceOrder) {
  // Give C1 (the larger coflow) a huge priority class: it must now be
  // served ahead of C2 on the contended ports.
  c1_.priority = 100.0;
  auto ctx = context(nullptr);
  const fabric::Allocation a = fvdf_allocate(ctx, true);
  EXPECT_NEAR(a.rate(1), 1.0, 1e-6);  // f1 beats f3 on port B
}

TEST(Upgrade, MultipliesEveryPriorityByLogBase) {
  fabric::Coflow a, b;
  a.priority = 1.0;
  b.priority = 2.0;
  sched::SchedContext ctx;
  ctx.coflows = {&a, &b};
  upgrade_priorities(ctx);
  EXPECT_DOUBLE_EQ(a.priority, 1.2);
  EXPECT_DOUBLE_EQ(b.priority, 2.4);
  upgrade_priorities(ctx);
  EXPECT_DOUBLE_EQ(a.priority, 1.44);
}

TEST(Upgrade, GrowsExponentially) {
  fabric::Coflow c;
  sched::SchedContext ctx;
  ctx.coflows = {&c};
  for (int i = 0; i < 50; ++i) upgrade_priorities(ctx);
  EXPECT_NEAR(c.priority, std::pow(1.2, 50), 1e-3);
}

TEST(FvdfFactory, VariantsAndOptions) {
  EXPECT_EQ(make_fvdf("FVDF")->name(), "FVDF");
  EXPECT_EQ(make_fvdf("fvdf-nc")->name(), "FVDF-NC");
  EXPECT_EQ(make_fvdf("FVDF-NOUPGRADE")->name(), "FVDF-NOUPGRADE");
  EXPECT_EQ(make_fvdf("FVDF-NOBACKFILL")->name(), "FVDF-NOBACKFILL");
  EXPECT_THROW(make_fvdf("SEBF"), std::out_of_range);
}

TEST_F(FvdfContext, ServedCoflowsDoNotAge) {
  // Every coflow in the fixture gets some rate (backfill), so priority
  // classes stay flat no matter how many events fire.
  auto sched = make_fvdf("FVDF");
  auto ctx = context(nullptr);
  sched->schedule(ctx);
  sched->schedule(ctx);
  EXPECT_DOUBLE_EQ(c1_.priority, 1.0);
  EXPECT_DOUBLE_EQ(c2_.priority, 1.0);
}

TEST(FvdfScheduler, BlockedCoflowAgesUntilServed) {
  // Two coflows on the same port: the smaller one wins the port, the
  // larger one is starved and must age by logbase per coflow event.
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(0.0);
  fabric::Flow small = make_flow(0, 1, 1.0, 0, 1);
  fabric::Flow big = make_flow(1, 2, 100.0, 0, 1);
  fabric::Coflow c_small, c_big;
  c_small.id = 1;
  c_small.flows = {0};
  c_big.id = 2;
  c_big.flows = {1};
  sched::SchedContext ctx;
  ctx.fabric = &fabric;
  ctx.cpu = &cpu;
  ctx.flows = {&small, &big};
  ctx.coflows = {&c_small, &c_big};

  auto sched = make_fvdf("FVDF");
  sched->schedule(ctx);  // big gets rate 0, recorded as starved
  EXPECT_DOUBLE_EQ(c_big.priority, 1.0);
  sched->schedule(ctx);
  EXPECT_DOUBLE_EQ(c_big.priority, kPriorityLogBase);
  EXPECT_DOUBLE_EQ(c_small.priority, 1.0);
  sched->schedule(ctx);
  EXPECT_DOUBLE_EQ(c_big.priority, kPriorityLogBase * kPriorityLogBase);

  // Non-coflow events (flow completions, compression finished) never age.
  ctx.coflow_event = false;
  sched->schedule(ctx);
  EXPECT_DOUBLE_EQ(c_big.priority, kPriorityLogBase * kPriorityLogBase);

  // The no-upgrade ablation never ages.
  auto no_upgrade = make_fvdf("FVDF-NOUPGRADE");
  ctx.coflow_event = true;
  no_upgrade->schedule(ctx);
  no_upgrade->schedule(ctx);
  EXPECT_DOUBLE_EQ(c_big.priority, kPriorityLogBase * kPriorityLogBase);
}

TEST_F(FvdfContext, NcVariantIgnoresCodec) {
  auto sched = make_fvdf("FVDF-NC");
  auto ctx = context(&kUnitCodec);
  const fabric::Allocation a = sched->schedule(ctx);
  for (const auto* f : ctx.flows) EXPECT_FALSE(a.compress(f->id));
}

}  // namespace
}  // namespace swallow::core
