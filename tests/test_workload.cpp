// Workload-substrate tests: trace IO (roundtrip + malformed input),
// small-flow filtering, the synthetic generator's Fig. 1 calibration,
// HiBench app suites, job grouping and trace statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/apps.hpp"
#include "workload/generator.hpp"
#include "workload/jobs.hpp"
#include "workload/trace.hpp"
#include "workload/trace_stats.hpp"

namespace swallow::workload {
namespace {

using common::kGB;
using common::kKB;
using common::kMB;

Trace tiny_trace() {
  Trace t;
  t.num_ports = 4;
  CoflowSpec a;
  a.id = 1;
  a.job = 10;
  a.arrival = 0.5;
  a.flows = {{0, 1, 1000, true}, {2, 1, 500, false}};
  CoflowSpec b;
  b.id = 2;
  b.job = 10;
  b.arrival = 0.1;
  b.flows = {{3, 0, 2000, true}};
  t.coflows = {a, b};
  return t;
}

TEST(Trace, AggregatesSizes) {
  const Trace t = tiny_trace();
  EXPECT_EQ(t.total_flows(), 3u);
  EXPECT_DOUBLE_EQ(t.total_bytes(), 3500.0);
  EXPECT_DOUBLE_EQ(t.coflows[0].total_bytes(), 1500.0);
  EXPECT_DOUBLE_EQ(t.coflows[0].max_flow_bytes(), 1000.0);
  EXPECT_EQ(t.coflows[0].width(), 2u);
}

TEST(Trace, SortByArrival) {
  Trace t = tiny_trace();
  t.sort_by_arrival();
  EXPECT_EQ(t.coflows[0].id, 2u);
  EXPECT_EQ(t.coflows[1].id, 1u);
}

TEST(TraceIo, RoundtripsThroughText) {
  Trace t = tiny_trace();
  t.sort_by_arrival();
  std::stringstream ss;
  write_trace(ss, t);
  const Trace parsed = parse_trace(ss);
  ASSERT_EQ(parsed.coflows.size(), 2u);
  EXPECT_EQ(parsed.num_ports, 4u);
  EXPECT_EQ(parsed.coflows[0].id, 2u);  // parser sorts by arrival
  EXPECT_NEAR(parsed.coflows[1].arrival, 0.5, 1e-9);
  EXPECT_EQ(parsed.coflows[1].job, 10u);
  ASSERT_EQ(parsed.coflows[1].flows.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.coflows[1].flows[0].bytes, 1000.0);
  EXPECT_FALSE(parsed.coflows[1].flows[1].compressible);
}

TEST(TraceIo, RejectsMalformedInput) {
  const auto expect_bad = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(parse_trace(in), std::runtime_error) << text;
  };
  expect_bad("");                            // missing header
  expect_bad("0 1\n");                       // zero ports
  expect_bad("4 1\n1 0 0\n");                // truncated coflow header
  expect_bad("4 1\n1 0 0 0\n");              // zero flows
  expect_bad("4 1\n1 -5 0 1\n0 1 10 1\n");   // negative arrival
  expect_bad("4 1\n1 0 0 1\n0 9 10 1\n");    // port out of range
  expect_bad("4 1\n1 0 0 1\n0 1 0 1\n");     // zero-size flow
  expect_bad("4 1\n1 0 0 2\n0 1 10 1\n");    // truncated flow list
}

TEST(TraceIo, FileMissingThrows) {
  EXPECT_THROW(parse_trace_file("/nonexistent/trace.txt"),
               std::runtime_error);
}

TEST(FilterSmallestFlows, DropsSmallTail) {
  Trace t;
  t.num_ports = 2;
  for (int i = 0; i < 100; ++i) {
    CoflowSpec c;
    c.id = static_cast<fabric::CoflowId>(i);
    c.arrival = i * 0.01;
    c.flows = {{0, 1, static_cast<common::Bytes>(i + 1), true}};
    t.coflows.push_back(c);
  }
  const Trace kept = filter_smallest_flows(t, 0.95);
  EXPECT_EQ(kept.total_flows(), 95u);
  // Survivors are the largest flows.
  for (const auto& c : kept.coflows)
    for (const auto& f : c.flows) EXPECT_GT(f.bytes, 5.0);
  EXPECT_THROW(filter_smallest_flows(t, 0.0), std::invalid_argument);
  EXPECT_THROW(filter_smallest_flows(t, 1.5), std::invalid_argument);
}

TEST(FilterSmallestFlows, RemovesEmptiedCoflows) {
  const Trace t = tiny_trace();
  const Trace kept = filter_smallest_flows(t, 0.34);  // keep only the 2000
  EXPECT_EQ(kept.total_flows(), 1u);
  EXPECT_EQ(kept.coflows.size(), 1u);
  EXPECT_EQ(kept.coflows[0].id, 2u);
}

TEST(Generator, RespectsStructure) {
  GeneratorConfig config;
  config.num_ports = 10;
  config.num_coflows = 50;
  config.width_lo = 2;
  config.width_hi = 6;
  config.seed = 3;
  const Trace t = generate_trace(config);
  EXPECT_EQ(t.num_ports, 10u);
  EXPECT_EQ(t.coflows.size(), 50u);
  common::Seconds prev = -1;
  for (const auto& c : t.coflows) {
    EXPECT_GE(c.arrival, prev);
    prev = c.arrival;
    EXPECT_GE(c.width(), 2u);
    EXPECT_LE(c.width(), 6u);
    for (const auto& f : c.flows) {
      EXPECT_LT(f.src, 10u);
      EXPECT_LT(f.dst, 10u);
      // The per-coflow base size is in [lo, hi]; each flow adds a mild
      // lognormal partition skew (sigma 0.25 keeps it within ~2.5x).
      EXPECT_GE(f.bytes, config.size_lo / 2.5);
      EXPECT_LE(f.bytes, config.size_hi * 2.5);
    }
  }
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig config;
  config.seed = 11;
  const Trace a = generate_trace(config);
  const Trace b = generate_trace(config);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coflows[i].arrival, b.coflows[i].arrival);
    ASSERT_EQ(a.coflows[i].flows.size(), b.coflows[i].flows.size());
    for (std::size_t j = 0; j < a.coflows[i].flows.size(); ++j)
      EXPECT_DOUBLE_EQ(a.coflows[i].flows[j].bytes,
                       b.coflows[i].flows[j].bytes);
  }
}

TEST(Generator, DistinctSendersWithinCoflow) {
  GeneratorConfig config;
  config.num_ports = 20;
  config.width_lo = 8;
  config.width_hi = 8;
  config.num_coflows = 20;
  const Trace t = generate_trace(config);
  for (const auto& c : t.coflows) {
    std::set<fabric::PortId> srcs;
    for (const auto& f : c.flows) srcs.insert(f.src);
    EXPECT_EQ(srcs.size(), c.flows.size());
  }
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig config;
  config.width_lo = 0;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
  config.width_lo = 5;
  config.width_hi = 3;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
  config.width_hi = 100;
  config.num_ports = 10;
  EXPECT_THROW(generate_trace(config), std::invalid_argument);
}

TEST(Generator, Fig1CalibrationBands) {
  // Fig. 1(a): ~89.49% of flows below 10 GB; Fig. 1(b): >93.03% of bytes
  // from flows above 10 GB. Assert generous bands around both.
  const Trace t = generate_fig1_trace(20000, 42);
  const TraceStats stats = compute_stats(t);
  const double below = stats.count_fraction_below(10 * kGB);
  const double above_mass = stats.byte_fraction_above(10 * kGB);
  EXPECT_GT(below, 0.82);
  EXPECT_LT(below, 0.96);
  EXPECT_GT(above_mass, 0.80);
}

TEST(TraceStats, CountsAndTotals) {
  const TraceStats stats = compute_stats(tiny_trace());
  EXPECT_EQ(stats.num_flows, 3u);
  EXPECT_EQ(stats.num_coflows, 2u);
  EXPECT_DOUBLE_EQ(stats.total_bytes, 3500.0);
  EXPECT_DOUBLE_EQ(stats.flow_sizes.max(), 2000.0);
  EXPECT_DOUBLE_EQ(stats.coflow_widths.max(), 2.0);
  EXPECT_NEAR(stats.count_fraction_below(600), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.byte_fraction_above(600), 3000.0 / 3500.0, 1e-9);
}

TEST(Jobs, GroupsConsecutiveCoflowsByFlowBudget) {
  Trace t;
  t.num_ports = 2;
  for (int i = 0; i < 10; ++i) {
    CoflowSpec c;
    c.id = static_cast<fabric::CoflowId>(i);
    c.arrival = i;
    c.flows.resize(4, FlowSpec{0, 1, 100.0, true, 0});
    t.coflows.push_back(c);
  }
  const auto jobs = group_into_jobs(t, 10);
  // 4 flows per coflow, 10 per job -> 3 coflows per job (12 flows), so 4 jobs.
  EXPECT_EQ(jobs.size(), 4u);
  EXPECT_EQ(t.coflows[0].job, t.coflows[2].job);
  EXPECT_NE(t.coflows[2].job, t.coflows[3].job);
  EXPECT_DOUBLE_EQ(job_arrival(t, t.coflows[3].job), 3.0);
  EXPECT_THROW(job_arrival(t, 999), std::invalid_argument);
  EXPECT_THROW(group_into_jobs(t, 0), std::invalid_argument);
}

TEST(Apps, SuiteVolumesSumToRequested) {
  const auto suite = hibench_suite(100 * kMB);
  ASSERT_EQ(suite.size(), 11u);
  common::Bytes total = 0;
  for (const auto& app : suite) total += app.shuffle_bytes;
  EXPECT_NEAR(total, 100 * kMB, 1.0);
  // Terasort dominates, as in Table I.
  EXPECT_EQ(suite[2].name, "Terasort");
  for (const auto& app : suite)
    EXPECT_LE(app.shuffle_bytes, suite[2].shuffle_bytes + 1e-9);
}

TEST(Apps, MakeCoflowSplitsBytesAcrossFlows) {
  common::Rng rng(5);
  const auto suite = hibench_suite(10 * kMB);
  const auto& app = suite[1];  // Sort: 8x8
  const CoflowSpec c = app.make_coflow(3, 4, 1.5, 16, rng);
  EXPECT_EQ(c.id, 3u);
  EXPECT_EQ(c.job, 4u);
  EXPECT_DOUBLE_EQ(c.arrival, 1.5);
  EXPECT_EQ(c.width(), app.mappers * app.reducers);
  EXPECT_NEAR(c.total_bytes(), app.shuffle_bytes, app.shuffle_bytes * 0.25);
}

TEST(Apps, HibenchTraceInterleavesRounds) {
  const Trace t = hibench_trace(10 * kMB, 3, 16, 0.1, 7);
  EXPECT_EQ(t.coflows.size(), 33u);
  EXPECT_EQ(t.num_ports, 16u);
  common::Seconds prev = -1;
  for (const auto& c : t.coflows) {
    EXPECT_GE(c.arrival, prev);
    prev = c.arrival;
  }
}

}  // namespace
}  // namespace swallow::workload
