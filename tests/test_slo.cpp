// Deadline/SLO robustness layer (DESIGN.md section 12): trace deadlines,
// the DEADLINE-FVDF scheduler, admission control and expiry shedding.
//
// The two identity contracts guarded here:
//   1. Zero deadlines: DEADLINE-FVDF is bit-for-bit FVDF (every coflow lands
//      in the best-effort band whose key is FVDF's exact sort key), across
//      both engine modes and both scheduling paths.
//   2. With deadlines: the incremental (dirty-set + horizon-heap) path is
//      bit-for-bit the full recompute, and the event-driven engine is
//      bit-for-bit the slice-stepped reference — including admission
//      verdicts and mid-flight shedding, which are engine-level and priced
//      at mode-independent instants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "cpu/cpu_model.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace {

using namespace swallow;

workload::Trace deadline_trace(std::uint64_t seed, std::size_t coflows,
                               std::size_t ports, double fraction,
                               double interarrival = 0.3) {
  workload::GeneratorConfig gen;
  gen.num_ports = ports;
  gen.num_coflows = coflows;
  gen.mean_interarrival = interarrival;
  gen.size_lo = 1e5;
  gen.size_hi = 2e8;
  gen.size_alpha = 0.2;
  gen.width_lo = 1;
  gen.width_hi = 5;
  gen.seed = seed;
  gen.deadline_fraction = fraction;
  gen.deadline_ref_bandwidth = common::mbps(150);
  return workload::generate_trace(gen);
}

sim::Metrics run_cfg(const workload::Trace& trace,
                     const fabric::Fabric& fabric,
                     const cpu::CpuProvider& cpu, const std::string& name,
                     sim::SimConfig config, sim::EngineMode mode,
                     bool incremental) {
  config.engine_mode = mode;
  config.incremental_sched = incremental;
  auto sched = sim::make_scheduler(name);  // fresh: schedulers are stateful
  return sim::run_simulation(trace, fabric, cpu, *sched, config);
}

// Exact (bitwise-value) comparison of every record, including SLO fields.
void expect_identical(const sim::Metrics& a, const sim::Metrics& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].completion, b.flows[i].completion) << "flow " << i;
    EXPECT_EQ(a.flows[i].wire_bytes, b.flows[i].wire_bytes) << "flow " << i;
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].completion, b.coflows[i].completion)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].wire_bytes, b.coflows[i].wire_bytes)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].deadline, b.coflows[i].deadline) << "coflow " << i;
    EXPECT_EQ(a.coflows[i].rejected, b.coflows[i].rejected) << "coflow " << i;
  }
  EXPECT_EQ(a.slo.with_deadline, b.slo.with_deadline);
  EXPECT_EQ(a.slo.admitted, b.slo.admitted);
  EXPECT_EQ(a.slo.degraded, b.slo.degraded);
  EXPECT_EQ(a.slo.deferred, b.slo.deferred);
  EXPECT_EQ(a.slo.rejected, b.slo.rejected);
  EXPECT_EQ(a.slo.shed_midflight, b.slo.shed_midflight);
  EXPECT_EQ(a.slo.shed_bytes, b.slo.shed_bytes);
  EXPECT_EQ(a.slo.repriced_shed, b.slo.repriced_shed);
  EXPECT_EQ(a.slo.repriced_demoted, b.slo.repriced_demoted);
}

// ---------------------------------------------------------------------------
// Trace substrate
// ---------------------------------------------------------------------------

TEST(SloTrace, GeneratorRoundTrip) {
  const workload::Trace t = deadline_trace(17, 20, 8, 0.6);
  EXPECT_TRUE(t.has_deadlines());
  std::size_t with = 0;
  for (const auto& c : t.coflows)
    if (c.has_deadline()) ++with;
  EXPECT_GT(with, 0u);
  EXPECT_LT(with, t.coflows.size());

  std::ostringstream out;
  workload::write_trace(out, t);
  std::istringstream in(out.str());
  const workload::Trace back = workload::parse_trace(in);
  ASSERT_EQ(back.coflows.size(), t.coflows.size());
  for (std::size_t i = 0; i < t.coflows.size(); ++i) {
    // Deadlines serialize in milliseconds, so round-trip is near (not bit)
    // exact; the best-effort/deadline split must be preserved exactly.
    EXPECT_EQ(back.coflows[i].has_deadline(), t.coflows[i].has_deadline());
    EXPECT_NEAR(back.coflows[i].deadline, t.coflows[i].deadline,
                1e-5 * std::max(1.0, t.coflows[i].deadline));
  }
}

TEST(SloTrace, ZeroFractionIsByteIdenticalToPreDeadlineGenerator) {
  // deadline_fraction = 0 must not perturb the main RNG stream: the written
  // trace has no `deadlines` directive and matches the historical bytes.
  workload::Trace a = deadline_trace(21, 12, 6, 0.0);
  EXPECT_FALSE(a.has_deadlines());
  std::ostringstream out;
  workload::write_trace(out, a);
  EXPECT_EQ(out.str().find("deadlines"), std::string::npos);

  // Same seed with deadlines on: identical arrivals/sizes, only deadlines
  // differ (the dedicated RNG stream leaves the main draws untouched).
  const workload::Trace b = deadline_trace(21, 12, 6, 0.5);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].arrival, b.coflows[i].arrival) << i;
    ASSERT_EQ(a.coflows[i].flows.size(), b.coflows[i].flows.size());
    for (std::size_t j = 0; j < a.coflows[i].flows.size(); ++j)
      EXPECT_EQ(a.coflows[i].flows[j].bytes, b.coflows[i].flows[j].bytes);
  }
}

// ---------------------------------------------------------------------------
// Admission ladder (unit)
// ---------------------------------------------------------------------------

class AdmissionLadder : public ::testing::Test {
 protected:
  // One flow src 0 -> dst 1 of `bytes`, wrapped in a deadline coflow.
  fabric::Coflow make_coflow(fabric::CoflowId id, common::Bytes bytes,
                             common::Seconds deadline_rel,
                             bool compressible = false) {
    fabric::Flow f;
    f.id = flows_.size();
    f.coflow = id;
    f.src = 0;
    f.dst = 1;
    f.original_bytes = bytes;
    f.raw_remaining = bytes;
    f.compressible = compressible;
    flows_.push_back(f);
    fabric::Coflow c;
    c.id = id;
    c.arrival = 0;
    c.deadline = deadline_rel;
    c.flows.push_back(f.id);
    return c;
  }

  const common::Bps cap_ = common::mbps(100);
  fabric::Fabric fabric_{4, common::mbps(100)};
  cpu::ConstantCpu cpu_{1.0};
  std::vector<fabric::Flow> flows_;
};

TEST_F(AdmissionLadder, HopelessIsRejected) {
  core::AdmissionConfig cfg;
  cfg.enabled = true;
  core::AdmissionController ctl(cfg, fabric_);
  // 10 seconds of wire time against a 1 second deadline: hopeless even on
  // the nominal fabric with the coflow alone.
  const fabric::Coflow c = make_coflow(0, cap_ * 10.0, 1.0);
  const auto d = ctl.admit(c, flows_, fabric_, cpu_, nullptr, 0.0);
  EXPECT_EQ(d.verdict, core::AdmissionVerdict::kReject);
  EXPECT_STREQ(d.reason, "hopeless");
  EXPECT_EQ(ctl.committed_ingress(0), 0u);  // rejects commit nothing
}

TEST_F(AdmissionLadder, FeasibleIsAdmittedAndCommits) {
  core::AdmissionConfig cfg;
  cfg.enabled = true;
  core::AdmissionController ctl(cfg, fabric_);
  const fabric::Coflow c = make_coflow(0, cap_ * 0.1, 1.0);
  const auto d = ctl.admit(c, flows_, fabric_, cpu_, nullptr, 0.0);
  EXPECT_EQ(d.verdict, core::AdmissionVerdict::kAdmit);
  EXPECT_NEAR(d.t_uncompressed, 0.1, 1e-9);
  EXPECT_GT(ctl.committed_ingress(0), 0u);
  EXPECT_GT(ctl.committed_egress(1), 0u);
  ctl.release(c.id);
  EXPECT_EQ(ctl.committed_ingress(0), 0u);
}

TEST_F(AdmissionLadder, DegradedFabricDefers) {
  core::AdmissionConfig cfg;
  cfg.enabled = true;
  core::AdmissionController ctl(cfg, fabric_);
  fabric::Fabric live = fabric_;
  live.set_port_multiplier(0, 0.05);  // brownout at the sender
  // 0.1 s nominal, 2 s on the browned-out link, 0.5 s of slack: not
  // hopeless (nominal fits), infeasible right now -> defer.
  const fabric::Coflow c = make_coflow(0, cap_ * 0.1, 0.5);
  const auto d = ctl.admit(c, flows_, live, cpu_, nullptr, 0.0);
  EXPECT_EQ(d.verdict, core::AdmissionVerdict::kDefer);
  EXPECT_STREQ(d.reason, "infeasible_now");
  EXPECT_EQ(ctl.committed_ingress(0), 0u);  // defers commit nothing
}

TEST_F(AdmissionLadder, SlowCodecDegradesToUncompressed) {
  core::AdmissionConfig cfg;
  cfg.enabled = true;
  core::AdmissionController ctl(cfg, fabric_);
  codec::CodecModel slow;
  slow.name = "SLOW";
  slow.compress_speed = 1e3;  // pathological: encoding alone blows the SLO
  slow.decompress_speed = 1e9;
  slow.ratio = 0.5;
  const fabric::Coflow c =
      make_coflow(0, cap_ * 0.1, 1.0, /*compressible=*/true);
  const auto d = ctl.admit(c, flows_, fabric_, cpu_, &slow, 0.0);
  EXPECT_EQ(d.verdict, core::AdmissionVerdict::kDegrade);
  EXPECT_STREQ(d.reason, "compression_priced_out");
  EXPECT_GT(d.t_compressed, d.t_uncompressed);
}

TEST_F(AdmissionLadder, ShareGuardShedsOverload) {
  core::AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.max_slo_share = 0.5;
  core::AdmissionController ctl(cfg, fabric_);
  // Each coflow needs 40% of the port for its whole slack window; the
  // second would push the promised share past 50% -> shed, best-effort
  // keeps its half of the fabric. Releasing the first re-opens the gate.
  const fabric::Coflow a = make_coflow(0, cap_ * 0.4, 1.0);
  const fabric::Coflow b = make_coflow(1, cap_ * 0.4, 1.0);
  EXPECT_EQ(ctl.admit(a, flows_, fabric_, cpu_, nullptr, 0.0).verdict,
            core::AdmissionVerdict::kAdmit);
  const auto d = ctl.admit(b, flows_, fabric_, cpu_, nullptr, 0.0);
  EXPECT_EQ(d.verdict, core::AdmissionVerdict::kReject);
  EXPECT_STREQ(d.reason, "slo_share_exhausted");
  ctl.release(a.id);
  EXPECT_EQ(ctl.admit(b, flows_, fabric_, cpu_, nullptr, 0.0).verdict,
            core::AdmissionVerdict::kAdmit);
}

TEST_F(AdmissionLadder, BestEffortAlwaysPasses) {
  core::AdmissionConfig cfg;
  cfg.enabled = true;
  core::AdmissionController ctl(cfg, fabric_);
  fabric::Coflow c = make_coflow(0, cap_ * 100.0, 0.0);
  c.deadline = fabric::kNoDeadline;
  const auto d = ctl.admit(c, flows_, fabric_, cpu_, nullptr, 0.0);
  EXPECT_EQ(d.verdict, core::AdmissionVerdict::kAdmit);
  EXPECT_STREQ(d.reason, "best_effort");
  EXPECT_EQ(ctl.committed_ingress(0), 0u);
}

// ---------------------------------------------------------------------------
// Identity contracts
// ---------------------------------------------------------------------------

TEST(SloIdentity, ZeroDeadlinesMatchesFvdfBitForBit) {
  const workload::Trace trace = deadline_trace(5, 18, 10, 0.0);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  for (const bool degrade : {false, true}) {
    sim::SimConfig config;
    config.codec = &codec::default_codec_model();
    config.max_time = 72000.0;
    if (degrade) {
      config.degradation.rate = 0.12;
      config.degradation.seed = 9;
      config.degradation.failure_fraction = 0.3;
    }
    const std::string label = degrade ? " degraded" : "";
    using sim::EngineMode;
    for (const auto& [mode, inc, tag] :
         {std::tuple{EngineMode::kEventDriven, true, "event+inc"},
          std::tuple{EngineMode::kEventDriven, false, "event+full"},
          std::tuple{EngineMode::kSliceStepped, false, "slice"}}) {
      expect_identical(
          run_cfg(trace, fabric, cpu, "FVDF", config, mode, inc),
          run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config, mode, inc),
          std::string(tag) + label);
    }
  }
}

TEST(SloIdentity, IncrementalAndModeParityWithDeadlines) {
  // The hard one: deadlines + admission + shedding + degradation + quantize.
  // Crosses the horizon heap (feasibility flips over time), the admission
  // preemption points and the expiry caps against both oracles.
  for (const std::uint64_t seed : {3ull, 13ull}) {
    const workload::Trace trace = deadline_trace(seed, 22, 10, 0.7);
    const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
    const cpu::ConstantCpu cpu(0.85);
    for (const bool admit : {false, true}) {
      for (const bool degrade : {false, true}) {
        sim::SimConfig config;
        config.codec = &codec::default_codec_model();
        config.quantize_completions = degrade;  // cross, not full product
        config.max_time = 72000.0;
        config.admission.enabled = admit;
        if (degrade) {
          config.degradation.rate = 0.12;
          config.degradation.seed = seed + 2;
          config.degradation.failure_fraction = 0.3;
        }
        const std::string label = "seed=" + std::to_string(seed) +
                                  " admit=" + (admit ? "1" : "0") +
                                  " degrade=" + (degrade ? "1" : "0");
        const sim::Metrics inc =
            run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                    sim::EngineMode::kEventDriven, true);
        const sim::Metrics full =
            run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                    sim::EngineMode::kEventDriven, false);
        const sim::Metrics slice =
            run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                    sim::EngineMode::kSliceStepped, false);
        expect_identical(inc, full, label + " inc-vs-full");
        expect_identical(inc, slice, label + " event-vs-slice");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Behavior
// ---------------------------------------------------------------------------

TEST(SloBehavior, AdmissionIsDeterministic) {
  const workload::Trace trace = deadline_trace(29, 24, 10, 0.8, 0.15);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.admission.enabled = true;
  config.max_time = 72000.0;
  const auto a = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                         sim::EngineMode::kEventDriven, true);
  const auto b = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                         sim::EngineMode::kEventDriven, true);
  expect_identical(a, b, "replay");
  // Accounting invariants: every deadline arrival got exactly one verdict,
  // and the rejected flags in the records match the counters.
  EXPECT_EQ(a.slo.with_deadline,
            a.slo.admitted + a.slo.degraded + a.slo.deferred + a.slo.rejected);
  std::uint64_t flagged = 0;
  for (const auto& c : a.coflows)
    if (c.rejected) ++flagged;
  EXPECT_EQ(flagged, a.slo.rejected + a.slo.shed_midflight);
  for (const auto& c : a.coflows)
    EXPECT_EQ(c.rejected, !c.completed()) << "coflow " << c.id;
}

TEST(SloBehavior, MetFractionDoesNotDegradeAtLowLoadAndWinsUnderLoad) {
  // DEADLINE-FVDF's floor: never worse than FVDF when the fabric is idle
  // enough that every deadline is easy, and at least as good under heavy
  // load (where EDF banding + pacing + best-effort demotion should win).
  const fabric::Fabric fabric(10, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.max_time = 72000.0;
  for (const double interarrival : {1.0, 0.1}) {
    const workload::Trace trace =
        deadline_trace(41, 30, 10, 0.7, interarrival);
    const auto fvdf = run_cfg(trace, fabric, cpu, "FVDF", config,
                              sim::EngineMode::kEventDriven, true);
    const auto dfvdf = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                               sim::EngineMode::kEventDriven, true);
    EXPECT_GE(dfvdf.deadline_met_fraction(), fvdf.deadline_met_fraction())
        << "interarrival=" << interarrival;
  }
}

TEST(SloBehavior, MetFractionMonotoneVsLoad) {
  // More load can only hurt: the lightest arrival rate must meet at least
  // as many deadlines as the heaviest (middle loads may wobble; the
  // endpoints are the contract).
  const fabric::Fabric fabric(10, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.admission.enabled = true;
  config.max_time = 72000.0;
  std::vector<double> fractions;
  for (const double interarrival : {2.0, 0.3, 0.05}) {
    const workload::Trace trace =
        deadline_trace(43, 30, 10, 0.8, interarrival);
    const auto m = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                           sim::EngineMode::kEventDriven, true);
    fractions.push_back(m.deadline_met_fraction());
  }
  EXPECT_GE(fractions.front(), fractions.back());
  EXPECT_GT(fractions.front(), 0.5);  // light load: most deadlines met
}

TEST(SloBehavior, ShedExpiredDropsDoomedVolume) {
  // An impossible deadline that slips past the (loose) admission margin is
  // shed mid-flight: its volume stops consuming the fabric and its records
  // stay incomplete.
  workload::Trace trace;
  trace.num_ports = 2;
  workload::CoflowSpec c;
  c.id = 0;
  c.arrival = 0.0;
  c.deadline = 0.5;  // 4 s of wire time against 0.5 s: hopeless
  workload::FlowSpec f;
  f.src = 0;
  f.dst = 1;
  f.bytes = common::mbps(100) * 4.0;
  f.compressible = false;
  c.flows.push_back(f);
  trace.coflows.push_back(c);

  const fabric::Fabric fabric(2, common::mbps(100));
  const cpu::ConstantCpu cpu(0.9);
  sim::SimConfig config;
  config.admission.enabled = true;
  config.admission.reject_margin = 100.0;  // let it in, watch it expire
  const auto m = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                         sim::EngineMode::kEventDriven, true);
  EXPECT_EQ(m.slo.shed_midflight, 1u);
  EXPECT_GT(m.slo.shed_bytes, 0.0);
  ASSERT_EQ(m.coflows.size(), 1u);
  EXPECT_TRUE(m.coflows[0].rejected);
  EXPECT_FALSE(m.coflows[0].completed());
  EXPECT_EQ(m.deadlines_met(), 0u);
  // The shed happened at the first slice boundary past the deadline, not at
  // the natural 4-second completion: wire bytes stop near 0.5 s of service.
  EXPECT_LT(m.coflows[0].wire_bytes, f.bytes * 0.2);
}

TEST(SloBehavior, MetFractionUnderDegradationAtLeastFvdf) {
  // The fault-fallback contract (DESIGN.md section 12): on a degrading
  // fabric the deadline scheduler must not trail blind FVDF on met
  // fraction. Historically it did — EDF pacing stretched feasible coflows
  // across slack the next brownout erased, and band-3 parking starved
  // transiently infeasible coflows FVDF kept serving. The sticky FVDF
  // fallback plus capacity-change re-pricing closes the gap; expiry
  // shedding can only free capacity FVDF wastes on already-missed work.
  workload::GeneratorConfig gen;
  gen.num_ports = 16;
  gen.num_coflows = 60;
  gen.mean_interarrival = 0.5;
  gen.size_lo = 1e5;
  gen.size_hi = 1e9;
  gen.size_alpha = 0.15;
  gen.width_lo = 1;
  gen.width_hi = 6;
  gen.seed = 2;
  gen.deadline_fraction = 0.7;
  gen.deadline_ref_bandwidth = common::mbps(100);
  gen.deadline_slack_lo = 1.4;
  gen.deadline_slack_hi = 3.0;
  const workload::Trace trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(16, common::mbps(100));
  const cpu::ConstantCpu cpu(0.9);
  for (const double rate : {0.1, 0.2}) {
    sim::SimConfig config;
    config.codec = &codec::default_codec_model();
    config.max_time = 72000.0;
    config.degradation.rate = rate;
    config.degradation.seed = 19;
    config.degradation.failure_fraction = 0.25;
    const auto fvdf = run_cfg(trace, fabric, cpu, "FVDF", config,
                              sim::EngineMode::kEventDriven, true);
    config.admission.enabled = true;
    const auto dfvdf = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                               sim::EngineMode::kEventDriven, true);
    EXPECT_GE(dfvdf.deadline_met_fraction(), fvdf.deadline_met_fraction())
        << "degradation rate=" << rate;
  }
}

TEST(SloBehavior, DegradationRecheckRecoversDeferred) {
  // Under degradation + admission the run must terminate with coherent
  // accounting (deferred coflows either finish, expire or are shed; nothing
  // wedges the engine), across both engine modes.
  const workload::Trace trace = deadline_trace(47, 20, 8, 0.7, 0.2);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.admission.enabled = true;
  config.degradation.rate = 0.2;
  config.degradation.seed = 5;
  config.degradation.failure_fraction = 0.4;
  config.max_time = 72000.0;
  const auto m = run_cfg(trace, fabric, cpu, "DEADLINE-FVDF", config,
                         sim::EngineMode::kEventDriven, true);
  EXPECT_EQ(m.slo.with_deadline,
            m.slo.admitted + m.slo.degraded + m.slo.deferred + m.slo.rejected);
  std::size_t resolved = 0;
  for (const auto& c : m.coflows)
    if (c.completed() || c.rejected) ++resolved;
  EXPECT_EQ(resolved, m.coflows.size());
}

}  // namespace
