// Simulation-engine tests: byte conservation, exact completion timestamps,
// arrival activation, determinism, slice-staleness, allocation validation
// and deadlock detection.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"

namespace swallow::sim {
namespace {

workload::Trace single_flow_trace(double bytes, double arrival = 0.0) {
  workload::Trace t;
  t.num_ports = 2;
  workload::CoflowSpec c;
  c.id = 1;
  c.job = 1;
  c.arrival = arrival;
  c.flows = {{0, 1, bytes, true, 0}};
  t.coflows = {c};
  return t;
}

TEST(Engine, SingleFlowFctIsExactlyBytesOverBandwidth) {
  const auto trace = single_flow_trace(10.0);
  const fabric::Fabric fabric(2, 2.0);
  const cpu::ConstantCpu cpu(0.0);
  auto sched = make_scheduler("FIFO");
  SimConfig config;
  config.slice = 0.01;
  const Metrics m = run_simulation(trace, fabric, cpu, *sched, config);
  ASSERT_EQ(m.flows.size(), 1u);
  EXPECT_NEAR(m.flows[0].fct(), 5.0, 1e-9);
  EXPECT_NEAR(m.avg_cct(), 5.0, 1e-9);
}

TEST(Engine, WireBytesEqualOriginalWithoutCompression) {
  workload::Trace t;
  t.num_ports = 4;
  for (int i = 0; i < 5; ++i) {
    workload::CoflowSpec c;
    c.id = static_cast<fabric::CoflowId>(i);
    c.job = i;
    c.arrival = i * 0.2;
    c.flows = {{static_cast<fabric::PortId>(i % 4),
                static_cast<fabric::PortId>((i + 1) % 4), 100.0 + i, true, 0}};
    t.coflows.push_back(c);
  }
  const fabric::Fabric fabric(4, 50.0);
  const cpu::ConstantCpu cpu(1.0);
  auto sched = make_scheduler("SEBF");
  const Metrics m = run_simulation(t, fabric, cpu, *sched, {});
  EXPECT_NEAR(m.total_wire_bytes(), m.total_original_bytes(), 1e-6);
  EXPECT_NEAR(m.traffic_reduction(), 0.0, 1e-9);
}

TEST(Engine, LateArrivalStartsNoEarlierThanArrival) {
  const auto trace = single_flow_trace(10.0, 3.0);
  const fabric::Fabric fabric(2, 2.0);
  const cpu::ConstantCpu cpu(0.0);
  auto sched = make_scheduler("FIFO");
  const Metrics m = run_simulation(trace, fabric, cpu, *sched, {});
  EXPECT_GE(m.flows[0].completion, 8.0 - 1e-9);
  EXPECT_NEAR(m.flows[0].fct(), 5.0, 0.02);
}

TEST(Engine, DeterministicAcrossRuns) {
  workload::GeneratorConfig gen;
  gen.num_ports = 8;
  gen.num_coflows = 20;
  gen.size_lo = 1e5;
  gen.size_hi = 1e7;
  gen.width_hi = 4;
  gen.seed = 5;
  const auto trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(8, common::mbps(100));
  const cpu::ConstantCpu cpu(0.8);
  auto s1 = make_scheduler("FVDF");
  auto s2 = make_scheduler("FVDF");
  SimConfig config;
  config.codec = &codec::default_codec_model();
  const Metrics a = run_simulation(trace, fabric, cpu, *s1, config);
  const Metrics b = run_simulation(trace, fabric, cpu, *s2, config);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i)
    EXPECT_DOUBLE_EQ(a.flows[i].completion, b.flows[i].completion);
}

TEST(Engine, LongerSlicesNeverImproveCct) {
  workload::GeneratorConfig gen;
  gen.num_ports = 6;
  gen.num_coflows = 15;
  gen.size_lo = 1e6;
  gen.size_hi = 1e8;
  gen.width_hi = 3;
  gen.seed = 9;
  const auto trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(6, common::mbps(100));
  const cpu::ConstantCpu cpu(0.0);
  double prev = 0;
  for (const double slice : {0.01, 0.1, 1.0}) {
    auto sched = make_scheduler("SEBF");
    SimConfig config;
    config.slice = slice;
    const Metrics m = run_simulation(trace, fabric, cpu, *sched, config);
    EXPECT_GE(m.avg_cct(), prev * 0.999) << slice;
    prev = m.avg_cct();
  }
}

TEST(Engine, CompressionReducesWireBytes) {
  const auto trace = single_flow_trace(1000.0);
  const fabric::Fabric fabric(2, 1.0);  // 1 B/s: compression clearly wins
  const cpu::ConstantCpu cpu(1.0);
  auto sched = make_scheduler("FVDF");
  SimConfig config;
  const codec::CodecModel codec{"t", 100.0, 400.0, 0.5};
  config.codec = &codec;
  const Metrics m = run_simulation(trace, fabric, cpu, *sched, config);
  EXPECT_NEAR(m.total_wire_bytes(), 500.0, 1.0);
  EXPECT_NEAR(m.traffic_reduction(), 0.5, 0.01);
  // FCT ~ compression time (1000/100 = 10s) + wire (500/1 = 500s), far
  // below the uncompressed 1000s.
  EXPECT_LT(m.flows[0].fct(), 550.0);
}

TEST(Engine, IncompressibleFlowIsNeverCompressed) {
  auto trace = single_flow_trace(1000.0);
  trace.coflows[0].flows[0].compressible = false;
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(1.0);
  auto sched = make_scheduler("FVDF");
  SimConfig config;
  const codec::CodecModel codec{"t", 100.0, 400.0, 0.5};
  config.codec = &codec;
  const Metrics m = run_simulation(trace, fabric, cpu, *sched, config);
  EXPECT_NEAR(m.total_wire_bytes(), 1000.0, 1e-6);
}

TEST(Engine, CpuStallFallsBackToTransmission) {
  // CPU idle only for the first 0.5 s: compression starts, stalls, and the
  // engine must reschedule to plain transmission instead of deadlocking.
  const auto trace = single_flow_trace(100.0);
  const fabric::Fabric fabric(2, 10.0);
  const cpu::WindowedCpu cpu({{0.0, 0.5}});
  auto sched = make_scheduler("FVDF");
  SimConfig config;
  const codec::CodecModel codec{"t", 40.0, 160.0, 0.5};
  config.codec = &codec;
  const Metrics m = run_simulation(trace, fabric, cpu, *sched, config);
  ASSERT_EQ(m.flows.size(), 1u);
  EXPECT_GT(m.flows[0].completion, 0.0);
  // Partially compressed: wire bytes strictly between 50 and 100.
  EXPECT_GT(m.total_wire_bytes(), 50.0);
  EXPECT_LT(m.total_wire_bytes(), 100.0);
}

namespace {
/// A deliberately broken scheduler that oversubscribes every port.
class OverloadScheduler final : public sched::Scheduler {
 public:
  std::string name() const override { return "overload"; }
  fabric::Allocation schedule(const sched::SchedContext& ctx) override {
    fabric::Allocation a;
    for (const auto* f : ctx.flows)
      a.set_rate(f->id, ctx.fabric->ingress_capacity(f->src) * 2.0);
    return a;
  }
};

/// A scheduler that never allocates anything.
class LazyScheduler final : public sched::Scheduler {
 public:
  std::string name() const override { return "lazy"; }
  fabric::Allocation schedule(const sched::SchedContext&) override {
    return {};
  }
};
}  // namespace

TEST(Engine, RejectsInfeasibleAllocations) {
  const auto trace = single_flow_trace(10.0);
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(0.0);
  OverloadScheduler sched;
  EXPECT_THROW(run_simulation(trace, fabric, cpu, sched, {}), SimError);
}

TEST(Engine, DetectsDeadlock) {
  const auto trace = single_flow_trace(10.0);
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(0.0);
  LazyScheduler sched;
  SimConfig config;
  config.slice = 0.05;  // keep the stall window short
  EXPECT_THROW(run_simulation(trace, fabric, cpu, sched, config), SimError);
}

TEST(Engine, RejectsBadConfigs) {
  const auto trace = single_flow_trace(10.0);
  const fabric::Fabric fabric(2, 1.0);
  const fabric::Fabric small(1, 1.0);
  const cpu::ConstantCpu cpu(0.0);
  auto sched = make_scheduler("FIFO");
  SimConfig config;
  config.slice = 0.0;
  EXPECT_THROW(run_simulation(trace, fabric, cpu, *sched, config),
               std::invalid_argument);
  EXPECT_THROW(run_simulation(trace, small, cpu, *sched, {}),
               std::invalid_argument);
}

TEST(Engine, EmptyTraceYieldsEmptyMetrics) {
  workload::Trace t;
  t.num_ports = 2;
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(0.0);
  auto sched = make_scheduler("FIFO");
  const Metrics m = run_simulation(t, fabric, cpu, *sched, {});
  EXPECT_TRUE(m.flows.empty());
  EXPECT_TRUE(m.coflows.empty());
  EXPECT_DOUBLE_EQ(m.avg_fct(), 0.0);
}

}  // namespace
}  // namespace swallow::sim
