// Golden-file style validation of the Chrome trace_event export: run a real
// FVDF simulation with a Tracer attached, write the trace, and assert the
// output is well-formed JSON with monotonically ordered timestamps, matched
// B/E pairs per (pid, tid) track, and the scheduler-decision events the
// observability layer promises (Γ_C estimates, β decisions, arrivals,
// completions) for every scheduling round.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"

namespace swallow {
namespace {

workload::Trace tiny_trace() {
  workload::GeneratorConfig gen;
  gen.num_ports = 6;
  gen.num_coflows = 10;
  gen.mean_interarrival = 0.5;
  gen.size_lo = 1e6;
  gen.size_hi = 1e8;
  gen.size_alpha = 0.3;
  gen.width_lo = 1;
  gen.width_hi = 3;
  gen.seed = 7;
  return workload::generate_trace(gen);
}

class TraceExport : public ::testing::Test {
 protected:
  TraceExport() : trace_(tiny_trace()), cpu_(0.9) {
    const fabric::Fabric fabric(trace_.num_ports, common::mbps(100));
    auto sched = sim::make_scheduler("FVDF");
    sim::SimConfig config;
    config.codec = &codec::default_codec_model();
    config.sink = &tracer_;
    metrics_ = sim::run_simulation(trace_, fabric, cpu_, *sched, config);

    std::ostringstream oss;
    tracer_.write_chrome_trace(oss);
    doc_ = obs::parse_json(oss.str());
  }

  // Events of a given name, each as a pointer into doc_.
  std::vector<const obs::JsonValue*> events_named(const std::string& name) {
    std::vector<const obs::JsonValue*> out;
    for (const obs::JsonValue& ev : doc_.find("traceEvents")->array)
      if (const obs::JsonValue* n = ev.find("name"); n && n->string == name)
        out.push_back(&ev);
    return out;
  }

  workload::Trace trace_;
  cpu::ConstantCpu cpu_;
  obs::Tracer tracer_;
  sim::Metrics metrics_;
  obs::JsonValue doc_;
};

TEST_F(TraceExport, WellFormedChromeTraceEnvelope) {
  ASSERT_TRUE(doc_.is_object());
  const obs::JsonValue* events = doc_.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), 10u);
  EXPECT_EQ(tracer_.dropped(), 0u);

  // Every event carries the mandatory trace_event fields.
  for (const obs::JsonValue& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_NE(ev.find("name"), nullptr);
    EXPECT_NE(ev.find("ph"), nullptr);
    EXPECT_NE(ev.find("ts"), nullptr);
    EXPECT_NE(ev.find("pid"), nullptr);
    EXPECT_NE(ev.find("tid"), nullptr);
  }

  // The two process_name metadata records label the sim/wall timelines.
  std::set<std::string> process_names;
  for (const obs::JsonValue* m : events_named("process_name"))
    process_names.insert(m->find("args")->find("name")->string);
  EXPECT_TRUE(process_names.count("simulated-time"));
  EXPECT_TRUE(process_names.count("wall-clock"));
}

TEST_F(TraceExport, TimestampsMonotonicallyOrdered) {
  double prev = -1.0;
  for (const obs::JsonValue& ev : doc_.find("traceEvents")->array) {
    if (ev.find("ph")->string == "M") continue;  // metadata pins ts=0
    const double ts = ev.find("ts")->number;
    EXPECT_GE(ts, prev);
    prev = ts;
  }
}

TEST_F(TraceExport, DurationEventsFormMatchedPairs) {
  // Per-(pid, tid) track, 'B' and 'E' must nest like parentheses with
  // matching names — this is what makes the trace loadable in Perfetto.
  std::map<std::pair<double, double>, std::vector<std::string>> stacks;
  int pairs = 0;
  for (const obs::JsonValue& ev : doc_.find("traceEvents")->array) {
    const std::string& ph = ev.find("ph")->string;
    if (ph != "B" && ph != "E") continue;
    auto& stack = stacks[{ev.find("pid")->number, ev.find("tid")->number}];
    if (ph == "B") {
      stack.push_back(ev.find("name")->string);
    } else {
      ASSERT_FALSE(stack.empty()) << "'E' without opening 'B'";
      EXPECT_EQ(stack.back(), ev.find("name")->string);
      stack.pop_back();
      ++pairs;
    }
  }
  for (const auto& [track, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed 'B' on tid " << track.second;
  EXPECT_GT(pairs, 0);  // sim.schedule / fvdf.allocate scopes fired
}

TEST_F(TraceExport, SchedulerDecisionEventsCoverEveryRound) {
  // Each scheduling round that saw live coflows must log Γ_C (gamma),
  // priority, the effective key, and per-flow β decisions at that instant.
  std::set<double> estimate_ts, beta_ts;
  for (const obs::JsonValue* ev : events_named("coflow_estimate")) {
    const obs::JsonValue* args = ev->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->find("gamma"), nullptr);
    EXPECT_NE(args->find("priority"), nullptr);
    EXPECT_NE(args->find("key"), nullptr);
    estimate_ts.insert(ev->find("ts")->number);
  }
  for (const obs::JsonValue* ev : events_named("beta_decision")) {
    EXPECT_NE(ev->find("args")->find("beta"), nullptr);
    beta_ts.insert(ev->find("ts")->number);
  }
  EXPECT_FALSE(estimate_ts.empty());
  EXPECT_FALSE(beta_ts.empty());

  int covered_rounds = 0;
  for (const obs::JsonValue* ev : events_named("schedule_round")) {
    if (ev->find("args")->find("coflows")->number < 1) continue;
    const double ts = ev->find("ts")->number;
    EXPECT_TRUE(estimate_ts.count(ts)) << "round at ts " << ts;
    EXPECT_TRUE(beta_ts.count(ts)) << "round at ts " << ts;
    ++covered_rounds;
  }
  EXPECT_GT(covered_rounds, 0);
}

TEST_F(TraceExport, LifecycleEventsMatchSimulationOutcome) {
  EXPECT_EQ(events_named("coflow_arrival").size(), trace_.coflows.size());
  EXPECT_EQ(events_named("coflow_complete").size(), metrics_.coflows.size());
  EXPECT_EQ(events_named("flow_complete").size(), metrics_.flows.size());

  // Completion instants carry the CCT the metrics recorded.
  for (const obs::JsonValue* ev : events_named("coflow_complete"))
    EXPECT_GT(ev->find("args")->find("cct")->number, 0.0);
}

TEST_F(TraceExport, RegistryAgreesWithTraceEvents) {
  obs::Registry& reg = tracer_.registry();
  EXPECT_EQ(reg.counter("sim.coflows_arrived").value(), trace_.coflows.size());
  EXPECT_EQ(reg.counter("sim.coflows_completed").value(),
            metrics_.coflows.size());
  EXPECT_EQ(reg.counter("sim.schedule_rounds").value(),
            events_named("schedule_round").size());
  // Profiling histograms captured the schedule and advance phases.
  EXPECT_GT(reg.histogram("prof.sim.schedule").count(), 0u);
  EXPECT_GT(reg.histogram("prof.sim.advance").count(), 0u);
  EXPECT_GT(reg.histogram("prof.fvdf.allocate").count(), 0u);
}

TEST_F(TraceExport, JsonlExportParsesLineByLine) {
  std::ostringstream oss;
  tracer_.write_jsonl(oss);
  std::istringstream iss(oss.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(iss, line)) {
    const obs::JsonValue ev = obs::parse_json(line);
    ASSERT_TRUE(ev.is_object());
    ++lines;
  }
  EXPECT_EQ(lines, tracer_.size());
}

}  // namespace
}  // namespace swallow
