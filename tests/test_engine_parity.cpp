// A/B byte-identity between the event-driven and slice-stepped engines.
//
// The event-driven engine fast-forwards across eventless slice boundaries;
// its contract (DESIGN.md section 10) is that Metrics are byte-identical to
// the slice-stepped reference — same FP bit patterns, not "close". Both
// modes evaluate the same canonical per-segment formulas at the same fold
// points, so these tests compare with exact equality across every scheduler
// the registry knows, with quantized completions, degradation, utilization
// sampling and decompression modeling both on and off, and under every CPU
// provider. Also covers run_batch: a parallel sweep must return exactly the
// serial sweep's results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "sim/experiment.hpp"
#include "sim/run_batch.hpp"

namespace {

using namespace swallow;

workload::Trace small_trace(std::uint64_t seed, std::size_t coflows = 14,
                            std::size_t ports = 10) {
  workload::GeneratorConfig gen;
  gen.num_ports = ports;
  gen.num_coflows = coflows;
  gen.mean_interarrival = 0.4;
  gen.size_lo = 1e5;
  gen.size_hi = 2e8;
  gen.size_alpha = 0.2;
  gen.width_lo = 1;
  gen.width_hi = 4;
  gen.seed = seed;
  return workload::generate_trace(gen);
}

sim::Metrics run_mode(const workload::Trace& trace,
                      const fabric::Fabric& fabric,
                      const cpu::CpuProvider& cpu, const std::string& name,
                      sim::SimConfig config, sim::EngineMode mode) {
  config.engine_mode = mode;
  auto sched = sim::make_scheduler(name);  // fresh: schedulers are stateful
  return sim::run_simulation(trace, fabric, cpu, *sched, config);
}

// Exact (bitwise-value) comparison of every record both engines emit.
void expect_identical(const sim::Metrics& a, const sim::Metrics& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].id, b.flows[i].id);
    EXPECT_EQ(a.flows[i].coflow, b.flows[i].coflow);
    EXPECT_EQ(a.flows[i].arrival, b.flows[i].arrival);
    EXPECT_EQ(a.flows[i].completion, b.flows[i].completion) << "flow " << i;
    EXPECT_EQ(a.flows[i].wire_bytes, b.flows[i].wire_bytes) << "flow " << i;
    EXPECT_EQ(a.flows[i].original_bytes, b.flows[i].original_bytes);
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].id, b.coflows[i].id);
    EXPECT_EQ(a.coflows[i].completion, b.coflows[i].completion)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].wire_bytes, b.coflows[i].wire_bytes)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].isolation_bound, b.coflows[i].isolation_bound);
  }
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (std::size_t i = 0; i < a.utilization.size(); ++i) {
    EXPECT_EQ(a.utilization[i].t, b.utilization[i].t) << "sample " << i;
    EXPECT_EQ(a.utilization[i].egress_utilization,
              b.utilization[i].egress_utilization)
        << "sample " << i;
  }
  EXPECT_EQ(a.degradation.capacity_changes, b.degradation.capacity_changes);
  EXPECT_EQ(a.degradation.link_failures, b.degradation.link_failures);
  EXPECT_EQ(a.degradation.stalled_flow_slices,
            b.degradation.stalled_flow_slices);
  EXPECT_EQ(a.degradation.compression_flips,
            b.degradation.compression_flips);
}

void expect_parity(const workload::Trace& trace, const fabric::Fabric& fabric,
                   const cpu::CpuProvider& cpu, const std::string& name,
                   const sim::SimConfig& config, const std::string& label) {
  const sim::Metrics ev = run_mode(trace, fabric, cpu, name, config,
                                   sim::EngineMode::kEventDriven);
  const sim::Metrics sl = run_mode(trace, fabric, cpu, name, config,
                                   sim::EngineMode::kSliceStepped);
  expect_identical(ev, sl, label);
}

TEST(EngineParity, AllSchedulersConstantCpu) {
  const workload::Trace trace = small_trace(5);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(200));
  const cpu::ConstantCpu cpu(0.9);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();

  std::vector<std::string> names = {"FVDF", "FVDF-NC", "FVDF-BLIND",
                                    "DEADLINE-FVDF"};
  for (const std::string& n : sched::baseline_names()) names.push_back(n);
  for (const std::string& name : names)
    expect_parity(trace, fabric, cpu, name, config, name);
}

TEST(EngineParity, QuantizeAndDegradationGrid) {
  const workload::Trace trace = small_trace(7);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.8);
  for (const bool quantize : {false, true}) {
    for (const bool degrade : {false, true}) {
      sim::SimConfig config;
      config.codec = &codec::default_codec_model();
      config.quantize_completions = quantize;
      config.utilization_sample_period = 0.25;
      config.max_time = 36000.0;
      if (degrade) {
        config.degradation.rate = 0.1;
        config.degradation.seed = 11;
        config.degradation.failure_fraction = 0.25;
      }
      const std::string label = std::string("quantize=") +
                                (quantize ? "1" : "0") +
                                " degrade=" + (degrade ? "1" : "0");
      expect_parity(trace, fabric, cpu, "FVDF", config, "FVDF " + label);
      expect_parity(trace, fabric, cpu, "SEBF", config, "SEBF " + label);
    }
  }
}

TEST(EngineParity, DecompressionModeling) {
  const workload::Trace trace = small_trace(9);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(120));
  const cpu::ConstantCpu cpu(0.95);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.model_decompression = true;
  expect_parity(trace, fabric, cpu, "FVDF", config, "decompression");
}

TEST(EngineParity, WindowedCpu) {
  const workload::Trace trace = small_trace(3, 10);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(100));
  // Alternating idle/busy windows: exercises both the constant-headroom
  // fast path and the promise-expiry folds (including busy gaps where
  // assigned compression stalls and forces per-slice rescheduling).
  const cpu::WindowedCpu cpu({{0.0, 1.0}, {2.0, 3.5}, {5.0, 9.0}}, 0.9, 0.0);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.utilization_sample_period = 0.5;
  expect_parity(trace, fabric, cpu, "FVDF", config, "windowed cpu");
}

TEST(EngineParity, BurstyCpu) {
  const workload::Trace trace = small_trace(4, 8);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(100));
  cpu::BurstyCpu::Config bc;
  bc.nodes = 8;
  bc.idle_fraction = 0.5;
  bc.mean_burst = 0.5;
  bc.seed = 21;
  const cpu::BurstyCpu cpu(bc);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  expect_parity(trace, fabric, cpu, "FVDF", config, "bursty cpu");
}

TEST(EngineParity, DeadlockDetectedInBothModes) {
  // A scheduler that never allocates deadlocks the run; both modes must
  // notice after the same simulated stall budget.
  class LazyScheduler final : public sched::Scheduler {
   public:
    std::string name() const override { return "LAZY"; }
    fabric::Allocation schedule(const sched::SchedContext&) override {
      return {};
    }
  };
  const workload::Trace trace = small_trace(2, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(100));
  const cpu::ConstantCpu cpu(0.5);
  for (const sim::EngineMode mode :
       {sim::EngineMode::kEventDriven, sim::EngineMode::kSliceStepped}) {
    sim::SimConfig config;
    config.engine_mode = mode;
    LazyScheduler lazy;
    EXPECT_THROW(sim::run_simulation(trace, fabric, cpu, lazy, config),
                 sim::SimError);
  }
}

TEST(RunBatch, ParallelMatchesSerial) {
  // One job per seed; parallel execution must return the serial results
  // verbatim (same slots, same bits), even oversubscribed.
  const std::size_t jobs = 8;
  auto job = [&](std::size_t i) {
    const workload::Trace trace =
        small_trace(sim::batch_seed(42, i) % 1000, 8, 8);
    const fabric::Fabric fabric(trace.num_ports, common::mbps(100));
    const cpu::ConstantCpu cpu(0.9);
    sim::SimConfig config;
    config.codec = &codec::default_codec_model();
    auto sched = sim::make_scheduler("FVDF");
    const sim::Metrics m =
        sim::run_simulation(trace, fabric, cpu, *sched, config);
    return std::pair<double, double>(m.avg_cct(), m.total_wire_bytes());
  };
  sim::BatchOptions serial;
  serial.threads = 1;
  sim::BatchOptions parallel;
  parallel.threads = 8;
  const auto a = sim::run_batch(jobs, job, serial);
  const auto b = sim::run_batch(jobs, job, parallel);
  ASSERT_EQ(a.size(), jobs);
  ASSERT_EQ(b.size(), jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "job " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "job " << i;
  }
}

TEST(RunBatch, PropagatesExceptions) {
  sim::BatchOptions parallel;
  parallel.threads = 4;
  EXPECT_THROW(sim::run_batch(
                   16,
                   [](std::size_t i) {
                     if (i == 11) throw std::runtime_error("boom");
                     return i;
                   },
                   parallel),
               std::runtime_error);
}

TEST(RunBatch, SeedsAreStableAndDistinct) {
  // batch_seed must not depend on anything but (base, index).
  EXPECT_EQ(sim::batch_seed(1, 0), sim::batch_seed(1, 0));
  EXPECT_NE(sim::batch_seed(1, 0), sim::batch_seed(1, 1));
  EXPECT_NE(sim::batch_seed(1, 0), sim::batch_seed(2, 0));
}

}  // namespace
