// Fabric degradation tests: determinism of the seeded schedule, config
// validation, the engine's capacity-change preemption points, and the
// robustness properties the layer guarantees — every scheduler finishes
// every coflow under failures/brownouts, starved coflows escalate through
// Pseudocode 3, and a disabled schedule leaves the static path untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/online.hpp"
#include "fabric/degradation.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"

namespace swallow {
namespace {

fabric::DegradationConfig issue_config() {
  // The acceptance scenario: episodes on 1% of (port, epoch) cells; when
  // one fires it is a failure a quarter of the time and otherwise mostly
  // a brownout near half of nominal.
  fabric::DegradationConfig config;
  config.rate = 0.01;
  config.seed = 42;
  config.brownout_floor = 0.4;
  config.brownout_ceiling = 0.6;
  return config;
}

fabric::DegradationConfig heavy_config(std::uint64_t seed) {
  // Aggressive schedule used by the completion property: failures are
  // frequent and long relative to the workload, so every scheduler sees
  // stalled flows, recoveries and mid-coflow capacity jumps.
  fabric::DegradationConfig config;
  config.rate = 0.25;
  config.seed = seed;
  config.failure_fraction = 0.5;
  config.epoch = 0.5;
  config.min_duration = 0.1;
  config.max_duration = 0.8;
  return config;
}

workload::Trace small_trace(std::uint64_t seed) {
  workload::GeneratorConfig gen;
  gen.num_ports = 6;
  gen.num_coflows = 12;
  gen.mean_interarrival = 0.3;
  gen.size_lo = 1e5;
  gen.size_hi = 5e7;
  gen.size_alpha = 0.3;
  gen.width_hi = 4;
  gen.seed = seed;
  return workload::generate_trace(gen);
}

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names = sched::baseline_names();
  names.insert(names.end(), {"FVDF", "FVDF-NC", "FVDF-NOUPGRADE",
                             "FVDF-NOBACKFILL", "FVDF-BLIND"});
  return names;
}

TEST(DegradationSchedule, DisabledIsIdentity) {
  const fabric::DegradationSchedule schedule({}, 4);
  EXPECT_FALSE(schedule.enabled());
  for (fabric::PortId p = 0; p < 4; ++p)
    for (double t = 0; t < 20.0; t += 0.7)
      EXPECT_DOUBLE_EQ(schedule.multiplier_at(p, t), 1.0);
  EXPECT_TRUE(std::isinf(schedule.next_change_after(0.0)));
}

TEST(DegradationSchedule, RejectsInvalidConfigs) {
  auto make = [](auto mutate) {
    fabric::DegradationConfig config = issue_config();
    mutate(config);
    return fabric::DegradationSchedule(config, 4);
  };
  EXPECT_THROW(make([](auto& c) { c.rate = -0.1; }), std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.rate = 1.5; }), std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.epoch = 0; }), std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.min_duration = -1; }),
               std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.max_duration = 0.01; }),
               std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.failure_fraction = 2.0; }),
               std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.flap_fraction = 0.9; }),
               std::invalid_argument);  // fractions sum past 1
  EXPECT_THROW(make([](auto& c) { c.brownout_floor = 0.8; }),
               std::invalid_argument);  // floor above ceiling
  EXPECT_THROW(make([](auto& c) { c.brownout_ceiling = 1.5; }),
               std::invalid_argument);
  EXPECT_THROW(make([](auto& c) { c.flap_half_period = 0; }),
               std::invalid_argument);
}

TEST(DegradationSchedule, DeterministicAndOrderIndependent) {
  const fabric::DegradationSchedule a(heavy_config(7), 8);
  const fabric::DegradationSchedule b(heavy_config(7), 8);

  // Same seed: identical multipliers. `a` is queried forward in time and
  // `b` backward, so agreement also proves query-order independence.
  std::vector<double> times;
  for (double t = 0.0; t <= 10.0; t += 0.13) times.push_back(t);
  std::vector<double> forward, backward;
  for (const double t : times)
    for (fabric::PortId p = 0; p < 8; ++p)
      forward.push_back(a.multiplier_at(p, t));
  for (auto it = times.rbegin(); it != times.rend(); ++it)
    for (fabric::PortId p = 8; p-- > 0;)
      backward.push_back(b.multiplier_at(p, *it));
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);

  // Different seed: the schedules diverge somewhere.
  const fabric::DegradationSchedule c(heavy_config(8), 8);
  bool differs = false;
  for (double t = 0; t < 10.0 && !differs; t += 0.13)
    for (fabric::PortId p = 0; p < 8 && !differs; ++p)
      differs = a.multiplier_at(p, t) != c.multiplier_at(p, t);
  EXPECT_TRUE(differs);
}

TEST(DegradationSchedule, MultiplierConstantBetweenChanges) {
  const fabric::DegradationSchedule schedule(heavy_config(3), 4);
  double t = 0.0;
  for (int step = 0; step < 50; ++step) {
    const double next = schedule.next_change_after(t);
    ASSERT_GT(next, t);
    if (!std::isfinite(next)) break;
    // Sample strictly inside (t, next): every port must hold its value.
    const double mid = t + (next - t) * 0.5;
    const double late = t + (next - t) * 0.99;
    for (fabric::PortId p = 0; p < 4; ++p) {
      const double m = schedule.multiplier_at(p, std::nextafter(
                                                     t, std::numeric_limits<
                                                            double>::max()));
      EXPECT_DOUBLE_EQ(schedule.multiplier_at(p, mid), m);
      EXPECT_DOUBLE_EQ(schedule.multiplier_at(p, late), m);
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
    t = next;
  }
}

TEST(DegradationSchedule, EpisodesMatchMultipliers) {
  const fabric::DegradationSchedule schedule(heavy_config(11), 6);
  bool saw_failure = false, saw_brownout = false;
  for (fabric::PortId p = 0; p < 6; ++p) {
    for (const auto& e : schedule.episodes(p, 0.0, 30.0)) {
      EXPECT_LT(e.start, e.end);
      if (e.kind == fabric::DegradationKind::kFailure) {
        saw_failure = true;
        EXPECT_DOUBLE_EQ(e.multiplier, 0.0);
      } else {
        saw_brownout = true;
        EXPECT_GT(e.multiplier, 0.0);
        EXPECT_LT(e.multiplier, 1.0);
      }
      // At the episode midpoint the port is degraded at least this far
      // (flaps may be in a healthy half-period; skip those).
      if (e.kind != fabric::DegradationKind::kFlap) {
        const double mid = 0.5 * (e.start + e.end);
        EXPECT_LE(schedule.multiplier_at(p, mid), e.multiplier + 1e-12);
      }
    }
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_brownout);
}

// The acceptance property: under seeded degradation every scheduler in the
// registry completes every coflow — no hangs (bounded sim time), no
// capacity violations (validate_allocations stays on), no negative
// remaining volume (completion implies fully drained), sane timestamps.
TEST(DegradationEngine, EverySchedulerCompletesUnderDegradation) {
  const workload::Trace trace = small_trace(5);
  const fabric::Fabric fabric(trace.num_ports, 50.0 * 1024 * 1024);
  const cpu::ConstantCpu cpu(0.9);

  sim::SimConfig config;
  config.slice = 0.01;
  config.codec = &codec::default_codec_model();
  config.degradation = heavy_config(13);
  config.max_time = 3600.0;  // a hang fails the test instead of CI

  for (const std::string& name : all_scheduler_names()) {
    SCOPED_TRACE(name);
    const auto scheduler = sim::make_scheduler(name);
    const sim::Metrics m =
        sim::run_simulation(trace, fabric, cpu, *scheduler, config);
    ASSERT_EQ(m.coflows.size(), trace.coflows.size());
    for (const auto& c : m.coflows) {
      EXPECT_TRUE(std::isfinite(c.completion));
      EXPECT_GE(c.cct(), 0.0);
    }
    for (const auto& f : m.flows) {
      EXPECT_TRUE(std::isfinite(f.completion));
      EXPECT_GE(f.fct(), 0.0);
      EXPECT_GE(f.wire_bytes, 0.0);
      EXPECT_LE(f.wire_bytes, f.original_bytes + 1.0);
    }
    EXPECT_GT(m.degradation.capacity_changes, 0u);
  }
}

// Lighter acceptance config (the ISSUE's 1% rate): degradation must perturb
// but not distort — the run completes and the stats land in Metrics.
TEST(DegradationEngine, IssueRateCompletesAndCounts) {
  const workload::Trace trace = small_trace(9);
  const fabric::Fabric fabric(trace.num_ports, 50.0 * 1024 * 1024);
  const cpu::ConstantCpu cpu(0.9);

  sim::SimConfig config;
  config.slice = 0.01;
  config.codec = &codec::default_codec_model();
  config.degradation = issue_config();
  config.max_time = 3600.0;

  // At a 1% rate most seeds see no episode inside this short workload;
  // deterministically pick the first seed whose schedule degrades some
  // port early enough to overlap the run.
  for (std::uint64_t seed = 1; seed <= 256; ++seed) {
    config.degradation.seed = seed;
    const fabric::DegradationSchedule probe(config.degradation,
                                            trace.num_ports);
    bool early = false;
    for (fabric::PortId p = 0; p < trace.num_ports && !early; ++p)
      early = !probe.episodes(p, 0.0, 2.0).empty();
    if (early) break;
  }

  const auto scheduler = sim::make_scheduler("FVDF");
  const sim::Metrics m =
      sim::run_simulation(trace, fabric, cpu, *scheduler, config);
  EXPECT_EQ(m.coflows.size(), trace.coflows.size());
  EXPECT_GT(m.degradation.capacity_changes, 0u);
}

// Starvation freedom under failures: with flows pinned behind failing
// links, FVDF's Pseudocode 3 upgrade must fire (observable through the
// metrics registry) and the stalled coflows must still complete.
TEST(DegradationEngine, StarvedCoflowsEscalateAndComplete) {
  const workload::Trace trace = small_trace(21);
  const fabric::Fabric fabric(trace.num_ports, 50.0 * 1024 * 1024);
  const cpu::ConstantCpu cpu(0.9);

  fabric::DegradationConfig degrade = heavy_config(17);
  degrade.failure_fraction = 1.0;  // every episode kills the link outright
  degrade.flap_fraction = 0.0;

  sim::SimConfig config;
  config.slice = 0.01;
  config.codec = &codec::default_codec_model();
  config.degradation = degrade;
  config.max_time = 3600.0;

  obs::Tracer tracer;
  config.sink = &tracer;

  const auto scheduler = sim::make_scheduler("FVDF");
  const sim::Metrics m =
      sim::run_simulation(trace, fabric, cpu, *scheduler, config);
  EXPECT_EQ(m.coflows.size(), trace.coflows.size());
  EXPECT_GT(m.degradation.link_failures, 0u);
  EXPECT_GT(m.degradation.stalled_flow_slices, 0u);
  EXPECT_GT(tracer.registry().counter("fvdf.priority_upgrades").value(), 0u);
  EXPECT_EQ(tracer.registry().counter("sim.link_failures").value(),
            m.degradation.link_failures);
  EXPECT_EQ(tracer.registry().counter("sim.stalled_flow_slices").value(),
            m.degradation.stalled_flow_slices);
}

// Eq. 3 re-evaluation: LZ4 at 0.9 headroom breaks even near 267 MB/s, so
// on a 400 MB/s fabric browning out to ~50% the compression gate crosses in
// both directions. The engine must re-run the strategy at capacity changes
// and count the reversals.
TEST(DegradationEngine, BrownoutsFlipCompressionDecisions) {
  workload::GeneratorConfig gen;
  gen.num_ports = 4;
  gen.num_coflows = 10;
  gen.mean_interarrival = 0.4;
  gen.size_lo = 5e7;  // large flows: still in flight when a brownout lands
  gen.size_hi = 4e8;
  gen.size_alpha = 0.3;
  gen.width_hi = 3;
  gen.seed = 31;
  const workload::Trace trace = workload::generate_trace(gen);

  const fabric::Fabric fabric(trace.num_ports, 400.0 * 1e6);
  const cpu::ConstantCpu cpu(0.9);

  fabric::DegradationConfig degrade;
  degrade.rate = 0.5;
  degrade.seed = 19;
  degrade.failure_fraction = 0.0;  // brownouts only: cross the gate, not 0
  degrade.flap_fraction = 0.0;
  degrade.epoch = 0.5;
  degrade.min_duration = 0.2;
  degrade.max_duration = 0.6;
  degrade.brownout_floor = 0.4;
  degrade.brownout_ceiling = 0.6;

  sim::SimConfig config;
  config.slice = 0.01;
  config.codec = &codec::default_codec_model();
  config.degradation = degrade;
  config.max_time = 3600.0;

  const auto scheduler = sim::make_scheduler("FVDF");
  const sim::Metrics m =
      sim::run_simulation(trace, fabric, cpu, *scheduler, config);
  EXPECT_EQ(m.coflows.size(), trace.coflows.size());
  EXPECT_GT(m.degradation.capacity_changes, 0u);
  EXPECT_GT(m.degradation.compression_flips, 0u);
}

// A/B guard: rate = 0 must be byte-identical to the static-fabric path —
// identical completion timestamps, wire bytes and record order, with every
// degradation counter at zero.
TEST(DegradationEngine, ZeroRateIsByteIdenticalToStaticPath) {
  const workload::Trace trace = small_trace(3);
  const fabric::Fabric fabric(trace.num_ports, 50.0 * 1024 * 1024);
  const cpu::ConstantCpu cpu(0.9);

  sim::SimConfig static_config;
  static_config.slice = 0.01;
  static_config.codec = &codec::default_codec_model();

  sim::SimConfig zero_config = static_config;
  zero_config.degradation.rate = 0.0;
  zero_config.degradation.seed = 999;  // must not matter at rate 0

  for (const std::string& name : {std::string("FVDF"), std::string("SEBF"),
                                  std::string("FIFO")}) {
    SCOPED_TRACE(name);
    const auto a_sched = sim::make_scheduler(name);
    const auto b_sched = sim::make_scheduler(name);
    const sim::Metrics a =
        sim::run_simulation(trace, fabric, cpu, *a_sched, static_config);
    const sim::Metrics b =
        sim::run_simulation(trace, fabric, cpu, *b_sched, zero_config);

    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
      EXPECT_EQ(a.flows[i].id, b.flows[i].id);
      EXPECT_EQ(a.flows[i].completion, b.flows[i].completion);  // bit-exact
      EXPECT_EQ(a.flows[i].wire_bytes, b.flows[i].wire_bytes);
    }
    ASSERT_EQ(a.coflows.size(), b.coflows.size());
    for (std::size_t i = 0; i < a.coflows.size(); ++i) {
      EXPECT_EQ(a.coflows[i].id, b.coflows[i].id);
      EXPECT_EQ(a.coflows[i].completion, b.coflows[i].completion);
      EXPECT_EQ(a.coflows[i].wire_bytes, b.coflows[i].wire_bytes);
    }
    EXPECT_EQ(b.degradation.capacity_changes, 0u);
    EXPECT_EQ(b.degradation.link_failures, 0u);
    EXPECT_EQ(b.degradation.stalled_flow_slices, 0u);
    EXPECT_EQ(b.degradation.compression_flips, 0u);
  }
}

// Degradation must bite: under the heavy schedule the same workload takes
// longer than on the pristine fabric (sanity check that multipliers
// actually reach the allocator).
TEST(DegradationEngine, DegradationSlowsTheWorkload) {
  const workload::Trace trace = small_trace(5);
  const fabric::Fabric fabric(trace.num_ports, 50.0 * 1024 * 1024);
  const cpu::ConstantCpu cpu(0.9);

  sim::SimConfig config;
  config.slice = 0.01;
  config.codec = &codec::default_codec_model();
  config.max_time = 3600.0;

  const auto a_sched = sim::make_scheduler("FVDF");
  const sim::Metrics pristine =
      sim::run_simulation(trace, fabric, cpu, *a_sched, config);

  config.degradation = heavy_config(13);
  const auto b_sched = sim::make_scheduler("FVDF");
  const sim::Metrics degraded =
      sim::run_simulation(trace, fabric, cpu, *b_sched, config);

  EXPECT_GT(degraded.avg_cct(), pristine.avg_cct());
}

}  // namespace
}  // namespace swallow
