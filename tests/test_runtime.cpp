// Runtime tests: channel, rate limiter, block store, buffer pool, port
// gate ordering, master scheduling, the Table IV SwallowContext API, and
// end-to-end shuffle jobs with payload verification.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/bus.hpp"
#include "runtime/context.hpp"
#include "runtime/shuffle.hpp"

namespace swallow::runtime {
namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

TEST(Channel, FifoDelivery) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_EQ(ch.try_receive(), 2);
  EXPECT_EQ(ch.try_receive(), std::nullopt);
}

TEST(Channel, CloseDrainsThenSignals) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive(), 7);
  EXPECT_EQ(ch.receive(), std::nullopt);
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, ReceiveForTimesOutOnEmptyChannel) {
  Channel<int> ch;
  const auto t0 = Clock::now();
  EXPECT_EQ(ch.receive_for(std::chrono::milliseconds(30)), std::nullopt);
  EXPECT_GT(seconds(t0, Clock::now()), 0.02);
  EXPECT_FALSE(ch.closed());  // timeout, not closure
}

TEST(Channel, ReceiveForReturnsValueBeforeDeadline) {
  Channel<int> ch;
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.send(9);
  });
  const auto t0 = Clock::now();
  EXPECT_EQ(ch.receive_for(std::chrono::seconds(5)), 9);
  EXPECT_LT(seconds(t0, Clock::now()), 1.0);  // did not run out the clock
}

TEST(Channel, ReceiveForDrainsThenSignalsClosure) {
  Channel<int> ch;
  ch.send(1);
  ch.close();
  EXPECT_EQ(ch.receive_for(std::chrono::milliseconds(50)), 1);
  EXPECT_EQ(ch.receive_for(std::chrono::milliseconds(50)), std::nullopt);
}

TEST(Channel, CrossThreadHandoff) {
  Channel<int> ch;
  std::jthread producer([&] {
    for (int i = 0; i < 100; ++i) ch.send(i);
    ch.close();
  });
  int expected = 0;
  while (auto v = ch.receive()) EXPECT_EQ(*v, expected++);
  EXPECT_EQ(expected, 100);
}

TEST(RateLimiter, EnforcesConfiguredRate) {
  RateLimiter limiter(1024 * 1024, 16 * 1024);  // 1 MiB/s, small burst
  limiter.acquire(16 * 1024);                   // drain the initial burst
  const auto t0 = Clock::now();
  limiter.acquire(256 * 1024);  // should take ~0.25 s
  const double elapsed = seconds(t0, Clock::now());
  EXPECT_GT(elapsed, 0.15);
  EXPECT_LT(elapsed, 0.6);
}

TEST(RateLimiter, BurstPassesImmediately) {
  RateLimiter limiter(1024, 64 * 1024);
  const auto t0 = Clock::now();
  limiter.acquire(32 * 1024);  // within the initial bucket
  EXPECT_LT(seconds(t0, Clock::now()), 0.05);
}

TEST(RateLimiter, SetRateTakesEffect) {
  RateLimiter limiter(1024, 1024);
  limiter.set_rate(8 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(limiter.rate(), 8.0 * 1024 * 1024);
  EXPECT_THROW(limiter.set_rate(0), std::invalid_argument);
  EXPECT_THROW(RateLimiter(0), std::invalid_argument);
}

TEST(BlockStore, PutTakeRoundtrip) {
  BlockStore store;
  store.put({1, 2}, {10, 20, 30});
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.resident_bytes(), 3u);
  const codec::Buffer data = store.take({1, 2});
  EXPECT_EQ(data, (codec::Buffer{10, 20, 30}));
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(BlockStore, TakeBlocksUntilPut) {
  BlockStore store;
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    store.put({5, 5}, {42});
  });
  const auto t0 = Clock::now();
  const codec::Buffer data = store.take({5, 5});
  EXPECT_EQ(data.front(), 42);
  EXPECT_GT(seconds(t0, Clock::now()), 0.01);
}

TEST(BlockStore, TakeForTimesOutWhenBlockNeverArrives) {
  BlockStore store;
  const auto t0 = Clock::now();
  EXPECT_EQ(store.take_for({9, 9}, 0.05), std::nullopt);
  EXPECT_GT(seconds(t0, Clock::now()), 0.03);
}

TEST(BlockStore, TakeForReturnsBlockBeforeDeadline) {
  BlockStore store;
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    store.put({5, 6}, {42});
  });
  const auto data = store.take_for({5, 6}, 5.0);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->front(), 42);
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(BlockStore, ClearWipesEverything) {
  BlockStore store;
  store.put({1, 1}, {1, 2});
  store.put({2, 1}, {3});
  EXPECT_EQ(store.clear(), 3u);
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(BlockStore, DropCoflowRemovesAllItsBlocks) {
  BlockStore store;
  store.put({1, 1}, {1, 1});
  store.put({1, 2}, {2, 2, 2});
  store.put({2, 1}, {3});
  EXPECT_EQ(store.drop_coflow(1), 5u);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.drop_coflow(99), 0u);
}

TEST(BufferPool, TracksAllocationAndReclaim) {
  BufferPool pool;
  auto b1 = pool.allocate(1000);
  auto b2 = pool.allocate(500);
  pool.release(std::move(b1));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.bytes_allocated, 1500u);
  EXPECT_EQ(stats.bytes_released, 1000u);
  EXPECT_GE(stats.reclaim_time, 0.0);
  pool.release(std::move(b2));
  pool.reset_stats();
  EXPECT_EQ(pool.stats().allocations, 0u);
}

TEST(BufferPool, ReclaimTimeGrowsWithBytes) {
  BufferPool pool;
  for (int i = 0; i < 50; ++i) pool.release(pool.allocate(1 << 20));
  const double big = pool.stats().reclaim_time;
  pool.reset_stats();
  for (int i = 0; i < 50; ++i) pool.release(pool.allocate(1 << 10));
  EXPECT_GT(big, pool.stats().reclaim_time);
}

TEST(PortGate, LowerRankGoesFirst) {
  PortGate gate;
  gate.acquire(5);  // hold the port
  std::vector<int> order;
  std::mutex order_mutex;
  std::jthread late([&] {
    gate.acquire(10);
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(10);
    }
    gate.release();
  });
  std::jthread early([&] {
    // Give the rank-10 waiter time to queue up first.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.acquire(1);
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(1);
    }
    gate.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.release();  // both waiters queued: rank 1 must win
  late.join();
  early.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 10);
}

ClusterConfig fast_config(bool compress = true) {
  ClusterConfig config;
  config.num_workers = 4;
  config.nic_rate = 512.0 * 1024 * 1024;  // fast NIC keeps tests quick
  config.smart_compress = compress;
  // A model whose Eq. 3 gate stays open at this NIC speed.
  config.codec_model = codec::CodecModel{"test", 4e9, 8e9, 0.5};
  return config;
}

TEST(Master, AddScheduleRemoveLifecycle) {
  Cluster cluster(fast_config());
  Master& master = cluster.master();
  CoflowInfo info;
  info.flows = {{1, 0, 0, 1, 1000, true}, {2, 0, 0, 2, 500, true}};
  const CoflowRef ref = master.add(std::move(info));
  EXPECT_EQ(master.active_coflows(), 1u);

  const SchedResult result = master.scheduling({ref});
  ASSERT_EQ(result.order.size(), 1u);
  EXPECT_EQ(result.order[0], ref);
  EXPECT_TRUE(result.decisions.at(1).compress);
  master.alloc(result);
  EXPECT_EQ(master.rank_of(ref), 0u);
  EXPECT_TRUE(master.decision_of(1).compress);

  master.remove(ref);
  EXPECT_EQ(master.active_coflows(), 0u);
  EXPECT_FALSE(master.decision_of(1).compress);
  EXPECT_THROW(master.scheduling({ref}), std::out_of_range);
}

TEST(Master, RemoveLeavesNoStaleRanksOrDecisions) {
  Cluster cluster(fast_config());
  Master& master = cluster.master();
  CoflowInfo a, b;
  a.flows = {{1, 0, 0, 1, 1000, true}, {2, 0, 0, 2, 500, true}};
  b.flows = {{3, 0, 1, 2, 800, true}};
  const CoflowRef ra = master.add(std::move(a));
  const CoflowRef rb = master.add(std::move(b));
  master.alloc(master.scheduling({ra, rb}));
  EXPECT_EQ(master.decision_count(), 3u);
  EXPECT_EQ(master.rank_count(), 2u);

  master.remove(ra);
  EXPECT_EQ(master.decision_count(), 1u);  // only coflow b's flow remains
  EXPECT_EQ(master.rank_count(), 1u);
  master.remove(rb);
  EXPECT_EQ(master.decision_count(), 0u);
  EXPECT_EQ(master.rank_count(), 0u);
}

TEST(Master, StaleAllocAfterRemoveDoesNotResurrectState) {
  Cluster cluster(fast_config());
  Master& master = cluster.master();
  CoflowInfo info;
  info.flows = {{1, 0, 0, 1, 1000, true}};
  const CoflowRef ref = master.add(std::move(info));
  const SchedResult result = master.scheduling({ref});
  master.remove(ref);
  // A SchedResult computed before remove() must not leak entries back in.
  master.alloc(result);
  EXPECT_EQ(master.decision_count(), 0u);
  EXPECT_EQ(master.rank_count(), 0u);
}

TEST(Master, FvdfOrdersSmallerExpectedCompletionFirst) {
  Cluster cluster(fast_config());
  Master& master = cluster.master();
  CoflowInfo big, small;
  big.flows = {{1, 0, 0, 1, 10'000'000, true}};
  small.flows = {{2, 0, 0, 1, 1'000, true}};
  const CoflowRef big_ref = master.add(std::move(big));
  const CoflowRef small_ref = master.add(std::move(small));
  const SchedResult result = master.scheduling({big_ref, small_ref});
  ASSERT_EQ(result.order.size(), 2u);
  EXPECT_EQ(result.order[0], small_ref);
  EXPECT_EQ(result.order[1], big_ref);
}

TEST(Master, CompressionGateClosesOnFastNic) {
  ClusterConfig config = fast_config();
  // Table II LZ4 against a NIC faster than R(1-xi).
  config.codec_model = codec::default_codec_model();
  config.nic_rate = common::gbps(10);
  Cluster cluster(config);
  CoflowInfo info;
  info.flows = {{1, 0, 0, 1, 1000, true}};
  const CoflowRef ref = cluster.master().add(std::move(info));
  const SchedResult result = cluster.master().scheduling({ref});
  EXPECT_FALSE(result.decisions.at(1).compress);
}

TEST(Master, SmartCompressOffDisablesCompression) {
  Cluster cluster(fast_config(/*compress=*/false));
  CoflowInfo info;
  info.flows = {{1, 0, 0, 1, 1000, true}};
  const CoflowRef ref = cluster.master().add(std::move(info));
  const SchedResult result = cluster.master().scheduling({ref});
  EXPECT_FALSE(result.decisions.at(1).compress);
}

TEST(Context, PushPullRoundtripCompressed) {
  Cluster cluster(fast_config());
  SwallowContext ctx(cluster);
  common::Rng rng(3);
  const codec::Buffer payload = codec::text_bytes(50'000, rng);

  cluster.worker(0).register_flow({1, 0, 0, 1, payload.size(), true});
  auto flows = ctx.hook(0);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(ctx.hook(0).empty());  // hook drains

  const CoflowRef ref = ctx.add(ctx.aggregate(std::move(flows)));
  ctx.alloc(ctx.scheduling({ref}));

  ctx.push(ref, 1, payload, 0, 1);
  // Compression happened: wire bytes below raw bytes.
  EXPECT_LT(cluster.total_wire_bytes(), payload.size());
  EXPECT_EQ(cluster.total_raw_bytes(), payload.size());

  const codec::Buffer restored = ctx.pull(ref, 1, 1);
  EXPECT_EQ(restored, payload);
  ctx.remove(ref);
  EXPECT_EQ(cluster.worker(1).store().block_count(), 0u);
}

TEST(Context, PushWithoutCompressionKeepsBytes) {
  Cluster cluster(fast_config(/*compress=*/false));
  SwallowContext ctx(cluster);
  common::Rng rng(4);
  const codec::Buffer payload = codec::text_bytes(20'000, rng);
  cluster.worker(0).register_flow({1, 0, 0, 1, payload.size(), true});
  const CoflowRef ref = ctx.add(ctx.aggregate(ctx.hook(0)));
  ctx.alloc(ctx.scheduling({ref}));
  ctx.push(ref, 1, payload, 0, 1);
  EXPECT_GE(cluster.total_wire_bytes(), payload.size());
  EXPECT_EQ(ctx.pull(ref, 1, 1), payload);
}

TEST(Shuffle, JobRoundtripsAndReducesTraffic) {
  Cluster cluster(fast_config());
  ShuffleJobConfig job;
  job.app = codec::app_by_name("Sort");
  job.mappers = 3;
  job.reducers = 2;
  job.bytes_per_partition = 32 * 1024;
  const ShuffleReport report = run_shuffle_job(cluster, job);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.raw_bytes, 3u * 2u * 32u * 1024u);
  EXPECT_LT(report.wire_bytes, report.raw_bytes);
  // Sort's Table I ratio ~ 0.25: expect substantial reduction.
  EXPECT_GT(report.traffic_reduction(), 0.5);
  EXPECT_GT(report.jct, 0.0);
  EXPECT_GE(report.map_pool.releases, 6u);
  EXPECT_GE(report.reduce_pool.releases, 6u);
}

TEST(Shuffle, CompressionOffMovesAllBytes) {
  Cluster cluster(fast_config(/*compress=*/false));
  ShuffleJobConfig job;
  job.app = codec::app_by_name("Sort");
  job.mappers = 2;
  job.reducers = 2;
  job.bytes_per_partition = 16 * 1024;
  const ShuffleReport report = run_shuffle_job(cluster, job);
  EXPECT_TRUE(report.verified);
  EXPECT_GE(report.wire_bytes, report.raw_bytes);  // container overhead
  EXPECT_LT(report.traffic_reduction(), 0.01);
}

TEST(Shuffle, ConcurrentJobsShareTheCluster) {
  Cluster cluster(fast_config());
  ShuffleJobConfig job;
  job.app = codec::app_by_name("Pagerank");
  job.mappers = 2;
  job.reducers = 2;
  job.bytes_per_partition = 8 * 1024;
  ShuffleReport a, b;
  {
    std::jthread j1([&] { a = run_shuffle_job(cluster, job); });
    ShuffleJobConfig job2 = job;
    job2.seed = 2;
    std::jthread j2([&] { b = run_shuffle_job(cluster, job2); });
  }
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  EXPECT_EQ(cluster.master().active_coflows(), 0u);
  // Full lifecycle leaves no master bookkeeping behind.
  EXPECT_EQ(cluster.master().decision_count(), 0u);
  EXPECT_EQ(cluster.master().rank_count(), 0u);
}

TEST(Shuffle, ResultStageReplicatesOutputs) {
  Cluster cluster(fast_config());
  ShuffleJobConfig job;
  job.app = codec::app_by_name("Sort");
  job.mappers = 2;
  job.reducers = 2;
  job.bytes_per_partition = 16 * 1024;
  job.result_replicas = 2;
  const ShuffleReport report = run_shuffle_job(cluster, job);
  EXPECT_TRUE(report.verified);
  EXPECT_GT(report.result_time, 0.0);
  // Raw bytes triple: shuffle + two replica writes of the same volume.
  EXPECT_EQ(report.raw_bytes, 3u * 2u * 2u * 16u * 1024u);
  // Replicated traffic is compressed too.
  EXPECT_GT(report.traffic_reduction(), 0.5);
  // remove() cleaned both coflows' blocks everywhere.
  for (WorkerId w = 0; w < cluster.size(); ++w)
    EXPECT_EQ(cluster.worker(w).store().block_count(), 0u) << w;
}

TEST(Shuffle, RejectsZeroTasks) {
  Cluster cluster(fast_config());
  ShuffleJobConfig job;
  job.mappers = 0;
  EXPECT_THROW(run_shuffle_job(cluster, job), std::invalid_argument);
}

TEST(Cluster, RejectsZeroWorkers) {
  ClusterConfig config;
  config.num_workers = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

}  // namespace
}  // namespace swallow::runtime
