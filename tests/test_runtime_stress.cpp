// Concurrency stress for the runtime primitives: many-thread port-gate
// ordering, rate-limiter aggregate accuracy under contention, block-store
// hammering, and a many-job shuffle storm with full payload verification.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "runtime/context.hpp"
#include "runtime/shuffle.hpp"

namespace swallow::runtime {
namespace {

using Clock = std::chrono::steady_clock;

TEST(PortGateStress, AllWaitersEventuallyPass) {
  PortGate gate;
  constexpr int kThreads = 16;
  std::atomic<int> inside{0};
  std::atomic<int> done{0};
  std::atomic<bool> overlap{false};
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        for (int round = 0; round < 20; ++round) {
          gate.acquire(static_cast<std::uint64_t>((i * 7 + round) % 5));
          if (inside.fetch_add(1) != 0) overlap = true;  // mutual exclusion
          std::this_thread::yield();
          inside.fetch_sub(1);
          gate.release();
        }
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), kThreads);
  EXPECT_FALSE(overlap.load());
}

TEST(PortGateStress, PriorityHoldsUnderChurn) {
  // A continuous stream of high-rank (low-priority) holders; a late
  // low-rank arrival must get through within a few handoffs.
  PortGate gate;
  std::atomic<bool> vip_done{false};
  std::atomic<int> handoffs_after_vip_queued{0};
  std::atomic<bool> vip_queued{false};
  std::jthread churn([&] {
    for (int i = 0; i < 4000 && !vip_done; ++i) {
      gate.acquire(100);
      if (vip_queued && !vip_done) handoffs_after_vip_queued.fetch_add(1);
      gate.release();
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  vip_queued = true;
  gate.acquire(1);
  vip_done = true;
  gate.release();
  churn.join();
  // The VIP can lose at most the in-flight acquisition plus scheduler
  // jitter — it must not wait out the whole churn stream.
  EXPECT_LT(handoffs_after_vip_queued.load(), 3000);
}

TEST(RateLimiterStress, AggregateThroughputMatchesRate) {
  constexpr double kRate = 8.0 * 1024 * 1024;  // 8 MiB/s
  RateLimiter limiter(kRate, 64 * 1024);
  constexpr int kThreads = 6;
  constexpr std::size_t kChunk = 64 * 1024;
  constexpr int kChunksPerThread = 8;

  const auto t0 = Clock::now();
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&] {
        for (int c = 0; c < kChunksPerThread; ++c) limiter.acquire(kChunk);
      });
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  const double bytes = static_cast<double>(kThreads) * kChunksPerThread *
                       static_cast<double>(kChunk);
  // Expected ~ (bytes - burst) / rate = (3 MiB - 64 KiB) / 8 MiB/s ~ 0.37 s.
  const double expected = (bytes - 64 * 1024) / kRate;
  EXPECT_GT(elapsed, expected * 0.7);
  EXPECT_LT(elapsed, expected * 2.5);
}

TEST(BlockStoreStress, ConcurrentPutTake) {
  BlockStore store;
  constexpr int kProducers = 4;
  constexpr int kBlocksEach = 50;
  std::atomic<std::size_t> received_bytes{0};
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (int b = 0; b < kBlocksEach; ++b) {
          codec::Buffer data(static_cast<std::size_t>(p + 1) * 10 + b % 7,
                             static_cast<std::uint8_t>(b));
          store.put({static_cast<CoflowRef>(p), static_cast<BlockId>(b)},
                    std::move(data));
        }
      });
    }
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (int b = 0; b < kBlocksEach; ++b) {
          const codec::Buffer data =
              store.take({static_cast<CoflowRef>(p), static_cast<BlockId>(b)});
          received_bytes.fetch_add(data.size());
        }
      });
    }
  }
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_GT(received_bytes.load(), 0u);
}

TEST(ShuffleStress, ManyConcurrentJobsAllVerify) {
  ClusterConfig config;
  config.num_workers = 6;
  config.nic_rate = 256.0 * 1024 * 1024;
  config.codec_model =
      codec::CodecModel{"t", 4e9, 8e9, 0.5};  // gate open at this NIC
  Cluster cluster(config);

  constexpr int kJobs = 8;
  std::vector<ShuffleReport> reports(kJobs);
  {
    std::vector<std::jthread> jobs;
    for (int j = 0; j < kJobs; ++j) {
      jobs.emplace_back([&, j] {
        ShuffleJobConfig job;
        job.app = codec::table1_apps()[static_cast<std::size_t>(j) % 11];
        job.mappers = 2 + j % 3;
        job.reducers = 1 + j % 2;
        job.bytes_per_partition = 8 * 1024 + 1024 * (j % 5);
        job.seed = static_cast<std::uint64_t>(j + 1);
        reports[static_cast<std::size_t>(j)] = run_shuffle_job(cluster, job);
      });
    }
  }
  for (const auto& report : reports) {
    EXPECT_TRUE(report.verified) << report.app;
    EXPECT_GT(report.jct, 0.0);
  }
  EXPECT_EQ(cluster.master().active_coflows(), 0u);
  // Traffic accounting is globally consistent.
  EXPECT_GT(cluster.total_raw_bytes(), 0u);
  EXPECT_LT(cluster.total_wire_bytes(), cluster.total_raw_bytes());
}

}  // namespace
}  // namespace swallow::runtime
