// Unit tests for the common substrate: RNG, distributions, statistics,
// CDFs, histograms, table formatting and flags.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cdf.hpp"
#include "common/flags.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace swallow::common {
namespace {

TEST(Units, NetworkSpeedsAreDecimalBits) {
  EXPECT_DOUBLE_EQ(mbps(100), 100e6 / 8.0);
  EXPECT_DOUBLE_EQ(gbps(10), 10e9 / 8.0);
}

TEST(Units, CompressionSpeedsAreBinaryBytes) {
  EXPECT_DOUBLE_EQ(mb_per_s(785), 785.0 * 1024 * 1024);
}

TEST(Units, SizeLiterals) {
  EXPECT_DOUBLE_EQ(kGB, 1024.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(to_gb(10 * kGB), 10.0);
  EXPECT_DOUBLE_EQ(ms(10), 0.010);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1e3, 1e9, 0.3);
    EXPECT_GE(v, 1e3);
    EXPECT_LE(v, 1e9 * (1 + 1e-9));
  }
}

TEST(Rng, BoundedParetoIsHeavyTailedForSmallAlpha) {
  Rng rng(19);
  // With alpha < 1 a small fraction of samples carries most of the mass.
  std::vector<double> v;
  double total = 0;
  for (int i = 0; i < 20000; ++i) {
    v.push_back(rng.bounded_pareto(1e3, 1e9, 0.2));
    total += v.back();
  }
  std::sort(v.begin(), v.end());
  double top_decile = 0;
  for (std::size_t i = v.size() * 9 / 10; i < v.size(); ++i) top_decile += v[i];
  EXPECT_GT(top_decile / total, 0.7);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.lognormal(1.0, 0.5));
  EXPECT_NEAR(percentile(v, 0.5), std::exp(1.0), 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Zipf, RanksWithinRange) {
  Rng rng(41);
  Zipf zipf(100, 1.1);
  for (int i = 0; i < 10000; ++i) {
    const auto r = zipf.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(Zipf, RankOneIsMostFrequent) {
  Rng rng(43);
  Zipf zipf(50, 1.2);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument); }

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> data{1.5, 2.5, -3.0, 4.0, 0.0};
  double sum = 0;
  for (double x : data) {
    stats.add(x);
    sum += x;
  }
  EXPECT_EQ(stats.count(), data.size());
  EXPECT_DOUBLE_EQ(stats.sum(), sum);
  EXPECT_NEAR(stats.mean(), sum / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  double var = 0;
  for (double x : data) var += (x - stats.mean()) * (x - stats.mean());
  EXPECT_NEAR(stats.variance(), var / 4.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bucket 0
  h.add(0.3);   // bucket 1
  h.add(0.99);  // bucket 3
  h.add(-5.0);  // clamps to 0
  h.add(7.0);   // clamps to 3
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 0.5);
}

TEST(Cdf, AtAndQuantile) {
  Cdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 4.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.5);
}

TEST(Cdf, MassFractionAbove) {
  Cdf cdf({1.0, 1.0, 8.0});
  EXPECT_NEAR(cdf.mass_fraction_above(2.0), 0.8, 1e-12);
  EXPECT_NEAR(cdf.mass_fraction_above(0.0), 1.0, 1e-12);
  EXPECT_NEAR(cdf.mass_fraction_above(100.0), 0.0, 1e-12);
}

TEST(Cdf, IncrementalAddMatchesConstructor) {
  Cdf a({3.0, 1.0, 2.0});
  Cdf b;
  b.add(3.0);
  b.add(1.0);
  b.add(2.0);
  b.finalize();
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(Cdf, PointsAreMonotone) {
  Cdf cdf({5.0, 2.0, 9.0, 1.0, 7.0});
  const auto pts = cdf.points(5);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Cdf, EmptyThrows) {
  Cdf cdf;
  EXPECT_THROW(cdf.at(1.0), std::logic_error);
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
}

TEST(Table, AlignsColumnsAndSeparators) {
  Table t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| Name   | Value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableFormatters, Render) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.4841), "48.41%");
  EXPECT_EQ(fmt_speedup(1.47), "1.47x");
  EXPECT_EQ(fmt_int(79913), "79,913");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
  EXPECT_EQ(fmt_bytes(1536), "1.50 KB");
  EXPECT_EQ(fmt_bytes(2.5 * kGB), "2.50 GB");
}

TEST(Flags, ParsesKeysAndDefaults) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name=test", "--verbose"};
  Flags flags(4, argv);
  EXPECT_TRUE(flags.has("alpha"));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.get("name", ""), "test");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("missing", 42), 42);
}

TEST(Flags, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Flags(2, argv), std::invalid_argument);
}

TEST(Logging, LevelGatesMessages) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no way to capture stderr here;
  // this asserts the level round-trips and the call is safe).
  log_info("suppressed");
  log_warn("suppressed");
  log_error("visible but harmless in test output");
  set_log_level(before);
}

}  // namespace
}  // namespace swallow::common
