// Fabric and coflow-state tests: the big-switch model, flow volume
// bookkeeping, and the coflow aggregate helpers (bottleneck, width, volume).
#include <gtest/gtest.h>

#include <limits>

#include "fabric/coflow.hpp"
#include "fabric/fabric.hpp"

namespace swallow::fabric {
namespace {

TEST(Fabric, UniformConstruction) {
  const Fabric f(4, 100.0);
  EXPECT_EQ(f.num_ports(), 4u);
  for (PortId p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(f.ingress_capacity(p), 100.0);
    EXPECT_DOUBLE_EQ(f.egress_capacity(p), 100.0);
  }
  EXPECT_DOUBLE_EQ(f.min_capacity(), 100.0);
}

TEST(Fabric, HeterogeneousConstruction) {
  const Fabric f({10.0, 20.0}, {30.0, 5.0});
  EXPECT_DOUBLE_EQ(f.ingress_capacity(1), 20.0);
  EXPECT_DOUBLE_EQ(f.egress_capacity(1), 5.0);
  EXPECT_DOUBLE_EQ(f.min_capacity(), 5.0);
}

TEST(Fabric, RejectsInvalidConfigs) {
  EXPECT_THROW(Fabric(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Fabric(3, 0.0), std::invalid_argument);
  using Caps = std::vector<common::Bps>;
  EXPECT_THROW(Fabric(Caps{1.0}, Caps{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Fabric(Caps{0.0}, Caps{1.0}), std::invalid_argument);
  EXPECT_THROW(Fabric(Caps{}, Caps{}), std::invalid_argument);
}

TEST(Fabric, RejectsNonFiniteCapacities) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Fabric(2, nan), std::invalid_argument);
  EXPECT_THROW(Fabric(2, inf), std::invalid_argument);
  EXPECT_THROW(Fabric(2, -5.0), std::invalid_argument);
  using Caps = std::vector<common::Bps>;
  EXPECT_THROW(Fabric(Caps{1.0, nan}, Caps{1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Fabric(Caps{1.0, 1.0}, Caps{inf, 1.0}), std::invalid_argument);
  EXPECT_THROW(Fabric(Caps{1.0, -1.0}, Caps{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Fabric, PortMultiplierScalesCurrentNotNominal) {
  Fabric f({10.0, 20.0}, {30.0, 5.0});
  EXPECT_FALSE(f.degraded());
  f.set_port_multiplier(1, 0.5);
  EXPECT_TRUE(f.degraded());
  EXPECT_DOUBLE_EQ(f.ingress_capacity(1), 10.0);
  EXPECT_DOUBLE_EQ(f.egress_capacity(1), 2.5);
  EXPECT_DOUBLE_EQ(f.nominal_ingress_capacity(1), 20.0);
  EXPECT_DOUBLE_EQ(f.nominal_egress_capacity(1), 5.0);
  EXPECT_DOUBLE_EQ(f.port_multiplier(1), 0.5);
  // Port 0 untouched; min_capacity reports the nominal (config-time) min.
  EXPECT_DOUBLE_EQ(f.ingress_capacity(0), 10.0);
  EXPECT_DOUBLE_EQ(f.min_capacity(), 5.0);

  f.set_port_multiplier(1, 0.0);  // full link failure
  EXPECT_DOUBLE_EQ(f.ingress_capacity(1), 0.0);
  f.restore_all();
  EXPECT_FALSE(f.degraded());
  EXPECT_DOUBLE_EQ(f.ingress_capacity(1), 20.0);
}

TEST(Fabric, RejectsInvalidMultipliers) {
  Fabric f(2, 10.0);
  EXPECT_THROW(f.set_port_multiplier(0, -0.1), std::invalid_argument);
  EXPECT_THROW(f.set_port_multiplier(0, 1.5), std::invalid_argument);
  EXPECT_THROW(
      f.set_port_multiplier(0, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(f.set_port_multiplier(5, 0.5), std::out_of_range);
  EXPECT_DOUBLE_EQ(f.ingress_capacity(0), 10.0);  // state unchanged
}

TEST(Flow, VolumeIsRawPlusCompressed) {
  Flow f;
  f.raw_remaining = 70;
  f.compressed_pending = 30;
  EXPECT_DOUBLE_EQ(f.volume(), 100.0);
  EXPECT_FALSE(f.done());
  f.raw_remaining = 0;
  f.compressed_pending = 0;
  EXPECT_TRUE(f.done());
  EXPECT_FALSE(f.completed());
  f.completion = 5.0;
  EXPECT_TRUE(f.completed());
}

class CoflowHelpers : public ::testing::Test {
 protected:
  void SetUp() override {
    // Coflow of three flows; flow 1 is finished.
    for (int i = 0; i < 3; ++i) {
      Flow f;
      f.id = static_cast<FlowId>(i);
      f.coflow = 7;
      flows_.push_back(f);
    }
    flows_[0].src = 0;
    flows_[0].dst = 1;
    flows_[0].raw_remaining = 100;
    flows_[1].src = 1;
    flows_[1].dst = 1;
    flows_[1].raw_remaining = 0;  // done
    flows_[2].src = 0;
    flows_[2].dst = 2;
    flows_[2].raw_remaining = 40;
    flows_[2].compressed_pending = 10;
    coflow_.id = 7;
    coflow_.flows = {0, 1, 2};
  }
  std::vector<Flow> flows_;
  Coflow coflow_;
};

TEST_F(CoflowHelpers, VolumeSumsUnfinishedFlows) {
  EXPECT_DOUBLE_EQ(coflow_volume(coflow_, flows_), 150.0);
}

TEST_F(CoflowHelpers, WidthCountsUnfinishedFlows) {
  EXPECT_EQ(coflow_width(coflow_, flows_), 2u);
}

TEST_F(CoflowHelpers, MaxFlow) {
  EXPECT_DOUBLE_EQ(coflow_max_flow(coflow_, flows_), 100.0);
}

TEST_F(CoflowHelpers, BottleneckIsWorstPort) {
  // Ingress 0 carries flows 0 and 2: 150 bytes; egress 1 carries 100;
  // egress 2 carries 50. At capacity 10 the bottleneck is 150/10.
  const Fabric fabric(3, 10.0);
  EXPECT_DOUBLE_EQ(coflow_bottleneck(coflow_, flows_, fabric), 15.0);
}

TEST_F(CoflowHelpers, BottleneckHonoursHeterogeneousCapacity) {
  // Make egress 2 tiny: flow 2's 50 bytes over 0.5 dominates.
  const Fabric fabric({10.0, 10.0, 10.0}, {10.0, 10.0, 0.5});
  EXPECT_DOUBLE_EQ(coflow_bottleneck(coflow_, flows_, fabric), 100.0);
}

TEST_F(CoflowHelpers, FlowsOfResolvesPointers) {
  const auto ptrs = flows_of(coflow_, flows_);
  ASSERT_EQ(ptrs.size(), 3u);
  EXPECT_EQ(ptrs[0]->id, 0u);
  EXPECT_EQ(ptrs[2]->id, 2u);
}

TEST(Coflow, PriorityDefaultsToOne) {
  const Coflow c;
  EXPECT_DOUBLE_EQ(c.priority, 1.0);
  EXPECT_FALSE(c.completed());
}

}  // namespace
}  // namespace swallow::fabric
