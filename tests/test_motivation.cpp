// Integration test: the paper's Fig. 3/4 motivation example.
//
// Fig. 4 publishes the average FCT / CCT of six mechanisms on the two-coflow
// example. With the port map derived in DESIGN.md 4.4 the closed-form
// schedules give exactly:
//   PFF  4.6 / 5.5      WSS  5.2 / 6.0      FIFO 4.4 / 5.5
//   PFP  3.8 / 5.5      SEBF  (CCT) 4.5     FVDF (CCT) ~3.25
// SEBF's published avg FCT of 4.0 reads slightly low off the hand-drawn
// grid; MADD with work-conserving backfill yields 4.2 (CCT matches
// exactly). FVDF's
// cartoon compresses C1 only partially; our full run lands near 2.7 / 2.9,
// on the published side of SEBF by a wide margin.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace swallow {
namespace {

// Rescheduling happens at slice boundaries (slice = 0.01), so closed-form
// values can drift by a slice or two.
constexpr double kTol = 0.03;

class MotivationTest : public ::testing::Test {
 protected:
  void SetUp() override { setup_ = sim::motivation_setup(); }
  std::unique_ptr<sim::MotivationSetup> setup_;
};

TEST_F(MotivationTest, PffMatchesPaper) {
  const sim::Metrics m = setup_->run("PFF");
  EXPECT_NEAR(m.avg_fct(), 4.6, kTol);
  EXPECT_NEAR(m.avg_cct(), 5.5, kTol);
}

TEST_F(MotivationTest, WssMatchesPaper) {
  const sim::Metrics m = setup_->run("WSS");
  EXPECT_NEAR(m.avg_fct(), 5.2, kTol);
  EXPECT_NEAR(m.avg_cct(), 6.0, kTol);
}

TEST_F(MotivationTest, FifoMatchesPaper) {
  const sim::Metrics m = setup_->run("FIFO");
  EXPECT_NEAR(m.avg_fct(), 4.4, kTol);
  EXPECT_NEAR(m.avg_cct(), 5.5, kTol);
}

TEST_F(MotivationTest, PfpMatchesPaper) {
  const sim::Metrics m = setup_->run("PFP");
  EXPECT_NEAR(m.avg_fct(), 3.8, kTol);
  EXPECT_NEAR(m.avg_cct(), 5.5, kTol);
}

TEST_F(MotivationTest, SebfMatchesPaperCct) {
  const sim::Metrics m = setup_->run("SEBF");
  EXPECT_NEAR(m.avg_cct(), 4.5, kTol);
  // Published 4.0; MADD + backfill gives 4.2 (see header comment).
  EXPECT_NEAR(m.avg_fct(), 4.2, kTol);
}

TEST_F(MotivationTest, FvdfBeatsSebfViaCompression) {
  const sim::Metrics fvdf = setup_->run("FVDF");
  const sim::Metrics sebf = setup_->run("SEBF");
  // Paper draws 2.8 / 3.25; full compression of C1 lands slightly lower.
  EXPECT_LT(fvdf.avg_cct(), 3.5);
  EXPECT_GT(fvdf.avg_cct(), 2.0);
  EXPECT_LT(fvdf.avg_fct(), 3.2);
  EXPECT_LT(fvdf.avg_cct(), sebf.avg_cct());
  EXPECT_LT(fvdf.avg_fct(), sebf.avg_fct());
}

TEST_F(MotivationTest, FvdfReducesWireTraffic) {
  const sim::Metrics fvdf = setup_->run("FVDF");
  // xi = 0.5 and everything compressible: close to half the bytes on wire.
  EXPECT_GT(fvdf.traffic_reduction(), 0.30);
  const sim::Metrics sebf = setup_->run("SEBF");
  EXPECT_NEAR(sebf.traffic_reduction(), 0.0, 1e-9);
}

TEST_F(MotivationTest, CompressionDisabledFvdfTracksSebfCct) {
  const sim::Metrics fvdf_nc = setup_->run("FVDF-NC");
  EXPECT_NEAR(fvdf_nc.traffic_reduction(), 0.0, 1e-9);
  // Without compression FVDF is a bottleneck-ordered scheduler like SEBF;
  // its CCT must stay within the baseline band of the example.
  EXPECT_LE(fvdf_nc.avg_cct(), 5.5 + kTol);
  EXPECT_GE(fvdf_nc.avg_cct(), 4.5 - kTol);
}

}  // namespace
}  // namespace swallow
