// Crash-fault tolerance (DESIGN.md section 13): deterministic checkpoint/
// restore, the write-ahead event journal and kill-anywhere recovery.
//
// The contract guarded here is byte-identity: kill a run at any journaled
// event (or mid-snapshot, or with a torn journal tail), restore from the
// surviving files, and the final Metrics records equal the uninterrupted
// run's bit for bit — for every scheduler in the registry, both engine
// modes, and with the degradation + deadline/admission layers on. The
// loader fuzz tests additionally pin that corrupted snapshot/journal bytes
// surface as typed RecoveryError (never UB — CI runs this under
// ASan/UBSan/TSan).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec_model.hpp"
#include "cpu/cpu_model.hpp"
#include "recovery/journal.hpp"
#include "recovery/recovery.hpp"
#include "recovery/snapshot.hpp"
#include "recovery/state_io.hpp"
#include "sched/registry.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace {

using namespace swallow;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "swallow-recovery-XXXXXX")
            .string();
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) throw std::runtime_error("mkdtemp failed");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  std::string journal() const { return (path / "journal.swj").string(); }
};

workload::Trace make_trace(std::uint64_t seed, std::size_t coflows,
                           std::size_t ports, double deadline_fraction = 0) {
  workload::GeneratorConfig gen;
  gen.num_ports = ports;
  gen.num_coflows = coflows;
  gen.mean_interarrival = 0.3;
  gen.size_lo = 1e5;
  gen.size_hi = 2e8;
  gen.size_alpha = 0.2;
  gen.width_lo = 1;
  gen.width_hi = 5;
  gen.seed = seed;
  gen.deadline_fraction = deadline_fraction;
  gen.deadline_ref_bandwidth = common::mbps(150);
  return workload::generate_trace(gen);
}

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names = sched::baseline_names();
  for (const std::string& n : sched::core_scheduler_names())
    names.push_back(n);
  return names;
}

sim::Metrics run_once(const workload::Trace& trace,
                      const fabric::Fabric& fabric,
                      const cpu::CpuProvider& cpu, const std::string& name,
                      const sim::SimConfig& config) {
  auto sched = sim::make_scheduler(name);  // fresh: schedulers are stateful
  return sim::run_simulation(trace, fabric, cpu, *sched, config);
}

std::optional<sim::Metrics> try_run(const workload::Trace& trace,
                                    const fabric::Fabric& fabric,
                                    const cpu::CpuProvider& cpu,
                                    const std::string& name,
                                    const sim::SimConfig& config) {
  try {
    return run_once(trace, fabric, cpu, name, config);
  } catch (const recovery::CrashError&) {
    return std::nullopt;
  }
}

// Exact (bitwise-value) comparison of every emitted record.
void expect_identical(const sim::Metrics& a, const sim::Metrics& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].completion, b.flows[i].completion) << "flow " << i;
    EXPECT_EQ(a.flows[i].wire_bytes, b.flows[i].wire_bytes) << "flow " << i;
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].completion, b.coflows[i].completion)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].wire_bytes, b.coflows[i].wire_bytes)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].rejected, b.coflows[i].rejected) << "coflow " << i;
  }
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (std::size_t i = 0; i < a.utilization.size(); ++i) {
    EXPECT_EQ(a.utilization[i].t, b.utilization[i].t);
    EXPECT_EQ(a.utilization[i].egress_utilization,
              b.utilization[i].egress_utilization);
  }
  EXPECT_EQ(a.degradation.capacity_changes, b.degradation.capacity_changes);
  EXPECT_EQ(a.degradation.link_failures, b.degradation.link_failures);
  EXPECT_EQ(a.degradation.stalled_flow_slices,
            b.degradation.stalled_flow_slices);
  EXPECT_EQ(a.degradation.compression_flips,
            b.degradation.compression_flips);
  EXPECT_EQ(a.slo.with_deadline, b.slo.with_deadline);
  EXPECT_EQ(a.slo.admitted, b.slo.admitted);
  EXPECT_EQ(a.slo.degraded, b.slo.degraded);
  EXPECT_EQ(a.slo.deferred, b.slo.deferred);
  EXPECT_EQ(a.slo.rejected, b.slo.rejected);
  EXPECT_EQ(a.slo.shed_midflight, b.slo.shed_midflight);
  EXPECT_EQ(a.slo.shed_bytes, b.slo.shed_bytes);
}

/// Journaled-event count of an uninterrupted run (no checkpoints, so the
/// count excludes kCheckpoint markers — kill points picked in [1, count]
/// always land inside the checkpointed run's longer stream).
std::uint64_t count_events(const workload::Trace& trace,
                           const fabric::Fabric& fabric,
                           const cpu::CpuProvider& cpu,
                           const std::string& name, sim::SimConfig config) {
  TempDir dir;
  config.recovery = {};
  config.recovery.dir = dir.str();
  config.recovery.checkpoint_every = 0;
  run_once(trace, fabric, cpu, name, config);
  return recovery::read_journal(dir.journal()).records.size();
}

/// Crashes a run at `plan`, restores from the surviving files, and returns
/// the recovered run's Metrics. Asserts the crash actually fired.
sim::Metrics kill_and_recover(const workload::Trace& trace,
                              const fabric::Fabric& fabric,
                              const cpu::CpuProvider& cpu,
                              const std::string& name, sim::SimConfig config,
                              const recovery::CrashPlan& plan,
                              std::uint64_t checkpoint_every,
                              const std::string& label) {
  TempDir dir;
  config.recovery = {};
  config.recovery.dir = dir.str();
  config.recovery.checkpoint_every = checkpoint_every;
  config.recovery.crash = &plan;
  const auto crashed = try_run(trace, fabric, cpu, name, config);
  EXPECT_FALSE(crashed.has_value()) << label << ": crash plan never fired";
  config.recovery.crash = nullptr;
  config.recovery.restore = true;
  return run_once(trace, fabric, cpu, name, config);
}

// ---------------------------------------------------------------------------
// Kill-anywhere equivalence matrix
// ---------------------------------------------------------------------------

TEST(RecoveryMatrix, KillAnywhereEverySchedulerBothModes) {
  const workload::Trace trace = make_trace(31, 12, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  for (const std::string& name : all_scheduler_names()) {
    for (const sim::EngineMode mode :
         {sim::EngineMode::kEventDriven, sim::EngineMode::kSliceStepped}) {
      sim::SimConfig config;
      config.engine_mode = mode;
      config.codec = &codec::default_codec_model();
      const sim::Metrics clean = run_once(trace, fabric, cpu, name, config);
      const std::uint64_t events =
          count_events(trace, fabric, cpu, name, config);
      ASSERT_GT(events, 0u);
      for (const std::uint64_t kill :
           {std::uint64_t{1}, events / 2 + 1, events}) {
        recovery::CrashPlan plan;
        plan.kill_at_event = kill;
        const std::string label =
            name + (mode == sim::EngineMode::kEventDriven ? "/event" : "/slice") +
            "/kill=" + std::to_string(kill);
        const sim::Metrics recovered = kill_and_recover(
            trace, fabric, cpu, name, config, plan, 3, label);
        expect_identical(recovered, clean, label);
      }
    }
  }
}

TEST(RecoveryMatrix, KillAnywhereUnderDegradation) {
  const workload::Trace trace = make_trace(47, 16, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  for (const std::string& name : {std::string("FVDF"),
                                  std::string("DEADLINE-FVDF")}) {
    for (const sim::EngineMode mode :
         {sim::EngineMode::kEventDriven, sim::EngineMode::kSliceStepped}) {
      sim::SimConfig config;
      config.engine_mode = mode;
      config.codec = &codec::default_codec_model();
      config.utilization_sample_period = 0.5;
      config.degradation.rate = 0.12;
      config.degradation.seed = 9;
      config.degradation.failure_fraction = 0.3;
      const sim::Metrics clean = run_once(trace, fabric, cpu, name, config);
      const std::uint64_t events =
          count_events(trace, fabric, cpu, name, config);
      ASSERT_GT(events, 4u);
      for (std::uint64_t kill = 1; kill <= events;
           kill += std::max<std::uint64_t>(1, events / 6)) {
        recovery::CrashPlan plan;
        plan.kill_at_event = kill;
        const std::string label =
            name + (mode == sim::EngineMode::kEventDriven ? "/event" : "/slice") +
            "/degrade/kill=" + std::to_string(kill);
        const sim::Metrics recovered = kill_and_recover(
            trace, fabric, cpu, name, config, plan, 2, label);
        expect_identical(recovered, clean, label);
      }
    }
  }
}

TEST(RecoveryMatrix, KillAnywhereDeadlinesAdmissionShedding) {
  const workload::Trace trace = make_trace(53, 18, 6, /*deadline=*/0.6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  for (const std::string& name : {std::string("FVDF"),
                                  std::string("DEADLINE-FVDF")}) {
    for (const sim::EngineMode mode :
         {sim::EngineMode::kEventDriven, sim::EngineMode::kSliceStepped}) {
      sim::SimConfig config;
      config.engine_mode = mode;
      config.codec = &codec::default_codec_model();
      config.admission.enabled = true;
      config.degradation.rate = 0.1;
      config.degradation.seed = 5;
      const sim::Metrics clean = run_once(trace, fabric, cpu, name, config);
      // The SLO layer must actually be exercised for the sweep to mean
      // anything.
      ASSERT_GT(clean.slo.with_deadline, 0u);
      const std::uint64_t events =
          count_events(trace, fabric, cpu, name, config);
      for (std::uint64_t kill = 1; kill <= events;
           kill += std::max<std::uint64_t>(1, events / 6)) {
        recovery::CrashPlan plan;
        plan.kill_at_event = kill;
        const std::string label =
            name + (mode == sim::EngineMode::kEventDriven ? "/event" : "/slice") +
            "/slo/kill=" + std::to_string(kill);
        const sim::Metrics recovered = kill_and_recover(
            trace, fabric, cpu, name, config, plan, 2, label);
        expect_identical(recovered, clean, label);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Crash shapes beyond a clean event kill
// ---------------------------------------------------------------------------

TEST(RecoveryCrash, MidSnapshotCrashFallsBackToPreviousSnapshot) {
  const workload::Trace trace = make_trace(61, 14, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  const sim::Metrics clean = run_once(trace, fabric, cpu, "FVDF", config);
  for (const std::uint64_t nth : {std::uint64_t{1}, std::uint64_t{2}}) {
    recovery::CrashPlan plan;
    plan.kill_mid_snapshot = nth;
    const std::string label = "mid-snapshot #" + std::to_string(nth);
    const sim::Metrics recovered =
        kill_and_recover(trace, fabric, cpu, "FVDF", config, plan, 2, label);
    expect_identical(recovered, clean, label);
  }
}

TEST(RecoveryCrash, TornJournalTailIsTruncatedAndReplayed) {
  const workload::Trace trace = make_trace(67, 14, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  const sim::Metrics clean = run_once(trace, fabric, cpu, "FVDF", config);
  const std::uint64_t events =
      count_events(trace, fabric, cpu, "FVDF", config);
  // Tear a few bytes (partial final record) and more than the whole file
  // (journal gone entirely — the snapshot alone must still recover).
  for (const std::uint64_t torn : {std::uint64_t{7}, std::uint64_t{1} << 40}) {
    recovery::CrashPlan plan;
    plan.kill_at_event = events / 2 + 1;
    plan.torn_tail_bytes = torn;
    const std::string label = "torn=" + std::to_string(torn);
    const sim::Metrics recovered =
        kill_and_recover(trace, fabric, cpu, "FVDF", config, plan, 2, label);
    expect_identical(recovered, clean, label);
  }
}

TEST(RecoveryCrash, CrashBeforeFirstCheckpointColdStarts) {
  const workload::Trace trace = make_trace(71, 12, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  const sim::Metrics clean = run_once(trace, fabric, cpu, "FVDF", config);
  recovery::CrashPlan plan;
  plan.kill_at_event = 3;
  // checkpoint_every far beyond the run: no snapshot ever lands, restore
  // must cold-start and verify the whole journal.
  const sim::Metrics recovered = kill_and_recover(
      trace, fabric, cpu, "FVDF", config, plan, 100000, "cold start");
  expect_identical(recovered, clean, "cold start");
}

TEST(RecoveryCrash, RepeatedKillsAcrossRestores) {
  const workload::Trace trace = make_trace(73, 16, 6, /*deadline=*/0.5);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.admission.enabled = true;
  config.degradation.rate = 0.1;
  config.degradation.seed = 3;
  const sim::Metrics clean =
      run_once(trace, fabric, cpu, "DEADLINE-FVDF", config);
  const std::uint64_t events =
      count_events(trace, fabric, cpu, "DEADLINE-FVDF", config);

  TempDir dir;
  config.recovery.dir = dir.str();
  config.recovery.checkpoint_every = 2;
  recovery::CrashPlan first;
  first.kill_at_event = events / 3 + 1;
  config.recovery.crash = &first;
  EXPECT_FALSE(
      try_run(trace, fabric, cpu, "DEADLINE-FVDF", config).has_value());

  // Second life crashes again — early enough that it dies while still
  // verifying the journal suffix of its first life.
  config.recovery.restore = true;
  recovery::CrashPlan second;
  second.kill_at_event = 2;
  config.recovery.crash = &second;
  EXPECT_FALSE(
      try_run(trace, fabric, cpu, "DEADLINE-FVDF", config).has_value());

  config.recovery.crash = nullptr;
  const sim::Metrics recovered =
      run_once(trace, fabric, cpu, "DEADLINE-FVDF", config);
  expect_identical(recovered, clean, "third life");
}

TEST(RecoveryCrash, RestoreAfterCompletedRunReplaysCleanly) {
  const workload::Trace trace = make_trace(79, 12, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  TempDir dir;
  config.recovery.dir = dir.str();
  config.recovery.checkpoint_every = 3;
  const sim::Metrics clean = run_once(trace, fabric, cpu, "FVDF", config);
  config.recovery.restore = true;
  const sim::Metrics replayed = run_once(trace, fabric, cpu, "FVDF", config);
  expect_identical(replayed, clean, "replay of a completed run");
}

TEST(RecoveryCrash, PersistenceDoesNotPerturbTheSimulation) {
  // Checkpointing + journaling on vs fully off: byte-identical Metrics.
  const workload::Trace trace = make_trace(83, 14, 6, /*deadline=*/0.4);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.admission.enabled = true;
  config.degradation.rate = 0.1;
  config.degradation.seed = 11;
  const sim::Metrics off = run_once(trace, fabric, cpu, "FVDF", config);
  TempDir dir;
  config.recovery.dir = dir.str();
  config.recovery.checkpoint_every = 2;
  const sim::Metrics on = run_once(trace, fabric, cpu, "FVDF", config);
  expect_identical(on, off, "persistence on vs off");
  EXPECT_TRUE(std::filesystem::exists(dir.journal()));
}

// ---------------------------------------------------------------------------
// Loader hardening: corrupted inputs are typed errors, never UB
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(RecoveryFuzz, SnapshotLoaderSurvivesTruncationAndBitFlips) {
  TempDir dir;
  recovery::StateWriter payload;
  for (int i = 0; i < 400; ++i) payload.f64(i * 1.25);
  recovery::SnapshotMeta meta;
  meta.seq = 7;
  meta.fingerprint = 0x1234abcd;
  recovery::write_snapshot(dir.str(), meta, payload.buffer());
  const std::string path = recovery::snapshot_path(dir.str(), 7);
  const std::vector<std::uint8_t> valid = slurp(path);
  ASSERT_GT(valid.size(), 32u);

  // Sanity: the untouched file parses and checks its fingerprint.
  const recovery::LoadedSnapshot back =
      recovery::read_snapshot(path, meta.fingerprint);
  EXPECT_EQ(back.meta.seq, 7u);
  EXPECT_EQ(back.payload, payload.buffer());
  EXPECT_THROW(recovery::read_snapshot(path, meta.fingerprint + 1),
               recovery::RecoveryError);

  // Every truncation length must fail as RecoveryError.
  const std::string mangled = (dir.path / "mangled.swsnap").string();
  for (std::size_t len = 0; len < valid.size(); len += 3) {
    spit(mangled, {valid.begin(), valid.begin() + len});
    EXPECT_THROW(recovery::read_snapshot(mangled), recovery::RecoveryError)
        << "truncated to " << len;
  }

  // Bit flips either fail typed or (if they miss every checksummed bit in
  // a colliding way) parse — anything else, including UB under the
  // sanitizers, is a failure.
  for (std::size_t off = 0; off < valid.size(); off += 5) {
    std::vector<std::uint8_t> flipped = valid;
    flipped[off] ^= std::uint8_t(1u << (off % 8));
    spit(mangled, flipped);
    try {
      (void)recovery::read_snapshot(mangled, meta.fingerprint);
    } catch (const recovery::RecoveryError&) {
      // expected shape
    }
  }

  // Version skew: patch the u32 version field (after magic + u64 seq) and
  // expect a typed failure with a meaningful offset.
  std::vector<std::uint8_t> skewed = valid;
  skewed[12] = std::uint8_t(recovery::kSnapshotVersion + 1);
  spit(mangled, skewed);
  try {
    (void)recovery::read_snapshot(mangled);
    FAIL() << "version skew accepted";
  } catch (const recovery::RecoveryError& e) {
    EXPECT_NE(e.offset(), recovery::RecoveryError::npos);
  }
}

TEST(RecoveryFuzz, JournalLoaderSurvivesTruncationAndBitFlips) {
  TempDir dir;
  {
    recovery::JournalWriter w;
    w.open(dir.journal());
    for (std::uint64_t i = 0; i < 50; ++i) {
      recovery::JournalRecord rec;
      rec.seq = i;
      rec.type = recovery::JournalType::kArrival;
      rec.time = 0.25 * double(i);
      rec.a = i;
      rec.b = i * 3;
      rec.x = 1.0 / double(i + 1);
      w.append(rec);
    }
  }
  const std::vector<std::uint8_t> valid = slurp(dir.journal());
  const recovery::JournalScan full = recovery::read_journal(dir.journal());
  ASSERT_EQ(full.records.size(), 50u);
  EXPECT_FALSE(full.torn);
  EXPECT_EQ(full.valid_bytes, valid.size());

  // A truncated journal is the normal crash signature: it must always scan
  // cleanly to a prefix (possibly torn), never throw, never over-read.
  const std::string mangled = (dir.path / "mangled.swj").string();
  for (std::size_t len = 0; len < valid.size(); len += 3) {
    spit(mangled, {valid.begin(), valid.begin() + len});
    const recovery::JournalScan scan = recovery::read_journal(mangled);
    EXPECT_LE(scan.valid_bytes, len);
    EXPECT_LE(scan.records.size(), 50u);
    for (std::size_t i = 0; i < scan.records.size(); ++i)
      EXPECT_EQ(scan.records[i].seq, i);
    recovery::truncate_torn_tail(mangled, scan);
    EXPECT_EQ(std::filesystem::file_size(mangled), scan.valid_bytes);
  }

  // Bit flips: a flipped tail reads as torn; a flipped middle is real
  // damage and must throw typed. Either way: no UB, no other exception.
  for (std::size_t off = 0; off < valid.size(); off += 7) {
    std::vector<std::uint8_t> flipped = valid;
    flipped[off] ^= std::uint8_t(1u << (off % 8));
    spit(mangled, flipped);
    try {
      const recovery::JournalScan scan = recovery::read_journal(mangled);
      EXPECT_LE(scan.records.size(), 50u);
    } catch (const recovery::RecoveryError&) {
      // expected shape for mid-file damage
    }
  }
}

TEST(RecoveryFuzz, StateReaderRejectsImplausibleCounts) {
  recovery::StateWriter w;
  w.u64(~std::uint64_t{0});  // count far beyond the remaining bytes
  const std::vector<std::uint8_t> bytes = w.buffer();
  recovery::StateReader r(bytes);
  try {
    (void)r.count("fuzz");
    FAIL() << "implausible count accepted";
  } catch (const recovery::RecoveryError& e) {
    EXPECT_NE(e.offset(), recovery::RecoveryError::npos);
  }
}

TEST(RecoveryGuard, SchedulerMismatchIsATypedError) {
  const workload::Trace trace = make_trace(89, 10, 6);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
  const cpu::ConstantCpu cpu(0.85);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  TempDir dir;
  config.recovery.dir = dir.str();
  config.recovery.checkpoint_every = 2;
  recovery::CrashPlan plan;
  plan.kill_at_event = count_events(trace, fabric, cpu, "FVDF", config) - 1;
  config.recovery.crash = &plan;
  EXPECT_FALSE(try_run(trace, fabric, cpu, "FVDF", config).has_value());
  // Restoring under a different scheduler: the fingerprint rejects every
  // snapshot (cold start), and the journal cross-check catches the first
  // divergent regenerated event instead of silently producing a different
  // schedule.
  config.recovery.crash = nullptr;
  config.recovery.restore = true;
  EXPECT_THROW(run_once(trace, fabric, cpu, "FIFO", config),
               recovery::RecoveryError);
}

}  // namespace
