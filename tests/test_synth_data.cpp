// Synthetic payload generators: size/determinism contracts, the
// redundancy-ratio monotonicity the Table I calibration relies on, and the
// per-application profile bands.
#include <gtest/gtest.h>

#include "codec/codec.hpp"
#include "codec/synth_data.hpp"

namespace swallow::codec {
namespace {

using common::Rng;

double measured_ratio(const Buffer& payload) {
  const auto codec = make_codec(CodecKind::kLzBalanced);
  return compression_ratio(payload.size(), codec->compress(payload).size());
}

TEST(SynthData, GeneratorsProduceRequestedSize) {
  Rng rng(1);
  for (const std::size_t n : {0ul, 1ul, 1000ul, 65536ul}) {
    EXPECT_EQ(random_bytes(n, rng).size(), n);
    EXPECT_EQ(run_bytes(n, rng).size(), n);
    EXPECT_EQ(text_bytes(n, rng).size(), n);
    EXPECT_EQ(record_bytes(n, rng).size(), n);
    EXPECT_EQ(mixed_bytes(n, rng, 0.3).size(), n);
  }
}

TEST(SynthData, DeterministicForSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(text_bytes(4096, a), text_bytes(4096, b));
}

TEST(SynthData, RandomBytesAreIncompressible) {
  Rng rng(2);
  EXPECT_GT(measured_ratio(random_bytes(1 << 17, rng)), 0.95);
}

TEST(SynthData, RunBytesAreHighlyCompressible) {
  Rng rng(3);
  EXPECT_LT(measured_ratio(run_bytes(1 << 17, rng)), 0.2);
}

TEST(SynthData, TextSitsBetweenRunsAndNoise) {
  Rng rng(4);
  const double r = measured_ratio(text_bytes(1 << 17, rng));
  EXPECT_GT(r, 0.1);
  EXPECT_LT(r, 0.7);
}

TEST(SynthData, SmallerVocabularyCompressesBetter) {
  Rng a(5), b(5);
  const double small_vocab = measured_ratio(text_bytes(1 << 17, a, 256, 1.2));
  const double large_vocab =
      measured_ratio(text_bytes(1 << 17, b, 65536, 1.0));
  EXPECT_LT(small_vocab, large_vocab);
}

TEST(SynthData, MixedRatioIsMonotoneInRandomFraction) {
  double prev = 0.0;
  for (const double rf : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Rng rng(6);
    const double r = measured_ratio(mixed_bytes(1 << 17, rng, rf));
    EXPECT_GT(r, prev - 0.02) << rf;  // allow small sampling noise
    prev = r;
  }
}

TEST(Table1Apps, HasElevenPaperApplications) {
  const auto& apps = table1_apps();
  ASSERT_EQ(apps.size(), 11u);
  EXPECT_EQ(apps.front().name, "Wordcount");
  EXPECT_DOUBLE_EQ(app_by_name("Sort").paper_ratio, 0.2496);
  EXPECT_DOUBLE_EQ(app_by_name("Logistic Regression").paper_ratio, 0.7513);
  EXPECT_THROW(app_by_name("Unknown"), std::out_of_range);
}

class AppProfileTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AppProfileTest, MeasuredRatioNearPaperBand) {
  const AppProfile& app = table1_apps().at(GetParam());
  Rng rng(100 + GetParam());
  const Buffer payload = app.generate(1 << 17, rng);
  ASSERT_EQ(payload.size(), std::size_t{1} << 17);
  const double r = measured_ratio(payload);
  // Calibration band: the bench prints exact paper-vs-measured.
  EXPECT_NEAR(r, app.paper_ratio, 0.05) << app.name;
}

TEST_P(AppProfileTest, RoundtripsThroughEveryLzPreset) {
  const AppProfile& app = table1_apps().at(GetParam());
  Rng rng(200 + GetParam());
  const Buffer payload = app.generate(1 << 15, rng);
  for (const CodecKind kind :
       {CodecKind::kLzFast, CodecKind::kLzBalanced, CodecKind::kLzHigh}) {
    const auto codec = make_codec(kind);
    EXPECT_EQ(codec->decompress(codec->compress(payload)), payload)
        << app.name << " / " << codec_kind_name(kind);
  }
}

std::string app_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = table1_apps().at(info.param).name;
  for (auto& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppProfileTest,
                         ::testing::Range<std::size_t>(0, 11), app_name);

TEST(Table1Apps, OrderingRoughlyPreserved) {
  // The most and least compressible paper apps must stay ordered when
  // measured with the real codec.
  Rng a(7), b(8);
  const double dfsio =
      measured_ratio(app_by_name("Enhanced DFSIO").generate(1 << 17, a));
  const double logreg =
      measured_ratio(app_by_name("Logistic Regression").generate(1 << 17, b));
  EXPECT_LT(dfsio, logreg);
}

}  // namespace
}  // namespace swallow::codec
