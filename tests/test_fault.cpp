// Fault-injection and recovery tests: deterministic injector behavior,
// corruption reaching the frame checksums, bounded backoff, retention and
// retransmit, PortGate holder eviction, graceful degradation, worker kill,
// and the full fault matrix (every fault class x smart_compress on/off)
// asserting jobs either complete verified or fail with a typed
// ShuffleError — never hang, never silently corrupt.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "codec/frame.hpp"
#include "codec/null_codec.hpp"
#include "runtime/context.hpp"
#include "runtime/fault.hpp"
#include "runtime/shuffle.hpp"

namespace swallow::runtime {
namespace {

ClusterConfig fault_config(bool compress = true) {
  ClusterConfig config;
  config.num_workers = 4;
  config.nic_rate = 512.0 * 1024 * 1024;
  config.smart_compress = compress;
  config.codec_model = codec::CodecModel{"test", 4e9, 8e9, 0.5};
  // Short per-attempt waits keep fault tests brisk; the retry budget still
  // bounds every path.
  config.retry.pull_timeout = 0.15;
  config.retry.base_backoff = 0.002;
  config.retry.max_backoff = 0.02;
  config.retry.gate_holder_timeout = 0.25;
  return config;
}

ShuffleJobConfig small_job(std::uint64_t seed = 1) {
  ShuffleJobConfig job;
  job.app = codec::app_by_name("Sort");
  job.mappers = 3;
  job.reducers = 2;
  job.bytes_per_partition = 16 * 1024;
  job.seed = seed;
  return job;
}

TEST(FaultInjector, DisabledNeverFires) {
  FaultConfig config;  // enabled = false
  config.set_uniform_rate(1.0);
  FaultInjector injector(config, nullptr, nullptr);
  EXPECT_FALSE(injector.enabled());
  for (int b = 1; b < 50; ++b)
    EXPECT_FALSE(injector.fires(FaultKind::kDrop, b, 0));
}

TEST(FaultInjector, DecisionsAreDeterministicInSeed) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 42;
  config.set_uniform_rate(0.3);
  FaultInjector a(config, nullptr, nullptr);
  FaultInjector b(config, nullptr, nullptr);
  config.seed = 43;
  FaultInjector c(config, nullptr, nullptr);

  bool any_fired = false;
  bool seed_changed_pattern = false;
  for (BlockId block = 1; block <= 200; ++block) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const bool fa = a.fires(FaultKind::kCorrupt, block, attempt);
      EXPECT_EQ(fa, b.fires(FaultKind::kCorrupt, block, attempt));
      any_fired = any_fired || fa;
      if (fa != c.fires(FaultKind::kCorrupt, block, attempt))
        seed_changed_pattern = true;
    }
  }
  EXPECT_TRUE(any_fired);
  EXPECT_TRUE(seed_changed_pattern);
}

TEST(FaultInjector, CorruptionIsCaughtByFrameChecksums) {
  common::Rng rng(7);
  const codec::Buffer payload = codec::text_bytes(8 * 1024, rng);
  const codec::NullCodec null;
  codec::Buffer wire = codec::frame_compress(null, payload);
  const codec::Buffer magic(wire.begin(), wire.begin() + 4);

  FaultConfig config;
  config.enabled = true;
  config.corrupt_rate = 1.0;
  FaultInjector injector(config, nullptr, nullptr);
  injector.corrupt(wire, /*block=*/9, /*attempt=*/0);

  // The magic survives so the corruption reaches the checksum machinery.
  EXPECT_EQ(codec::Buffer(wire.begin(), wire.begin() + 4), magic);
  EXPECT_THROW(codec::frame_decompress(wire), codec::CodecError);
}

TEST(Backoff, GrowsExponentiallyAndStaysBounded) {
  RetryPolicy retry;
  retry.base_backoff = 0.01;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = 0.05;
  retry.jitter = 0.0;  // deterministic for exact bounds
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 1, rng), 0.01);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 2, rng), 0.02);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 3, rng), 0.04);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 4, rng), 0.05);   // clamped
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 20, rng), 0.05);  // stays clamped

  retry.jitter = 0.5;
  for (int i = 0; i < 50; ++i) {
    const common::Seconds d = backoff_delay(retry, 2, rng);
    EXPECT_GE(d, 0.01);  // (1 - jitter) * 0.02
    EXPECT_LE(d, 0.02);
  }
}

TEST(RetentionStore, RetainLookupDrop) {
  RetentionStore store;
  const codec::Buffer raw{1, 2, 3, 4};
  store.retain(BlockKey{7, 11}, /*src=*/0, /*dst=*/2, raw);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.resident_bytes(), 4u);

  const auto hit = store.lookup(BlockKey{7, 11});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->raw, raw);
  EXPECT_EQ(hit->src, 0u);
  EXPECT_EQ(hit->dst, 2u);
  EXPECT_FALSE(store.lookup(BlockKey{7, 12}).has_value());

  EXPECT_EQ(store.drop_coflow(7), 4u);
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(PortGate, EvictsDeadHolderAfterTimeout) {
  PortGate gate;
  gate.set_holder_timeout(0.05);
  const PortGate::Ticket dead = gate.acquire(0);  // "crashes", never releases

  const auto t0 = std::chrono::steady_clock::now();
  const PortGate::Ticket next = gate.acquire(1);  // must not hang
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.03);
  EXPECT_LT(waited, 2.0);
  EXPECT_EQ(gate.evictions(), 1u);

  // The evicted holder's late release must not free the port under the
  // new holder.
  gate.release(dead);
  std::atomic<bool> acquired{false};
  std::jthread waiter([&] {
    gate.acquire(2);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // still held by `next`
  gate.release(next);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Master, DegradationLadderFlipsFlowToUncompressed) {
  ClusterConfig config = fault_config();
  config.retry.degrade_after = 2;
  Cluster cluster(config);
  Master& master = cluster.master();
  CoflowInfo info;
  info.flows = {{1, 0, 0, 1, 1000, true}};
  const CoflowRef ref = master.add(std::move(info));
  master.alloc(master.scheduling({ref}));
  EXPECT_TRUE(master.decision_of(1).compress);
  EXPECT_FALSE(master.decision_of(1).degraded);

  EXPECT_EQ(master.record_flow_failure(1), 1);
  EXPECT_TRUE(master.decision_of(1).compress);  // below threshold
  EXPECT_EQ(master.record_flow_failure(1), 2);
  EXPECT_FALSE(master.decision_of(1).compress);
  EXPECT_TRUE(master.decision_of(1).degraded);
  EXPECT_EQ(master.degraded_flows(), 1u);

  // Degradation is sticky across re-scheduling and re-allocation.
  master.alloc(master.scheduling({ref}));
  EXPECT_FALSE(master.decision_of(1).compress);
  EXPECT_TRUE(master.decision_of(1).degraded);
  EXPECT_EQ(master.degraded_flows(), 1u);  // counted once
}

TEST(Fault, PersistentCodecFailureDegradesButJobCompletes) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.codec_fail_rate = 1.0;  // every compress attempt fails
  config.retry.degrade_after = 2;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  // Every flow hit the ladder and fell back to the uncompressed path.
  EXPECT_GT(report.degraded_flows, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_LT(report.traffic_reduction(), 0.01);  // nothing compressed
}

TEST(Fault, TotalDropExhaustsRetriesWithTypedError) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.drop_rate = 1.0;  // every attempt (and retransmit) vanishes
  config.retry.max_attempts = 2;
  config.retry.pull_timeout = 0.05;
  Cluster cluster(config);
  try {
    run_shuffle_job(cluster, small_job());
    FAIL() << "expected ShuffleError";
  } catch (const ShuffleError& e) {
    EXPECT_EQ(e.kind(), ShuffleFailure::kPullTimeout);
    EXPECT_NE(e.block(), 0u);
    EXPECT_NE(std::string(e.what()).find("pull_timeout"), std::string::npos);
  }
  // The failed job still cleaned up after itself.
  EXPECT_EQ(cluster.master().active_coflows(), 0u);
  EXPECT_EQ(cluster.retention().block_count(), 0u);
  EXPECT_GT(cluster.fault_stats().pull_timeouts, 0u);
}

TEST(Fault, WorkerKillRecoversViaRetention) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.kill_enabled = true;
  config.fault.kill_worker = 1;
  config.fault.kill_after_deliveries = 2;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(cluster.worker_dead(1));
  EXPECT_EQ(cluster.fault_stats().worker_kills, 1u);
  EXPECT_EQ(cluster.effective_worker(1), 2u);
}

TEST(Fault, KillHoldingGateIsEvictedNotDeadlocked) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.kill_enabled = true;
  config.fault.kill_worker = 0;
  config.fault.kill_after_deliveries = 1;
  config.fault.kill_holding_gate = true;
  config.retry.gate_holder_timeout = 0.05;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(cluster.worker_dead(0));
}

TEST(Fault, MatrixEveryKindEitherCompletesVerifiedOrThrowsTyped) {
  struct Case {
    const char* name;
    void (*apply)(FaultConfig&);
  };
  const Case cases[] = {
      {"drop", [](FaultConfig& f) { f.drop_rate = 0.3; }},
      {"corrupt", [](FaultConfig& f) { f.corrupt_rate = 0.3; }},
      {"stall",
       [](FaultConfig& f) {
         f.stall_rate = 0.5;
         f.stall_duration = 0.01;
       }},
      {"codec_fail", [](FaultConfig& f) { f.codec_fail_rate = 0.3; }},
      {"worker_kill",
       [](FaultConfig& f) {
         f.kill_enabled = true;
         f.kill_worker = 2;
         f.kill_after_deliveries = 3;
       }},
      {"everything",
       [](FaultConfig& f) {
         f.set_uniform_rate(0.15);
         f.kill_enabled = true;
         f.kill_worker = 3;
         f.kill_after_deliveries = 4;
       }},
  };

  for (const bool compress : {true, false}) {
    for (const Case& c : cases) {
      ClusterConfig config = fault_config(compress);
      config.fault.enabled = true;
      config.fault.seed = 99;
      c.apply(config.fault);
      Cluster cluster(config);
      try {
        const ShuffleReport report =
            run_shuffle_job(cluster, small_job(/*seed=*/3));
        // Completion implies full payload verification: recovery never
        // hands corrupted bytes to the reducers.
        EXPECT_TRUE(report.verified)
            << c.name << " compress=" << compress;
      } catch (const ShuffleError& e) {
        // Bounded, typed failure is acceptable; silent corruption or a
        // hang (caught by the ctest TIMEOUT) is not.
        EXPECT_NE(e.block(), 0u) << c.name << " compress=" << compress;
      }
      // Either way the job released its bookkeeping.
      EXPECT_EQ(cluster.master().active_coflows(), 0u) << c.name;
      EXPECT_EQ(cluster.retention().block_count(), 0u) << c.name;
    }
  }
}

TEST(Fault, DisabledInjectorIsByteIdenticalToBaseline) {
  // Baseline: a config that never mentions the fault machinery.
  ClusterConfig baseline = fault_config();
  // Variant: fault knobs present (rates set, seed set) but enabled=false.
  ClusterConfig disabled = fault_config();
  disabled.fault.seed = 1234;
  disabled.fault.set_uniform_rate(1.0);  // must be ignored while disabled

  Cluster a(baseline), b(disabled);
  const ShuffleReport ra = run_shuffle_job(a, small_job(/*seed=*/5));
  const ShuffleReport rb = run_shuffle_job(b, small_job(/*seed=*/5));

  EXPECT_TRUE(ra.verified);
  EXPECT_TRUE(rb.verified);
  // Byte-for-byte identical traffic and zero fault-path activity.
  EXPECT_EQ(ra.raw_bytes, rb.raw_bytes);
  EXPECT_EQ(ra.wire_bytes, rb.wire_bytes);
  EXPECT_EQ(a.total_wire_bytes(), b.total_wire_bytes());
  EXPECT_EQ(a.total_raw_bytes(), b.total_raw_bytes());
  for (const ShuffleReport* r : {&ra, &rb}) {
    EXPECT_EQ(r->faults_injected, 0u);
    EXPECT_EQ(r->retries, 0u);
    EXPECT_EQ(r->retransmits, 0u);
    EXPECT_EQ(r->corrupt_frames, 0u);
    EXPECT_EQ(r->pull_timeouts, 0u);
    EXPECT_EQ(r->gate_evictions, 0u);
    EXPECT_EQ(r->degraded_flows, 0u);
  }
  // Retention never populated on the disabled path.
  EXPECT_EQ(a.retention().block_count(), 0u);
  EXPECT_EQ(b.retention().block_count(), 0u);
  EXPECT_EQ(b.fault_stats().total_injected(), 0u);
}

TEST(Fault, StatsAccumulateAcrossInjections) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.drop_rate = 0.4;
  config.fault.seed = 7;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  const FaultStats stats = cluster.fault_stats();
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.pull_timeouts, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.total_injected(), stats.injected_drops);
  // Report deltas match the cluster-wide counters for a single job.
  EXPECT_EQ(report.retransmits, stats.retransmits);
  EXPECT_EQ(report.pull_timeouts, stats.pull_timeouts);
}

TEST(ShuffleError, CarriesCoordinatesAndKind) {
  const ShuffleError e(ShuffleFailure::kCorruption, 3, 14, 14);
  EXPECT_EQ(e.kind(), ShuffleFailure::kCorruption);
  EXPECT_EQ(e.coflow(), 3u);
  EXPECT_EQ(e.flow(), 14u);
  EXPECT_EQ(e.block(), 14u);
  const std::string what = e.what();
  EXPECT_NE(what.find("corruption"), std::string::npos);
  EXPECT_NE(what.find("14"), std::string::npos);
}

TEST(Cluster, KillWorkerNeverKillsLastSurvivor) {
  ClusterConfig config = fault_config();
  config.num_workers = 2;
  Cluster cluster(config);
  cluster.kill_worker(0);
  EXPECT_TRUE(cluster.worker_dead(0));
  cluster.kill_worker(1);  // refused: last one standing
  EXPECT_FALSE(cluster.worker_dead(1));
  EXPECT_EQ(cluster.effective_worker(0), 1u);
  EXPECT_EQ(cluster.effective_worker(1), 1u);
}

}  // namespace
}  // namespace swallow::runtime
