// Fault-injection and recovery tests: deterministic injector behavior,
// corruption reaching the frame checksums, bounded backoff, retention and
// retransmit, PortGate holder eviction, graceful degradation, worker kill,
// and the full fault matrix (every fault class x smart_compress on/off)
// asserting jobs either complete verified or fail with a typed
// ShuffleError — never hang, never silently corrupt.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "codec/frame.hpp"
#include "codec/null_codec.hpp"
#include "recovery/state_io.hpp"
#include "runtime/bus.hpp"
#include "runtime/context.hpp"
#include "runtime/fault.hpp"
#include "runtime/shuffle.hpp"

namespace swallow::runtime {
namespace {

ClusterConfig fault_config(bool compress = true) {
  ClusterConfig config;
  config.num_workers = 4;
  config.nic_rate = 512.0 * 1024 * 1024;
  config.smart_compress = compress;
  config.codec_model = codec::CodecModel{"test", 4e9, 8e9, 0.5};
  // Short per-attempt waits keep fault tests brisk; the retry budget still
  // bounds every path.
  config.retry.pull_timeout = 0.15;
  config.retry.base_backoff = 0.002;
  config.retry.max_backoff = 0.02;
  config.retry.gate_holder_timeout = 0.25;
  return config;
}

ShuffleJobConfig small_job(std::uint64_t seed = 1) {
  ShuffleJobConfig job;
  job.app = codec::app_by_name("Sort");
  job.mappers = 3;
  job.reducers = 2;
  job.bytes_per_partition = 16 * 1024;
  job.seed = seed;
  return job;
}

TEST(FaultInjector, DisabledNeverFires) {
  FaultConfig config;  // enabled = false
  config.set_uniform_rate(1.0);
  FaultInjector injector(config, nullptr, nullptr);
  EXPECT_FALSE(injector.enabled());
  for (int b = 1; b < 50; ++b)
    EXPECT_FALSE(injector.fires(FaultKind::kDrop, b, 0));
}

TEST(FaultInjector, DecisionsAreDeterministicInSeed) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 42;
  config.set_uniform_rate(0.3);
  FaultInjector a(config, nullptr, nullptr);
  FaultInjector b(config, nullptr, nullptr);
  config.seed = 43;
  FaultInjector c(config, nullptr, nullptr);

  bool any_fired = false;
  bool seed_changed_pattern = false;
  for (BlockId block = 1; block <= 200; ++block) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const bool fa = a.fires(FaultKind::kCorrupt, block, attempt);
      EXPECT_EQ(fa, b.fires(FaultKind::kCorrupt, block, attempt));
      any_fired = any_fired || fa;
      if (fa != c.fires(FaultKind::kCorrupt, block, attempt))
        seed_changed_pattern = true;
    }
  }
  EXPECT_TRUE(any_fired);
  EXPECT_TRUE(seed_changed_pattern);
}

TEST(FaultInjector, CorruptionIsCaughtByFrameChecksums) {
  common::Rng rng(7);
  const codec::Buffer payload = codec::text_bytes(8 * 1024, rng);
  const codec::NullCodec null;
  codec::Buffer wire = codec::frame_compress(null, payload);
  const codec::Buffer magic(wire.begin(), wire.begin() + 4);

  FaultConfig config;
  config.enabled = true;
  config.corrupt_rate = 1.0;
  FaultInjector injector(config, nullptr, nullptr);
  injector.corrupt(wire, /*block=*/9, /*attempt=*/0);

  // The magic survives so the corruption reaches the checksum machinery.
  EXPECT_EQ(codec::Buffer(wire.begin(), wire.begin() + 4), magic);
  EXPECT_THROW(codec::frame_decompress(wire), codec::CodecError);
}

TEST(Backoff, GrowsExponentiallyAndStaysBounded) {
  RetryPolicy retry;
  retry.base_backoff = 0.01;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = 0.05;
  retry.jitter = 0.0;  // deterministic for exact bounds
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 1, rng), 0.01);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 2, rng), 0.02);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 3, rng), 0.04);
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 4, rng), 0.05);   // clamped
  EXPECT_DOUBLE_EQ(backoff_delay(retry, 20, rng), 0.05);  // stays clamped

  retry.jitter = 0.5;
  for (int i = 0; i < 50; ++i) {
    const common::Seconds d = backoff_delay(retry, 2, rng);
    EXPECT_GE(d, 0.01);  // (1 - jitter) * 0.02
    EXPECT_LE(d, 0.02);
  }
}

TEST(RetentionStore, RetainLookupDrop) {
  RetentionStore store;
  const codec::Buffer raw{1, 2, 3, 4};
  store.retain(BlockKey{7, 11}, /*src=*/0, /*dst=*/2, raw);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.resident_bytes(), 4u);

  const auto hit = store.lookup(BlockKey{7, 11});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->raw, raw);
  EXPECT_EQ(hit->src, 0u);
  EXPECT_EQ(hit->dst, 2u);
  EXPECT_FALSE(store.lookup(BlockKey{7, 12}).has_value());

  EXPECT_EQ(store.drop_coflow(7), 4u);
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(PortGate, EvictsDeadHolderAfterTimeout) {
  PortGate gate;
  gate.set_holder_timeout(0.05);
  const PortGate::Ticket dead = gate.acquire(0);  // "crashes", never releases

  const auto t0 = std::chrono::steady_clock::now();
  const PortGate::Ticket next = gate.acquire(1);  // must not hang
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.03);
  EXPECT_LT(waited, 2.0);
  EXPECT_EQ(gate.evictions(), 1u);

  // The evicted holder's late release must not free the port under the
  // new holder.
  gate.release(dead);
  std::atomic<bool> acquired{false};
  std::jthread waiter([&] {
    gate.acquire(2);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // still held by `next`
  gate.release(next);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Master, DegradationLadderFlipsFlowToUncompressed) {
  ClusterConfig config = fault_config();
  config.retry.degrade_after = 2;
  Cluster cluster(config);
  Master& master = cluster.master();
  CoflowInfo info;
  info.flows = {{1, 0, 0, 1, 1000, true}};
  const CoflowRef ref = master.add(std::move(info));
  master.alloc(master.scheduling({ref}));
  EXPECT_TRUE(master.decision_of(1).compress);
  EXPECT_FALSE(master.decision_of(1).degraded);

  EXPECT_EQ(master.record_flow_failure(1), 1);
  EXPECT_TRUE(master.decision_of(1).compress);  // below threshold
  EXPECT_EQ(master.record_flow_failure(1), 2);
  EXPECT_FALSE(master.decision_of(1).compress);
  EXPECT_TRUE(master.decision_of(1).degraded);
  EXPECT_EQ(master.degraded_flows(), 1u);

  // Degradation is sticky across re-scheduling and re-allocation.
  master.alloc(master.scheduling({ref}));
  EXPECT_FALSE(master.decision_of(1).compress);
  EXPECT_TRUE(master.decision_of(1).degraded);
  EXPECT_EQ(master.degraded_flows(), 1u);  // counted once
}

TEST(Fault, PersistentCodecFailureDegradesButJobCompletes) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.codec_fail_rate = 1.0;  // every compress attempt fails
  config.retry.degrade_after = 2;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  // Every flow hit the ladder and fell back to the uncompressed path.
  EXPECT_GT(report.degraded_flows, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_LT(report.traffic_reduction(), 0.01);  // nothing compressed
}

TEST(Fault, TotalDropExhaustsRetriesWithTypedError) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.drop_rate = 1.0;  // every attempt (and retransmit) vanishes
  config.retry.max_attempts = 2;
  config.retry.pull_timeout = 0.05;
  Cluster cluster(config);
  try {
    run_shuffle_job(cluster, small_job());
    FAIL() << "expected ShuffleError";
  } catch (const ShuffleError& e) {
    EXPECT_EQ(e.kind(), ShuffleFailure::kPullTimeout);
    EXPECT_NE(e.block(), 0u);
    EXPECT_NE(std::string(e.what()).find("pull_timeout"), std::string::npos);
  }
  // The failed job still cleaned up after itself.
  EXPECT_EQ(cluster.master().active_coflows(), 0u);
  EXPECT_EQ(cluster.retention().block_count(), 0u);
  EXPECT_GT(cluster.fault_stats().pull_timeouts, 0u);
}

TEST(Fault, WorkerKillRecoversViaRetention) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.kill_enabled = true;
  config.fault.kill_worker = 1;
  config.fault.kill_after_deliveries = 2;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(cluster.worker_dead(1));
  EXPECT_EQ(cluster.fault_stats().worker_kills, 1u);
  EXPECT_EQ(cluster.effective_worker(1), 2u);
}

TEST(Fault, KillHoldingGateIsEvictedNotDeadlocked) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.kill_enabled = true;
  config.fault.kill_worker = 0;
  config.fault.kill_after_deliveries = 1;
  config.fault.kill_holding_gate = true;
  config.retry.gate_holder_timeout = 0.05;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(cluster.worker_dead(0));
}

TEST(Fault, MatrixEveryKindEitherCompletesVerifiedOrThrowsTyped) {
  struct Case {
    const char* name;
    void (*apply)(FaultConfig&);
  };
  const Case cases[] = {
      {"drop", [](FaultConfig& f) { f.drop_rate = 0.3; }},
      {"corrupt", [](FaultConfig& f) { f.corrupt_rate = 0.3; }},
      {"stall",
       [](FaultConfig& f) {
         f.stall_rate = 0.5;
         f.stall_duration = 0.01;
       }},
      {"codec_fail", [](FaultConfig& f) { f.codec_fail_rate = 0.3; }},
      {"worker_kill",
       [](FaultConfig& f) {
         f.kill_enabled = true;
         f.kill_worker = 2;
         f.kill_after_deliveries = 3;
       }},
      {"everything",
       [](FaultConfig& f) {
         f.set_uniform_rate(0.15);
         f.kill_enabled = true;
         f.kill_worker = 3;
         f.kill_after_deliveries = 4;
       }},
  };

  for (const bool compress : {true, false}) {
    for (const Case& c : cases) {
      ClusterConfig config = fault_config(compress);
      config.fault.enabled = true;
      config.fault.seed = 99;
      c.apply(config.fault);
      Cluster cluster(config);
      try {
        const ShuffleReport report =
            run_shuffle_job(cluster, small_job(/*seed=*/3));
        // Completion implies full payload verification: recovery never
        // hands corrupted bytes to the reducers.
        EXPECT_TRUE(report.verified)
            << c.name << " compress=" << compress;
      } catch (const ShuffleError& e) {
        // Bounded, typed failure is acceptable; silent corruption or a
        // hang (caught by the ctest TIMEOUT) is not.
        EXPECT_NE(e.block(), 0u) << c.name << " compress=" << compress;
      }
      // Either way the job released its bookkeeping.
      EXPECT_EQ(cluster.master().active_coflows(), 0u) << c.name;
      EXPECT_EQ(cluster.retention().block_count(), 0u) << c.name;
    }
  }
}

TEST(Fault, DisabledInjectorIsByteIdenticalToBaseline) {
  // Baseline: a config that never mentions the fault machinery.
  ClusterConfig baseline = fault_config();
  // Variant: fault knobs present (rates set, seed set) but enabled=false.
  ClusterConfig disabled = fault_config();
  disabled.fault.seed = 1234;
  disabled.fault.set_uniform_rate(1.0);  // must be ignored while disabled

  Cluster a(baseline), b(disabled);
  const ShuffleReport ra = run_shuffle_job(a, small_job(/*seed=*/5));
  const ShuffleReport rb = run_shuffle_job(b, small_job(/*seed=*/5));

  EXPECT_TRUE(ra.verified);
  EXPECT_TRUE(rb.verified);
  // Byte-for-byte identical traffic and zero fault-path activity.
  EXPECT_EQ(ra.raw_bytes, rb.raw_bytes);
  EXPECT_EQ(ra.wire_bytes, rb.wire_bytes);
  EXPECT_EQ(a.total_wire_bytes(), b.total_wire_bytes());
  EXPECT_EQ(a.total_raw_bytes(), b.total_raw_bytes());
  for (const ShuffleReport* r : {&ra, &rb}) {
    EXPECT_EQ(r->faults_injected, 0u);
    EXPECT_EQ(r->retries, 0u);
    EXPECT_EQ(r->retransmits, 0u);
    EXPECT_EQ(r->corrupt_frames, 0u);
    EXPECT_EQ(r->pull_timeouts, 0u);
    EXPECT_EQ(r->gate_evictions, 0u);
    EXPECT_EQ(r->degraded_flows, 0u);
  }
  // Retention never populated on the disabled path.
  EXPECT_EQ(a.retention().block_count(), 0u);
  EXPECT_EQ(b.retention().block_count(), 0u);
  EXPECT_EQ(b.fault_stats().total_injected(), 0u);
}

TEST(Fault, StatsAccumulateAcrossInjections) {
  ClusterConfig config = fault_config();
  config.fault.enabled = true;
  config.fault.drop_rate = 0.4;
  config.fault.seed = 7;
  Cluster cluster(config);
  const ShuffleReport report = run_shuffle_job(cluster, small_job());
  EXPECT_TRUE(report.verified);
  const FaultStats stats = cluster.fault_stats();
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.pull_timeouts, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.total_injected(), stats.injected_drops);
  // Report deltas match the cluster-wide counters for a single job.
  EXPECT_EQ(report.retransmits, stats.retransmits);
  EXPECT_EQ(report.pull_timeouts, stats.pull_timeouts);
}

TEST(ShuffleError, CarriesCoordinatesAndKind) {
  const ShuffleError e(ShuffleFailure::kCorruption, 3, 14, 14);
  EXPECT_EQ(e.kind(), ShuffleFailure::kCorruption);
  EXPECT_EQ(e.coflow(), 3u);
  EXPECT_EQ(e.flow(), 14u);
  EXPECT_EQ(e.block(), 14u);
  const std::string what = e.what();
  EXPECT_NE(what.find("corruption"), std::string::npos);
  EXPECT_NE(what.find("14"), std::string::npos);
}

TEST(Cluster, KillWorkerNeverKillsLastSurvivor) {
  ClusterConfig config = fault_config();
  config.num_workers = 2;
  Cluster cluster(config);
  cluster.kill_worker(0);
  EXPECT_TRUE(cluster.worker_dead(0));
  cluster.kill_worker(1);  // refused: last one standing
  EXPECT_FALSE(cluster.worker_dead(1));
  EXPECT_EQ(cluster.effective_worker(0), 1u);
  EXPECT_EQ(cluster.effective_worker(1), 1u);
}

// ---------------------------------------------------------------------------
// Master checkpoint/restore and fail-over (DESIGN.md section 13)
// ---------------------------------------------------------------------------

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "swallow-master-XXXXXX")
            .string();
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) throw std::runtime_error("mkdtemp failed");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Master make_master(const ClusterConfig& config) {
  return Master(config.nic_rate, config.codec_model, config.cpu_headroom,
                config.smart_compress, config.sink,
                config.retry.degrade_after);
}

CoflowInfo two_flow_coflow(RtFlowId first_flow) {
  CoflowInfo info;
  info.flows.push_back(FlowInfo{first_flow, 0, 0, 1, 64 * 1024, true});
  info.flows.push_back(FlowInfo{first_flow + 1, 0, 1, 2, 32 * 1024, true});
  return info;
}

TEST(MasterRecovery, StateRoundTripIsExact) {
  const ClusterConfig config = fault_config();
  Master original = make_master(config);
  const CoflowRef ref = original.add(two_flow_coflow(100));
  original.alloc(original.scheduling({ref}));
  // Degrade flow 101 so the restored master must remember the ladder.
  original.record_flow_failure(101);
  original.record_flow_failure(101);
  ASSERT_TRUE(original.decision_of(101).degraded);

  recovery::StateWriter w;
  original.save_state(w);
  Master restored = make_master(config);
  recovery::StateReader r(w.buffer());
  restored.restore_state(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(restored.active_coflows(), original.active_coflows());
  EXPECT_EQ(restored.decision_count(), original.decision_count());
  EXPECT_EQ(restored.rank_count(), original.rank_count());
  EXPECT_EQ(restored.degraded_flows(), original.degraded_flows());
  EXPECT_EQ(restored.rank_of(ref), original.rank_of(ref));
  EXPECT_EQ(restored.flows_of(ref), original.flows_of(ref));
  for (const RtFlowId flow : {RtFlowId{100}, RtFlowId{101}}) {
    const FlowDecision a = original.decision_of(flow);
    const FlowDecision b = restored.decision_of(flow);
    EXPECT_EQ(a.compress, b.compress) << flow;
    EXPECT_EQ(a.rate, b.rate) << flow;
    EXPECT_EQ(a.degraded, b.degraded) << flow;
  }
  // The ref counter survived: both masters hand out the same next ref.
  EXPECT_EQ(restored.add(two_flow_coflow(200)),
            original.add(two_flow_coflow(200)));
}

TEST(MasterRecovery, RestoreStateRejectsMalformedBytes) {
  const ClusterConfig config = fault_config();
  Master original = make_master(config);
  const CoflowRef ref = original.add(two_flow_coflow(100));
  original.alloc(original.scheduling({ref}));
  recovery::StateWriter w;
  original.save_state(w);
  const std::vector<std::uint8_t>& bytes = w.buffer();
  for (std::size_t len = 0; len < bytes.size(); len += 5) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    Master victim = make_master(config);
    recovery::StateReader r(cut);
    EXPECT_THROW(victim.restore_state(r), recovery::RecoveryError)
        << "truncated to " << len;
  }
}

TEST(MasterRecovery, CheckpointIsFingerprintGuarded) {
  const ClusterConfig config = fault_config();
  TempDir dir;
  Master original = make_master(config);
  const CoflowRef ref = original.add(two_flow_coflow(100));
  original.alloc(original.scheduling({ref}));
  original.checkpoint(dir.str(), 1);

  Master same = make_master(config);
  EXPECT_TRUE(same.restore_from(dir.str()));
  EXPECT_EQ(same.rank_of(ref), original.rank_of(ref));

  // A master configured differently must not accept the snapshot.
  ClusterConfig other = fault_config();
  other.nic_rate = config.nic_rate * 2;
  Master mismatched = make_master(other);
  EXPECT_FALSE(mismatched.restore_from(dir.str()));
  EXPECT_EQ(mismatched.active_coflows(), 0u);

  TempDir empty;
  Master cold = make_master(config);
  EXPECT_FALSE(cold.restore_from(empty.str()));
}

/// Drives a manual push cycle, crashes the master (blank replacement),
/// wipes every worker store (the crash takes receiver memory with it),
/// fails over, and checks the retained in-flight blocks replay so pulls
/// complete with the original payloads.
void failover_round(bool with_snapshot) {
  SCOPED_TRACE(with_snapshot ? "snapshot failover" : "cold failover");
  ClusterConfig config = fault_config();
  config.fault.enabled = true;  // rates stay 0: retention on, no faults
  Cluster cluster(config);
  SwallowContext ctx(cluster);

  const std::vector<RtFlowId> blocks = {501, 502, 503, 504};
  std::map<RtFlowId, codec::Buffer> payloads;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    codec::Buffer data(8 * 1024);
    for (std::size_t k = 0; k < data.size(); ++k)
      data[k] = static_cast<std::uint8_t>((k * (i + 3)) & 0xff);
    payloads[blocks[i]] = std::move(data);
    const auto src = static_cast<WorkerId>(i % cluster.size());
    const auto dst = static_cast<WorkerId>((i + 1) % cluster.size());
    cluster.worker(src).register_flow(
        FlowInfo{blocks[i], 0, src, dst, payloads[blocks[i]].size(), true});
  }
  std::vector<FlowInfo> all_flows;
  for (WorkerId w = 0; w < cluster.size(); ++w) {
    auto flows = ctx.hook(w);
    all_flows.insert(all_flows.end(), flows.begin(), flows.end());
  }
  const CoflowRef ref = ctx.add(ctx.aggregate(std::move(all_flows)));
  ctx.alloc(ctx.scheduling({ref}));
  for (std::size_t i = 0; i < blocks.size(); ++i)
    ctx.push(ref, blocks[i], payloads[blocks[i]],
             static_cast<WorkerId>(i % cluster.size()),
             static_cast<WorkerId>((i + 1) % cluster.size()));

  TempDir dir;
  if (with_snapshot) cluster.master().checkpoint(dir.str(), 1);

  // Crash: the replacement master knows nothing, and the receivers' block
  // stores died with the process.
  {
    Master blank = make_master(config);
    recovery::StateWriter w;
    blank.save_state(w);
    recovery::StateReader r(w.buffer());
    cluster.master().restore_state(r);
  }
  for (WorkerId w = 0; w < cluster.size(); ++w)
    cluster.worker(w).store().clear();
  ASSERT_EQ(cluster.master().active_coflows(), 0u);

  EXPECT_EQ(cluster.restore_master(dir.str()), with_snapshot);
  ASSERT_TRUE(cluster.master().has_coflow(ref));
  if (!with_snapshot) {
    // Cold fail-over recovers registrations but not decisions; the driver
    // re-runs the scheduling round exactly as after any arrival.
    ctx.alloc(ctx.scheduling({ref}));
  }
  EXPECT_EQ(ctx.replay_in_flight(), blocks.size());
  // Nothing missing: a second replay is a no-op.
  EXPECT_EQ(ctx.replay_in_flight(), 0u);

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const codec::Buffer got = ctx.pull(
        ref, blocks[i], static_cast<WorkerId>((i + 1) % cluster.size()));
    EXPECT_EQ(got, payloads[blocks[i]]) << "block " << blocks[i];
  }

  // remove() prunes the logs: a later fail-over cannot resurrect the job.
  ctx.remove(ref);
  for (WorkerId w = 0; w < cluster.size(); ++w)
    EXPECT_TRUE(cluster.worker(w).registration_log().empty()) << w;
  EXPECT_EQ(cluster.retention().block_count(), 0u);
}

TEST(MasterRecovery, FailoverFromSnapshotReplaysInFlightBlocks) {
  failover_round(/*with_snapshot=*/true);
}

TEST(MasterRecovery, ColdFailoverReregistersFromWorkerLogs) {
  failover_round(/*with_snapshot=*/false);
}

// ---------------------------------------------------------------------------
// Timed-wait hygiene: absolute deadlines, no drift, no early timeout
// ---------------------------------------------------------------------------

TEST(TimedWaits, TakeForDeadlineDoesNotDriftUnderWakeups) {
  BlockStore store;
  const BlockKey wanted{1, 1};
  const BlockKey noise{2, 2};
  // A nuisance thread pounds the store's condvar with unrelated puts: each
  // wakeup must consume the remaining budget, not restart it. A drifting
  // wait would stretch far past the 150 ms deadline.
  std::atomic<bool> stop{false};
  std::thread nuisance([&] {
    while (!stop.load()) {
      store.put(noise, codec::Buffer(16));
      (void)store.take_for(noise, 0.001);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = store.take_for(wanted, 0.15);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true);
  nuisance.join();
  EXPECT_FALSE(result.has_value());
  EXPECT_GE(elapsed, 0.15);
  EXPECT_LT(elapsed, 1.0);  // drift bound, generous for loaded CI machines
}

TEST(TimedWaits, TakeForStillDeliversLateArrivals) {
  BlockStore store;
  const BlockKey key{3, 3};
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    store.put(key, codec::Buffer(32, std::uint8_t{7}));
  });
  const auto result = store.take_for(key, 5.0);
  producer.join();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 32u);
}

TEST(TimedWaits, ReceiveForTimesOutOnTimeAndDeliversInTime) {
  Channel<int> chan;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(chan.receive_for(std::chrono::milliseconds(80)).has_value());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.08);
  EXPECT_LT(elapsed, 1.0);

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    chan.send(42);
  });
  const auto got = chan.receive_for(std::chrono::seconds(5));
  producer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);

  chan.close();
  EXPECT_FALSE(chan.receive_for(std::chrono::seconds(5)).has_value());
}

}  // namespace
}  // namespace swallow::runtime
