// Rate-solver tests: feasibility, (weighted) max-min fairness against known
// closed forms — including the exact Fig. 4 rate vectors — strict priority,
// MADD and backfill.
#include <gtest/gtest.h>

#include "fabric/allocation.hpp"

namespace swallow::fabric {
namespace {

/// The motivation example's flows over three unit-capacity egress channels
/// (ingress made non-binding), ids 0..4 = f1, f2, f3, f4, f5.
class Fig4Flows : public ::testing::Test {
 protected:
  Fig4Flows() : fabric_({100, 100, 100}, {1, 1, 1}) {
    auto add = [&](FlowId id, PortId src, PortId dst, double bytes) {
      Flow f;
      f.id = id;
      f.src = src;
      f.dst = dst;
      f.raw_remaining = bytes;
      flows_.push_back(f);
    };
    add(0, 0, 0, 4);  // f1
    add(1, 1, 1, 4);  // f2
    add(2, 0, 2, 2);  // f3
    add(3, 2, 1, 2);  // f4
    add(4, 1, 2, 3);  // f5
  }

  std::vector<const Flow*> ptrs() const {
    std::vector<const Flow*> out;
    for (const auto& f : flows_) out.push_back(&f);
    return out;
  }

  Fabric fabric_;
  std::vector<Flow> flows_;
};

TEST(Allocation, StoresRatesAndCompressFlags) {
  Allocation a;
  EXPECT_DOUBLE_EQ(a.rate(42), 0.0);
  EXPECT_FALSE(a.compress(42));
  a.set_rate(42, 7.5);
  a.set_compress(42, true);
  EXPECT_DOUBLE_EQ(a.rate(42), 7.5);
  EXPECT_TRUE(a.compress(42));
  EXPECT_THROW(a.set_rate(1, -1.0), std::invalid_argument);
}

TEST_F(Fig4Flows, FeasibilityDetectsOverload) {
  Allocation a;
  for (const auto& f : flows_) a.set_rate(f.id, 0.4);
  EXPECT_TRUE(feasible(a, ptrs(), fabric_));
  a.set_rate(1, 0.7);  // egress 1 now carries 0.7 + 0.4
  EXPECT_FALSE(feasible(a, ptrs(), fabric_));
}

TEST_F(Fig4Flows, MaxMinMatchesClosedForm) {
  // PFF on the example: f1 = 1 (alone on A); B and C split evenly.
  const std::vector<double> unit(5, 1.0);
  const Allocation a = weighted_max_min(ptrs(), unit, fabric_);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 0.5, 1e-9);
  EXPECT_NEAR(a.rate(3), 0.5, 1e-9);
  EXPECT_NEAR(a.rate(2), 0.5, 1e-9);
  EXPECT_NEAR(a.rate(4), 0.5, 1e-9);
  EXPECT_TRUE(feasible(a, ptrs(), fabric_));
}

TEST_F(Fig4Flows, WeightedMaxMinMatchesWssClosedForm) {
  // Volume weights: B splits 4:2 -> 2/3, 1/3; C splits 2:3 -> 0.4, 0.6.
  std::vector<double> weights;
  for (const auto& f : flows_) weights.push_back(f.volume());
  const Allocation a = weighted_max_min(ptrs(), weights, fabric_);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(3), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(2), 0.4, 1e-9);
  EXPECT_NEAR(a.rate(4), 0.6, 1e-9);
}

TEST_F(Fig4Flows, MaxMinIsWorkConservingOnContendedPorts) {
  const std::vector<double> unit(5, 1.0);
  const Allocation a = weighted_max_min(ptrs(), unit, fabric_);
  EXPECT_NEAR(a.rate(1) + a.rate(3), 1.0, 1e-9);  // egress 1 saturated
  EXPECT_NEAR(a.rate(2) + a.rate(4), 1.0, 1e-9);  // egress 2 saturated
}

TEST(MaxMin, RespectsIngressConstraints) {
  // Two flows share one ingress port feeding two different egresses.
  const Fabric fabric({1.0, 1.0}, {10.0, 10.0});
  Flow a, b;
  a.id = 0;
  a.src = 0;
  a.dst = 0;
  a.raw_remaining = 5;
  b.id = 1;
  b.src = 0;
  b.dst = 1;
  b.raw_remaining = 5;
  const std::vector<const Flow*> flows{&a, &b};
  const Allocation alloc = weighted_max_min(flows, {1.0, 1.0}, fabric);
  EXPECT_NEAR(alloc.rate(0), 0.5, 1e-9);
  EXPECT_NEAR(alloc.rate(1), 0.5, 1e-9);
}

TEST(MaxMin, RejectsWeightMismatch) {
  const Fabric fabric(1, 1.0);
  EXPECT_THROW(weighted_max_min({}, {1.0}, fabric), std::invalid_argument);
}

TEST_F(Fig4Flows, StrictPriorityGivesHeadFullRate) {
  // Order f4 before f2 on egress 1: f4 gets 1, f2 gets 0.
  const auto all = ptrs();
  const std::vector<const Flow*> order{all[3], all[1], all[0], all[2],
                                       all[4]};
  const Allocation a = strict_priority(order, fabric_);
  EXPECT_NEAR(a.rate(3), 1.0, 1e-9);
  EXPECT_NEAR(a.rate(1), 0.0, 1e-9);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);  // A uncontended
  EXPECT_NEAR(a.rate(2), 1.0, 1e-9);  // C head
  EXPECT_NEAR(a.rate(4), 0.0, 1e-9);
  EXPECT_TRUE(feasible(a, ptrs(), fabric_));
}

TEST_F(Fig4Flows, MaddFinishesAllFlowsTogether) {
  Allocation a;
  PortHeadroom headroom(fabric_);
  const auto all = ptrs();
  // C2 = {f4 (2 bytes), f5 (3 bytes)}, gamma = 3.
  madd_into(a, {all[3], all[4]}, 3.0, headroom);
  EXPECT_NEAR(a.rate(3), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(4), 1.0, 1e-9);
  // Headroom consumed on the right ports.
  EXPECT_NEAR(headroom.egress(1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(headroom.egress(2), 0.0, 1e-9);
}

TEST_F(Fig4Flows, MaddClampsToHeadroom) {
  Allocation a;
  PortHeadroom headroom(fabric_);
  const auto all = ptrs();
  madd_into(a, {all[4]}, 3.0, headroom);  // f5 takes all of egress 2
  madd_into(a, {all[2]}, 1.0, headroom);  // f3 wants 2/1 = 2, gets 0
  EXPECT_NEAR(a.rate(2), 0.0, 1e-9);
  EXPECT_THROW(madd_into(a, {all[0]}, 0.0, headroom), std::invalid_argument);
}

TEST_F(Fig4Flows, BackfillSaturatesResidualCapacity) {
  Allocation a;
  PortHeadroom headroom(fabric_);
  const auto all = ptrs();
  madd_into(a, {all[3], all[4]}, 3.0, headroom);
  backfill_into(a, all, headroom);
  // Egress 1 residual 1/3 goes to f2 (first in order with headroom).
  EXPECT_NEAR(a.rate(1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate(0), 1.0, 1e-9);
  EXPECT_TRUE(feasible(a, ptrs(), fabric_));
}

TEST(PortHeadroom, AvailableIsMinOfBothPorts) {
  const Fabric fabric({4.0, 8.0}, {6.0, 2.0});
  PortHeadroom headroom(fabric);
  Flow f;
  f.src = 1;
  f.dst = 1;
  EXPECT_DOUBLE_EQ(headroom.available(f), 2.0);
  headroom.consume(f, 2.0);
  EXPECT_DOUBLE_EQ(headroom.available(f), 0.0);
  EXPECT_DOUBLE_EQ(headroom.ingress(1), 6.0);
}

TEST(MaxMin, ManyFlowsOnePortEqualShares) {
  const Fabric fabric(2, 12.0);
  std::vector<Flow> flows(6);
  std::vector<const Flow*> ptrs;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].id = i;
    flows[i].src = 0;
    flows[i].dst = 1;
    flows[i].raw_remaining = 10;
    ptrs.push_back(&flows[i]);
  }
  const Allocation a =
      weighted_max_min(ptrs, std::vector<double>(6, 1.0), fabric);
  for (const auto* f : ptrs) EXPECT_NEAR(a.rate(f->id), 2.0, 1e-9);
}

}  // namespace
}  // namespace swallow::fabric
