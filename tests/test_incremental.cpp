// Incremental scheduling (DESIGN.md section 11): byte-identity against the
// full recompute, plus unit coverage of the dirty-set tracker and the rank
// index.
//
// The engine runs the same event-driven sequence twice — once with the
// DirtyTracker feed (memoized Γ, rank-index admission) and once with
// incremental_sched off (historical full recompute per round) — and every
// Metrics record must match with exact FP equality. The randomized sweep
// crosses schedulers with degradation, quantized completions and
// non-constant CPU providers, which together exercise every dirty rule:
// arrivals, flow completions, compression-finished, capacity multipliers,
// CPU headroom changes and priority upgrades.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "sched/dirty.hpp"
#include "sched/rank_index.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace swallow;

workload::Trace make_trace(std::uint64_t seed, std::size_t coflows,
                           std::size_t ports) {
  workload::GeneratorConfig gen;
  gen.num_ports = ports;
  gen.num_coflows = coflows;
  gen.mean_interarrival = 0.3;
  gen.size_lo = 1e5;
  gen.size_hi = 2e8;
  gen.size_alpha = 0.2;
  gen.width_lo = 1;
  gen.width_hi = 5;
  gen.seed = seed;
  return workload::generate_trace(gen);
}

sim::Metrics run_once(const workload::Trace& trace,
                      const fabric::Fabric& fabric,
                      const cpu::CpuProvider& cpu, const std::string& name,
                      sim::SimConfig config, bool incremental) {
  config.engine_mode = sim::EngineMode::kEventDriven;
  config.incremental_sched = incremental;
  auto sched = sim::make_scheduler(name);  // fresh: schedulers are stateful
  return sim::run_simulation(trace, fabric, cpu, *sched, config);
}

// Exact (bitwise-value) comparison of every record the engine emits.
void expect_identical(const sim::Metrics& a, const sim::Metrics& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].id, b.flows[i].id);
    EXPECT_EQ(a.flows[i].completion, b.flows[i].completion) << "flow " << i;
    EXPECT_EQ(a.flows[i].wire_bytes, b.flows[i].wire_bytes) << "flow " << i;
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].id, b.coflows[i].id);
    EXPECT_EQ(a.coflows[i].completion, b.coflows[i].completion)
        << "coflow " << i;
    EXPECT_EQ(a.coflows[i].wire_bytes, b.coflows[i].wire_bytes)
        << "coflow " << i;
  }
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (std::size_t i = 0; i < a.utilization.size(); ++i) {
    EXPECT_EQ(a.utilization[i].t, b.utilization[i].t);
    EXPECT_EQ(a.utilization[i].egress_utilization,
              b.utilization[i].egress_utilization)
        << "sample " << i;
  }
  EXPECT_EQ(a.degradation.capacity_changes, b.degradation.capacity_changes);
  EXPECT_EQ(a.degradation.link_failures, b.degradation.link_failures);
  EXPECT_EQ(a.degradation.stalled_flow_slices,
            b.degradation.stalled_flow_slices);
  EXPECT_EQ(a.degradation.compression_flips, b.degradation.compression_flips);
}

void expect_incremental_identity(const workload::Trace& trace,
                                 const fabric::Fabric& fabric,
                                 const cpu::CpuProvider& cpu,
                                 const std::string& name,
                                 const sim::SimConfig& config,
                                 const std::string& label) {
  const sim::Metrics inc = run_once(trace, fabric, cpu, name, config, true);
  const sim::Metrics full = run_once(trace, fabric, cpu, name, config, false);
  expect_identical(inc, full, label);
}

TEST(IncrementalIdentity, RandomizedSweep) {
  // Schedulers x degradation x quantized completions, two seeds each. FVDF
  // covers priority upgrades and the compression dirty rules; SEBF and AALO
  // cover the non-FVDF index paths.
  const std::vector<std::string> names = {"FVDF", "FVDF-NC", "FVDF-BLIND",
                                          "SEBF", "AALO"};
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const workload::Trace trace = make_trace(seed, 24, 12);
    const fabric::Fabric fabric(trace.num_ports, common::mbps(150));
    const cpu::ConstantCpu cpu(0.85);
    for (const bool degrade : {false, true}) {
      for (const bool quantize : {false, true}) {
        sim::SimConfig config;
        config.codec = &codec::default_codec_model();
        config.quantize_completions = quantize;
        config.utilization_sample_period = 0.25;
        config.max_time = 72000.0;
        if (degrade) {
          config.degradation.rate = 0.15;
          config.degradation.seed = seed + 1;
          config.degradation.failure_fraction = 0.3;
        }
        for (const std::string& name : names) {
          const std::string label =
              name + " seed=" + std::to_string(seed) +
              " degrade=" + (degrade ? "1" : "0") +
              " quantize=" + (quantize ? "1" : "0");
          expect_incremental_identity(trace, fabric, cpu, name, config,
                                      label);
        }
      }
    }
  }
}

TEST(IncrementalIdentity, WindowedCpuHeavyFailures) {
  // Non-constant CPU under heavy link failures: exercises the per-port CPU
  // sampling rule (value-compared headroom + compress gate) together with
  // capacity dirtying and long starvation stretches (priority upgrades).
  const workload::Trace trace = make_trace(17, 20, 10);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(100));
  const cpu::WindowedCpu cpu({{0.0, 1.0}, {2.0, 3.5}, {5.0, 9.0}}, 0.9, 0.0);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  config.utilization_sample_period = 0.5;
  config.max_time = 72000.0;
  config.degradation.rate = 0.2;
  config.degradation.seed = 29;
  config.degradation.failure_fraction = 0.4;
  expect_incremental_identity(trace, fabric, cpu, "FVDF", config,
                              "windowed cpu, heavy failures");
  expect_incremental_identity(trace, fabric, cpu, "SEBF", config,
                              "windowed cpu, heavy failures, sebf");
}

TEST(IncrementalIdentity, BurstyCpu) {
  const workload::Trace trace = make_trace(23, 16, 8);
  const fabric::Fabric fabric(trace.num_ports, common::mbps(100));
  cpu::BurstyCpu::Config bc;
  bc.nodes = 8;
  bc.idle_fraction = 0.5;
  bc.mean_burst = 0.5;
  bc.seed = 31;
  const cpu::BurstyCpu cpu(bc);
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  expect_incremental_identity(trace, fabric, cpu, "FVDF", config,
                              "bursty cpu");
  expect_incremental_identity(trace, fabric, cpu, "FVDF-BLIND", config,
                              "bursty cpu, blind");
}

// ---- DirtyTracker unit tests ----

struct TrackerWorld {
  std::vector<fabric::Flow> flows;
  std::vector<fabric::Coflow> coflows;

  // One coflow, `width` flows on ports (src, dst), (src+0/1, dst) ...
  fabric::CoflowId add_coflow(std::vector<std::pair<fabric::PortId,
                                                    fabric::PortId>> lanes) {
    fabric::Coflow c;
    c.id = coflows.size();
    for (const auto& [src, dst] : lanes) {
      fabric::Flow f;
      f.id = flows.size();
      f.coflow = c.id;
      f.src = src;
      f.dst = dst;
      f.original_bytes = 1e6;
      f.raw_remaining = 1e6;
      c.flows.push_back(f.id);
      flows.push_back(f);
    }
    coflows.push_back(c);
    return c.id;
  }
};

TEST(DirtyTracker, CapacityChangeDirtiesExactlyResidents) {
  TrackerWorld w;
  const auto c0 = w.add_coflow({{0, 1}});
  const auto c1 = w.add_coflow({{2, 3}});
  const auto c2 = w.add_coflow({{0, 3}, {2, 1}});
  sched::DirtyTracker tracker(4);
  tracker.bind_flows(w.flows.data(), w.flows.size());
  for (const auto& c : w.coflows) tracker.coflow_arrived(&c);
  tracker.consume();  // drop the arrival marks

  // Port 0 ingress: c0 and c2 source there, c1 does not.
  tracker.port_capacity_changed(0);
  EXPECT_EQ(tracker.dirty(), (std::vector<fabric::CoflowId>{c0, c2}));
  EXPECT_EQ(tracker.level(c0), sched::DirtyLevel::kRecompute);
  EXPECT_EQ(tracker.level(c1), sched::DirtyLevel::kClean);
  tracker.consume();

  // Port 3 egress: c1 and c2 sink there.
  tracker.port_capacity_changed(3);
  EXPECT_EQ(tracker.dirty(), (std::vector<fabric::CoflowId>{c1, c2}));
  tracker.consume();

  // A port no coflow touches dirties nothing... and there is no port 1
  // sourcing, only sinking: src and dst residency are tracked separately.
  EXPECT_TRUE(tracker.src_residents(1).empty());
  EXPECT_EQ(tracker.src_residents(0),
            (std::vector<fabric::CoflowId>{c0, c2}));
  EXPECT_EQ(tracker.dst_residents(1),
            (std::vector<fabric::CoflowId>{c0, c2}));
}

TEST(DirtyTracker, CompletedResidentsArePrunedLazily) {
  TrackerWorld w;
  const auto c0 = w.add_coflow({{0, 1}});
  const auto c1 = w.add_coflow({{0, 2}});
  sched::DirtyTracker tracker(3);
  tracker.bind_flows(w.flows.data(), w.flows.size());
  for (const auto& c : w.coflows) tracker.coflow_arrived(&c);
  tracker.consume();

  w.coflows[c0].completion = 5.0;  // completed: must stop getting dirtied
  tracker.port_capacity_changed(0);
  EXPECT_EQ(tracker.dirty(), (std::vector<fabric::CoflowId>{c1}));
  // ... and the resident list was compacted in the same pass.
  EXPECT_EQ(tracker.src_residents(0), (std::vector<fabric::CoflowId>{c1}));
}

TEST(DirtyTracker, LevelsMergeUpwardAndConsumeClears) {
  TrackerWorld w;
  const auto c0 = w.add_coflow({{0, 1}});
  sched::DirtyTracker tracker(2);
  tracker.bind_flows(w.flows.data(), w.flows.size());
  tracker.coflow_arrived(&w.coflows[c0]);
  tracker.consume();

  tracker.priority_changed(c0);
  EXPECT_EQ(tracker.level(c0), sched::DirtyLevel::kKeyOnly);
  tracker.coflow_changed(c0);
  EXPECT_EQ(tracker.level(c0), sched::DirtyLevel::kRecompute);
  // A later key-only mark must not downgrade the recompute.
  tracker.priority_changed(c0);
  EXPECT_EQ(tracker.level(c0), sched::DirtyLevel::kRecompute);
  // Deduplicated: three marks, one dirty entry.
  EXPECT_EQ(tracker.dirty().size(), 1u);

  tracker.consume();
  EXPECT_TRUE(tracker.dirty().empty());
  EXPECT_EQ(tracker.level(c0), sched::DirtyLevel::kClean);
}

TEST(DirtyTracker, CpuSamplingDirtiesOnValueChangesOnly) {
  TrackerWorld w;
  const auto c0 = w.add_coflow({{0, 1}});
  w.add_coflow({{1, 0}});
  sched::DirtyTracker tracker(2);
  tracker.bind_flows(w.flows.data(), w.flows.size());
  for (const auto& c : w.coflows) tracker.coflow_arrived(&c);
  tracker.consume();

  // Constant provider: the first sample records, later samples never dirty.
  const cpu::ConstantCpu constant(0.9);
  tracker.sample_cpu(constant, 0.0);
  EXPECT_TRUE(tracker.dirty().empty());
  tracker.sample_cpu(constant, 10.0);
  EXPECT_TRUE(tracker.dirty().empty());

  // Windowed provider on port 0 only: idle until t=1, busy after. The
  // busy transition changes headroom at port 0 (and port 1 — same windows),
  // dirtying the coflows *sourced* at those ports.
  sched::DirtyTracker tracker2(2);
  tracker2.bind_flows(w.flows.data(), w.flows.size());
  for (const auto& c : w.coflows) tracker2.coflow_arrived(&c);
  tracker2.consume();
  const cpu::WindowedCpu windowed({{0.0, 1.0}}, 0.9, 0.0);
  tracker2.sample_cpu(windowed, 0.5);  // first sample: record only
  EXPECT_TRUE(tracker2.dirty().empty());
  tracker2.sample_cpu(windowed, 0.6);  // unchanged values: no dirt
  EXPECT_TRUE(tracker2.dirty().empty());
  tracker2.sample_cpu(windowed, 2.0);  // idle -> busy: both src ports moved
  EXPECT_EQ(tracker2.dirty().size(), 2u);
  EXPECT_EQ(tracker2.level(c0), sched::DirtyLevel::kRecompute);
}

// ---- RankIndex unit tests ----

TEST(RankIndex, OrderedIterationAndUpdate) {
  sched::RankIndex index;
  index.insert_or_update(7, {3.0, 0.0, 7});
  index.insert_or_update(2, {1.0, 0.0, 2});
  index.insert_or_update(5, {2.0, 0.0, 5});
  auto order = [&] {
    std::vector<fabric::CoflowId> ids;
    index.for_each([&](fabric::CoflowId id) { ids.push_back(id); });
    return ids;
  };
  EXPECT_EQ(order(), (std::vector<fabric::CoflowId>{2, 5, 7}));

  // Decrease-key moves the coflow; size is unchanged.
  index.insert_or_update(7, {0.5, 0.0, 7});
  EXPECT_EQ(order(), (std::vector<fabric::CoflowId>{7, 2, 5}));
  EXPECT_EQ(index.size(), 3u);

  // Re-insert with the identical key is a no-op.
  index.insert_or_update(5, {2.0, 0.0, 5});
  EXPECT_EQ(order(), (std::vector<fabric::CoflowId>{7, 2, 5}));

  // Ties on the primary key fall back to arrival, then id.
  index.insert_or_update(9, {2.0, 0.0, 9});
  index.insert_or_update(1, {2.0, -1.0, 1});
  EXPECT_EQ(order(), (std::vector<fabric::CoflowId>{7, 2, 1, 5, 9}));

  index.erase(2);
  EXPECT_FALSE(index.contains(2));
  EXPECT_TRUE(index.contains(5));
  EXPECT_EQ(order(), (std::vector<fabric::CoflowId>{7, 1, 5, 9}));
  index.erase(2);  // double-erase is a no-op
  EXPECT_EQ(index.size(), 4u);

  index.clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.contains(7));
}

TEST(RankIndex, InfinityKeysRankLastAndTieById) {
  // A failed link makes Γ infinite; +inf keys must sort after every finite
  // key and tie-break among themselves by (arrival, id) — matching the
  // full-path stable_sort exactly.
  const double inf = std::numeric_limits<double>::infinity();
  sched::RankIndex index;
  index.insert_or_update(4, {inf, 1.0, 4});
  index.insert_or_update(3, {2.0, 0.0, 3});
  index.insert_or_update(6, {inf, 1.0, 6});
  std::vector<fabric::CoflowId> ids;
  index.for_each([&](fabric::CoflowId id) { ids.push_back(id); });
  EXPECT_EQ(ids, (std::vector<fabric::CoflowId>{3, 4, 6}));
}

}  // namespace
