// Framed-container tests: roundtrips across codecs/block sizes/thread
// counts, determinism of parallel compression, checksum catching the
// corruption class bare LZ decoding cannot, and header validation.
#include <gtest/gtest.h>

#include <tuple>

#include "codec/frame.hpp"
#include "codec/synth_data.hpp"

namespace swallow::codec {
namespace {

using common::Rng;

class FrameRoundtrip
    : public ::testing::TestWithParam<std::tuple<CodecKind, int, unsigned>> {};

TEST_P(FrameRoundtrip, CompressDecompressIsIdentity) {
  const auto [kind, size, threads] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) + threads);
  const Buffer payload =
      mixed_bytes(static_cast<std::size_t>(size), rng, 0.2);
  const auto codec = make_codec(kind);
  const Buffer frame =
      frame_compress(*codec, payload, 16 * 1024, threads);
  EXPECT_TRUE(is_frame(frame));
  EXPECT_EQ(frame_decompressed_size(frame), payload.size());
  EXPECT_EQ(frame_decompress(frame, threads), payload);
}

std::string frame_param_name(
    const ::testing::TestParamInfo<std::tuple<CodecKind, int, unsigned>>&
        info) {
  std::string s = codec_kind_name(std::get<0>(info.param));
  for (auto& c : s)
    if (c == '-') c = '_';
  return s + "_" + std::to_string(std::get<1>(info.param)) + "b_" +
         std::to_string(std::get<2>(info.param)) + "t";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrameRoundtrip,
    ::testing::Combine(::testing::Values(CodecKind::kNull,
                                         CodecKind::kLzBalanced,
                                         CodecKind::kLzFast),
                       ::testing::Values(0, 1, 16384, 100000),
                       ::testing::Values(1u, 4u)),
    frame_param_name);

TEST(Frame, ParallelOutputIsByteIdentical) {
  Rng rng(5);
  const Buffer payload = text_bytes(300000, rng);
  const auto codec = make_codec(CodecKind::kLzBalanced);
  const Buffer serial = frame_compress(*codec, payload, 32 * 1024, 1);
  const Buffer parallel = frame_compress(*codec, payload, 32 * 1024, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(Frame, ChecksumCatchesSilentLiteralFlips) {
  // A flipped literal byte decodes "successfully" through a bare LZ
  // container; the frame checksum must reject it.
  Rng rng(6);
  const Buffer payload = text_bytes(60000, rng);
  const auto codec = make_codec(CodecKind::kLzBalanced);
  Buffer frame = frame_compress(*codec, payload, 16 * 1024);
  int rejected = 0, clean = 0;
  Rng fuzz(7);
  for (int round = 0; round < 60; ++round) {
    Buffer corrupt = frame;
    const std::size_t pos = static_cast<std::size_t>(
        fuzz.uniform_int(5, corrupt.size() - 1));
    corrupt[pos] ^= static_cast<std::uint8_t>(1 + fuzz.uniform_int(0, 254));
    try {
      const Buffer out = frame_decompress(corrupt);
      // Only acceptable outcome: the decode is bit-perfect anyway (the
      // flip hit a redundant byte — cannot happen with this layout).
      EXPECT_EQ(out, payload);
      ++clean;
    } catch (const CodecError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(clean, 0);
  EXPECT_EQ(rejected, 60);
}

TEST(Frame, RejectsBadHeaders) {
  Rng rng(8);
  const Buffer payload = text_bytes(1000, rng);
  const auto codec = make_codec(CodecKind::kLzBalanced);
  Buffer frame = frame_compress(*codec, payload);

  Buffer bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_THROW(frame_decompress(bad_magic), CodecError);
  EXPECT_FALSE(is_frame(bad_magic));
  EXPECT_THROW(frame_decompressed_size(bad_magic), CodecError);

  Buffer bad_codec = frame;
  bad_codec[4] = 0x7f;
  EXPECT_THROW(frame_decompress(bad_codec), CodecError);

  Buffer truncated = frame;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(frame_decompress(truncated), CodecError);

  Buffer trailing = frame;
  trailing.push_back(0);
  EXPECT_THROW(frame_decompress(trailing), CodecError);

  EXPECT_THROW(frame_compress(*codec, payload, 0), CodecError);
}

TEST(Frame, EmptyPayload) {
  const auto codec = make_codec(CodecKind::kLzBalanced);
  const Buffer frame = frame_compress(*codec, {});
  EXPECT_EQ(frame_decompressed_size(frame), 0u);
  EXPECT_TRUE(frame_decompress(frame).empty());
}

TEST(Frame, Fnv1aKnownVector) {
  // FNV-1a 64-bit of empty input is the offset basis.
  EXPECT_EQ(fnv1a64({}), 14695981039346656037ULL);
  const Buffer a{'a'};
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cULL);
}

TEST(Frame, BlockSizeBoundsCompressionMemory) {
  // Many small blocks vs one big block: both roundtrip; the framed size
  // overhead stays proportional to the block count.
  Rng rng(9);
  const Buffer payload = run_bytes(200000, rng);
  const auto codec = make_codec(CodecKind::kLzBalanced);
  const Buffer small_blocks = frame_compress(*codec, payload, 4 * 1024);
  const Buffer big_blocks = frame_compress(*codec, payload, 128 * 1024);
  EXPECT_EQ(frame_decompress(small_blocks), payload);
  EXPECT_EQ(frame_decompress(big_blocks), payload);
  EXPECT_GT(small_blocks.size(), big_blocks.size());  // per-block overhead
}

}  // namespace
}  // namespace swallow::codec
