// CPU-model tests: the constant/windowed/bursty providers, the compression
// gate, and the Fig. 2 utilization-trace phenomenology (more idle CPU at
// lower bandwidth).
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "cpu/cpu_model.hpp"
#include "cpu/util_trace.hpp"

namespace swallow::cpu {
namespace {

using common::gbps;
using common::kGB;
using common::kMB;
using common::mbps;

TEST(ConstantCpu, ReturnsConfiguredHeadroom) {
  const ConstantCpu cpu(0.4);
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 0.0), 0.4);
  EXPECT_DOUBLE_EQ(cpu.headroom(99, 1e6), 0.4);
  EXPECT_THROW(ConstantCpu(1.5), std::invalid_argument);
  EXPECT_THROW(ConstantCpu(-0.1), std::invalid_argument);
}

TEST(ConstantCpu, CanCompressGate) {
  EXPECT_TRUE(ConstantCpu(0.5).can_compress(0, 0.0));
  EXPECT_TRUE(ConstantCpu(kMinCompressionHeadroom).can_compress(0, 0.0));
  EXPECT_FALSE(ConstantCpu(0.0).can_compress(0, 0.0));
}

TEST(WindowedCpu, HeadroomFollowsWindows) {
  const WindowedCpu cpu({{0.0, 1.0}, {3.0, 3.5}});
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 1.0), 0.0);  // half-open interval
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 3.25), 1.0);
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 4.0), 0.0);
}

TEST(WindowedCpu, RejectsEmptyWindow) {
  EXPECT_THROW(WindowedCpu({{2.0, 2.0}}), std::invalid_argument);
}

TEST(WindowedCpu, CustomHeadrooms) {
  const WindowedCpu cpu({{0.0, 1.0}}, 0.8, 0.1);
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 0.5), 0.8);
  EXPECT_DOUBLE_EQ(cpu.headroom(0, 2.0), 0.1);
}

class BurstyCpuFraction : public ::testing::TestWithParam<double> {};

TEST_P(BurstyCpuFraction, LongRunIdleShareMatchesConfig) {
  BurstyCpu::Config config;
  config.idle_fraction = GetParam();
  config.horizon = 20000.0;
  config.seed = 5;
  const BurstyCpu cpu(config);
  EXPECT_NEAR(cpu.measured_idle_fraction(0), GetParam(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BurstyCpuFraction,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(BurstyCpu, HeadroomSwitchesBetweenStates) {
  BurstyCpu::Config config;
  config.idle_fraction = 0.5;
  config.busy_headroom = 0.05;
  config.idle_headroom = 0.95;
  const BurstyCpu cpu(config);
  bool saw_busy = false, saw_idle = false;
  for (double t = 0; t < 200; t += 0.5) {
    const double h = cpu.headroom(0, t);
    EXPECT_TRUE(h == 0.05 || h == 0.95);
    saw_busy |= h == 0.05;
    saw_idle |= h == 0.95;
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_idle);
}

TEST(BurstyCpu, PastHorizonReturnsSteadyState) {
  BurstyCpu::Config config;
  config.idle_fraction = 0.6;
  config.horizon = 10.0;
  config.busy_headroom = 0.0;
  config.idle_headroom = 1.0;
  const BurstyCpu cpu(config);
  EXPECT_NEAR(cpu.headroom(0, 100.0), 0.6, 1e-12);
}

TEST(BurstyCpu, NodesBeyondScheduleReuseRoundRobin) {
  BurstyCpu::Config config;
  config.nodes = 2;
  const BurstyCpu cpu(config);
  for (double t = 0; t < 50; t += 1.0)
    EXPECT_DOUBLE_EQ(cpu.headroom(0, t), cpu.headroom(2, t));
}

TEST(BurstyCpu, RejectsBadConfig) {
  BurstyCpu::Config config;
  config.nodes = 0;
  EXPECT_THROW(BurstyCpu{config}, std::invalid_argument);
  config.nodes = 1;
  config.idle_fraction = 2.0;
  EXPECT_THROW(BurstyCpu{config}, std::invalid_argument);
}

// ---- Fig. 2: utilization traces. ----

UtilTraceConfig fig2_config(common::Bps bandwidth) {
  UtilTraceConfig config;
  config.bandwidth = bandwidth;
  config.compute_time = 4.0;
  config.transfer_bytes = 1.2 * kGB;
  config.horizon = 600.0;
  return config;
}

TEST(UtilTrace, SamplesCoverHorizon) {
  const auto trace = generate_util_trace(fig2_config(gbps(10)));
  ASSERT_FALSE(trace.empty());
  EXPECT_NEAR(trace.back().t, 600.0, 1.0);
  for (const auto& s : trace) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
  }
}

TEST(UtilTrace, LowBandwidthMeansMoreIdleCpu) {
  // Fig. 2: >30% idle at 10 Gbps, >69% idle at 100 Mbps.
  const double idle_fast =
      idle_fraction(generate_util_trace(fig2_config(gbps(10))));
  const double idle_slow =
      idle_fraction(generate_util_trace(fig2_config(mbps(100))));
  EXPECT_GT(idle_slow, idle_fast);
  EXPECT_GT(idle_fast, 0.15);
  EXPECT_GT(idle_slow, 0.60);
}

TEST(UtilTrace, RejectsBadConfig) {
  UtilTraceConfig config;
  config.bandwidth = 0;
  EXPECT_THROW(generate_util_trace(config), std::invalid_argument);
}

TEST(UtilTrace, IdleFractionEdgeCases) {
  EXPECT_DOUBLE_EQ(idle_fraction({}), 0.0);
  EXPECT_DOUBLE_EQ(idle_fraction({{0.0, 0.1}, {1.0, 0.9}}, 0.5), 0.5);
}

}  // namespace
}  // namespace swallow::cpu
