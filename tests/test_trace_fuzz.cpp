// Trace parser fuzzing: mutated and corrupted inputs must either parse or
// throw a typed TraceParseError — never crash, never hang, never silently
// accept NaN/negative/overflowing values, and every rejection must name a
// plausible source line.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace swallow::workload {
namespace {

const char* kValidTrace =
    "4 2\n"
    "0 0.0 0 2\n"
    "0 1 1000 1\n"
    "1 2 2000 0\n"
    "1 50.0 1 1\n"
    "2 3 500 1\n";

const char* kValidFbTrace =
    "4 2\n"
    "1 0.0 2 1 2 2 3:10 4:5\n"
    "2 100.0 1 3 1 2:8\n";

Trace parse(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

Trace parse_fb(const std::string& text) {
  std::istringstream in(text);
  return parse_facebook_trace(in);
}

TEST(TraceFuzz, ValidTracesParse) {
  const Trace t = parse(kValidTrace);
  EXPECT_EQ(t.num_ports, 4u);
  EXPECT_EQ(t.coflows.size(), 2u);
  EXPECT_EQ(t.total_flows(), 3u);
  const Trace fb = parse_fb(kValidFbTrace);
  EXPECT_EQ(fb.num_ports, 4u);
  EXPECT_EQ(fb.coflows.size(), 2u);
  EXPECT_EQ(fb.total_flows(), 5u);  // 2 mappers x 2 reducers + 1 x 1
}

TEST(TraceFuzz, RejectsNonFiniteSizes) {
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "1e999"}) {
    SCOPED_TRACE(bad);
    const std::string text =
        "4 1\n0 0.0 0 1\n0 1 " + std::string(bad) + " 1\n";
    EXPECT_THROW(parse(text), TraceParseError);
  }
}

TEST(TraceFuzz, RejectsNegativeAndZeroSizes) {
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n0 1 -5 1\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n0 1 0 1\n"), TraceParseError);
  EXPECT_THROW(parse_fb("4 1\n1 0.0 1 1 1 2:-3\n"), TraceParseError);
  EXPECT_THROW(parse_fb("4 1\n1 0.0 1 1 1 2:nan\n"), TraceParseError);
}

TEST(TraceFuzz, RejectsNegativeArrival) {
  EXPECT_THROW(parse("4 1\n0 -1.0 0 1\n0 1 10 1\n"), TraceParseError);
  EXPECT_THROW(parse_fb("4 1\n1 -1.0 1 1 1 2:8\n"), TraceParseError);
}

TEST(TraceFuzz, RejectsOutOfRangePorts) {
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n4 1 10 1\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n0 9 10 1\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n-1 1 10 1\n"), TraceParseError);
  EXPECT_THROW(parse_fb("4 1\n1 0.0 1 5 1 2:8\n"), TraceParseError);
  EXPECT_THROW(parse_fb("4 1\n1 0.0 1 1 1 9:8\n"), TraceParseError);
}

TEST(TraceFuzz, DeadlineDirectiveParses) {
  const Trace t = parse(
      "4 2 deadlines\n"
      "0 0.0 0 2 250\n"
      "0 1 1000 1\n"
      "1 2 2000 0\n"
      "1 50.0 1 1 0\n"
      "2 3 500 1\n");
  EXPECT_TRUE(t.has_deadlines());
  EXPECT_DOUBLE_EQ(t.coflows[0].deadline, 0.25);  // 250 ms
  EXPECT_TRUE(t.coflows[0].has_deadline());
  EXPECT_FALSE(t.coflows[1].has_deadline());  // 0 = best-effort
}

TEST(TraceFuzz, RejectsBadDeadlines) {
  // Negative, NaN, infinite deadlines must throw with the header's line.
  for (const char* bad : {"-5", "nan", "inf", "1e999"}) {
    SCOPED_TRACE(bad);
    const std::string text = "4 1 deadlines\n0 0.0 0 1 " + std::string(bad) +
                             "\n0 1 1000 1\n";
    try {
      parse(text);
      FAIL() << "expected TraceParseError";
    } catch (const TraceParseError& e) {
      EXPECT_EQ(e.line(), 2u);
    }
  }
  // The directive promises the column; a plain header must now fail (the
  // missing token misaligns the block).
  EXPECT_THROW(parse("4 1 deadlines\n0 0.0 0 1\n0 1 1000 1\n"),
               TraceParseError);
  // Without the directive the 5th header column is rejected, not silently
  // swallowed.
  EXPECT_THROW(parse("4 1\n0 0.0 0 1 250\n0 1 1000 1\n"), TraceParseError);
}

TEST(TraceFuzz, DeadlineSingleTokenMutationsNeverCrash) {
  const char* kDeadlineTrace =
      "4 2 deadlines\n"
      "0 0.0 0 2 250\n"
      "0 1 1000 1\n"
      "1 2 2000 0\n"
      "1 50.0 1 1 0\n"
      "2 3 500 1\n";
  const char* pool[] = {"nan", "inf", "-inf", "1e999", "-1", "x",
                        "deadlines", "", "1.5.2", "18446744073709551616"};
  std::istringstream split(kDeadlineTrace);
  std::vector<std::string> tokens;
  for (std::string tok; split >> tok;) tokens.push_back(tok);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (const char* garbage : pool) {
      std::string text;
      for (std::size_t j = 0; j < tokens.size(); ++j) {
        text += j == i ? garbage : tokens[j].c_str();
        text += ' ';
      }
      SCOPED_TRACE("token " + std::to_string(i) + " -> '" + garbage + "'");
      try {
        parse(text);
      } catch (const TraceParseError&) {
        // rejection is fine; crash/hang/other exceptions are not
      }
    }
  }
}

TEST(TraceFuzz, RejectsDuplicateCoflowIds) {
  EXPECT_THROW(
      parse("4 2\n7 0.0 0 1\n0 1 10 1\n7 1.0 1 1\n1 2 20 1\n"),
      TraceParseError);
  EXPECT_THROW(parse_fb("4 2\n3 0.0 1 1 1 2:8\n3 1.0 1 2 1 3:8\n"),
               TraceParseError);
}

TEST(TraceFuzz, RejectsOverflowingCounts) {
  // Counts past the reserve guard must fail the parse, not allocate.
  EXPECT_THROW(parse("4 99999999999999999999\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 0.0 0 123456789012345678901\n"),
               TraceParseError);
  EXPECT_THROW(parse("99999999999 1\n0 0.0 0 1\n0 1 10 1\n"),
               TraceParseError);
}

TEST(TraceFuzz, RejectsMalformedTokens) {
  EXPECT_THROW(parse("four 2\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 zero 0 1\n0 1 10 1\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n0 1 10 maybe\n"), TraceParseError);
  EXPECT_THROW(parse("4 1\n0 0.0 0 1\n0 1 10 2\n"), TraceParseError);
  EXPECT_THROW(parse_fb("4 1\n1 0.0 1 1 1 28\n"), TraceParseError);  // no ':'
}

TEST(TraceFuzz, ErrorsNameTheOffendingLine) {
  try {
    parse("4 1\n0 0.0 0 1\n0 1 nan 1\n");
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  try {
    parse("4 2\n7 0.0 0 1\n0 1 10 1\n7 1.0 1 1\n1 2 20 1\n");
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 4u);
  }
}

TEST(TraceFuzz, TruncationAlwaysThrows) {
  const std::string text(kValidTrace);
  // Every proper prefix that drops at least one token must throw (a prefix
  // ending exactly at a coflow boundary is impossible here because the
  // header promises two coflows).
  for (std::size_t cut = 0; cut + 1 < text.size(); ++cut)
    EXPECT_THROW(parse(text.substr(0, cut)), std::runtime_error)
        << "prefix length " << cut;
}

// Random single-token mutations: replace one token with garbage drawn from
// a pool of hostile values. The parser must either accept (mutation made a
// still-valid trace) or throw TraceParseError — never crash or hang.
TEST(TraceFuzz, SingleTokenMutationsNeverCrash) {
  const char* pool[] = {"nan",  "inf",    "-inf", "1e999", "-1",
                        "",     "x",      "0x10", "1.5.2", "--3",
                        "1e-999999", "18446744073709551616",
                        ":", "2:", ":5", "2:nan"};
  for (const char* base : {kValidTrace, kValidFbTrace}) {
    const bool fb = base == kValidFbTrace;
    std::istringstream split(base);
    std::vector<std::string> tokens;
    for (std::string tok; split >> tok;) tokens.push_back(tok);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      for (const char* garbage : pool) {
        std::string text;
        for (std::size_t j = 0; j < tokens.size(); ++j) {
          text += j == i ? garbage : tokens[j].c_str();
          text += j % 4 == 3 ? '\n' : ' ';
        }
        SCOPED_TRACE("token " + std::to_string(i) + " -> '" + garbage + "'");
        try {
          fb ? parse_fb(text) : parse(text);
        } catch (const TraceParseError&) {
          // rejection is fine; crash/hang/other exceptions are not
        }
      }
    }
  }
}

// Random byte corruption over the whole file: flip, delete or insert bytes
// at seeded random offsets. Same contract: parse or TraceParseError.
TEST(TraceFuzz, RandomByteCorruptionNeverCrashes) {
  common::Rng rng(1234);
  const std::string base(kValidTrace);
  const char charset[] = "0123456789.-: abc\n\t";
  for (int round = 0; round < 2000; ++round) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < edits; ++e) {
      if (text.empty()) break;
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_int(0, text.size() - 1));
      const char c = charset[rng.uniform_int(0, sizeof(charset) - 2)];
      switch (rng.uniform_int(0, 2)) {
        case 0: text[pos] = c; break;
        case 1: text.erase(pos, 1); break;
        default: text.insert(pos, 1, c); break;
      }
    }
    try {
      parse(text);
    } catch (const TraceParseError&) {
      // expected for most corruptions
    }
  }
}

}  // namespace
}  // namespace swallow::workload
