// Unit tests for the observability layer: registry instruments under
// concurrency, histogram percentiles, tracer buffering and overflow, the
// disabled-path no-ops, JSON helpers, and the pluggable log sink.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/logging.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::obs {
namespace {

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::jthread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) counter.add();
    });
  threads.clear();  // join
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  // Same name resolves to the same instrument.
  EXPECT_EQ(registry.counter("hits").value(), kThreads * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Registry registry;
  registry.gauge("temp").set(1.5);
  registry.gauge("temp").set(-3.25);
  EXPECT_DOUBLE_EQ(registry.gauge("temp").value(), -3.25);
}

TEST(Histogram, PercentilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.sum(), 5050);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50);
  EXPECT_DOUBLE_EQ(h.percentile(95), 95);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1);
}

TEST(Histogram, EmptyIsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
}

TEST(Histogram, ConcurrentRecords) {
  Registry registry;
  Histogram& h = registry.histogram("lat");
  std::vector<std::jthread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] {
      for (int j = 0; j < 5000; ++j) h.record(j);
    });
  threads.clear();
  EXPECT_EQ(h.count(), 20000u);
}

TEST(Registry, JsonExportRoundTrips) {
  Registry registry;
  registry.counter("events").add(7);
  registry.gauge("load").set(0.5);
  registry.histogram("lat").record(10);
  registry.histogram("lat").record(20);

  const JsonValue doc = parse_json(registry.to_json());
  ASSERT_TRUE(doc.is_object());
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("events")->number, 7);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("load")->number, 0.5);
  const JsonValue* lat = doc.find("histograms")->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->number, 2);
  EXPECT_DOUBLE_EQ(lat->find("p50")->number, 10);
  EXPECT_DOUBLE_EQ(lat->find("max")->number, 20);
}

TEST(Tracer, RecordsAndSnapshots) {
  Tracer tracer;
  emit_instant(&tracer, 5.0, "hello", "test",
               Args().add("k", std::int64_t(1)).str());
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent ev = tracer.events().front();
  EXPECT_EQ(ev.name, "hello");
  EXPECT_EQ(ev.ph, 'i');
  EXPECT_DOUBLE_EQ(ev.ts, 5.0);
  EXPECT_EQ(ev.args, "{\"k\":1}");
}

TEST(Tracer, OverflowDropsAndCounts) {
  Tracer tracer(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) emit_instant(&tracer, i, "e", "test");
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(Tracer, NullSinkPathIsANoOp) {
  emit_instant(nullptr, 0, "ignored", "test");
  ProfileScope scope(nullptr, "ignored");  // must not crash or allocate
}

TEST(ProfileScope, EmitsMatchedPairAndHistogram) {
  Tracer tracer;
  { ProfileScope scope(&tracer, "work", "test"); }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[1].ph, 'E');
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[1].ts, events[0].ts);
  EXPECT_EQ(tracer.registry().histogram("prof.work").count(), 1u);
}

TEST(ProfileScope, HistogramOnlyModeEmitsNoEvents) {
  Tracer tracer;
  { ProfileScope scope(&tracer, "quiet", "test", /*emit_events=*/false); }
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.registry().histogram("prof.quiet").count(), 1u);
}

TEST(Tracer, JsonlLinesParse) {
  Tracer tracer;
  emit_instant(&tracer, 1, "a", "test");
  emit_instant(&tracer, 2, "b", "test", Args().add("x", 3.5).str());
  std::ostringstream oss;
  tracer.write_jsonl(oss);
  std::istringstream iss(oss.str());
  std::string line;
  int lines = 0;
  while (std::getline(iss, line)) {
    const JsonValue ev = parse_json(line);
    ASSERT_TRUE(ev.is_object());
    EXPECT_NE(ev.find("name"), nullptr);
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(Args, BuildsJsonObjects) {
  EXPECT_EQ(Args().str(), "");
  const std::string json = Args()
                               .add("a", std::int64_t(-2))
                               .add("b", true)
                               .add("c", std::string_view("x\"y"))
                               .add("d", 1.5)
                               .str();
  const JsonValue doc = parse_json(json);
  EXPECT_DOUBLE_EQ(doc.find("a")->number, -2);
  EXPECT_TRUE(doc.find("b")->boolean);
  EXPECT_EQ(doc.find("c")->string, "x\"y");
  EXPECT_DOUBLE_EQ(doc.find("d")->number, 1.5);
}

TEST(Json, EscapeAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(3), "3");
  EXPECT_EQ(json_number(-0.5), "-0.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
}

TEST(GlobalSink, SetAndClear) {
  Tracer tracer;
  set_global_sink(&tracer);
  EXPECT_EQ(global_sink(), &tracer);
  set_global_sink(nullptr);
  EXPECT_EQ(global_sink(), nullptr);
}

TEST(ThreadTid, DistinctPerThread) {
  const std::uint32_t mine = current_thread_tid();
  EXPECT_EQ(current_thread_tid(), mine);  // stable within a thread
  std::uint32_t other = 0;
  std::jthread([&] { other = current_thread_tid(); }).join();
  EXPECT_NE(other, mine);
}

TEST(LogSink, CapturesAndRestores) {
  std::vector<std::pair<common::LogLevel, std::string>> captured;
  common::set_log_sink([&](common::LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  const common::LogLevel before = common::log_level();
  common::set_log_level(common::LogLevel::kDebug);
  common::log_warn("problem ", 42);
  common::log_debug("detail");
  common::set_log_level(before);
  common::set_log_sink({});

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, common::LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "problem 42");
  EXPECT_EQ(captured[1].second, "detail");
}

TEST(LogSink, TracerOverflowDiagnosticsFlowThroughIt) {
  std::vector<std::string> warnings;
  common::set_log_sink([&](common::LogLevel level, const std::string& msg) {
    if (level == common::LogLevel::kWarn) warnings.push_back(msg);
  });
  Tracer tracer(/*max_events=*/1);
  emit_instant(&tracer, 0, "a", "test");
  emit_instant(&tracer, 1, "b", "test");  // dropped
  std::ostringstream oss;
  tracer.write_chrome_trace(oss);
  common::set_log_sink({});
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("dropped"), std::string::npos);
}

TEST(LogLevel, ParsesNames) {
  EXPECT_EQ(common::parse_log_level("debug"), common::LogLevel::kDebug);
  EXPECT_EQ(common::parse_log_level("INFO"), common::LogLevel::kInfo);
  EXPECT_EQ(common::parse_log_level("warning"), common::LogLevel::kWarn);
  EXPECT_THROW(common::parse_log_level("loud"), std::invalid_argument);
}

TEST(Flags, SpaceSeparatedValuesAndLogLevel) {
  const char* argv[] = {"prog", "--trace-out", "out.json", "--log-level=info",
                        "--flag"};
  const common::Flags flags(5, argv);
  EXPECT_EQ(flags.get("trace-out", ""), "out.json");
  EXPECT_EQ(flags.get("log-level", ""), "info");
  EXPECT_TRUE(flags.get_bool("flag", false));

  const common::LogLevel before = common::log_level();
  common::apply_log_level_flag(flags);
  EXPECT_EQ(common::log_level(), common::LogLevel::kInfo);
  common::set_log_level(before);
}

}  // namespace
}  // namespace swallow::obs
