// Randomized codec hardening: many seeds x payload shapes roundtrip through
// every codec, and random corruption of valid containers must never crash,
// hang, or read out of bounds — it either throws CodecError or returns
// data (possibly wrong: a flipped literal byte is undetectable without a
// checksum, which the runtime layers on top via FNV verification).
#include <gtest/gtest.h>

#include "codec/codec.hpp"
#include "codec/synth_data.hpp"

namespace swallow::codec {
namespace {

using common::Rng;

Buffer random_payload(Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 40000));
  switch (rng.uniform_int(0, 4)) {
    case 0: return random_bytes(n, rng);
    case 1: return run_bytes(n, rng, 1 + rng.uniform_int(0, 200));
    case 2: return text_bytes(n, rng, 16 + rng.uniform_int(0, 4000),
                              rng.uniform(1.0, 1.4));
    case 3: return record_bytes(n, rng);
    default: return mixed_bytes(n, rng, rng.uniform(0.0, 1.0));
  }
}

class CodecFuzz : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecFuzz, RandomPayloadsRoundtrip) {
  const auto codec = make_codec(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int round = 0; round < 60; ++round) {
    const Buffer payload = random_payload(rng);
    const Buffer compressed = codec->compress(payload);
    ASSERT_LE(compressed.size(), codec->max_compressed_size(payload.size()));
    ASSERT_EQ(codec->decompress(compressed), payload) << "round " << round;
  }
}

TEST_P(CodecFuzz, SingleByteCorruptionIsContained) {
  const auto codec = make_codec(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 2);
  int threw = 0, survived = 0;
  for (int round = 0; round < 40; ++round) {
    const Buffer payload = random_payload(rng);
    Buffer compressed = codec->compress(payload);
    if (compressed.size() < 2) continue;
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(1, compressed.size() - 1));  // keep the codec id
    compressed[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    try {
      const Buffer out = codec->decompress(compressed);
      ++survived;  // undetectable literal flip: same size, wrong bytes ok
      EXPECT_EQ(out.size(), payload.size());
    } catch (const CodecError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw + survived, 0);
}

TEST_P(CodecFuzz, TruncationAlwaysThrows) {
  const auto codec = make_codec(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  for (int round = 0; round < 40; ++round) {
    Buffer payload = random_payload(rng);
    if (payload.empty()) payload.push_back(1);
    Buffer compressed = codec->compress(payload);
    const std::size_t cut = static_cast<std::size_t>(
        rng.uniform_int(1, compressed.size() - 1));
    compressed.resize(compressed.size() - cut);
    // Either the header is gone or the payload is short: must throw, and
    // must never write past the output buffer.
    EXPECT_THROW(codec->decompress(compressed), CodecError) << round;
  }
}

TEST_P(CodecFuzz, GarbageInputNeverCrashes) {
  // Fixed-size output via the span API: a hostile header demanding
  // petabytes must be rejected, not allocated.
  const auto codec = make_codec(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 4);
  Buffer out(1 << 20);
  for (int round = 0; round < 60; ++round) {
    Buffer garbage = random_bytes(
        static_cast<std::size_t>(rng.uniform_int(1, 2000)), rng);
    garbage[0] = codec->id();  // pass the id check, fuzz everything else
    try {
      const std::size_t n = codec->decompress(garbage, out);
      EXPECT_LE(n, out.size());
    } catch (const CodecError&) {
      // expected most of the time
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecFuzz,
    ::testing::Values(CodecKind::kNull, CodecKind::kRle, CodecKind::kLzFast,
                      CodecKind::kLzBalanced, CodecKind::kLzHigh,
                      CodecKind::kHuffman, CodecKind::kLzHuff),
    [](const auto& info) {
      std::string s = codec_kind_name(info.param);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

}  // namespace
}  // namespace swallow::codec
