// Tests for the extension features: the Facebook-trace parser, the
// normalized-CCT lower bound, receiver-side decompression modeling, and
// Aalo running end to end in the simulator.
#include <gtest/gtest.h>

#include <sstream>

#include "core/compression_strategy.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workload/apps.hpp"

namespace swallow {
namespace {

// ---- Facebook coflow-benchmark format. ----

constexpr const char* kFbSample =
    "4 2\n"
    "1 0 2 1 3 2 2:10 4:5\n"
    "2 1500 1 4 1 1:2\n";

TEST(FacebookTrace, ParsesJobsMappersReducers) {
  std::istringstream in(kFbSample);
  const workload::Trace trace = workload::parse_facebook_trace(in);
  EXPECT_EQ(trace.num_ports, 4u);
  ASSERT_EQ(trace.coflows.size(), 2u);

  const auto& job1 = trace.coflows[0];
  EXPECT_EQ(job1.id, 1u);
  EXPECT_DOUBLE_EQ(job1.arrival, 0.0);
  // 2 mappers x 2 reducers = 4 flows.
  ASSERT_EQ(job1.flows.size(), 4u);
  // Reducer on rack 2 gets 10 MB split over 2 mappers = 5 MB per flow.
  EXPECT_DOUBLE_EQ(job1.flows[0].bytes, 5.0 * common::kMB);
  EXPECT_EQ(job1.flows[0].src, 0u);  // rack 1 -> port 0
  EXPECT_EQ(job1.flows[0].dst, 1u);  // rack 2 -> port 1
  EXPECT_EQ(job1.flows[1].src, 2u);  // rack 3 -> port 2
  // Reducer on rack 4 gets 5 MB -> 2.5 MB per flow.
  EXPECT_DOUBLE_EQ(job1.flows[2].bytes, 2.5 * common::kMB);
  EXPECT_EQ(job1.flows[2].dst, 3u);

  const auto& job2 = trace.coflows[1];
  EXPECT_DOUBLE_EQ(job2.arrival, 1.5);
  ASSERT_EQ(job2.flows.size(), 1u);
  EXPECT_DOUBLE_EQ(job2.flows[0].bytes, 2.0 * common::kMB);
}

TEST(FacebookTrace, RejectsMalformedInput) {
  const auto expect_bad = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(workload::parse_facebook_trace(in), std::runtime_error)
        << text;
  };
  expect_bad("");
  expect_bad("0 1\n");
  expect_bad("4 1\n1 0 0\n");                  // zero mappers
  expect_bad("4 1\n1 0 1 9 1 1:5\n");          // rack out of range
  expect_bad("4 1\n1 0 1 1 0\n");              // zero reducers
  expect_bad("4 1\n1 0 1 1 1 2-5\n");          // missing ':'
  expect_bad("4 1\n1 0 1 1 1 2:0\n");          // zero bytes
  expect_bad("4 1\n1 0 2 1\n");                // truncated mapper list
  EXPECT_THROW(workload::parse_facebook_trace_file("/missing.txt"),
               std::runtime_error);
}

TEST(FacebookTrace, ReplaysThroughTheSimulator) {
  std::istringstream in(kFbSample);
  const workload::Trace trace = workload::parse_facebook_trace(in);
  const fabric::Fabric fabric(4, common::mbps(100));
  const cpu::ConstantCpu cpu(0.9);
  auto sched = sim::make_scheduler("FVDF");
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  const sim::Metrics m = sim::run_simulation(trace, fabric, cpu, *sched, config);
  EXPECT_EQ(m.flows.size(), 5u);
  EXPECT_GT(m.traffic_reduction(), 0.3);
}

// ---- Normalized CCT. ----

TEST(NormalizedCct, IsolationBoundIsLowerBound) {
  workload::GeneratorConfig gen;
  gen.num_ports = 8;
  gen.num_coflows = 25;
  gen.size_lo = 1e6;
  gen.size_hi = 1e8;
  gen.width_hi = 4;
  gen.seed = 77;
  const workload::Trace trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(8, common::mbps(500));
  const cpu::ConstantCpu cpu(0.0);
  for (const char* name : {"SEBF", "FVDF-NC", "FIFO", "AALO"}) {
    auto sched = sim::make_scheduler(name);
    const sim::Metrics m =
        sim::run_simulation(trace, fabric, cpu, *sched, {});
    for (const auto& c : m.coflows) {
      ASSERT_GT(c.isolation_bound, 0.0) << name;
      // No scheduler can beat the isolation bound (slice granularity slack).
      EXPECT_GE(c.cct(), c.isolation_bound * 0.999 - 0.02) << name;
    }
    EXPECT_GE(m.avg_normalized_cct(), 0.99) << name;
  }
}

TEST(NormalizedCct, LoneCoflowRunsAtTheBound) {
  workload::Trace trace;
  trace.num_ports = 2;
  workload::CoflowSpec c;
  c.id = 1;
  c.flows = {{0, 1, 1000.0, false, 0}};
  trace.coflows = {c};
  const fabric::Fabric fabric(2, 10.0);
  const cpu::ConstantCpu cpu(0.0);
  auto sched = sim::make_scheduler("SEBF");
  const sim::Metrics m = sim::run_simulation(trace, fabric, cpu, *sched, {});
  EXPECT_NEAR(m.coflows[0].isolation_bound, 100.0, 1e-9);
  EXPECT_NEAR(m.avg_normalized_cct(), 1.0, 1e-3);
}

// ---- Decompression modeling. ----

TEST(Decompression, AddsReceiverCostWhenEnabled) {
  workload::Trace trace;
  trace.num_ports = 2;
  workload::CoflowSpec c;
  c.id = 1;
  c.flows = {{0, 1, 1000.0, true, 0}};
  trace.coflows = {c};
  const fabric::Fabric fabric(2, 1.0);
  const cpu::ConstantCpu cpu(1.0);
  // R = 100, xi = 0.5, decompression at 50 B/s (artificially slow).
  const codec::CodecModel codec{"slow-decode", 100.0, 50.0, 0.5};

  auto run = [&](bool model) {
    auto sched = sim::make_scheduler("FVDF");
    sim::SimConfig config;
    config.codec = &codec;
    config.model_decompression = model;
    return sim::run_simulation(trace, fabric, cpu, *sched, config);
  };
  const double without = run(false).flows[0].fct();
  const double with = run(true).flows[0].fct();
  // 500 compressed bytes at 50 B/s = 10 extra seconds.
  EXPECT_NEAR(with - without, 10.0, 0.1);
}

TEST(Decompression, NoCostWithoutCompressedBytes) {
  workload::Trace trace;
  trace.num_ports = 2;
  workload::CoflowSpec c;
  c.id = 1;
  c.flows = {{0, 1, 1000.0, false, 0}};  // incompressible
  trace.coflows = {c};
  const fabric::Fabric fabric(2, 10.0);
  const cpu::ConstantCpu cpu(1.0);
  const codec::CodecModel codec{"slow-decode", 100.0, 50.0, 0.5};
  auto sched = sim::make_scheduler("FVDF");
  sim::SimConfig config;
  config.codec = &codec;
  config.model_decompression = true;
  const sim::Metrics m = sim::run_simulation(trace, fabric, cpu, *sched, config);
  EXPECT_NEAR(m.flows[0].fct(), 100.0, 0.1);
}

TEST(Decompression, PaperOmissionIsJustifiedForTable2Codecs) {
  // The paper drops decompression cost because decode speed dwarfs the
  // link: for every Table II codec at 100 Mbps the added CCT is < 2%.
  workload::GeneratorConfig gen;
  gen.num_ports = 8;
  gen.num_coflows = 15;
  gen.size_lo = 1e6;
  gen.size_hi = 1e8;
  gen.width_hi = 3;
  gen.seed = 5;
  const workload::Trace trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(8, common::mbps(100));
  const cpu::ConstantCpu cpu(0.9);
  for (const auto& model : codec::table2_codecs()) {
    auto run = [&](bool decode_cost) {
      auto sched = sim::make_scheduler("FVDF");
      sim::SimConfig config;
      config.codec = &model;
      config.model_decompression = decode_cost;
      return sim::run_simulation(trace, fabric, cpu, *sched, config)
          .avg_cct();
    };
    const double base = run(false);
    EXPECT_LT(run(true) / base, 1.02) << model.name;
  }
}

// ---- CSV export. ----

TEST(Report, CsvColumnsAndRowCounts) {
  workload::Trace trace;
  trace.num_ports = 2;
  workload::CoflowSpec c;
  c.id = 3;
  c.job = 9;
  c.flows = {{0, 1, 100.0, false, 0}, {1, 0, 50.0, false, 0}};
  trace.coflows = {c};
  const fabric::Fabric fabric(2, 10.0);
  const cpu::ConstantCpu cpu(0.0);
  auto sched = sim::make_scheduler("SEBF");
  sim::SimConfig config;
  config.utilization_sample_period = 1.0;
  const sim::Metrics m = sim::run_simulation(trace, fabric, cpu, *sched, config);

  std::ostringstream flows;
  sim::write_flows_csv(flows, m);
  std::istringstream flow_lines(flows.str());
  std::string line;
  std::getline(flow_lines, line);
  EXPECT_EQ(line,
            "flow_id,coflow_id,job_id,original_bytes,wire_bytes,arrival,"
            "completion,fct");
  std::size_t rows = 0;
  while (std::getline(flow_lines, line)) ++rows;
  EXPECT_EQ(rows, 2u);

  std::ostringstream coflows;
  sim::write_coflows_csv(coflows, m);
  EXPECT_NE(coflows.str().find("normalized_cct"), std::string::npos);
  EXPECT_NE(coflows.str().find("\n3,9,2,"), std::string::npos);

  std::ostringstream util;
  sim::write_utilization_csv(util, m);
  EXPECT_NE(util.str().find("t,egress_utilization"), std::string::npos);
  std::istringstream util_lines(util.str());
  rows = 0;
  while (std::getline(util_lines, line)) ++rows;
  EXPECT_GE(rows, 2u);  // header + at least one sample (makespan 10 s)
}

// ---- Per-flow compression ratios. ----

TEST(PerFlowRatio, EngineHonoursFlowSpecificRatio) {
  workload::Trace trace;
  trace.num_ports = 4;
  for (int i = 0; i < 2; ++i) {
    workload::CoflowSpec c;
    c.id = static_cast<fabric::CoflowId>(i);
    c.job = i;
    workload::FlowSpec f;
    f.src = static_cast<fabric::PortId>(i);
    f.dst = static_cast<fabric::PortId>(i + 2);
    f.bytes = 1000.0;
    f.compress_ratio = i == 0 ? 0.2 : 0.8;  // app-specific ratios
    c.flows = {f};
    trace.coflows.push_back(c);
  }
  const fabric::Fabric fabric(4, 1.0);  // compression clearly wins
  const cpu::ConstantCpu cpu(1.0);
  auto sched = sim::make_scheduler("FVDF");
  sim::SimConfig config;
  const codec::CodecModel codec{"t", 1000.0, 4000.0, 0.5};
  config.codec = &codec;
  const sim::Metrics m = sim::run_simulation(trace, fabric, cpu, *sched, config);
  ASSERT_EQ(m.flows.size(), 2u);
  EXPECT_NEAR(m.flows[0].wire_bytes, 200.0, 1.0);
  EXPECT_NEAR(m.flows[1].wire_bytes, 800.0, 1.0);
}

TEST(PerFlowRatio, Eq3GateUsesFlowRatio) {
  // The codec model's own ratio would open the gate, but this flow barely
  // compresses: the per-flow ratio must close Eq. 3 for it.
  const fabric::Fabric fabric(2, 100.0);
  const cpu::ConstantCpu cpu(1.0);
  const codec::CodecModel codec{"t", 1000.0, 4000.0, 0.5};  // 500 > 100
  fabric::Flow f;
  f.id = 0;
  f.src = 0;
  f.dst = 1;
  f.raw_remaining = 1000;
  f.compress_ratio = 0.95;  // 1000 * 0.05 = 50 < 100: not worth it
  const auto d = core::compression_strategy(f, codec, cpu, fabric, 0.0);
  EXPECT_FALSE(d.enabled);
  f.compress_ratio = 0.5;
  EXPECT_TRUE(core::compression_strategy(f, codec, cpu, fabric, 0.0).enabled);
}

TEST(PerFlowRatio, HibenchTraceCompressesAtTableOneMix) {
  // The simulated HiBench suite is Terasort/Sort-dominated (ratio ~ 0.27),
  // so the traffic reduction must land near 1 - 0.27, far beyond what the
  // global LZ4 model (1 - 0.62) could produce.
  const workload::Trace trace =
      workload::hibench_trace(2 * common::kGB, 2, 12, 0.5, 7);
  const fabric::Fabric fabric(12, common::mbps(100));
  const cpu::ConstantCpu cpu(0.9);
  auto sched = sim::make_scheduler("FVDF");
  sim::SimConfig config;
  config.codec = &codec::default_codec_model();
  const sim::Metrics m = sim::run_simulation(trace, fabric, cpu, *sched, config);
  EXPECT_GT(m.traffic_reduction(), 0.55);
  EXPECT_LT(m.traffic_reduction(), 0.80);
}

// ---- Aalo end to end. ----

TEST(AaloSim, CompletesAndSitsBetweenFifoAndSebf) {
  workload::GeneratorConfig gen;
  gen.num_ports = 10;
  gen.num_coflows = 30;
  gen.size_lo = 1e5;
  gen.size_hi = 1e9;
  gen.size_alpha = 0.15;
  gen.width_hi = 5;
  gen.seed = 13;
  const workload::Trace trace = workload::generate_trace(gen);
  const fabric::Fabric fabric(10, common::mbps(100));
  const cpu::ConstantCpu cpu(0.0);

  auto run = [&](const char* name) {
    auto sched = sim::make_scheduler(name);
    return sim::run_simulation(trace, fabric, cpu, *sched, {});
  };
  const sim::Metrics aalo = run("AALO");
  EXPECT_EQ(aalo.flows.size(), trace.total_flows());
  // Info-agnostic Aalo cannot beat clairvoyant SEBF but must crush FIFO.
  EXPECT_LT(aalo.avg_cct(), run("FIFO").avg_cct());
  EXPECT_GT(aalo.avg_cct(), run("SEBF").avg_cct() * 0.9);
}

}  // namespace
}  // namespace swallow
