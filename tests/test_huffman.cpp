// Huffman and chained-codec tests: entropy bounds on known distributions,
// where the entropy stage beats LZ (skewed histograms without repetition),
// where the chain wins, and corrupt-table rejection.
#include <gtest/gtest.h>

#include "codec/codec.hpp"
#include "codec/huffman.hpp"
#include "codec/synth_data.hpp"

namespace swallow::codec {
namespace {

using common::Rng;

double ratio_of(const Codec& codec, const Buffer& payload) {
  return compression_ratio(payload.size(), codec.compress(payload).size());
}

TEST(Huffman, SkewedDistributionApproachesEntropy) {
  // 90% 'a', 10% others: H ~ 0.47 + spread ~ well under 2 bits/symbol.
  Rng rng(1);
  Buffer data;
  for (int i = 0; i < 100000; ++i)
    data.push_back(rng.bernoulli(0.9)
                       ? 'a'
                       : static_cast<std::uint8_t>(rng.uniform_int('b', 'j')));
  const HuffmanCodec codec;
  const double r = ratio_of(codec, data);
  EXPECT_LT(r, 0.25);   // < 2 bits/byte
  EXPECT_GT(r, 0.05);   // entropy floor ~ 0.85 bits/byte
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(Huffman, UniformBytesCostEightBitsPlusHeader) {
  Rng rng(2);
  const Buffer data = random_bytes(100000, rng);
  const HuffmanCodec codec;
  const Buffer compressed = codec.compress(data);
  EXPECT_LE(compressed.size(), codec.max_compressed_size(data.size()));
  EXPECT_GT(compression_ratio(data.size(), compressed.size()), 0.99);
}

TEST(Huffman, BeatsLzOnSkewedNonRepetitiveData) {
  // Numeric records: digit-heavy histogram, little long-range repetition —
  // the order-0 entropy stage wins where string matching cannot.
  Rng rng(3);
  const Buffer records = record_bytes(1 << 17, rng);
  const double huffman = ratio_of(HuffmanCodec(), records);
  const double lz = ratio_of(*make_codec(CodecKind::kLzBalanced), records);
  EXPECT_LT(huffman, lz);
}

TEST(Huffman, SingleSymbolPayload) {
  const HuffmanCodec codec;
  const Buffer data(5000, 0x7a);
  const Buffer compressed = codec.compress(data);
  // One code of length 1: ~ 5000 bits + header.
  EXPECT_LT(compressed.size(), 1000u);
  EXPECT_EQ(codec.decompress(compressed), data);
}

TEST(Huffman, TwoSymbolAlternation) {
  Buffer data;
  for (int i = 0; i < 9999; ++i) data.push_back(i % 2 ? 0x00 : 0xff);
  const HuffmanCodec codec;
  const Buffer compressed = codec.compress(data);
  EXPECT_NEAR(static_cast<double>(compressed.size()),
              256.0 + 11.0 + 9999.0 / 8.0, 16.0);
  EXPECT_EQ(codec.decompress(compressed), data);
}

TEST(Huffman, RejectsInvalidCodeTable) {
  const HuffmanCodec codec;
  Buffer data{'x', 'y', 'z', 'x', 'y', 'x'};
  Buffer compressed = codec.compress(data);
  // Locate the header (after container id + varint size) and over-fill the
  // code table: three symbols all claiming length 1 violates Kraft.
  const std::size_t header_start = 2;  // id byte + 1-byte varint for size 6
  Buffer corrupt = compressed;
  corrupt[header_start + 'x'] = 1;
  corrupt[header_start + 'y'] = 1;
  corrupt[header_start + 'z'] = 1;
  EXPECT_THROW(codec.decompress(corrupt), CodecError);
  // Absurd code length is rejected before table construction.
  Buffer bad_len = compressed;
  bad_len[header_start + 'x'] = 200;
  EXPECT_THROW(codec.decompress(bad_len), CodecError);
}

TEST(Huffman, TruncatedBitstreamThrows) {
  const HuffmanCodec codec;
  Rng rng(4);
  const Buffer data = text_bytes(5000, rng);
  Buffer compressed = codec.compress(data);
  compressed.resize(compressed.size() - 20);
  EXPECT_THROW(codec.decompress(compressed), CodecError);
}

TEST(ChainedCodec, SwlzMaxHasTheBestRatioOnText) {
  Rng rng(5);
  const Buffer text = text_bytes(1 << 17, rng);
  const double high = ratio_of(*make_codec(CodecKind::kLzHigh), text);
  const double chained = ratio_of(*make_codec(CodecKind::kLzHuff), text);
  EXPECT_LT(chained, high);
}

TEST(ChainedCodec, RatioOrderingAcrossTheFamily) {
  Rng rng(6);
  const Buffer payload = mixed_bytes(1 << 17, rng, 0.1);
  const double fast = ratio_of(*make_codec(CodecKind::kLzFast), payload);
  const double high = ratio_of(*make_codec(CodecKind::kLzHigh), payload);
  const double max = ratio_of(*make_codec(CodecKind::kLzHuff), payload);
  EXPECT_LE(high, fast + 1e-9);
  EXPECT_LE(max, high + 1e-9);
}

TEST(ChainedCodec, NestedContainersValidateBothStages) {
  const auto codec = make_codec(CodecKind::kLzHuff);
  Rng rng(7);
  const Buffer payload = text_bytes(20000, rng);
  Buffer compressed = codec->compress(payload);
  EXPECT_EQ(codec->decompress(compressed), payload);
  EXPECT_EQ(decompress_any(compressed), payload);
  // Truncation is caught by the outer (Huffman) stage already.
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(codec->decompress(compressed), CodecError);
}

}  // namespace
}  // namespace swallow::codec
