#include "core/online.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sched/deadline_fvdf.hpp"
#include "sched/registry.hpp"

namespace swallow::core {

namespace {

// Round stamps double as membership tests, so out-of-range reads must act
// like "never stamped" (0) rather than grow the table.
std::uint64_t stamp_of(const std::vector<std::uint64_t>& v,
                       fabric::CoflowId id) {
  return id < v.size() ? v[id] : 0;
}

void set_stamp(std::vector<std::uint64_t>& v, fabric::CoflowId id,
               std::uint64_t round) {
  if (id >= v.size()) v.resize(id + 1, 0);
  v[id] = round;
}

}  // namespace

std::vector<fabric::CoflowId> upgrade_priorities(
    const sched::SchedContext& ctx) {
  std::vector<fabric::CoflowId> bumped;
  bumped.reserve(ctx.coflows.size());
  for (fabric::Coflow* c : ctx.coflows) {
    if (c->priority < 1.0) c->priority = 1.0;
    c->priority *= kPriorityLogBase;
    if (ctx.tracker != nullptr) ctx.tracker->priority_changed(c->id);
    bumped.push_back(c->id);
  }
  return bumped;
}

FvdfScheduler::FvdfScheduler(FvdfOptions options) : options_(options) {}

std::string FvdfScheduler::name() const {
  std::string n = "FVDF";
  if (!options_.compression) n += "-NC";
  if (options_.force_compression) n += "-BLIND";
  if (!options_.upgrade) n += "-NOUPGRADE";
  if (!options_.backfill) n += "-NOBACKFILL";
  return n;
}

fabric::Allocation FvdfScheduler::schedule(const sched::SchedContext& ctx) {
  ++round_;
  const std::uint64_t prev = round_ - 1;

  // Pseudocode 3's Upgrade targets "coflows waiting for scheduling": age
  // only coflows that got no service out of the previous decision, at
  // coflow arrival/completion events. Served coflows keep their class, so
  // the Shortest-Gamma order is preserved while blocked coflows rise. The
  // bump is reported to the dirty tracker as key-only: Γ_C stands, only the
  // rank key (Γ / priority) moves.
  if (options_.upgrade && options_.online && ctx.coflow_event) {
    for (fabric::Coflow* c : ctx.coflows) {
      if (stamp_of(seen_round_, c->id) != prev ||
          stamp_of(served_round_, c->id) == prev)
        continue;
      if (c->priority < 1.0) c->priority = 1.0;
      c->priority *= kPriorityLogBase;
      if (ctx.tracker != nullptr) ctx.tracker->priority_changed(c->id);
      if (ctx.sink != nullptr) {
        obs::emit_instant(ctx.sink, obs::sim_ts(ctx.now), "priority_upgrade",
                          "fvdf",
                          obs::Args()
                              .add("coflow", std::int64_t(c->id))
                              .add("priority", c->priority)
                              .str());
        ctx.sink->registry().counter("fvdf.priority_upgrades").add();
      }
    }
  }

  // The traced path stays on full recompute: only the batch TimeCalculation
  // emits per-coflow estimates and β decisions.
  const bool incremental = ctx.tracker != nullptr && ctx.sink == nullptr;
  fabric::Allocation alloc =
      incremental ? schedule_incremental(ctx) : schedule_full(ctx);

  for (const fabric::Coflow* c : ctx.coflows)
    set_stamp(seen_round_, c->id, round_);
  for (const fabric::Flow* f : ctx.flows)
    if (alloc.rate(f->id) > 0 || alloc.compress(f->id))
      set_stamp(served_round_, f->coflow, round_);
  return alloc;
}

fabric::Allocation FvdfScheduler::schedule_full(
    const sched::SchedContext& ctx) {
  if (options_.compression)
    return fvdf_allocate(ctx, options_.online, options_.backfill,
                         options_.force_compression);
  // Nulling the codec needs a mutable view; avoid copying the context's
  // flow/coflow vectors on the common compression-enabled path.
  sched::SchedContext local = ctx;
  local.codec = nullptr;
  return fvdf_allocate(local, options_.online, options_.backfill,
                       options_.force_compression);
}

fabric::Allocation FvdfScheduler::schedule_incremental(
    const sched::SchedContext& ctx) {
  const sched::DirtyTracker& tracker = *ctx.tracker;
  EvalEnv env = eval_env(ctx);
  if (!options_.compression) env.codec = nullptr;

  if (bound_tracker_ != ctx.tracker || session_ != tracker.session()) {
    // First sight of this run (or a restarted one): rebuild from scratch.
    bound_tracker_ = ctx.tracker;
    session_ = tracker.session();
    index_.clear();
    xmit_index_.clear();
    cache_.clear();
    beta_.assign(tracker.flow_count(), 0);
    for (const fabric::Coflow* c : ctx.coflows) refresh_coflow(ctx, env, *c);
  } else {
    for (const fabric::CoflowId id : tracker.dirty()) {
      const fabric::Coflow* c = tracker.coflow(id);
      if (c == nullptr) continue;
      if (c->completed()) {
        drop_coflow(id);
        continue;
      }
      if (tracker.level(id) == sched::DirtyLevel::kKeyOnly &&
          id < cache_.size() && cache_[id].valid) {
        rekey_coflow(*c);
      } else {
        refresh_coflow(ctx, env, *c);
      }
    }
  }
  ctx.tracker->consume();

  // Volume disposal (Pseudocode 2 lines 24-35) over the memoized lanes, in
  // rank-index order — the same unique (key, arrival, id) sequence the full
  // path's stable_sort produces. The beta switches install in one bulk copy
  // (the full path's set_compress(id, true) per compressing flow writes the
  // same table entries), and the rate walks run over the transmitting-only
  // index and stop at port exhaustion: beta lanes never touch headroom, and
  // once every ingress (or every egress) port is drained all remaining
  // grants are exactly zero — the same rates an unset flow reports.
  fabric::Allocation alloc;
  alloc.reserve(tracker.flow_count());
  alloc.set_compress_all(beta_);
  fabric::PortHeadroom headroom(*ctx.fabric);
  xmit_index_.for_each_while([&](fabric::CoflowId id) {
    const CachedCoflow& cc = cache_[id];
    for (const Lane& l : cc.lanes) {
      if (l.beta) continue;
      const common::Bps r =
          std::min(l.want, headroom.available(l.src, l.dst));
      if (r > 0) {
        alloc.set_rate(l.id, r);
        headroom.consume(l.src, l.dst, r);
      }
    }
    return !headroom.exhausted();
  });
  if (options_.backfill && !headroom.exhausted()) {
    xmit_index_.for_each_while([&](fabric::CoflowId id) {
      const CachedCoflow& cc = cache_[id];
      for (const Lane& l : cc.lanes) {
        if (l.beta) continue;
        const common::Bps extra = headroom.available(l.src, l.dst);
        if (extra <= 0) continue;
        alloc.set_rate(l.id, alloc.rate(l.id) + extra);
        headroom.consume(l.src, l.dst, extra);
      }
      return !headroom.exhausted();
    });
  }
  return alloc;
}

void FvdfScheduler::refresh_coflow(const sched::SchedContext& ctx,
                                   const EvalEnv& env,
                                   const fabric::Coflow& c) {
  if (c.id >= cache_.size()) cache_.resize(c.id + 1);
  CachedCoflow& cc = cache_[c.id];
  // Un-publish the old lanes' beta switches before rebuilding: a flow that
  // finished or flipped back to transmitting must not leak a stale flag
  // into the bulk compression table.
  for (const Lane& l : cc.lanes)
    if (l.beta) beta_[l.id] = 0;
  cc.valid = true;
  cc.arrival = c.arrival;
  cc.gamma = 0;
  cc.has_xmit = false;
  cc.lanes.clear();
  const sched::DirtyTracker& tracker = *ctx.tracker;
  for (const fabric::FlowId fid : c.flows) {
    const fabric::Flow& f = tracker.flow(fid);
    if (f.done()) continue;
    const FlowEval ev = evaluate_flow(env, f, options_.force_compression);
    cc.gamma = std::max(cc.gamma, ev.fct);  // Eq. 8
    cc.lanes.push_back(Lane{fid, f.src, f.dst, ev.beta, 0.0});
    if (ev.beta) {
      if (fid >= beta_.size()) beta_.resize(fid + 1, 0);
      beta_[fid] = 1;
    } else {
      cc.has_xmit = true;
    }
  }
  if (cc.lanes.empty()) {
    index_.erase(c.id);
    xmit_index_.erase(c.id);
    return;
  }
  if (!cc.has_xmit) xmit_index_.erase(c.id);
  const common::Seconds g = std::max(cc.gamma, ctx.slice);
  for (Lane& l : cc.lanes)
    if (!l.beta) l.want = tracker.flow(l.id).volume() / g;
  rekey_coflow(c);
}

void FvdfScheduler::rekey_coflow(const fabric::Coflow& c) {
  const CachedCoflow& cc = cache_[c.id];
  if (!cc.valid || cc.lanes.empty()) return;
  const double adjusted =
      options_.online ? cc.gamma / std::max(c.priority, 1.0) : cc.gamma;
  const sched::CoflowRankKey key{adjusted, cc.arrival, c.id};
  index_.insert_or_update(c.id, key);
  if (cc.has_xmit) xmit_index_.insert_or_update(c.id, key);
}

void FvdfScheduler::drop_coflow(fabric::CoflowId id) {
  index_.erase(id);
  xmit_index_.erase(id);
  if (id < cache_.size()) {
    for (const Lane& l : cache_[id].lanes)
      if (l.beta) beta_[l.id] = 0;
    cache_[id].valid = false;
    cache_[id].has_xmit = false;
    cache_[id].lanes = {};  // free, not just clear: completed coflows linger
    cache_[id].gamma = 0;
  }
}

std::unique_ptr<sched::Scheduler> make_fvdf(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  FvdfOptions options;
  if (key == "FVDF") return std::make_unique<FvdfScheduler>(options);
  if (key == "FVDF-NC") {
    options.compression = false;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "FVDF-NOUPGRADE") {
    options.upgrade = false;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "FVDF-NOBACKFILL") {
    options.backfill = false;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "FVDF-BLIND") {
    options.force_compression = true;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "DEADLINE-FVDF" || key == "DFVDF")
    return sched::make_deadline_fvdf(key);
  throw std::out_of_range("make_fvdf: unknown variant " + name + " (known: " +
                          sched::known_scheduler_list() + ")");
}

void FvdfScheduler::save_state(recovery::StateWriter& w) const {
  w.u64(round_);
  w.u64(seen_round_.size());
  for (const std::uint64_t s : seen_round_) w.u64(s);
  w.u64(served_round_.size());
  for (const std::uint64_t s : served_round_) w.u64(s);
}

void FvdfScheduler::restore_state(recovery::StateReader& r) {
  round_ = r.u64();
  seen_round_.resize(r.count("fvdf seen stamps"));
  for (std::uint64_t& s : seen_round_) s = r.u64();
  served_round_.resize(r.count("fvdf served stamps"));
  for (std::uint64_t& s : served_round_) s = r.u64();
  // Drop any live incremental bindings: the restored run owns a fresh
  // DirtyTracker session, and schedule_incremental rebuilds from scratch
  // when it sees one. Clearing here makes that unconditional even if a
  // stale session id were ever reused.
  bound_tracker_ = nullptr;
  session_ = 0;
  cache_.clear();
  index_.clear();
  xmit_index_.clear();
  beta_.clear();
}

}  // namespace swallow::core
