#include "core/online.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <stdexcept>

#include "obs/trace.hpp"

namespace swallow::core {

void upgrade_priorities(const sched::SchedContext& ctx) {
  for (fabric::Coflow* c : ctx.coflows) {
    if (c->priority < 1.0) c->priority = 1.0;
    c->priority *= kPriorityLogBase;
  }
}

FvdfScheduler::FvdfScheduler(FvdfOptions options) : options_(options) {}

std::string FvdfScheduler::name() const {
  std::string n = "FVDF";
  if (!options_.compression) n += "-NC";
  if (options_.force_compression) n += "-BLIND";
  if (!options_.upgrade) n += "-NOUPGRADE";
  if (!options_.backfill) n += "-NOBACKFILL";
  return n;
}

fabric::Allocation FvdfScheduler::schedule(const sched::SchedContext& ctx) {
  // Pseudocode 3's Upgrade targets "coflows waiting for scheduling": age
  // only coflows that got no service out of the previous decision, at
  // coflow arrival/completion events. Served coflows keep their class, so
  // the Shortest-Gamma order is preserved while blocked coflows rise.
  if (options_.upgrade && options_.online && ctx.coflow_event) {
    for (fabric::Coflow* c : ctx.coflows) {
      if (!starved_.count(c->id)) continue;
      if (c->priority < 1.0) c->priority = 1.0;
      c->priority *= kPriorityLogBase;
      if (ctx.sink != nullptr) {
        obs::emit_instant(ctx.sink, obs::sim_ts(ctx.now), "priority_upgrade",
                          "fvdf",
                          obs::Args()
                              .add("coflow", std::int64_t(c->id))
                              .add("priority", c->priority)
                              .str());
        ctx.sink->registry().counter("fvdf.priority_upgrades").add();
      }
    }
  }

  // Nulling the codec needs a mutable view; avoid copying the context's
  // flow/coflow vectors on the common compression-enabled path.
  fabric::Allocation alloc;
  if (options_.compression) {
    alloc = fvdf_allocate(ctx, options_.online, options_.backfill,
                          options_.force_compression);
  } else {
    sched::SchedContext local = ctx;
    local.codec = nullptr;
    alloc = fvdf_allocate(local, options_.online, options_.backfill,
                          options_.force_compression);
  }

  starved_.clear();
  for (const fabric::Coflow* c : ctx.coflows) starved_.insert(c->id);
  for (const fabric::Flow* f : ctx.flows)
    if (alloc.rate(f->id) > 0 || alloc.compress(f->id))
      starved_.erase(f->coflow);
  return alloc;
}

std::unique_ptr<sched::Scheduler> make_fvdf(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  FvdfOptions options;
  if (key == "FVDF") return std::make_unique<FvdfScheduler>(options);
  if (key == "FVDF-NC") {
    options.compression = false;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "FVDF-NOUPGRADE") {
    options.upgrade = false;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "FVDF-NOBACKFILL") {
    options.backfill = false;
    return std::make_unique<FvdfScheduler>(options);
  }
  if (key == "FVDF-BLIND") {
    options.force_compression = true;
    return std::make_unique<FvdfScheduler>(options);
  }
  throw std::out_of_range("make_fvdf: unknown variant " + name);
}

}  // namespace swallow::core
