#include "core/compression_strategy.hpp"

#include <algorithm>

namespace swallow::core {

common::Bps flow_bottleneck(const fabric::Flow& flow,
                            const fabric::Fabric& fabric) {
  return std::min(fabric.ingress_capacity(flow.src),
                  fabric.egress_capacity(flow.dst));
}

CompressionDecision compression_strategy(const fabric::Flow& flow,
                                         const codec::CodecModel& codec,
                                         const cpu::CpuProvider& cpu,
                                         const fabric::Fabric& fabric,
                                         common::Seconds now) {
  CompressionDecision decision;
  decision.bandwidth = flow_bottleneck(flow, fabric);
  decision.cpu_headroom = cpu.headroom(flow.src, now);
  if (!flow.compressible) return decision;
  if (flow.raw_remaining <= fabric::kVolumeEpsilon) return decision;
  if (!cpu.can_compress(flow.src, now)) return decision;
  // Eq. 3 with the flow's own ratio when the workload specifies one.
  const double ratio = flow.effective_ratio(codec.ratio);
  const double headroom = std::clamp(decision.cpu_headroom, 0.0, 1.0);
  decision.enabled =
      codec.compress_speed * headroom * (1.0 - ratio) > decision.bandwidth;
  return decision;
}

}  // namespace swallow::core
