// Deadline admission control (DESIGN.md section 12).
//
// The gate runs once per coflow arrival and prices the coflow's best-case
// completion against its deadline slack, walking the shedding ladder
//   admit -> degrade-to-uncompressed -> defer -> reject
// before the scheduler ever sees the coflow. Estimates are isolation
// bounds (the coflow alone on the *current* fabric): optimistic on purpose —
// a coflow that cannot make its deadline even alone is hopeless under any
// schedule, so rejecting it can only free capacity for feasible work. The
// mid-flight counterpart (defer/expire under contention) lives in the
// deadline scheduler (sched/deadline_fvdf.hpp); expiry shedding lives in the
// engine.
//
// Best-effort starvation protection: admitted deadline coflows commit
// port-level (deadline, bytes) demand. An arrival passes the share guard
// only if the EDF demand bound holds on every port it touches: for each
// committed deadline boundary d at or after the arrival's own deadline,
// the cumulative committed bytes due by d must fit within max_slo_share of
// the port's *nominal* capacity over (d - now). One-shot jobs that can
// serialize inside each other's slack both pass (a scalar rate guard would
// reject the second); genuine overload — more promised bytes than the
// shared window can carry — is rejected, and best-effort traffic always
// keeps (1 - max_slo_share) of the fabric on paper.
//
// All decisions are pure functions of (coflow, live fabric, CPU headroom,
// codec, committed state), so a fixed seed replays to identical verdicts;
// per decision the cost is O(flows of the arriving coflow), which keeps the
// admission path O(changed) alongside the incremental scheduling core.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "codec/codec_model.hpp"
#include "cpu/cpu_model.hpp"
#include "fabric/coflow.hpp"
#include "fabric/fabric.hpp"
#include "recovery/state_io.hpp"

namespace swallow::core {

struct AdmissionConfig {
  /// Master switch. Off (the default) keeps the engine's arrival path
  /// byte-identical to the pre-SLO behavior: every coflow is admitted and
  /// nothing is ever shed.
  bool enabled = false;
  /// Reject when even the *nominal* fabric (no degradation, coflow alone)
  /// needs more than reject_margin x slack. 1.0 = reject only the hopeless.
  double reject_margin = 1.0;
  /// Cap on the fraction of any port's nominal capacity the EDF demand
  /// bound may promise to deadline coflows; arrivals that would overcommit
  /// any deadline window are rejected (overload shedding + best-effort
  /// starvation protection).
  double max_slo_share = 0.9;
  /// Drop the remaining volume of expired deadline coflows at the first
  /// slice boundary past their deadline (engine-side shedding) instead of
  /// letting doomed work drain as best-effort.
  bool shed_expired = true;
};

enum class AdmissionVerdict : std::uint8_t {
  kAdmit = 0,    ///< feasible; commit port share
  kDegrade = 1,  ///< feasible only uncompressed: CPU cost priced out by
                 ///< slack, beta forced 0 for the coflow's lifetime
  kDefer = 2,    ///< infeasible on the current (degraded) fabric but not
                 ///< hopeless: admit unpromised, serve by leftovers
  kReject = 3,   ///< hopeless or share-exhausted: drop at arrival
};

struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
  const char* reason = "best_effort";
  /// Isolation completion estimates backing the verdict (seconds; +inf when
  /// a required port is down / compression unavailable).
  common::Seconds t_uncompressed = 0;  ///< current capacities, beta = 0
  common::Seconds t_compressed = 0;    ///< current capacities, compress all
  common::Seconds t_nominal = 0;       ///< nominal capacities, beta = 0
};

class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config,
                      const fabric::Fabric& nominal);

  /// Arrival gate. `now` is the coflow's arrival instant; `live` carries the
  /// current per-port multipliers. Commits port share for kAdmit/kDegrade
  /// verdicts — the caller must release() when the coflow completes or is
  /// shed. Best-effort coflows (no deadline) are always admitted and never
  /// commit share.
  AdmissionDecision admit(const fabric::Coflow& coflow,
                          const std::vector<fabric::Flow>& all_flows,
                          const fabric::Fabric& live,
                          const cpu::CpuProvider& cpu,
                          const codec::CodecModel* codec, common::Seconds now);

  /// Returns the coflow's committed port demand (no-op when none).
  void release(fabric::CoflowId id);

  /// Mid-flight re-pricing at capacity-change preemption points. Arrival
  /// verdicts are priced against the fabric *as it stood then*; a later
  /// brownout can strand a commitment the fabric can no longer honor, and
  /// the stale promise both blocks feasible arrivals (EDF demand bound)
  /// and lets doomed work drain until its expiry. reprice() re-runs the
  /// isolation bounds for every committed coflow against the live fabric
  /// at `now` (remaining volumes: the walk happens at a fold boundary):
  ///   - still hopeless on the *nominal* fabric -> `shed` (the caller
  ///     rejects it mid-flight; the expiry ladder would only catch it at
  ///     its deadline, after burning capacity for the whole slack),
  ///   - infeasible on the live fabric -> `demoted` (commitment released
  ///     here; the caller demotes kAdmitted to kDeferred — allocations do
  ///     not key on the difference, so no reschedule is forced).
  /// The walk is over commitment ids in sorted order, so outcomes are
  /// deterministic and identical across engine modes.
  struct RepriceOutcome {
    std::vector<fabric::CoflowId> shed;
    std::vector<fabric::CoflowId> demoted;
  };
  RepriceOutcome reprice(
      const std::vector<fabric::Flow>& all_flows, const fabric::Fabric& live,
      const cpu::CpuProvider& cpu, const codec::CodecModel* codec,
      common::Seconds now,
      const std::function<const fabric::Coflow&(fabric::CoflowId)>& coflow_of);

  /// Number of committed (not yet released) demands on a port
  /// (tests/diagnostics).
  std::size_t committed_ingress(fabric::PortId p) const {
    return committed_ingress_[p].size();
  }
  std::size_t committed_egress(fabric::PortId p) const {
    return committed_egress_[p].size();
  }

  /// Checkpoint/restore of the committed-demand tables (DESIGN.md section
  /// 13). Per-port demand vectors serialize verbatim (their order is
  /// deterministic: driven by the admit/release sequence); the commitment
  /// map is written sorted by coflow id so the bytes are deterministic too.
  /// restore_state throws recovery::RecoveryError when the port count does
  /// not match this controller's fabric.
  void save_state(recovery::StateWriter& w) const;
  void restore_state(recovery::StateReader& r);

 private:
  /// One admitted coflow's promised demand on one port: the flows crossing
  /// it, due by the absolute `deadline`. Priced at their *live* remaining
  /// volume when later arrivals are tested (a part-served promise shrinks),
  /// released wholesale at completion or shed.
  struct Demand {
    common::Seconds deadline = 0;
    fabric::CoflowId coflow = 0;
    std::vector<fabric::FlowId> flows;
  };

  /// Isolation completion bounds for `coflow` alone at `now` (remaining
  /// volumes). Fills the touched/byte scratch as a side effect — admit()
  /// reads it for the EDF bound and the commit.
  struct Bounds {
    common::Seconds t_cur = 0;   ///< current capacities, uncompressed
    common::Seconds t_comp = 0;  ///< current capacities, compress-all
    common::Seconds t_nom = 0;   ///< nominal capacities, uncompressed
    bool any_compressible = false;
  };
  Bounds price(const fabric::Coflow& coflow,
               const std::vector<fabric::Flow>& all_flows,
               const fabric::Fabric& live, const cpu::CpuProvider& cpu,
               const codec::CodecModel* codec, common::Seconds now);

  /// EDF demand bound on one port: with `add_bytes` due by `add_deadline`
  /// included, every deadline boundary at or after it must satisfy
  ///   sum(remaining bytes due by d) <= max_slo_share * capacity * (d - now).
  bool demand_fits(const std::vector<Demand>& committed,
                   const std::vector<fabric::Flow>& all_flows,
                   common::Seconds add_deadline, common::Bytes add_bytes,
                   common::Bps capacity, common::Seconds now) const;

  AdmissionConfig config_;
  std::vector<common::Bps> nominal_ingress_;
  std::vector<common::Bps> nominal_egress_;
  std::vector<std::vector<Demand>> committed_ingress_;
  std::vector<std::vector<Demand>> committed_egress_;

  /// Ports each coflow committed demand on, so release() is O(ports
  /// touched by that coflow).
  struct Commitment {
    std::vector<fabric::PortId> ingress;
    std::vector<fabric::PortId> egress;
  };
  std::unordered_map<fabric::CoflowId, Commitment> commitments_;

  // Scratch per-port byte loads, reset via the touched lists (decisions stay
  // O(flows of the coflow), not O(ports)).
  std::vector<common::Bytes> ingress_bytes_;
  std::vector<common::Bytes> egress_bytes_;
  std::vector<common::Bytes> compress_raw_;  ///< raw bytes to encode per src
  std::vector<fabric::PortId> touched_ingress_;
  std::vector<fabric::PortId> touched_egress_;
};

}  // namespace swallow::core
