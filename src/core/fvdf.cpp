#include "core/fvdf.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::core {

common::Bytes delta_c(const codec::CodecModel& codec, common::Seconds slice,
                      double cpu_headroom) {
  return codec.delta_c(slice, cpu_headroom);
}

common::Bytes delta_t(common::Bps bandwidth, common::Seconds slice) {
  return bandwidth * slice;
}

common::Seconds expected_fct(const fabric::Flow& flow, bool beta,
                             const codec::CodecModel& codec,
                             double cpu_headroom, common::Bps bandwidth,
                             common::Seconds slice) {
  if (bandwidth <= 0) throw std::invalid_argument("expected_fct: B <= 0");
  // Eq. 1 with the flow's own ratio when the workload specifies one.
  codec::CodecModel effective = codec;
  effective.ratio = flow.effective_ratio(codec.ratio);
  const common::Bytes disposal =
      beta ? delta_c(effective, slice, cpu_headroom)
           : delta_t(bandwidth, slice);
  const common::Bytes rest = std::max(0.0, flow.volume() - disposal);
  return slice + rest / bandwidth;
}

namespace {

// Cold, out-of-line emitters keep the Args-building machinery out of the
// time_calculation loop body, so the traced-off path stays tight.
[[gnu::noinline, gnu::cold]] void emit_beta_decision(
    const sched::SchedContext& ctx, const fabric::Flow& f,
    const fabric::Coflow& c, bool beta, common::Seconds fct) {
  obs::emit_instant(ctx.sink, obs::sim_ts(ctx.now), "beta_decision", "fvdf",
                    obs::Args()
                        .add("flow", std::int64_t(f.id))
                        .add("coflow", std::int64_t(c.id))
                        .add("beta", beta)
                        .add("expected_fct", fct)
                        .str());
}

[[gnu::noinline, gnu::cold]] void emit_coflow_estimate(
    const sched::SchedContext& ctx, const fabric::Coflow& c,
    const CoflowEstimate& est) {
  obs::emit_instant(ctx.sink, obs::sim_ts(ctx.now), "coflow_estimate", "fvdf",
                    obs::Args()
                        .add("coflow", std::int64_t(c.id))
                        .add("gamma", est.gamma)
                        .add("priority", c.priority)
                        .add("key", est.adjusted_gamma)
                        .str());
}

}  // namespace

[[gnu::noinline]] FlowEval evaluate_flow(const EvalEnv& env,
                                         const fabric::Flow& f,
                                         bool force_compression) {
  bool beta = false;
  double headroom = 0.0;
  const common::Bps bandwidth = flow_bottleneck(f, *env.fabric);
  if (env.codec != nullptr && env.cpu != nullptr) {
    const CompressionDecision d =
        compression_strategy(f, *env.codec, *env.cpu, *env.fabric, env.now);
    headroom = d.cpu_headroom;
    beta = d.enabled ||
           (force_compression && f.compressible &&
            f.raw_remaining > fabric::kVolumeEpsilon &&
            env.cpu->can_compress(f.src, env.now));
  }
  // A failed link (current bottleneck 0) makes Eq. 7 unbounded: the flow
  // cannot transmit until the port recovers, so its coflow ranks last
  // regardless of priority — exactly what volume disposal wants, since
  // spending bandwidth elsewhere is always better. Compression may still
  // run (Eq. 3 holds trivially at B = 0), disposing raw volume while the
  // flow waits.
  common::Seconds fct;
  if (bandwidth <= 0) {
    fct = std::numeric_limits<common::Seconds>::infinity();
  } else {
    // Eq. 7 needs a codec even when beta is false; the term vanishes.
    const codec::CodecModel& model =
        env.codec != nullptr ? *env.codec : codec::default_codec_model();
    fct = expected_fct(f, beta, model, headroom, bandwidth, env.slice);
  }
  return FlowEval{beta, fct};
}

std::vector<CoflowEstimate> time_calculation(const sched::SchedContext& ctx,
                                             bool online,
                                             bool force_compression) {
  const EvalEnv env = eval_env(ctx);
  // Group unfinished flows by coflow. The engine hands the grouping over in
  // coflow_flow_offsets (it walks coflow-by-coflow anyway), so the common
  // path is a flat slice per coflow; hand-built contexts without offsets
  // fall back to the historical hash-map rebuild.
  std::unordered_map<fabric::CoflowId, std::vector<const fabric::Flow*>>
      by_coflow;
  const bool grouped = ctx.grouped();
  if (!grouped) {
    for (const fabric::Flow* f : ctx.flows)
      if (!f->done()) by_coflow[f->coflow].push_back(f);
  }

  std::vector<CoflowEstimate> estimates;
  estimates.reserve(ctx.coflows.size());
  for (std::size_t ci = 0; ci < ctx.coflows.size(); ++ci) {
    fabric::Coflow* c = ctx.coflows[ci];
    CoflowEstimate est;
    if (grouped) {
      const std::size_t begin = ctx.coflow_flow_offsets[ci];
      const std::size_t end = ctx.coflow_flow_offsets[ci + 1];
      if (begin == end) continue;
      est.flows.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        if (!ctx.flows[i]->done()) est.flows.push_back(ctx.flows[i]);
      if (est.flows.empty()) continue;
    } else {
      const auto it = by_coflow.find(c->id);
      if (it == by_coflow.end()) continue;
      est.flows = it->second;
    }
    est.coflow = c;
    est.beta.reserve(est.flows.size());

    for (const fabric::Flow* f : est.flows) {
      const FlowEval ev = evaluate_flow(env, *f, force_compression);
      est.beta.push_back(ev.beta);
      est.gamma = std::max(est.gamma, ev.fct);  // Eq. 8
      if (ctx.sink != nullptr) [[unlikely]]
        emit_beta_decision(ctx, *f, *c, ev.beta, ev.fct);
    }
    est.adjusted_gamma =
        online ? est.gamma / std::max(c->priority, 1.0) : est.gamma;
    if (ctx.sink != nullptr) [[unlikely]]
      emit_coflow_estimate(ctx, *c, est);
    estimates.push_back(std::move(est));
  }
  return estimates;
}

fabric::Allocation fvdf_allocate(const sched::SchedContext& ctx, bool online,
                                 bool backfill, bool force_compression) {
  obs::ProfileScope scope(ctx.sink, "fvdf.allocate");
  std::vector<CoflowEstimate> estimates =
      time_calculation(ctx, online, force_compression);
  std::stable_sort(estimates.begin(), estimates.end(),
                   [](const CoflowEstimate& a, const CoflowEstimate& b) {
                     if (a.adjusted_gamma != b.adjusted_gamma)
                       return a.adjusted_gamma < b.adjusted_gamma;
                     if (a.coflow->arrival != b.coflow->arrival)
                       return a.coflow->arrival < b.coflow->arrival;
                     return a.coflow->id < b.coflow->id;
                   });

  fabric::Allocation alloc;
  fabric::PortHeadroom headroom(*ctx.fabric);

  // Volume disposal (Pseudocode 2 lines 24-35): compressing flows use the
  // CPU this round (rate 0, ports left to others); transmitting flows get
  // the minimum rate that finishes them inside Gamma_C, capped by residual
  // headroom. Later coflows see what is left, in order.
  for (const CoflowEstimate& est : estimates) {
    for (std::size_t i = 0; i < est.flows.size(); ++i) {
      const fabric::Flow* f = est.flows[i];
      if (est.beta[i]) {
        alloc.set_compress(f->id, true);
        alloc.set_rate(f->id, 0.0);
        continue;
      }
      const common::Seconds gamma = std::max(est.gamma, ctx.slice);
      const common::Bps want = f->volume() / gamma;
      const common::Bps r = std::min(want, headroom.available(*f));
      alloc.set_rate(f->id, r);
      headroom.consume(*f, r);
    }
  }

  if (backfill) {
    // Work conservation: top transmitting flows up in coflow order.
    for (const CoflowEstimate& est : estimates) {
      for (std::size_t i = 0; i < est.flows.size(); ++i) {
        if (est.beta[i]) continue;
        const fabric::Flow* f = est.flows[i];
        const common::Bps extra = headroom.available(*f);
        if (extra <= 0) continue;
        alloc.set_rate(f->id, alloc.rate(f->id) + extra);
        headroom.consume(*f, extra);
      }
    }
  }
  return alloc;
}

}  // namespace swallow::core
