// Pseudocode 1 of the paper: the per-flow compression gate.
//
// beta = 1 iff
//   (1) the flow's payload is compressible at all,
//   (2) there is still raw (uncompressed) volume to work on,
//   (3) the sender's CPU has headroom for the compressor, and
//   (4) Eq. (3) holds: R_eff * (1 - xi) > B, i.e. a compression slice
//       disposes more volume than a transmission slice would.
#pragma once

#include "codec/codec_model.hpp"
#include "cpu/cpu_model.hpp"
#include "fabric/coflow.hpp"
#include "fabric/fabric.hpp"

namespace swallow::core {

struct CompressionDecision {
  bool enabled = false;       ///< the paper's beta
  double cpu_headroom = 0.0;  ///< sender headroom used for R_eff
  common::Bps bandwidth = 0;  ///< the B used in the Eq. (3) comparison
};

/// The flow's B: min of its sender ingress and receiver egress capacity
/// (paper Eq. 2 uses the min of the two port bandwidths).
common::Bps flow_bottleneck(const fabric::Flow& flow,
                            const fabric::Fabric& fabric);

CompressionDecision compression_strategy(const fabric::Flow& flow,
                                         const codec::CodecModel& codec,
                                         const cpu::CpuProvider& cpu,
                                         const fabric::Fabric& fabric,
                                         common::Seconds now);

}  // namespace swallow::core
