#include "core/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace swallow::core {

namespace {

inline constexpr common::Seconds kInf =
    std::numeric_limits<common::Seconds>::infinity();

common::Seconds safe_time(common::Bytes bytes, common::Bps rate) {
  if (bytes <= 0) return 0;
  if (rate <= 0) return kInf;
  return bytes / rate;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         const fabric::Fabric& nominal)
    : config_(config) {
  const std::size_t ports = nominal.num_ports();
  nominal_ingress_.resize(ports);
  nominal_egress_.resize(ports);
  for (fabric::PortId p = 0; p < ports; ++p) {
    nominal_ingress_[p] = nominal.nominal_ingress_capacity(p);
    nominal_egress_[p] = nominal.nominal_egress_capacity(p);
  }
  committed_ingress_.assign(ports, {});
  committed_egress_.assign(ports, {});
  ingress_bytes_.assign(ports, 0);
  egress_bytes_.assign(ports, 0);
  compress_raw_.assign(ports, 0);
}

AdmissionDecision AdmissionController::admit(
    const fabric::Coflow& coflow, const std::vector<fabric::Flow>& all_flows,
    const fabric::Fabric& live, const cpu::CpuProvider& cpu,
    const codec::CodecModel* codec, common::Seconds now) {
  AdmissionDecision d;
  if (!config_.enabled || !coflow.has_deadline()) {
    d.verdict = AdmissionVerdict::kAdmit;
    d.reason = "best_effort";
    return d;
  }

  const common::Seconds slack = coflow.deadline - now;
  const Bounds b = price(coflow, all_flows, live, cpu, codec, now);

  d.t_uncompressed = b.t_cur;
  d.t_compressed = b.t_comp;
  d.t_nominal = b.t_nom;

  // Ladder rung 1: hopeless even on a healthy fabric with the coflow alone.
  if (b.t_nom > config_.reject_margin * slack) {
    d.verdict = AdmissionVerdict::kReject;
    d.reason = "hopeless";
    return d;
  }

  // Ladder rung 2: infeasible on the fabric as it stands (degradation may
  // lift later) — keep it, unpromised, served by leftovers.
  const common::Seconds t_best = std::min(b.t_cur, b.t_comp);
  if (t_best > slack) {
    d.verdict = AdmissionVerdict::kDefer;
    d.reason = "infeasible_now";
    return d;
  }

  // Ladder rung 3: EDF demand bound per touched port — would the promised
  // bytes overflow any deadline window past the SLO share of nominal
  // capacity? (Boundaries before this coflow's own deadline are untouched
  // by it and are not re-litigated: their jobs are already part-served.)
  for (fabric::PortId p : touched_ingress_) {
    if (!demand_fits(committed_ingress_[p], all_flows, coflow.deadline,
                     ingress_bytes_[p], nominal_ingress_[p], now)) {
      d.verdict = AdmissionVerdict::kReject;
      d.reason = "slo_share_exhausted";
      return d;
    }
  }
  for (fabric::PortId p : touched_egress_) {
    if (!demand_fits(committed_egress_[p], all_flows, coflow.deadline,
                     egress_bytes_[p], nominal_egress_[p], now)) {
      d.verdict = AdmissionVerdict::kReject;
      d.reason = "slo_share_exhausted";
      return d;
    }
  }

  // Ladder rung 4: feasible raw but compression's CPU bill blows the
  // deadline — admit with beta forced off for the coflow's lifetime. A
  // coflow with nothing to compress has no compression to price out.
  if (b.any_compressible && b.t_cur <= slack && b.t_comp > slack) {
    d.verdict = AdmissionVerdict::kDegrade;
    d.reason = "compression_priced_out";
  } else {
    d.verdict = AdmissionVerdict::kAdmit;
    d.reason = "feasible";
  }

  // Commit the promise (released at completion or shed).
  Commitment& c = commitments_[coflow.id];
  for (fabric::PortId p : touched_ingress_) {
    Demand dm{coflow.deadline, coflow.id, {}};
    for (fabric::FlowId fid : coflow.flows)
      if (all_flows[fid].src == p &&
          all_flows[fid].volume() > fabric::kVolumeEpsilon)
        dm.flows.push_back(fid);
    committed_ingress_[p].push_back(std::move(dm));
    c.ingress.push_back(p);
  }
  for (fabric::PortId p : touched_egress_) {
    Demand dm{coflow.deadline, coflow.id, {}};
    for (fabric::FlowId fid : coflow.flows)
      if (all_flows[fid].dst == p &&
          all_flows[fid].volume() > fabric::kVolumeEpsilon)
        dm.flows.push_back(fid);
    committed_egress_[p].push_back(std::move(dm));
    c.egress.push_back(p);
  }
  return d;
}

AdmissionController::Bounds AdmissionController::price(
    const fabric::Coflow& coflow, const std::vector<fabric::Flow>& all_flows,
    const fabric::Fabric& live, const cpu::CpuProvider& cpu,
    const codec::CodecModel* codec, common::Seconds now) {
  // Per-port raw byte loads (and the raw bytes the codec would have to
  // encode at each sender). Touched lists keep the reset O(flows).
  for (fabric::PortId p : touched_ingress_) {
    ingress_bytes_[p] = 0;
    compress_raw_[p] = 0;
  }
  for (fabric::PortId p : touched_egress_) egress_bytes_[p] = 0;
  touched_ingress_.clear();
  touched_egress_.clear();
  bool any_compressible = false;
  for (fabric::FlowId fid : coflow.flows) {
    const fabric::Flow& f = all_flows[fid];
    const common::Bytes v = f.volume();
    if (v <= fabric::kVolumeEpsilon) continue;
    if (ingress_bytes_[f.src] == 0 && compress_raw_[f.src] == 0)
      touched_ingress_.push_back(f.src);
    if (egress_bytes_[f.dst] == 0) touched_egress_.push_back(f.dst);
    ingress_bytes_[f.src] += v;
    egress_bytes_[f.dst] += v;
    if (f.compressible && codec != nullptr) {
      compress_raw_[f.src] += f.raw_remaining;
      any_compressible = true;
    }
  }

  // Isolation bounds: the coflow alone, bottleneck port dominates.
  common::Seconds t_cur = 0;      // current capacities, uncompressed
  common::Seconds t_nom = 0;      // nominal capacities, uncompressed
  common::Seconds t_comp = 0;     // current capacities, compress-all
  for (fabric::PortId p : touched_ingress_) {
    const common::Bytes raw = ingress_bytes_[p];
    t_cur = std::max(t_cur, safe_time(raw, live.ingress_capacity(p)));
    t_nom = std::max(t_nom, safe_time(raw, nominal_ingress_[p]));
    if (any_compressible) {
      // Serialized pessimism per sender: encode the compressible bytes on
      // this node's idle CPU, then ship the (shrunk) load through the NIC.
      const common::Bytes to_encode = compress_raw_[p];
      common::Seconds enc = 0;
      common::Bytes wire = raw;
      if (to_encode > 0) {
        const double headroom = cpu.headroom(p, now);
        if (headroom < cpu::kMinCompressionHeadroom ||
            !cpu.can_compress(p, now)) {
          enc = kInf;
        } else {
          enc = safe_time(to_encode, codec->compress_speed * headroom);
          wire = raw - to_encode * (1.0 - codec->ratio);
        }
      }
      t_comp = std::max(t_comp,
                        enc + safe_time(wire, live.ingress_capacity(p)));
    }
  }
  for (fabric::PortId p : touched_egress_) {
    const common::Bytes raw = egress_bytes_[p];
    t_cur = std::max(t_cur, safe_time(raw, live.egress_capacity(p)));
    t_nom = std::max(t_nom, safe_time(raw, nominal_egress_[p]));
    if (any_compressible) {
      // Receivers see wire bytes; assume every compressible byte shrinks.
      // (Receiver-side decode overlaps the transfer and is not modeled.)
      common::Bytes wire = raw;
      for (fabric::FlowId fid : coflow.flows) {
        const fabric::Flow& f = all_flows[fid];
        if (f.dst != p || !f.compressible || codec == nullptr) continue;
        wire -= f.raw_remaining * (1.0 - codec->ratio);
      }
      t_comp = std::max(t_comp, safe_time(wire, live.egress_capacity(p)));
    }
  }
  if (!any_compressible) t_comp = kInf;

  return Bounds{t_cur, t_comp, t_nom, any_compressible};
}

AdmissionController::RepriceOutcome AdmissionController::reprice(
    const std::vector<fabric::Flow>& all_flows, const fabric::Fabric& live,
    const cpu::CpuProvider& cpu, const codec::CodecModel* codec,
    common::Seconds now,
    const std::function<const fabric::Coflow&(fabric::CoflowId)>& coflow_of) {
  RepriceOutcome out;
  if (commitments_.empty()) return out;

  // Sorted snapshot of the ids: the walk mutates commitments_ (demotions
  // release), and unordered_map iteration order must never leak into
  // verdicts — both engine modes must shed/demote the same coflows.
  std::vector<fabric::CoflowId> ids;
  ids.reserve(commitments_.size());
  for (const auto& [id, c] : commitments_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  for (const fabric::CoflowId id : ids) {
    const fabric::Coflow& coflow = coflow_of(id);
    const common::Seconds slack = coflow.deadline - now;
    // Already past its deadline at this boundary: the expiry ladder owns
    // that shed (same journal record, same boundary) — don't double-count.
    if (slack <= 0) continue;
    const Bounds b = price(coflow, all_flows, live, cpu, codec, now);
    if (std::min(b.t_cur, b.t_comp) <= slack) continue;  // still feasible
    if (b.t_nom > config_.reject_margin * slack) {
      // Hopeless: infeasible live even compressed, AND the remaining raw
      // volume misses the deadline even at nominal capacity. Shedding now
      // (instead of at expiry) returns the fabric share to feasible work
      // for the whole remaining slack. The compressed-path check matters:
      // t_nom prices raw bytes, and a coflow whose codec carries it must
      // not be shed on a raw-only bound.
      out.shed.push_back(id);
    } else {
      // Feasible on paper, not on the fabric as it stands: withdraw the
      // promise so the EDF demand bound stops charging arrivals for bytes
      // this coflow cannot land in time. It keeps running by leftovers
      // (kDeferred) and is re-shed at expiry if degradation never lifts.
      release(id);
      out.demoted.push_back(id);
    }
  }
  // Sheds release through the caller's mark_rejected -> release() path.
  return out;
}

bool AdmissionController::demand_fits(
    const std::vector<Demand>& committed,
    const std::vector<fabric::Flow>& all_flows, common::Seconds add_deadline,
    common::Bytes add_bytes, common::Bps capacity,
    common::Seconds now) const {
  const double window = config_.max_slo_share * capacity;
  const auto remaining = [&](const Demand& dm) {
    common::Bytes v = 0;
    for (fabric::FlowId fid : dm.flows) v += all_flows[fid].volume();
    return v;
  };
  // Bytes already promised by the new coflow's own deadline; every later
  // boundary only accumulates on top of this.
  common::Bytes by_add = add_bytes;
  for (const Demand& dm : committed)
    if (dm.deadline <= add_deadline) by_add += remaining(dm);
  if (by_add > window * (add_deadline - now)) return false;
  // Later boundaries, checked in deadline order (the set is small: only
  // in-flight admitted coflows on this port).
  std::vector<const Demand*> later;
  for (const Demand& dm : committed)
    if (dm.deadline > add_deadline) later.push_back(&dm);
  std::sort(later.begin(), later.end(),
            [](const Demand* a, const Demand* b) {
              return a->deadline < b->deadline;
            });
  common::Bytes cum = by_add;
  for (const Demand* dm : later) {
    cum += remaining(*dm);
    if (cum > window * (dm->deadline - now)) return false;
  }
  return true;
}

void AdmissionController::release(fabric::CoflowId id) {
  auto it = commitments_.find(id);
  if (it == commitments_.end()) return;
  auto erase_mine = [id](std::vector<Demand>& v) {
    for (std::size_t i = 0; i < v.size();) {
      if (v[i].coflow == id) {
        v[i] = v.back();
        v.pop_back();
      } else {
        ++i;
      }
    }
  };
  for (fabric::PortId p : it->second.ingress) erase_mine(committed_ingress_[p]);
  for (fabric::PortId p : it->second.egress) erase_mine(committed_egress_[p]);
  commitments_.erase(it);
}

void AdmissionController::save_state(recovery::StateWriter& w) const {
  auto save_side = [&w](const std::vector<std::vector<Demand>>& side) {
    w.u64(side.size());
    for (const std::vector<Demand>& port : side) {
      w.u64(port.size());
      for (const Demand& d : port) {
        w.f64(d.deadline);
        w.u64(d.coflow);
        w.u64(d.flows.size());
        for (const fabric::FlowId fid : d.flows) w.u64(fid);
      }
    }
  };
  save_side(committed_ingress_);
  save_side(committed_egress_);

  std::vector<fabric::CoflowId> ids;
  ids.reserve(commitments_.size());
  for (const auto& [id, c] : commitments_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (const fabric::CoflowId id : ids) {
    const Commitment& c = commitments_.at(id);
    w.u64(id);
    w.u64(c.ingress.size());
    for (const fabric::PortId p : c.ingress) w.u64(p);
    w.u64(c.egress.size());
    for (const fabric::PortId p : c.egress) w.u64(p);
  }
}

void AdmissionController::restore_state(recovery::StateReader& r) {
  auto restore_side = [&r](std::vector<std::vector<Demand>>& side,
                           const char* what) {
    const std::uint64_t ports = r.u64();
    if (ports != side.size())
      throw recovery::RecoveryError(
          std::string("admission: snapshot has ") + std::to_string(ports) +
          " " + what + " ports, controller has " +
          std::to_string(side.size()));
    for (std::vector<Demand>& port : side) {
      port.resize(r.count("admission demands"));
      for (Demand& d : port) {
        d.deadline = r.f64();
        d.coflow = r.u64();
        d.flows.resize(r.count("admission demand flows"));
        for (fabric::FlowId& fid : d.flows) fid = r.u64();
      }
    }
  };
  restore_side(committed_ingress_, "ingress");
  restore_side(committed_egress_, "egress");

  commitments_.clear();
  const std::uint64_t n = r.count("admission commitments");
  for (std::uint64_t i = 0; i < n; ++i) {
    const fabric::CoflowId id = r.u64();
    Commitment c;
    c.ingress.resize(r.count("commitment ingress ports"));
    for (fabric::PortId& p : c.ingress) p = r.u64();
    c.egress.resize(r.count("commitment egress ports"));
    for (fabric::PortId& p : c.egress) p = r.u64();
    commitments_.emplace(id, std::move(c));
  }
}

}  // namespace swallow::core
