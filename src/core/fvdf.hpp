// Fastest-Volume-Disposal-First (the paper's Pseudocode 2).
//
// The offline primitives: per-flow expected FCT (Eq. 7), per-coflow expected
// CCT (Eq. 8), and the rate assignment r = f.V / Gamma_C with
// work-conserving backfill. The online wrapper (online.hpp) adds the
// priority-class starvation protection.
#pragma once

#include <vector>

#include "core/compression_strategy.hpp"
#include "sched/scheduler.hpp"

namespace swallow::core {

/// Eq. 1: volume disposed by one compression slice.
common::Bytes delta_c(const codec::CodecModel& codec, common::Seconds slice,
                      double cpu_headroom);

/// Eq. 2: volume disposed by one transmission slice at bandwidth B.
common::Bytes delta_t(common::Bps bandwidth, common::Seconds slice);

/// Eq. 7: expected FCT assuming the worst case that compression is disabled
/// after the current slice. `beta` is the compression decision for the
/// coming slice.
common::Seconds expected_fct(const fabric::Flow& flow, bool beta,
                             const codec::CodecModel& codec,
                             double cpu_headroom, common::Bps bandwidth,
                             common::Seconds slice);

/// The inputs Eq. 3 / Eq. 7 read for one flow, detached from SchedContext
/// so the incremental path (online.hpp) can evaluate single flows — and the
/// FVDF-NC ablation can null out the codec — without copying a context.
struct EvalEnv {
  const fabric::Fabric* fabric = nullptr;
  const cpu::CpuProvider* cpu = nullptr;
  const codec::CodecModel* codec = nullptr;  ///< null disables compression
  common::Seconds now = 0;
  common::Seconds slice = common::kDefaultSlice;
};

inline EvalEnv eval_env(const sched::SchedContext& ctx) {
  return EvalEnv{ctx.fabric, ctx.cpu, ctx.codec, ctx.now, ctx.slice};
}

struct FlowEval {
  bool beta = false;        ///< compression decision for the coming slice
  common::Seconds fct = 0;  ///< Eq. 7 (+inf on a failed link)
};

/// One flow's compression decision and expected FCT. This is *the* Γ
/// kernel: both the batch TimeCalculation and the incremental refresh call
/// it, and it is deliberately out-of-line (noinline) so the two paths share
/// one instantiation — identical code, identical FP contraction, identical
/// bits. Inlining it into two different loops would let the compiler fuse
/// multiply-adds differently per call site and break the byte-identity
/// contract between the incremental and full-recompute schedulers.
FlowEval evaluate_flow(const EvalEnv& env, const fabric::Flow& f,
                       bool force_compression);

struct CoflowEstimate {
  fabric::Coflow* coflow = nullptr;
  common::Seconds gamma = 0;           ///< Eq. 8 (raw, before priority)
  common::Seconds adjusted_gamma = 0;  ///< gamma / coflow->priority
  std::vector<const fabric::Flow*> flows;
  std::vector<bool> beta;  ///< per-flow compression decision, aligned
};

/// TimeCalculation (Pseudocode 2 lines 12-23): evaluates the compression
/// strategy for every flow of every coflow, computes Gamma_C, and, when
/// `online`, divides by the coflow's priority class.
std::vector<CoflowEstimate> time_calculation(const sched::SchedContext& ctx,
                                             bool online,
                                             bool force_compression = false);

/// Full FVDF allocation: coflows ordered Shortest-(adjusted)-Gamma-first;
/// each flow of an admitted coflow gets rate f.V / Gamma_C (volume
/// disposal, line 29), compressing flows get rate 0 for the coming slices;
/// residual capacity backfills later coflows, then a work-conserving pass.
/// `force_compression` bypasses the Eq. 3 gate (ablation: compress blindly
/// whenever the payload is compressible and raw bytes remain).
fabric::Allocation fvdf_allocate(const sched::SchedContext& ctx, bool online,
                                 bool backfill = true,
                                 bool force_compression = false);

}  // namespace swallow::core
