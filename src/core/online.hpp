// Online FVDF scheduler (the paper's Pseudocode 3) wrapped in the common
// Scheduler interface, plus the priority-class Upgrade that guarantees
// starvation freedom.
//
// When the context carries a DirtyTracker (and no trace sink), schedule()
// runs the incremental path (DESIGN.md section 11): per-coflow Γ components
// are memoized, the rank order lives in a RankIndex, and each decision point
// re-evaluates only the coflows the dirty set names. The allocations are
// bit-for-bit identical to the historical full recompute — test_engine_parity
// and test_incremental enforce this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fvdf.hpp"
#include "sched/dirty.hpp"
#include "sched/rank_index.hpp"
#include "sched/scheduler.hpp"

namespace swallow::core {

/// Pseudocode 3's logbase: each scheduling event multiplies every waiting
/// coflow's priority class by this factor.
inline constexpr double kPriorityLogBase = 1.2;

/// Upgrade (Pseudocode 3 lines 15-23): bumps the priority class of every
/// coflow in the context and reports which coflows it bumped, so callers can
/// re-rank exactly those instead of forcing a global re-sort. When the
/// context carries a DirtyTracker the bumps are also marked key-only dirty.
/// The pseudocode applies this to "coflows waiting for scheduling";
/// FvdfScheduler therefore ages only coflows that received no service in its
/// previous allocation (see DESIGN.md 4.2) and this helper is exposed for
/// the uniform-aging building block.
std::vector<fabric::CoflowId> upgrade_priorities(
    const sched::SchedContext& ctx);

struct FvdfOptions {
  bool online = true;            ///< divide Gamma_C by the priority class
  bool upgrade = true;           ///< run Upgrade at every event
  bool compression = true;       ///< allow beta = 1 (ablation knob)
  bool backfill = true;          ///< work-conserving pass (ablation knob)
  bool force_compression = false;  ///< bypass the Eq. 3 gate (ablation)
};

class FvdfScheduler final : public sched::Scheduler {
 public:
  explicit FvdfScheduler(FvdfOptions options = {});
  std::string name() const override;
  fabric::Allocation schedule(const sched::SchedContext& ctx) override;

  /// Serializes the starvation round stamps (the only state a restored run
  /// cannot rederive); the incremental caches are session-keyed and
  /// rebuilt on the first post-restore round.
  void save_state(recovery::StateWriter& w) const override;
  void restore_state(recovery::StateReader& r) override;

  const FvdfOptions& options() const { return options_; }

 private:
  fabric::Allocation schedule_full(const sched::SchedContext& ctx);
  fabric::Allocation schedule_incremental(const sched::SchedContext& ctx);
  /// Re-evaluates a dirty coflow's flows (Eq. 7/8), refreshing its cache
  /// entry and its rank-index slot.
  void refresh_coflow(const sched::SchedContext& ctx, const EvalEnv& env,
                      const fabric::Coflow& c);
  /// Re-derives the rank key from cached Γ (key-only dirt: priority moved).
  void rekey_coflow(const fabric::Coflow& c);
  void drop_coflow(fabric::CoflowId id);

  FvdfOptions options_;

  // --- starvation bookkeeping (both paths) ---
  // Round-stamped replacement for a "starved" id set: a coflow is waiting
  // iff it was seen in the previous round (seen == round-1) and was not
  // served there (served != round-1). Default stamps of 0 are safe: at
  // round 1 both compare equal to prev = 0, so nothing counts as starved.
  std::uint64_t round_ = 0;
  std::vector<std::uint64_t> seen_round_;    ///< by dense coflow id
  std::vector<std::uint64_t> served_round_;  ///< by dense coflow id

  // --- incremental state, valid for one tracker session ---
  /// One memoized allocation lane per unfinished flow of a cached coflow.
  struct Lane {
    fabric::FlowId id = 0;
    fabric::PortId src = 0;
    fabric::PortId dst = 0;
    bool beta = false;
    /// Disposal rate f.V / max(Γ, slice), cached at refresh time so the
    /// admission walk is pure table lookups. Meaningless when beta.
    common::Bps want = 0;
  };
  struct CachedCoflow {
    common::Seconds gamma = 0;  ///< Eq. 8, before the priority division
    common::Seconds arrival = 0;
    bool valid = false;
    bool has_xmit = false;  ///< any non-beta lane (member of xmit_index_)
    std::vector<Lane> lanes;
  };
  const sched::DirtyTracker* bound_tracker_ = nullptr;
  std::uint64_t session_ = 0;
  std::vector<CachedCoflow> cache_;  ///< by dense coflow id
  sched::RankIndex index_;
  /// Subset of index_ (same keys) holding only coflows with at least one
  /// transmitting lane. The disposal/backfill walks run over this index and
  /// stop at port exhaustion, so their cost is O(coflows that can still
  /// receive bandwidth), not O(resident coflows). Beta-only coflows never
  /// touch headroom, so skipping them leaves the walk order's grants
  /// bit-identical to the full path's all-coflow walk.
  sched::RankIndex xmit_index_;
  /// Persistent per-flow beta switches, mirrored from the cached lanes and
  /// bulk-installed into each round's Allocation (set_compress_all). Spares
  /// the O(compressing flows) per-round set_compress loop.
  std::vector<unsigned char> beta_;  ///< by dense flow id
};

/// Factory matching sched::make_baseline's shape. Recognized names:
/// "FVDF" (full), "FVDF-NC" (compression off), "FVDF-NOUPGRADE",
/// "FVDF-NOBACKFILL", "FVDF-BLIND", plus "DEADLINE-FVDF"/"DFVDF"
/// (sched/deadline_fvdf.hpp). Throws std::out_of_range otherwise, listing
/// every known scheduler name.
std::unique_ptr<sched::Scheduler> make_fvdf(const std::string& name);

}  // namespace swallow::core
