// Online FVDF scheduler (the paper's Pseudocode 3) wrapped in the common
// Scheduler interface, plus the priority-class Upgrade that guarantees
// starvation freedom.
#pragma once

#include <memory>
#include <set>

#include "core/fvdf.hpp"
#include "sched/scheduler.hpp"

namespace swallow::core {

/// Pseudocode 3's logbase: each scheduling event multiplies every waiting
/// coflow's priority class by this factor.
inline constexpr double kPriorityLogBase = 1.2;

/// Upgrade (Pseudocode 3 lines 15-23): bumps the priority class of every
/// coflow in the context. The pseudocode applies this to "coflows waiting
/// for scheduling"; FvdfScheduler therefore ages only coflows that received
/// no service in its previous allocation (see DESIGN.md 4.2) and this
/// helper is exposed for the uniform-aging building block.
void upgrade_priorities(const sched::SchedContext& ctx);

struct FvdfOptions {
  bool online = true;            ///< divide Gamma_C by the priority class
  bool upgrade = true;           ///< run Upgrade at every event
  bool compression = true;       ///< allow beta = 1 (ablation knob)
  bool backfill = true;          ///< work-conserving pass (ablation knob)
  bool force_compression = false;  ///< bypass the Eq. 3 gate (ablation)
};

class FvdfScheduler final : public sched::Scheduler {
 public:
  explicit FvdfScheduler(FvdfOptions options = {});
  std::string name() const override;
  fabric::Allocation schedule(const sched::SchedContext& ctx) override;

  const FvdfOptions& options() const { return options_; }

 private:
  FvdfOptions options_;
  /// Coflows that got neither bandwidth nor compression in the previous
  /// allocation: the "waiting" set whose priority classes age.
  std::set<fabric::CoflowId> starved_;
};

/// Factory matching sched::make_baseline's shape. Recognized names:
/// "FVDF" (full), "FVDF-NC" (compression off), "FVDF-NOUPGRADE",
/// "FVDF-NOBACKFILL". Throws std::out_of_range otherwise.
std::unique_ptr<sched::Scheduler> make_fvdf(const std::string& name);

}  // namespace swallow::core
