// Thread-safe metrics registry: named counters, gauges and histograms with
// JSON export. Instruments are created on first use and live as long as the
// registry; references handed out stay valid, so hot paths can cache them
// and update lock-free (counters/gauges are single atomics).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace swallow::obs {

/// Monotonic event count. add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar. set() is lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Value distribution with nearest-rank percentile queries. Stores every
/// sample (8 bytes each); callers recording at very high frequency should
/// pre-aggregate.
class Histogram {
 public:
  void record(double v);
  std::size_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  /// Nearest-rank percentile, p in [0, 100]; 0 when empty.
  double percentile(double p) const;
  std::vector<double> samples() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Name -> instrument registry. Lookup takes a mutex; the returned reference
/// is stable for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} — keys sorted, so output is deterministic.
  std::string to_json() const;
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace swallow::obs
