#include "obs/trace.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace swallow::obs {

namespace {

std::atomic<Sink*> g_sink{nullptr};

void write_event_json(std::ostream& out, const TraceEvent& ev) {
  out << "{\"name\":" << json_quote(ev.name) << ",\"cat\":"
      << json_quote(ev.cat) << ",\"ph\":\"" << ev.ph
      << "\",\"ts\":" << json_number(ev.ts) << ",\"pid\":" << ev.pid
      << ",\"tid\":" << ev.tid;
  if (ev.ph == 'X') out << ",\"dur\":" << json_number(ev.dur);
  if (ev.ph == 'i') out << ",\"s\":\"g\"";  // global-scope instant marker
  if (!ev.args.empty()) out << ",\"args\":" << ev.args;
  out << '}';
}

}  // namespace

Args& Args::add(std::string_view key, double v) {
  if (!body_.empty()) body_ += ',';
  body_ += json_quote(key) + ':' + json_number(v);
  return *this;
}

Args& Args::add(std::string_view key, std::int64_t v) {
  if (!body_.empty()) body_ += ',';
  body_ += json_quote(key) + ':' + std::to_string(v);
  return *this;
}

Args& Args::add(std::string_view key, std::uint64_t v) {
  if (!body_.empty()) body_ += ',';
  body_ += json_quote(key) + ':' + std::to_string(v);
  return *this;
}

Args& Args::add(std::string_view key, bool v) {
  if (!body_.empty()) body_ += ',';
  body_ += json_quote(key) + ':' + (v ? "true" : "false");
  return *this;
}

Args& Args::add(std::string_view key, std::string_view v) {
  if (!body_.empty()) body_ += ',';
  body_ += json_quote(key) + ':' + json_quote(v);
  return *this;
}

std::string Args::str() const {
  return body_.empty() ? std::string() : '{' + body_ + '}';
}

Tracer::Tracer(std::size_t max_events) : max_events_(max_events) {}

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  std::vector<std::size_t> order(snapshot.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return snapshot[a].ts < snapshot[b].ts;
                   });
  out << "{\"traceEvents\":[";
  // Named tracks so Perfetto labels the two timebases.
  out << R"({"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":)"
      << kSimPid << R"(,"tid":0,"args":{"name":"simulated-time"}},)";
  out << R"({"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":)"
      << kWallPid << R"(,"tid":0,"args":{"name":"wall-clock"}})";
  for (const std::size_t i : order) {
    out << ',';
    write_event_json(out, snapshot[i]);
  }
  out << "]}";
  const std::size_t lost = dropped();
  if (lost > 0)
    common::log_warn("obs: tracer dropped ", lost,
                     " events (buffer cap reached); raise Tracer max_events");
  common::log_info("obs: exported ", snapshot.size(), " trace events");
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& ev : events()) {
    write_event_json(out, ev);
    out << '\n';
  }
}

void emit_instant(Sink* sink, double ts_us, std::string name, std::string cat,
                  std::string args, std::uint32_t pid, std::uint32_t tid) {
  if (sink == nullptr) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ph = 'i';
  ev.ts = ts_us;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  sink->record(std::move(ev));
}

std::uint32_t current_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void set_global_sink(Sink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

Sink* global_sink() { return g_sink.load(std::memory_order_acquire); }

}  // namespace swallow::obs
