// RAII wall-clock profiling scopes (steady_clock). A scope with a null sink
// does nothing: no clock read, no allocation — safe to drop into hot paths
// unconditionally. With a sink attached it emits a B/E event pair on the
// wall-clock track and records the duration (µs) into the sink registry's
// "prof.<name>" histogram.
#pragma once

#include "obs/trace.hpp"

namespace swallow::obs {

/// Microseconds since a process-wide steady_clock epoch (first call).
double wall_now_us();

class ProfileScope {
 public:
  /// `name`/`cat` must outlive the scope (string literals in practice).
  /// `emit_events` false keeps only the histogram — for per-slice scopes
  /// whose B/E pairs would swamp the trace.
  ///
  /// Ctor/dtor are inline so the null-sink case compiles down to a single
  /// predictable branch at the call site — no function call on hot paths.
  explicit ProfileScope(Sink* sink, const char* name,
                        const char* cat = "prof", bool emit_events = true)
      : sink_(sink), name_(name), cat_(cat), emit_events_(emit_events) {
    if (sink_ != nullptr) [[unlikely]] begin();
  }
  ~ProfileScope() {
    if (sink_ != nullptr) [[unlikely]] end();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  void begin();  // out of line: clock read + B event
  void end();    // out of line: E event + histogram record

  Sink* sink_;
  const char* name_;
  const char* cat_;
  bool emit_events_;
  double start_us_ = 0;
};

}  // namespace swallow::obs
