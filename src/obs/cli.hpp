// CLI glue: the --trace-out flag. Examples and tools call tracer_from_flags
// at startup (null when tracing is off, so the whole run stays on the
// disabled fast path) and write_trace_from_flags before exit.
#pragma once

#include <memory>

#include "common/flags.hpp"
#include "obs/trace.hpp"

namespace swallow::obs {

/// A fresh Tracer when --trace-out=<path> was given; nullptr otherwise.
std::unique_ptr<Tracer> tracer_from_flags(const common::Flags& flags);

/// Writes `tracer`'s Chrome trace JSON to the --trace-out path. Failures
/// are reported through the logging layer, not thrown; returns false so
/// callers can suppress their success banner.
bool write_trace_from_flags(const common::Flags& flags, const Tracer& tracer);

}  // namespace swallow::obs
