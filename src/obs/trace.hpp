// Event tracing for the simulator and runtime.
//
// A Sink receives TraceEvents and owns a metrics Registry; instrumentation
// sites hold an optional `Sink*` and do nothing when it is null (one branch,
// no allocation, no locking — the disabled-path guarantee DESIGN.md's
// Observability section documents). The bundled Tracer buffers events in
// memory and exports Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) plus a JSONL stream for scripted analysis.
//
// Two timelines coexist, separated by pid: kSimPid carries simulated time
// (1 µs = 1 simulated µs), kWallPid carries wall-clock profiling scopes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace swallow::obs {

/// Chrome trace_event process ids: one per timebase.
inline constexpr std::uint32_t kSimPid = 1;   ///< simulated-time track
inline constexpr std::uint32_t kWallPid = 2;  ///< wall-clock track

/// Converts simulated seconds to trace microseconds.
inline double sim_ts(double seconds) { return seconds * 1e6; }

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'i';  ///< 'B'/'E' duration pair, 'X' complete, 'i' instant
  double ts = 0;  ///< microseconds (simulated or wall, per pid)
  double dur = 0;  ///< 'X' only
  std::uint32_t pid = kSimPid;
  std::uint32_t tid = 0;
  std::string args;  ///< preformatted JSON object ("{...}"), may be empty
};

/// Builds the preformatted args object of a TraceEvent. Only used on the
/// enabled path, so its allocations never tax an untraced run.
class Args {
 public:
  Args& add(std::string_view key, double v);
  Args& add(std::string_view key, std::int64_t v);
  Args& add(std::string_view key, std::uint64_t v);
  Args& add(std::string_view key, int v) {
    return add(key, static_cast<std::int64_t>(v));
  }
  Args& add(std::string_view key, bool v);
  Args& add(std::string_view key, std::string_view v);
  std::string str() const;  ///< "{...}"; "" when no keys were added

 private:
  std::string body_;
};

/// Receiver of trace events. Implementations must tolerate concurrent
/// record() calls (the runtime traces from worker threads).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(TraceEvent event) = 0;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

 private:
  Registry registry_;
};

/// In-memory sink with bounded buffering and the two exporters. Overflow
/// drops events (counted, reported through the logging layer at export).
class Tracer final : public Sink {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 1 << 20;

  explicit Tracer(std::size_t max_events = kDefaultMaxEvents);

  void record(TraceEvent event) override;

  std::size_t size() const;
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::vector<TraceEvent> events() const;  ///< snapshot, record order

  /// {"traceEvents":[...]} with events sorted by ts (stable, so same-ts
  /// events keep record order and B/E pairs stay nested per tid).
  void write_chrome_trace(std::ostream& out) const;
  /// One event object per line, record order.
  void write_jsonl(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_;
  std::atomic<std::size_t> dropped_{0};
};

/// Emits an instant event; no-op when `sink` is null.
void emit_instant(Sink* sink, double ts_us, std::string name, std::string cat,
                  std::string args = {}, std::uint32_t pid = kSimPid,
                  std::uint32_t tid = 0);

/// Small dense id for the calling thread (1, 2, ... in first-use order);
/// used as the Chrome tid of wall-clock events.
std::uint32_t current_thread_tid();

/// Process-global sink for layers with no plumbing of their own (the codec
/// wrappers). Null by default; reading it is one relaxed atomic load.
void set_global_sink(Sink* sink);
Sink* global_sink();

}  // namespace swallow::obs
