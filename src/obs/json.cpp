#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace swallow::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers up to 2^53 print without a fraction; everything else uses the
  // shortest representation that survives a round trip.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strtod(buf, nullptr) == v) {
    char shorter[32];
    for (int prec = 6; prec < 17; ++prec) {
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true"))
          v.boolean = true;
        else if (consume_literal("false"))
          v.boolean = false;
        else
          fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // BMP-only UTF-8 encoding (surrogate pairs kept as-is is fine for
          // validation purposes; traces only emit ASCII).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace swallow::obs
