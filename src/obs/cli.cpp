#include "obs/cli.hpp"

#include <fstream>

#include "common/logging.hpp"

namespace swallow::obs {

std::unique_ptr<Tracer> tracer_from_flags(const common::Flags& flags) {
  if (!flags.has("trace-out")) return nullptr;
  return std::make_unique<Tracer>();
}

bool write_trace_from_flags(const common::Flags& flags, const Tracer& tracer) {
  const std::string path = flags.get("trace-out", "");
  if (path.empty() || path == "true") {
    common::log_error("obs: --trace-out needs a file path");
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    common::log_error("obs: cannot open trace output file ", path);
    return false;
  }
  tracer.write_chrome_trace(out);
  if (!out.flush()) {
    common::log_error("obs: short write to trace output file ", path);
    return false;
  }
  common::log_info("obs: wrote Chrome trace to ", path,
                   " (open in https://ui.perfetto.dev)");
  return true;
}

}  // namespace swallow::obs
