#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace swallow::obs {

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  samples_.push_back(v);
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest rank: ceil(p/100 * N), 1-based.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::vector<double> Histogram::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    out << json_quote(name) << ':'
        << json_number(static_cast<double>(c->value()));
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << json_quote(name) << ':' << json_number(g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << json_quote(name) << ":{\"count\":"
        << json_number(static_cast<double>(h->count()))
        << ",\"sum\":" << json_number(h->sum())
        << ",\"min\":" << json_number(h->min())
        << ",\"max\":" << json_number(h->max())
        << ",\"p50\":" << json_number(h->percentile(50))
        << ",\"p95\":" << json_number(h->percentile(95))
        << ",\"p99\":" << json_number(h->percentile(99)) << '}';
  }
  out << "}}";
}

std::string Registry::to_json() const {
  std::ostringstream oss;
  write_json(oss);
  return oss.str();
}

}  // namespace swallow::obs
