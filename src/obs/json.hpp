// Minimal JSON utilities for the observability layer: string escaping and
// compact number formatting for the exporters, plus a small document parser
// used to validate exported traces (tests, tooling). No external deps.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swallow::obs {

/// Escapes `s` per RFC 8259 (no surrounding quotes).
std::string json_escape(std::string_view s);

/// `"escaped"` — `s` escaped and quoted.
std::string json_quote(std::string_view s);

/// Shortest round-trippable decimal for `v`; non-finite values become null
/// (JSON has no NaN/Inf).
std::string json_number(double v);

/// Parsed JSON document node. Containers preserve insertion order so
/// exporters can be validated byte-for-byte.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document (trailing whitespace allowed). Throws
/// std::runtime_error naming the byte offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace swallow::obs
