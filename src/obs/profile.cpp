#include "obs/profile.hpp"

#include <chrono>
#include <string>

namespace swallow::obs {

double wall_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

void ProfileScope::begin() {
  start_us_ = wall_now_us();
  if (!emit_events_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ph = 'B';
  ev.ts = start_us_;
  ev.pid = kWallPid;
  ev.tid = current_thread_tid();
  sink_->record(std::move(ev));
}

void ProfileScope::end() {
  const double end_us = wall_now_us();
  if (emit_events_) {
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ph = 'E';
    ev.ts = end_us;
    ev.pid = kWallPid;
    ev.tid = current_thread_tid();
    sink_->record(std::move(ev));
  }
  sink_->registry()
      .histogram(std::string("prof.") + name_)
      .record(end_us - start_us_);
}

}  // namespace swallow::obs
