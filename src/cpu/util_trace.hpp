// CPU-utilization trace generator reproducing the paper's Fig. 2: a worker
// alternates compute phases (CPU-bound) and transfer phases (I/O-bound); at
// low bandwidth the transfer phases stretch, so idle CPU periods dominate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace swallow::cpu {

struct UtilSample {
  common::Seconds t;
  double utilization;  ///< in [0, 1]
};

struct UtilTraceConfig {
  common::Bps bandwidth = 0;              ///< NIC speed during transfers
  common::Seconds compute_time = 4.0;     ///< mean compute phase length
  common::Bytes transfer_bytes = 0;       ///< mean bytes shuffled per phase
  double compute_utilization = 0.92;
  double transfer_utilization = 0.08;
  /// Real transfers still show CPU spikes (deserialization, JVM GC): the
  /// probability a transfer sample is busy anyway.
  double transfer_spike_prob = 0.27;
  /// Compute phases still show stalls (sync barriers, stragglers): the
  /// probability a compute sample is idle anyway.
  double compute_dip_prob = 0.15;
  common::Seconds horizon = 120.0;
  common::Seconds sample_period = 0.5;
  std::uint64_t seed = 7;
};

/// Samples utilization over the horizon.
std::vector<UtilSample> generate_util_trace(const UtilTraceConfig& config);

/// Fraction of samples with utilization below `threshold` ("idle periods",
/// the blank areas of Fig. 2).
double idle_fraction(const std::vector<UtilSample>& trace,
                     double threshold = 0.25);

}  // namespace swallow::cpu
