// CPU availability model.
//
// Swallow spends *idle* CPU cycles on compression (paper Section II-B2):
// the scheduler needs, per node and time, the fraction of CPU headroom
// available, which scales the effective compression speed R. Two providers:
// a constant one for closed-form tests, and a two-state (busy/idle burst)
// semi-Markov process reproducing the Fig. 2 phenomenology.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace swallow::cpu {

using NodeId = std::uint32_t;

class CpuProvider {
 public:
  virtual ~CpuProvider() = default;
  /// CPU fraction available for compression on `node` at time `t`, in [0,1].
  virtual double headroom(NodeId node, common::Seconds t) const = 0;
  /// Paper Pseudocode 1's "CPU resources are enough" gate.
  virtual bool can_compress(NodeId node, common::Seconds t) const;
  /// Promise to the event-driven engine: headroom(node, s) == headroom(node,
  /// t) for every s in [t, T) where T is the returned instant. Returning `t`
  /// (the conservative base default) promises nothing, which makes the
  /// engine re-evaluate headroom every slice — exactly the slice-stepped
  /// behavior. Providers with piecewise-constant schedules override this so
  /// the engine can fast-forward through constant-headroom stretches.
  virtual common::Seconds headroom_constant_until(NodeId node,
                                                  common::Seconds t) const;
};

/// Minimum headroom for the compression gate to open.
inline constexpr double kMinCompressionHeadroom = 0.05;

/// Same headroom everywhere, always.
class ConstantCpu final : public CpuProvider {
 public:
  explicit ConstantCpu(double headroom);
  double headroom(NodeId node, common::Seconds t) const override;
  common::Seconds headroom_constant_until(NodeId node,
                                          common::Seconds t) const override;

 private:
  double headroom_;
};

/// Explicit idle windows shared by every node: headroom `idle_headroom`
/// inside any [begin, end) window, `busy_headroom` elsewhere. Used by the
/// paper's motivation example (CPU idle during 0-1 and 3-3.5).
class WindowedCpu final : public CpuProvider {
 public:
  struct Window {
    common::Seconds begin;
    common::Seconds end;
  };
  WindowedCpu(std::vector<Window> windows, double idle_headroom = 1.0,
              double busy_headroom = 0.0);
  double headroom(NodeId node, common::Seconds t) const override;
  common::Seconds headroom_constant_until(NodeId node,
                                          common::Seconds t) const override;

 private:
  std::vector<Window> windows_;
  double idle_headroom_;
  double busy_headroom_;
};

/// Alternating busy/idle bursts per node with exponential durations.
/// idle_fraction controls the long-run share of idle time; during busy
/// bursts headroom is `busy_headroom`, during idle bursts `idle_headroom`.
class BurstyCpu final : public CpuProvider {
 public:
  struct Config {
    std::size_t nodes = 1;
    double idle_fraction = 0.5;         ///< long-run idle share
    common::Seconds mean_burst = 5.0;   ///< mean burst length (either state)
    double busy_headroom = 0.05;
    double idle_headroom = 0.95;
    common::Seconds horizon = 4000.0;   ///< precomputed schedule length
    std::uint64_t seed = 1;
  };

  explicit BurstyCpu(const Config& config);
  double headroom(NodeId node, common::Seconds t) const override;
  common::Seconds headroom_constant_until(NodeId node,
                                          common::Seconds t) const override;

  /// Measured long-run idle fraction of one node's schedule (for tests).
  double measured_idle_fraction(NodeId node) const;

 private:
  struct Burst {
    common::Seconds end;
    bool idle;
  };
  Config config_;
  std::vector<std::vector<Burst>> schedule_;  // per node, sorted by end
  const std::vector<Burst>& node_schedule(NodeId node) const;
};

}  // namespace swallow::cpu
