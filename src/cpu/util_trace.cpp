#include "cpu/util_trace.hpp"

#include <stdexcept>

namespace swallow::cpu {

std::vector<UtilSample> generate_util_trace(const UtilTraceConfig& config) {
  if (config.bandwidth <= 0)
    throw std::invalid_argument("util_trace: non-positive bandwidth");
  if (config.transfer_bytes <= 0)
    throw std::invalid_argument("util_trace: non-positive transfer size");
  if (config.sample_period <= 0)
    throw std::invalid_argument("util_trace: non-positive sample period");

  common::Rng rng(config.seed);
  std::vector<UtilSample> out;

  common::Seconds t = 0;
  bool computing = true;
  common::Seconds phase_end =
      rng.exponential(1.0 / config.compute_time);
  for (common::Seconds s = 0; s < config.horizon; s += config.sample_period) {
    while (s >= phase_end) {
      t = phase_end;
      computing = !computing;
      const common::Seconds mean =
          computing ? config.compute_time
                    : config.transfer_bytes / config.bandwidth;
      phase_end = t + rng.exponential(1.0 / mean);
    }
    double base;
    if (computing) {
      base = rng.bernoulli(config.compute_dip_prob)
                 ? config.transfer_utilization + 0.07
                 : config.compute_utilization;
    } else {
      base = rng.bernoulli(config.transfer_spike_prob)
                 ? config.compute_utilization - 0.07
                 : config.transfer_utilization;
    }
    // Small jitter so the trace looks like a real sampled record.
    const double jitter = rng.uniform(-0.05, 0.05);
    double u = base + jitter;
    if (u < 0.0) u = 0.0;
    if (u > 1.0) u = 1.0;
    out.push_back({s, u});
  }
  return out;
}

double idle_fraction(const std::vector<UtilSample>& trace, double threshold) {
  if (trace.empty()) return 0.0;
  std::size_t idle = 0;
  for (const auto& s : trace)
    if (s.utilization < threshold) ++idle;
  return static_cast<double>(idle) / static_cast<double>(trace.size());
}

}  // namespace swallow::cpu
