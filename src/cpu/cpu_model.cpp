#include "cpu/cpu_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace swallow::cpu {

bool CpuProvider::can_compress(NodeId node, common::Seconds t) const {
  return headroom(node, t) >= kMinCompressionHeadroom;
}

common::Seconds CpuProvider::headroom_constant_until(NodeId,
                                                     common::Seconds t) const {
  // No promise: unknown providers may vary arbitrarily, so the engine must
  // resample headroom at every slice (the historical behavior).
  return t;
}

ConstantCpu::ConstantCpu(double headroom) : headroom_(headroom) {
  if (headroom < 0.0 || headroom > 1.0)
    throw std::invalid_argument("ConstantCpu: headroom out of [0,1]");
}

double ConstantCpu::headroom(NodeId, common::Seconds) const {
  return headroom_;
}

common::Seconds ConstantCpu::headroom_constant_until(NodeId,
                                                     common::Seconds) const {
  return std::numeric_limits<common::Seconds>::infinity();
}

WindowedCpu::WindowedCpu(std::vector<Window> windows, double idle_headroom,
                         double busy_headroom)
    : windows_(std::move(windows)),
      idle_headroom_(idle_headroom),
      busy_headroom_(busy_headroom) {
  for (const auto& w : windows_)
    if (w.end <= w.begin)
      throw std::invalid_argument("WindowedCpu: empty window");
}

double WindowedCpu::headroom(NodeId, common::Seconds t) const {
  for (const auto& w : windows_)
    if (t >= w.begin && t < w.end) return idle_headroom_;
  return busy_headroom_;
}

common::Seconds WindowedCpu::headroom_constant_until(NodeId,
                                                     common::Seconds t) const {
  // Inside a window headroom holds until the window ends; outside it holds
  // until the earliest window begin after t (windows may be unsorted and
  // overlap, so scan them all).
  common::Seconds until = std::numeric_limits<common::Seconds>::infinity();
  for (const auto& w : windows_) {
    if (t >= w.begin && t < w.end)
      until = std::min(until, w.end);
    else if (w.begin > t)
      until = std::min(until, w.begin);
  }
  return until;
}

BurstyCpu::BurstyCpu(const Config& config) : config_(config) {
  if (config.nodes == 0) throw std::invalid_argument("BurstyCpu: zero nodes");
  if (config.idle_fraction < 0.0 || config.idle_fraction > 1.0)
    throw std::invalid_argument("BurstyCpu: idle_fraction out of [0,1]");
  if (config.mean_burst <= 0 || config.horizon <= 0)
    throw std::invalid_argument("BurstyCpu: non-positive durations");

  // Mean idle burst = 2 * idle_fraction * mean_burst (and complementary for
  // busy) so the long-run idle share matches idle_fraction.
  const double mean_idle =
      std::max(1e-3, 2.0 * config.idle_fraction * config.mean_burst);
  const double mean_busy =
      std::max(1e-3, 2.0 * (1.0 - config.idle_fraction) * config.mean_burst);

  common::Rng rng(config.seed);
  schedule_.resize(config.nodes);
  for (std::size_t node = 0; node < config.nodes; ++node) {
    auto& bursts = schedule_[node];
    common::Seconds t = 0;
    bool idle = rng.bernoulli(config.idle_fraction);
    while (t < config.horizon) {
      const double mean = idle ? mean_idle : mean_busy;
      t += rng.exponential(1.0 / mean);
      bursts.push_back({t, idle});
      idle = !idle;
    }
  }
}

const std::vector<BurstyCpu::Burst>& BurstyCpu::node_schedule(
    NodeId node) const {
  // Nodes beyond the precomputed set reuse schedules round-robin, so the
  // provider works for any fabric size.
  return schedule_[node % schedule_.size()];
}

double BurstyCpu::headroom(NodeId node, common::Seconds t) const {
  const auto& bursts = node_schedule(node);
  const auto it = std::lower_bound(
      bursts.begin(), bursts.end(), t,
      [](const Burst& b, common::Seconds when) { return b.end <= when; });
  // Past the horizon: steady-state expectation.
  if (it == bursts.end())
    return config_.idle_fraction * config_.idle_headroom +
           (1.0 - config_.idle_fraction) * config_.busy_headroom;
  return it->idle ? config_.idle_headroom : config_.busy_headroom;
}

common::Seconds BurstyCpu::headroom_constant_until(NodeId node,
                                                   common::Seconds t) const {
  const auto& bursts = node_schedule(node);
  const auto it = std::lower_bound(
      bursts.begin(), bursts.end(), t,
      [](const Burst& b, common::Seconds when) { return b.end <= when; });
  // Past the horizon headroom is the constant steady-state expectation.
  if (it == bursts.end())
    return std::numeric_limits<common::Seconds>::infinity();
  return it->end;
}

double BurstyCpu::measured_idle_fraction(NodeId node) const {
  const auto& bursts = node_schedule(node);
  common::Seconds idle_time = 0, prev = 0;
  for (const auto& b : bursts) {
    if (b.idle) idle_time += b.end - prev;
    prev = b.end;
  }
  return prev > 0 ? idle_time / prev : 0.0;
}

}  // namespace swallow::cpu
