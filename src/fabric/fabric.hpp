// The paper's network model: the datacenter fabric abstracted as one big
// non-blocking switch interconnecting N machines. Each machine contributes
// one ingress (uplink/sender NIC) and one egress (downlink/receiver NIC)
// port; congestion exists only at the ports (Fig. 3 of the paper, the model
// Varys and most coflow work share).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace swallow::fabric {

using PortId = std::uint32_t;

class Fabric {
 public:
  /// Uniform fabric: `ports` machines, every NIC at `capacity` bytes/s.
  Fabric(std::size_t ports, common::Bps capacity);

  /// Heterogeneous fabric with per-machine ingress/egress capacities.
  Fabric(std::vector<common::Bps> ingress, std::vector<common::Bps> egress);

  std::size_t num_ports() const { return ingress_.size(); }
  common::Bps ingress_capacity(PortId p) const { return ingress_.at(p); }
  common::Bps egress_capacity(PortId p) const { return egress_.at(p); }

  /// Minimum NIC speed in the fabric (used as the default "B" in examples).
  common::Bps min_capacity() const;

 private:
  std::vector<common::Bps> ingress_;
  std::vector<common::Bps> egress_;
};

}  // namespace swallow::fabric
