// The paper's network model: the datacenter fabric abstracted as one big
// non-blocking switch interconnecting N machines. Each machine contributes
// one ingress (uplink/sender NIC) and one egress (downlink/receiver NIC)
// port; congestion exists only at the ports (Fig. 3 of the paper, the model
// Varys and most coflow work share).
//
// Capacities are time-varying: every port carries a *nominal* capacity
// (what the NIC is provisioned for) and a *current* capacity (nominal
// scaled by a degradation multiplier in [0, 1]). The plain accessors
// ingress_capacity()/egress_capacity() return the current values, so every
// scheduler, rate solver and feasibility check automatically prices
// decisions against what the fabric can carry right now. The simulation
// engine drives the multipliers from a fabric::DegradationSchedule; an
// undegraded fabric has every multiplier at 1.0 and behaves bit-identically
// to the historical static model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace swallow::fabric {

using PortId = std::uint32_t;

class Fabric {
 public:
  /// Uniform fabric: `ports` machines, every NIC at `capacity` bytes/s.
  Fabric(std::size_t ports, common::Bps capacity);

  /// Heterogeneous fabric with per-machine ingress/egress capacities.
  Fabric(std::vector<common::Bps> ingress, std::vector<common::Bps> egress);

  std::size_t num_ports() const { return ingress_.size(); }

  /// Current (possibly degraded) capacities — what the port can carry now.
  common::Bps ingress_capacity(PortId p) const {
    return ingress_.at(p) * multiplier_.at(p);
  }
  common::Bps egress_capacity(PortId p) const {
    return egress_.at(p) * multiplier_.at(p);
  }

  /// Provisioned capacities, invariant over the fabric's lifetime.
  common::Bps nominal_ingress_capacity(PortId p) const {
    return ingress_.at(p);
  }
  common::Bps nominal_egress_capacity(PortId p) const { return egress_.at(p); }

  /// Degradation multiplier of port `p` (both directions of its NIC/link):
  /// 1 = healthy, (0, 1) = brownout, 0 = failed link.
  double port_multiplier(PortId p) const { return multiplier_.at(p); }

  /// Sets the degradation multiplier. Throws on NaN or values outside
  /// [0, 1]; a port can lose capacity to degradation but never gain beyond
  /// nominal.
  void set_port_multiplier(PortId p, double multiplier);

  /// True when any port is currently below nominal capacity.
  bool degraded() const;

  /// Resets every multiplier to 1 (all links healthy).
  void restore_all();

  /// Minimum *nominal* NIC speed in the fabric (used as the default "B" in
  /// examples; configuration-time, so degradation does not move it).
  common::Bps min_capacity() const;

 private:
  std::vector<common::Bps> ingress_;  ///< nominal
  std::vector<common::Bps> egress_;   ///< nominal
  std::vector<double> multiplier_;    ///< current = nominal * multiplier
};

}  // namespace swallow::fabric
