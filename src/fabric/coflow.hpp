// Flow and coflow state for the fluid simulator.
//
// A flow carries three byte pools: raw_remaining (not yet compressed or
// sent), compressed_pending (compressed, awaiting the wire) and sent. The
// paper's "volume" V = d + D is raw_remaining + compressed_pending; a flow
// completes when its volume reaches zero (everything on the wire).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"

namespace swallow::fabric {

using FlowId = std::uint64_t;
using CoflowId = std::uint64_t;
using JobId = std::uint64_t;

/// Volumes below this many bytes count as zero (fluid-model epsilon).
inline constexpr common::Bytes kVolumeEpsilon = 1e-6;
inline constexpr common::Seconds kNeverCompleted = -1.0;
/// Absolute deadline of a best-effort coflow: never.
inline constexpr common::Seconds kNoDeadline =
    std::numeric_limits<common::Seconds>::infinity();

/// Where a coflow sits on the SLO shedding ladder (DESIGN.md section 12).
/// Best-effort coflows never leave kBestEffort; deadline coflows start at
/// kAdmitted and may be demoted by the admission gate (arrival) or the
/// deadline scheduler (mid-flight).
enum class SloClass : std::uint8_t {
  kBestEffort = 0,  ///< no deadline; served in FVDF order
  kAdmitted = 1,    ///< deadline feasible at admission
  kDegraded = 2,    ///< admitted with compression priced out (beta forced 0)
  kDeferred = 3,    ///< infeasible at arrival; served by leftovers until
                    ///< capacity recovers or the deadline expires
  kRejected = 4,    ///< refused at arrival or shed mid-flight; volume dropped
};

struct Flow {
  FlowId id = 0;
  CoflowId coflow = 0;
  PortId src = 0;
  PortId dst = 0;

  common::Bytes original_bytes = 0;      ///< size at arrival (uncompressed)
  common::Bytes raw_remaining = 0;       ///< paper's d
  common::Bytes compressed_pending = 0;  ///< paper's D
  common::Bytes sent = 0;                ///< bytes already on the wire
  common::Bytes sent_compressed = 0;     ///< wire bytes that need decoding

  common::Seconds arrival = 0;
  common::Seconds completion = kNeverCompleted;

  bool compressible = true;      ///< payload benefits from compression at all
  bool compress_enabled = false; ///< paper's beta for the current slice
  /// Per-flow compression ratio override; 0 = use the codec model's ratio.
  double compress_ratio = 0;

  /// The ratio this flow actually compresses at under `model_ratio`.
  double effective_ratio(double model_ratio) const {
    return compress_ratio > 0 ? compress_ratio : model_ratio;
  }

  /// Remaining volume V = d + D.
  common::Bytes volume() const { return raw_remaining + compressed_pending; }
  bool done() const { return volume() <= kVolumeEpsilon; }
  bool completed() const { return completion >= 0; }
};

struct Coflow {
  CoflowId id = 0;
  JobId job = 0;
  common::Seconds arrival = 0;
  common::Seconds completion = kNeverCompleted;
  /// Absolute wall-clock SLO; kNoDeadline (+inf) means best-effort.
  common::Seconds deadline = kNoDeadline;
  double priority = 1.0;  ///< paper's P, upgraded by 1.2x at each event
  SloClass slo = SloClass::kBestEffort;
  std::vector<FlowId> flows;

  bool completed() const { return completion >= 0; }
  bool has_deadline() const { return deadline < kNoDeadline; }
};

/// Read-only view of the flows of one coflow (resolved from ids).
std::vector<const Flow*> flows_of(const Coflow& coflow,
                                  const std::vector<Flow>& all_flows);

/// Remaining volume of a coflow: sum over its unfinished flows.
common::Bytes coflow_volume(const Coflow& coflow,
                            const std::vector<Flow>& all_flows);

/// Number of unfinished flows.
std::size_t coflow_width(const Coflow& coflow,
                         const std::vector<Flow>& all_flows);

/// Varys' effective bottleneck: Gamma = max over ports of
/// (remaining coflow bytes crossing that port) / (port capacity).
common::Seconds coflow_bottleneck(const Coflow& coflow,
                                  const std::vector<Flow>& all_flows,
                                  const Fabric& fabric);

/// Largest single remaining flow volume (used by the LCF interpretation).
common::Bytes coflow_max_flow(const Coflow& coflow,
                              const std::vector<Flow>& all_flows);

}  // namespace swallow::fabric
