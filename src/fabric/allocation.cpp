#include "fabric/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace swallow::fabric {

void Allocation::set_rate(FlowId id, common::Bps rate) {
  if (rate < 0) throw std::invalid_argument("Allocation: negative rate");
  if (id >= rates_.size()) {
    rates_.resize(id + 1, 0.0);
    rate_set_.resize(id + 1, 0);
  }
  if (rate_set_[id] == 0) {
    rate_set_[id] = 1;
    ++rate_set_count_;
  }
  rates_[id] = rate;
}

void Allocation::set_compress(FlowId id, bool enabled) {
  if (id >= compress_.size()) compress_.resize(id + 1, 0);
  compress_[id] = enabled ? 1 : 0;
}

void Allocation::reserve(std::size_t max_flow_id) {
  rates_.reserve(max_flow_id);
  rate_set_.reserve(max_flow_id);
  compress_.reserve(max_flow_id);
}

bool feasible(const Allocation& alloc, const std::vector<const Flow*>& flows,
              const Fabric& fabric) {
  std::vector<common::Bps> in_sum(fabric.num_ports(), 0.0);
  std::vector<common::Bps> out_sum(fabric.num_ports(), 0.0);
  for (const Flow* f : flows) {
    const common::Bps r = alloc.rate(f->id);
    in_sum[f->src] += r;
    out_sum[f->dst] += r;
  }
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    const double in_cap = fabric.ingress_capacity(p);
    const double out_cap = fabric.egress_capacity(p);
    if (in_sum[p] > in_cap * (1.0 + kFeasibilityTolerance)) return false;
    if (out_sum[p] > out_cap * (1.0 + kFeasibilityTolerance)) return false;
  }
  return true;
}

PortHeadroom::PortHeadroom(const Fabric& fabric) {
  ingress_.reserve(fabric.num_ports());
  egress_.reserve(fabric.num_ports());
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    ingress_.push_back(fabric.ingress_capacity(p));
    egress_.push_back(fabric.egress_capacity(p));
    // Failed links (capacity 0) start saturated and never open up.
    if (ingress_.back() > 0) ++open_ingress_;
    if (egress_.back() > 0) ++open_egress_;
  }
}

common::Bps PortHeadroom::available(const Flow& flow) const {
  return available(flow.src, flow.dst);
}

common::Bps PortHeadroom::available(PortId src, PortId dst) const {
  return std::max(0.0, std::min(ingress_.at(src), egress_.at(dst)));
}

void PortHeadroom::consume(const Flow& flow, common::Bps rate) {
  consume(flow.src, flow.dst, rate);
}

void PortHeadroom::consume(PortId src, PortId dst, common::Bps rate) {
  common::Bps& in = ingress_.at(src);
  common::Bps& out = egress_.at(dst);
  // A port leaves the open set exactly when this grant drains it (a full
  // grant of min(in, out) subtracts the smaller side to a bitwise 0.0).
  if (in > 0 && rate >= in) --open_ingress_;
  in = std::max(0.0, in - rate);
  if (out > 0 && rate >= out) --open_egress_;
  out = std::max(0.0, out - rate);
}

Allocation weighted_max_min(const std::vector<const Flow*>& flows,
                            const std::vector<double>& weights,
                            const Fabric& fabric) {
  if (flows.size() != weights.size())
    throw std::invalid_argument("weighted_max_min: weight count mismatch");
  Allocation alloc;
  const std::size_t n = flows.size();
  const std::size_t ports = fabric.num_ports();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> frozen(n, false);

  // Per-port scratch reused across rounds (the progressive filling loop runs
  // up to n rounds; reallocating six vectors per round dominated profiles).
  std::vector<double> in_room(ports), out_room(ports);
  std::vector<double> in_weight(ports), out_weight(ports);
  std::vector<double> in_used(ports), out_used(ports);

  // Progressive filling: raise every unfrozen flow's rate proportionally to
  // its weight until a port saturates; freeze flows on saturated ports.
  for (std::size_t round = 0; round < n; ++round) {
    // Residual capacity and active weight per port.
    for (PortId p = 0; p < ports; ++p) {
      in_room[p] = fabric.ingress_capacity(p);
      out_room[p] = fabric.egress_capacity(p);
    }
    std::fill(in_weight.begin(), in_weight.end(), 0.0);
    std::fill(out_weight.begin(), out_weight.end(), 0.0);
    bool any_active = false;
    for (std::size_t i = 0; i < n; ++i) {
      in_room[flows[i]->src] -= rate[i];
      out_room[flows[i]->dst] -= rate[i];
      if (!frozen[i]) {
        const double w = std::max(weights[i], 1e-12);
        in_weight[flows[i]->src] += w;
        out_weight[flows[i]->dst] += w;
        any_active = true;
      }
    }
    if (!any_active) break;

    // Largest uniform weight-multiplier step before some port saturates.
    double step = std::numeric_limits<double>::infinity();
    for (PortId p = 0; p < ports; ++p) {
      if (in_weight[p] > 0)
        step = std::min(step, std::max(0.0, in_room[p]) / in_weight[p]);
      if (out_weight[p] > 0)
        step = std::min(step, std::max(0.0, out_room[p]) / out_weight[p]);
    }
    if (!std::isfinite(step)) break;

    for (std::size_t i = 0; i < n; ++i)
      if (!frozen[i]) rate[i] += step * std::max(weights[i], 1e-12);

    // Freeze flows whose ports just saturated.
    std::fill(in_used.begin(), in_used.end(), 0.0);
    std::fill(out_used.begin(), out_used.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      in_used[flows[i]->src] += rate[i];
      out_used[flows[i]->dst] += rate[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const PortId s = flows[i]->src, d = flows[i]->dst;
      const bool in_full = in_used[s] >=
          fabric.ingress_capacity(s) * (1.0 - kFeasibilityTolerance);
      const bool out_full = out_used[d] >=
          fabric.egress_capacity(d) * (1.0 - kFeasibilityTolerance);
      if (in_full || out_full) frozen[i] = true;
    }
  }

  for (std::size_t i = 0; i < n; ++i) alloc.set_rate(flows[i]->id, rate[i]);
  return alloc;
}

Allocation strict_priority(const std::vector<const Flow*>& flows,
                           const Fabric& fabric) {
  Allocation alloc;
  PortHeadroom headroom(fabric);
  for (const Flow* f : flows) {
    if (headroom.exhausted()) break;
    const common::Bps r = headroom.available(*f);
    alloc.set_rate(f->id, r);
    headroom.consume(*f, r);
  }
  return alloc;
}

void madd_into(Allocation& alloc, const std::vector<const Flow*>& coflow_flows,
               common::Seconds gamma, PortHeadroom& headroom) {
  if (gamma <= 0) throw std::invalid_argument("madd_into: non-positive gamma");
  for (const Flow* f : coflow_flows) {
    if (headroom.exhausted()) break;
    if (f->done()) continue;
    const common::Bps want = f->volume() / gamma;
    const common::Bps r = std::min(want, headroom.available(*f));
    alloc.set_rate(f->id, alloc.rate(f->id) + r);
    headroom.consume(*f, r);
  }
}

void backfill_into(Allocation& alloc, const std::vector<const Flow*>& flows,
                   PortHeadroom& headroom) {
  for (const Flow* f : flows) {
    if (headroom.exhausted()) break;
    if (f->done()) continue;
    const common::Bps extra = headroom.available(*f);
    if (extra <= 0) continue;
    alloc.set_rate(f->id, alloc.rate(f->id) + extra);
    headroom.consume(*f, extra);
  }
}

}  // namespace swallow::fabric
