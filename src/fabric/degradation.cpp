#include "fabric/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace swallow::fabric {

namespace {

constexpr common::Seconds kInfinity =
    std::numeric_limits<common::Seconds>::infinity();
/// Epochs scanned past `t` before next_change_after gives up. At any
/// practical rate the expected scan is 1/rate epochs; the cap only guards
/// against pathological configs (rate ~ 1e-7) spinning forever.
constexpr std::int64_t kMaxScanEpochs = 200000;

/// splitmix64-style avalanche of (seed, port, epoch) into one 64-bit
/// stream seed — the same mixing the runtime's FaultInjector uses, so both
/// adversity layers share the determinism argument.
std::uint64_t mix64(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = seed;
  x ^= a * 0x9e3779b97f4a7c15ULL;
  x ^= b * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* degradation_kind_name(DegradationKind kind) {
  switch (kind) {
    case DegradationKind::kBrownout: return "brownout";
    case DegradationKind::kFailure: return "failure";
    case DegradationKind::kFlap: return "flap";
  }
  return "unknown";
}

DegradationSchedule::DegradationSchedule(DegradationConfig config,
                                         std::size_t num_ports)
    : config_(config), num_ports_(num_ports) {
  if (num_ports == 0)
    throw std::invalid_argument("DegradationSchedule: zero ports");
  if (!(config.rate >= 0.0 && config.rate <= 1.0))
    throw std::invalid_argument("DegradationSchedule: rate outside [0, 1]");
  if (!config.enabled()) return;  // rest of the knobs are unused
  if (!(config.epoch > 0) || !std::isfinite(config.epoch))
    throw std::invalid_argument("DegradationSchedule: non-positive epoch");
  if (!(config.min_duration > 0) || !std::isfinite(config.max_duration) ||
      config.min_duration > config.max_duration)
    throw std::invalid_argument("DegradationSchedule: bad duration range");
  if (config.failure_fraction < 0 || config.flap_fraction < 0 ||
      config.failure_fraction + config.flap_fraction > 1.0)
    throw std::invalid_argument("DegradationSchedule: bad kind fractions");
  if (!(config.brownout_floor >= 0.0 &&
        config.brownout_floor <= config.brownout_ceiling &&
        config.brownout_ceiling <= 1.0))
    throw std::invalid_argument("DegradationSchedule: bad brownout range");
  if (!(config.flap_half_period > 0))
    throw std::invalid_argument(
        "DegradationSchedule: non-positive flap_half_period");
  lookback_epochs_ = static_cast<std::int64_t>(
      std::ceil(config.max_duration / config.epoch));
}

std::optional<DegradationEpisode> DegradationSchedule::episode_in_epoch(
    PortId p, std::int64_t e) const {
  if (e < 0) return std::nullopt;  // time starts at 0
  common::Rng rng(mix64(config_.seed, std::uint64_t(p) + 1,
                        static_cast<std::uint64_t>(e) + 1));
  if (!rng.bernoulli(config_.rate)) return std::nullopt;

  DegradationEpisode ep;
  const double kind_roll = rng.uniform();
  if (kind_roll < config_.failure_fraction) {
    ep.kind = DegradationKind::kFailure;
  } else if (kind_roll < config_.failure_fraction + config_.flap_fraction) {
    ep.kind = DegradationKind::kFlap;
  } else {
    ep.kind = DegradationKind::kBrownout;
  }
  ep.start = static_cast<double>(e) * config_.epoch +
             rng.uniform(0.0, config_.epoch);
  ep.end = ep.start +
           rng.uniform(config_.min_duration, config_.max_duration);
  ep.multiplier =
      ep.kind == DegradationKind::kFailure
          ? 0.0
          : rng.uniform(config_.brownout_floor, config_.brownout_ceiling);
  return ep;
}

double DegradationSchedule::multiplier_at(PortId p, common::Seconds t) const {
  if (!enabled()) return 1.0;
  if (p >= num_ports_)
    throw std::out_of_range("DegradationSchedule: port out of range");
  const auto e_hi = static_cast<std::int64_t>(std::floor(t / config_.epoch));
  double multiplier = 1.0;
  for (std::int64_t e = e_hi - lookback_epochs_; e <= e_hi; ++e) {
    const auto ep = episode_in_epoch(p, e);
    if (!ep || t < ep->start || t >= ep->end) continue;
    double m = ep->multiplier;
    if (ep->kind == DegradationKind::kFlap) {
      const auto phase = static_cast<std::int64_t>(
          std::floor((t - ep->start) / config_.flap_half_period));
      if (phase % 2 == 1) m = 1.0;  // healthy half of the flap cycle
    }
    multiplier = std::min(multiplier, m);
  }
  return multiplier;
}

common::Seconds DegradationSchedule::next_change_for_port(
    PortId p, common::Seconds t) const {
  common::Seconds best = kInfinity;
  const auto e_start = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::floor(t / config_.epoch)) -
             lookback_epochs_);
  for (std::int64_t e = e_start; e - e_start <= kMaxScanEpochs; ++e) {
    // Episodes in epoch e start at >= e * epoch: once that lower bound
    // passes the best candidate, later epochs cannot improve it.
    if (static_cast<double>(e) * config_.epoch >= best) break;
    const auto ep = episode_in_epoch(p, e);
    if (!ep) continue;
    if (ep->start > t) best = std::min(best, ep->start);
    if (ep->end > t) best = std::min(best, ep->end);
    if (ep->kind == DegradationKind::kFlap && t < ep->end) {
      // First toggle instant strictly after t inside [start, end).
      const double since = std::max(0.0, t - ep->start);
      const auto k = static_cast<std::int64_t>(
                         std::floor(since / config_.flap_half_period)) +
                     1;
      const common::Seconds toggle =
          ep->start + static_cast<double>(k) * config_.flap_half_period;
      if (toggle > t && toggle < ep->end) best = std::min(best, toggle);
    }
  }
  return best;
}

common::Seconds DegradationSchedule::next_change_after(
    common::Seconds t) const {
  if (!enabled()) return kInfinity;
  common::Seconds best = kInfinity;
  for (PortId p = 0; p < num_ports_; ++p)
    best = std::min(best, next_change_for_port(p, t));
  return best;
}

std::vector<DegradationEpisode> DegradationSchedule::episodes(
    PortId p, common::Seconds t0, common::Seconds t1) const {
  std::vector<DegradationEpisode> out;
  if (!enabled() || t1 <= t0) return out;
  const auto e_lo = static_cast<std::int64_t>(std::floor(t0 / config_.epoch)) -
                    lookback_epochs_;
  const auto e_hi = static_cast<std::int64_t>(std::floor(t1 / config_.epoch));
  for (std::int64_t e = e_lo; e <= e_hi; ++e) {
    const auto ep = episode_in_epoch(p, e);
    if (ep && ep->start < t1 && ep->end > t0) out.push_back(*ep);
  }
  std::sort(out.begin(), out.end(),
            [](const DegradationEpisode& a, const DegradationEpisode& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace swallow::fabric
