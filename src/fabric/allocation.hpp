// Per-slice bandwidth allocations and the rate solvers the schedulers share.
#pragma once

#include <unordered_map>
#include <vector>

#include "fabric/coflow.hpp"
#include "fabric/fabric.hpp"

namespace swallow::fabric {

/// A scheduler's decision for one slice: per-flow transmit rates plus the
/// per-flow compression switch (paper's beta).
class Allocation {
 public:
  void set_rate(FlowId id, common::Bps rate);
  common::Bps rate(FlowId id) const;  ///< 0 if unset

  void set_compress(FlowId id, bool enabled);
  bool compress(FlowId id) const;  ///< false if unset

  std::size_t flow_count() const { return rates_.size(); }

 private:
  std::unordered_map<FlowId, common::Bps> rates_;
  std::unordered_map<FlowId, bool> compress_;
};

/// Relative tolerance for capacity feasibility checks.
inline constexpr double kFeasibilityTolerance = 1e-6;

/// True iff per-port rate sums respect ingress and egress capacities.
bool feasible(const Allocation& alloc, const std::vector<const Flow*>& flows,
              const Fabric& fabric);

/// Tracks residual port capacity while an allocation is built greedily.
class PortHeadroom {
 public:
  explicit PortHeadroom(const Fabric& fabric);

  /// Max rate flow (src -> dst) can still get: min of the two ports.
  common::Bps available(const Flow& flow) const;
  /// Consumes `rate` on both of the flow's ports (clamped at zero).
  void consume(const Flow& flow, common::Bps rate);

  common::Bps ingress(PortId p) const { return ingress_.at(p); }
  common::Bps egress(PortId p) const { return egress_.at(p); }

 private:
  std::vector<common::Bps> ingress_;
  std::vector<common::Bps> egress_;
};

/// Progressive-filling (weighted) max-min fairness under ingress+egress
/// constraints. With unit weights this is the PFF/FAIR allocation; with
/// volume weights it is Orchestra's WSS.
Allocation weighted_max_min(const std::vector<const Flow*>& flows,
                            const std::vector<double>& weights,
                            const Fabric& fabric);

/// Strict priority: walk `flows` in the given order, give each the full
/// residual min(ingress, egress) of its ports (optionally capped). Used by
/// FIFO (arrival order), PFP/SRTF (smallest remaining) and as the backfill
/// pass of SEBF/FVDF.
Allocation strict_priority(const std::vector<const Flow*>& flows,
                           const Fabric& fabric);

/// MADD (Varys): every flow of the coflow gets remaining/gamma so all finish
/// together at `gamma`; rates are clamped to residual headroom in `headroom`
/// and consumed from it.
void madd_into(Allocation& alloc, const std::vector<const Flow*>& coflow_flows,
               common::Seconds gamma, PortHeadroom& headroom);

/// Work-conserving pass: walk flows in order and top each rate up to the
/// residual headroom of its ports.
void backfill_into(Allocation& alloc, const std::vector<const Flow*>& flows,
                   PortHeadroom& headroom);

}  // namespace swallow::fabric
