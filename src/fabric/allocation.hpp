// Per-slice bandwidth allocations and the rate solvers the schedulers share.
#pragma once

#include <cstddef>
#include <vector>

#include "fabric/coflow.hpp"
#include "fabric/fabric.hpp"

namespace swallow::fabric {

/// A scheduler's decision for one slice: per-flow transmit rates plus the
/// per-flow compression switch (paper's beta).
///
/// Flow ids are dense indices in the simulation engine, so the tables are
/// flat vectors indexed by FlowId and grow on demand; rate()/compress() on
/// an id never set return the documented defaults (0 / false). flow_count()
/// still reports the number of *distinct* flows given a rate, matching the
/// historical map-based semantics.
class Allocation {
 public:
  void set_rate(FlowId id, common::Bps rate);
  common::Bps rate(FlowId id) const {  ///< 0 if unset
    return id < rates_.size() ? rates_[id] : 0.0;
  }

  void set_compress(FlowId id, bool enabled);
  bool compress(FlowId id) const {  ///< false if unset
    return id < compress_.size() && compress_[id] != 0;
  }

  /// Bulk-installs the whole compression table in one copy — semantically
  /// identical to calling set_compress(id, flags[id] != 0) for every id in
  /// `flags` (ids beyond it stay unset/false). Lets a scheduler that keeps
  /// its beta switches memoized publish them in O(flows/word) instead of
  /// one set_compress call per compressing flow.
  void set_compress_all(std::vector<unsigned char> flags) {
    compress_ = std::move(flags);
  }

  std::size_t flow_count() const { return rate_set_count_; }

  /// Pre-sizes the tables for flow ids < `max_flow_id` (optional; set_rate
  /// and set_compress grow on demand either way).
  void reserve(std::size_t max_flow_id);

 private:
  std::vector<common::Bps> rates_;
  std::vector<unsigned char> rate_set_;  ///< 1 iff set_rate() touched the id
  std::vector<unsigned char> compress_;
  std::size_t rate_set_count_ = 0;
};

/// Relative tolerance for capacity feasibility checks.
inline constexpr double kFeasibilityTolerance = 1e-6;

/// True iff per-port rate sums respect ingress and egress capacities.
bool feasible(const Allocation& alloc, const std::vector<const Flow*>& flows,
              const Fabric& fabric);

/// Tracks residual port capacity while an allocation is built greedily.
class PortHeadroom {
 public:
  explicit PortHeadroom(const Fabric& fabric);

  /// Max rate flow (src -> dst) can still get: min of the two ports.
  common::Bps available(const Flow& flow) const;
  common::Bps available(PortId src, PortId dst) const;
  /// Consumes `rate` on both of the flow's ports (clamped at zero).
  void consume(const Flow& flow, common::Bps rate);
  void consume(PortId src, PortId dst, common::Bps rate);

  common::Bps ingress(PortId p) const { return ingress_.at(p); }
  common::Bps egress(PortId p) const { return egress_.at(p); }

  /// True when no flow can receive a positive rate anymore: every ingress
  /// port is drained, or every egress port is. Greedy in-order allocators
  /// (FVDF disposal/backfill, SEBF, strict_priority) use this to stop
  /// walking — every grant past this point would be exactly zero, so
  /// breaking early leaves the allocation observably unchanged (rate() of
  /// an unset flow is already 0).
  bool exhausted() const { return open_ingress_ == 0 || open_egress_ == 0; }

 private:
  std::vector<common::Bps> ingress_;
  std::vector<common::Bps> egress_;
  std::size_t open_ingress_ = 0;  ///< ports with ingress headroom > 0
  std::size_t open_egress_ = 0;   ///< ports with egress headroom > 0
};

/// Progressive-filling (weighted) max-min fairness under ingress+egress
/// constraints. With unit weights this is the PFF/FAIR allocation; with
/// volume weights it is Orchestra's WSS.
Allocation weighted_max_min(const std::vector<const Flow*>& flows,
                            const std::vector<double>& weights,
                            const Fabric& fabric);

/// Strict priority: walk `flows` in the given order, give each the full
/// residual min(ingress, egress) of its ports (optionally capped). Used by
/// FIFO (arrival order), PFP/SRTF (smallest remaining) and as the backfill
/// pass of SEBF/FVDF.
Allocation strict_priority(const std::vector<const Flow*>& flows,
                           const Fabric& fabric);

/// MADD (Varys): every flow of the coflow gets remaining/gamma so all finish
/// together at `gamma`; rates are clamped to residual headroom in `headroom`
/// and consumed from it.
void madd_into(Allocation& alloc, const std::vector<const Flow*>& coflow_flows,
               common::Seconds gamma, PortHeadroom& headroom);

/// Work-conserving pass: walk flows in order and top each rate up to the
/// residual headroom of its ports.
void backfill_into(Allocation& alloc, const std::vector<const Flow*>& flows,
                   PortHeadroom& headroom);

}  // namespace swallow::fabric
