#include "fabric/coflow.hpp"

#include <algorithm>

namespace swallow::fabric {

std::vector<const Flow*> flows_of(const Coflow& coflow,
                                  const std::vector<Flow>& all_flows) {
  std::vector<const Flow*> out;
  out.reserve(coflow.flows.size());
  for (const FlowId id : coflow.flows) out.push_back(&all_flows.at(id));
  return out;
}

common::Bytes coflow_volume(const Coflow& coflow,
                            const std::vector<Flow>& all_flows) {
  common::Bytes total = 0;
  for (const FlowId id : coflow.flows) {
    const Flow& f = all_flows.at(id);
    if (!f.done()) total += f.volume();
  }
  return total;
}

std::size_t coflow_width(const Coflow& coflow,
                         const std::vector<Flow>& all_flows) {
  std::size_t n = 0;
  for (const FlowId id : coflow.flows)
    if (!all_flows.at(id).done()) ++n;
  return n;
}

common::Seconds coflow_bottleneck(const Coflow& coflow,
                                  const std::vector<Flow>& all_flows,
                                  const Fabric& fabric) {
  std::vector<common::Bytes> in_load(fabric.num_ports(), 0.0);
  std::vector<common::Bytes> out_load(fabric.num_ports(), 0.0);
  for (const FlowId id : coflow.flows) {
    const Flow& f = all_flows.at(id);
    if (f.done()) continue;
    in_load[f.src] += f.volume();
    out_load[f.dst] += f.volume();
  }
  common::Seconds gamma = 0;
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    gamma = std::max(gamma, in_load[p] / fabric.ingress_capacity(p));
    gamma = std::max(gamma, out_load[p] / fabric.egress_capacity(p));
  }
  return gamma;
}

common::Bytes coflow_max_flow(const Coflow& coflow,
                              const std::vector<Flow>& all_flows) {
  common::Bytes largest = 0;
  for (const FlowId id : coflow.flows) {
    const Flow& f = all_flows.at(id);
    if (!f.done()) largest = std::max(largest, f.volume());
  }
  return largest;
}

}  // namespace swallow::fabric
