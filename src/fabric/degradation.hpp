// Deterministic, seeded fabric degradation: the schedule of link failures,
// bandwidth brownouts and capacity flapping the simulation engine replays
// against a Fabric's port multipliers.
//
// Real datacenter fabrics do not hold the paper's constant-B assumption:
// links fail and recover, ECMP imbalance and in-network congestion brown a
// port out to a fraction of nominal, and misbehaving optics flap. This
// layer models all three as *episodes* attached to a port's NIC (both
// directions, the link between the machine and the switch):
//
//   brownout  — multiplier drops to a fraction in [floor, ceiling] for the
//               episode's duration, then recovers to 1.
//   failure   — multiplier is 0 (flows over the port stall) until the
//               recovery instant.
//   flap      — multiplier alternates between the brownout fraction and 1
//               every flap_half_period during the episode.
//
// Episode existence, kind, offset, severity and duration are pure functions
// of (seed, port, epoch): time is split into fixed epochs and each
// (port, epoch) pair hashes into an independent xoshiro stream that decides
// everything about that epoch's episode. Queries are therefore
// order-independent and runs are bit-reproducible for a given seed,
// regardless of how the engine interleaves them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"

namespace swallow::fabric {

enum class DegradationKind : std::uint8_t {
  kBrownout = 0,
  kFailure = 1,
  kFlap = 2,
};

const char* degradation_kind_name(DegradationKind kind);

/// Knobs of the degradation model (SimConfig::degradation). rate = 0 (the
/// default) disables the layer entirely: the engine takes the historical
/// static-fabric path, byte-identical to a build without this feature.
struct DegradationConfig {
  /// Probability that an episode starts on a given port in a given epoch.
  double rate = 0.0;
  /// Root of every generation decision (per (seed, port, epoch)).
  std::uint64_t seed = 1;
  /// Generation granularity: at most one episode starts per port per epoch.
  common::Seconds epoch = 1.0;
  /// Episode duration range (uniform; clamped so an episode and its
  /// recovery fit the scan window).
  common::Seconds min_duration = 0.2;
  common::Seconds max_duration = 2.0;
  /// Kind split: failures, then flaps, remainder brownouts.
  double failure_fraction = 0.25;
  double flap_fraction = 0.15;
  /// Brownout multiplier range (fraction of nominal capacity left).
  double brownout_floor = 0.1;
  double brownout_ceiling = 0.7;
  /// Flap toggle interval (severity <-> healthy) within a flap episode.
  common::Seconds flap_half_period = 0.1;

  bool enabled() const { return rate > 0.0; }
};

/// One degradation episode on a port: [start, end) at `multiplier` (flaps
/// alternate between `multiplier` and 1 every flap_half_period).
struct DegradationEpisode {
  common::Seconds start = 0;
  common::Seconds end = 0;
  double multiplier = 1.0;
  DegradationKind kind = DegradationKind::kBrownout;
};

class DegradationSchedule {
 public:
  /// Validates the config (throws std::invalid_argument on out-of-range
  /// rates/fractions/durations) and binds it to a fabric size.
  DegradationSchedule(DegradationConfig config, std::size_t num_ports);

  bool enabled() const { return config_.enabled(); }
  const DegradationConfig& config() const { return config_; }
  std::size_t num_ports() const { return num_ports_; }

  /// Effective multiplier of port `p` at time `t`: the min over all
  /// episodes active at `t` (overlapping episodes compound to the worst).
  double multiplier_at(PortId p, common::Seconds t) const;

  /// First instant strictly after `t` at which any port's multiplier can
  /// change (episode start, flap toggle, or recovery). +infinity when the
  /// schedule is disabled or nothing fires within the scan horizon.
  common::Seconds next_change_after(common::Seconds t) const;

  /// Episodes of port `p` that overlap [t0, t1), in start order. Exposed
  /// for tests and the degradation bench's reporting.
  std::vector<DegradationEpisode> episodes(PortId p, common::Seconds t0,
                                           common::Seconds t1) const;

 private:
  std::optional<DegradationEpisode> episode_in_epoch(PortId p,
                                                     std::int64_t e) const;
  common::Seconds next_change_for_port(PortId p, common::Seconds t) const;

  DegradationConfig config_;
  std::size_t num_ports_ = 0;
  /// Epochs an episode can reach back from (ceil(max_duration / epoch)).
  std::int64_t lookback_epochs_ = 0;
};

}  // namespace swallow::fabric
