#include "fabric/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace swallow::fabric {

Fabric::Fabric(std::size_t ports, common::Bps capacity)
    : ingress_(ports, capacity), egress_(ports, capacity) {
  if (ports == 0) throw std::invalid_argument("Fabric: zero ports");
  if (capacity <= 0) throw std::invalid_argument("Fabric: non-positive capacity");
}

Fabric::Fabric(std::vector<common::Bps> ingress, std::vector<common::Bps> egress)
    : ingress_(std::move(ingress)), egress_(std::move(egress)) {
  if (ingress_.empty() || ingress_.size() != egress_.size())
    throw std::invalid_argument("Fabric: bad port vectors");
  for (const auto v : ingress_)
    if (v <= 0) throw std::invalid_argument("Fabric: non-positive ingress capacity");
  for (const auto v : egress_)
    if (v <= 0) throw std::invalid_argument("Fabric: non-positive egress capacity");
}

common::Bps Fabric::min_capacity() const {
  return std::min(*std::min_element(ingress_.begin(), ingress_.end()),
                  *std::min_element(egress_.begin(), egress_.end()));
}

}  // namespace swallow::fabric
