#include "fabric/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace swallow::fabric {

namespace {

void validate_capacities(const std::vector<common::Bps>& caps,
                         const char* direction) {
  for (const auto v : caps) {
    if (!std::isfinite(v))
      throw std::invalid_argument(std::string("Fabric: non-finite ") +
                                  direction + " capacity");
    if (v <= 0)
      throw std::invalid_argument(std::string("Fabric: non-positive ") +
                                  direction + " capacity");
  }
}

}  // namespace

Fabric::Fabric(std::size_t ports, common::Bps capacity)
    : ingress_(ports, capacity),
      egress_(ports, capacity),
      multiplier_(ports, 1.0) {
  if (ports == 0) throw std::invalid_argument("Fabric: zero ports");
  if (!std::isfinite(capacity))
    throw std::invalid_argument("Fabric: non-finite capacity");
  if (capacity <= 0) throw std::invalid_argument("Fabric: non-positive capacity");
}

Fabric::Fabric(std::vector<common::Bps> ingress, std::vector<common::Bps> egress)
    : ingress_(std::move(ingress)), egress_(std::move(egress)) {
  if (ingress_.empty()) throw std::invalid_argument("Fabric: zero ports");
  if (ingress_.size() != egress_.size())
    throw std::invalid_argument("Fabric: mismatched ingress/egress lengths");
  validate_capacities(ingress_, "ingress");
  validate_capacities(egress_, "egress");
  multiplier_.assign(ingress_.size(), 1.0);
}

void Fabric::set_port_multiplier(PortId p, double multiplier) {
  if (!(multiplier >= 0.0 && multiplier <= 1.0))  // also rejects NaN
    throw std::invalid_argument("Fabric: multiplier outside [0, 1]");
  multiplier_.at(p) = multiplier;
}

bool Fabric::degraded() const {
  return std::any_of(multiplier_.begin(), multiplier_.end(),
                     [](double m) { return m < 1.0; });
}

void Fabric::restore_all() {
  std::fill(multiplier_.begin(), multiplier_.end(), 1.0);
}

common::Bps Fabric::min_capacity() const {
  return std::min(*std::min_element(ingress_.begin(), ingress_.end()),
                  *std::min_element(egress_.begin(), egress_.end()));
}

}  // namespace swallow::fabric
