// Synthetic coflow trace generation.
//
// Two generators:
//  - generate_trace: Poisson coflow arrivals, heavy-tailed widths and flow
//    sizes. The default size distribution is a bounded Pareto calibrated to
//    the paper's Fig. 1 (about 89% of flows below 10 GB while flows above
//    10 GB carry over 90% of the bytes).
//  - generate_fig1_trace: a convenience preset for the Fig. 1 reproduction.
#pragma once

#include <cstdint>

#include "workload/trace.hpp"

namespace swallow::workload {

struct GeneratorConfig {
  std::size_t num_ports = 50;
  std::size_t num_coflows = 100;
  /// Mean coflow inter-arrival time (Poisson process).
  common::Seconds mean_interarrival = 1.0;

  /// Flow sizes: bounded Pareto [size_lo, size_hi] with shape alpha.
  /// alpha = 0.08 over [100 KB, 100 GB] matches the Fig. 1 CDFs.
  common::Bytes size_lo = 100 * common::kKB;
  common::Bytes size_hi = 100 * common::kGB;
  double size_alpha = 0.08;

  /// Coflow width (number of flows): uniform in [width_lo, width_hi].
  std::size_t width_lo = 1;
  std::size_t width_hi = 10;

  /// Fraction of flows whose payload benefits from compression.
  double compressible_fraction = 0.95;

  /// Flows per coflow get distinct sender ports when possible (shuffle
  /// semantics: mappers on distinct machines feed one reducer wave).
  bool distinct_senders = true;

  /// SLO knobs: this fraction of coflows receives a deadline equal to its
  /// isolation CCT (bottleneck-port bytes / deadline_ref_bandwidth) times a
  /// slack multiplier drawn uniformly from [deadline_slack_lo,
  /// deadline_slack_hi]. Deadline draws use a dedicated RNG stream derived
  /// from `seed`, so deadline_fraction = 0 (the default) leaves the
  /// generated trace byte-identical to the pre-deadline generator.
  double deadline_fraction = 0.0;
  common::Bps deadline_ref_bandwidth = common::mbps(100);
  double deadline_slack_lo = 1.5;
  double deadline_slack_hi = 4.0;

  std::uint64_t seed = 42;
};

Trace generate_trace(const GeneratorConfig& config);

/// Large-sample preset used by the Fig. 1 bench (many flows, wide range).
Trace generate_fig1_trace(std::size_t num_flows = 20000,
                          std::uint64_t seed = 42);

}  // namespace swallow::workload
