#include "workload/apps.hpp"

#include <cmath>
#include <stdexcept>

namespace swallow::workload {

CoflowSpec AppWorkload::make_coflow(fabric::CoflowId id, fabric::JobId job,
                                    common::Seconds arrival,
                                    std::size_t num_ports,
                                    common::Rng& rng) const {
  if (num_ports == 0) throw std::invalid_argument("make_coflow: zero ports");
  CoflowSpec coflow;
  coflow.id = id;
  coflow.job = job;
  coflow.arrival = arrival;

  const std::size_t flows = mappers * reducers;
  const common::Bytes mean_flow =
      shuffle_bytes / static_cast<double>(flows);
  coflow.flows.reserve(flows);
  for (std::size_t m = 0; m < mappers; ++m) {
    for (std::size_t r = 0; r < reducers; ++r) {
      FlowSpec flow;
      flow.src = static_cast<fabric::PortId>(
          (rng.uniform_int(0, num_ports - 1)));
      flow.dst = static_cast<fabric::PortId>(
          (rng.uniform_int(0, num_ports - 1)));
      // Mild skew: sigma 0.25 keeps partitions within ~2x of each other.
      flow.bytes = mean_flow * rng.lognormal(-0.03125, 0.25);
      flow.compressible = compress_ratio < 0.95;
      flow.compress_ratio = compress_ratio;  // Table I, per application
      coflow.flows.push_back(flow);
    }
  }
  return coflow;
}

std::vector<AppWorkload> hibench_suite(common::Bytes suite_bytes) {
  // Relative shuffle weights follow the uncompressed columns of Table I:
  // Terasort and Sort dominate, the ML apps are small.
  struct Row {
    const char* name;
    double ratio;    // Table I
    double weight;   // relative uncompressed shuffle volume
    std::size_t mappers, reducers;
  };
  static const Row kRows[] = {
      {"Wordcount", 0.5591, 0.013, 8, 4},
      {"Sort", 0.2496, 8.85, 8, 8},
      {"Terasort", 0.2793, 91.0, 16, 8},
      {"Enhanced DFSIO", 0.1897, 0.006, 4, 2},
      {"Logistic Regression", 0.7513, 0.020, 4, 2},
      {"Latent Dirichlet Allocation", 0.6830, 0.002, 4, 2},
      {"Support Vector Machine", 0.4796, 0.001, 2, 1},
      {"Bayes", 0.2633, 0.024, 4, 2},
      {"Random Forest", 0.6830, 0.004, 4, 2},
      {"Pagerank", 0.4241, 0.191, 8, 4},
      {"NWeight", 0.2897, 0.038, 4, 2},
  };
  double total_weight = 0;
  for (const auto& row : kRows) total_weight += row.weight;

  std::vector<AppWorkload> suite;
  suite.reserve(std::size(kRows));
  for (const auto& row : kRows) {
    AppWorkload app;
    app.name = row.name;
    app.compress_ratio = row.ratio;
    app.shuffle_bytes = suite_bytes * row.weight / total_weight;
    app.mappers = row.mappers;
    app.reducers = row.reducers;
    suite.push_back(std::move(app));
  }
  return suite;
}

Trace hibench_trace(common::Bytes suite_bytes, std::size_t rounds,
                    std::size_t num_ports, common::Seconds mean_interarrival,
                    std::uint64_t seed) {
  common::Rng rng(seed);
  const auto suite = hibench_suite(suite_bytes);
  Trace trace;
  trace.num_ports = num_ports;
  common::Seconds now = 0;
  fabric::CoflowId next_id = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const auto& app : suite) {
      trace.coflows.push_back(
          app.make_coflow(next_id, next_id, now, num_ports, rng));
      ++next_id;
      now += rng.exponential(1.0 / mean_interarrival);
    }
  }
  trace.sort_by_arrival();
  return trace;
}

}  // namespace swallow::workload
