#include "workload/jobs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace swallow::workload {

std::vector<fabric::JobId> group_into_jobs(Trace& trace,
                                           std::size_t flows_per_job) {
  if (flows_per_job == 0)
    throw std::invalid_argument("group_into_jobs: zero flows per job");
  trace.sort_by_arrival();
  std::vector<fabric::JobId> jobs;
  fabric::JobId current = 0;
  std::size_t flows_in_current = 0;
  for (auto& coflow : trace.coflows) {
    if (flows_in_current >= flows_per_job) {
      ++current;
      flows_in_current = 0;
    }
    coflow.job = current;
    if (flows_in_current == 0) jobs.push_back(current);
    flows_in_current += coflow.flows.size();
  }
  return jobs;
}

common::Seconds job_arrival(const Trace& trace, fabric::JobId job) {
  common::Seconds earliest = std::numeric_limits<double>::infinity();
  for (const auto& c : trace.coflows)
    if (c.job == job) earliest = std::min(earliest, c.arrival);
  if (!std::isfinite(earliest))
    throw std::invalid_argument("job_arrival: unknown job id");
  return earliest;
}

}  // namespace swallow::workload
