// Job grouping for job-level metrics.
//
// Table V of the paper assumes "each job contains 10 flows; a job is marked
// as completed when all associated flows finish". In the simulator a job is
// simply a set of coflows sharing a JobId; JCT = (last flow completion) -
// (job arrival). Multi-stage map->shuffle->reduce pipelines live in the
// runtime, which chains stages for Fig. 7(a).
#pragma once

#include <vector>

#include "workload/trace.hpp"

namespace swallow::workload {

/// Regroups the trace's coflows into jobs of approximately
/// `flows_per_job` flows (consecutive coflows merge into the same job until
/// the quota is reached). Returns the list of distinct job ids.
std::vector<fabric::JobId> group_into_jobs(Trace& trace,
                                           std::size_t flows_per_job);

/// Job arrival: earliest coflow arrival with that job id.
common::Seconds job_arrival(const Trace& trace, fabric::JobId job);

}  // namespace swallow::workload
