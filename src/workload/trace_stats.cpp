#include "workload/trace_stats.hpp"

namespace swallow::workload {

double TraceStats::count_fraction_below(common::Bytes threshold) const {
  return flow_sizes.at(threshold);
}

double TraceStats::byte_fraction_above(common::Bytes threshold) const {
  return flow_sizes.mass_fraction_above(threshold);
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.num_coflows = trace.coflows.size();
  for (const auto& c : trace.coflows) {
    stats.coflow_sizes.add(c.total_bytes());
    stats.coflow_widths.add(static_cast<double>(c.width()));
    for (const auto& f : c.flows) {
      stats.flow_sizes.add(f.bytes);
      stats.total_bytes += f.bytes;
      ++stats.num_flows;
    }
  }
  stats.flow_sizes.finalize();
  stats.coflow_sizes.finalize();
  stats.coflow_widths.finalize();
  return stats;
}

}  // namespace swallow::workload
