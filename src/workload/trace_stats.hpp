// Distributional statistics over a trace: backs the Fig. 1 reproduction and
// the trace-shape assertions in tests.
#pragma once

#include "common/cdf.hpp"
#include "workload/trace.hpp"

namespace swallow::workload {

struct TraceStats {
  common::Cdf flow_sizes;        ///< CDF over individual flow sizes
  common::Cdf coflow_sizes;      ///< CDF over coflow total bytes
  common::Cdf coflow_widths;     ///< CDF over coflow widths
  std::size_t num_flows = 0;
  std::size_t num_coflows = 0;
  common::Bytes total_bytes = 0;

  /// Fig. 1(a): fraction of flows not larger than `threshold`.
  double count_fraction_below(common::Bytes threshold) const;
  /// Fig. 1(b): fraction of total bytes carried by flows above `threshold`.
  double byte_fraction_above(common::Bytes threshold) const;
};

TraceStats compute_stats(const Trace& trace);

}  // namespace swallow::workload
