#include "workload/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace swallow::workload {

TraceParseError::TraceParseError(std::size_t line, const std::string& message)
    : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
      line_(line) {}

namespace {

/// Ports/coflows/flows above this are treated as overflow: a corrupt count
/// must fail the parse instead of driving a multi-gigabyte reserve().
constexpr std::size_t kMaxCount = 1u << 24;

/// Non-negative integer with full-token and overflow validation.
std::size_t parse_count_token(std::size_t line, const char* context,
                              const char* what, const std::string& token,
                              std::size_t max) {
  if (token.empty() || token[0] == '-')
    throw TraceParseError(line, std::string(context) + ": negative " + what +
                                    " '" + token + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || end == token.c_str())
    throw TraceParseError(line, std::string(context) + ": malformed " + what +
                                    " '" + token + "'");
  if (errno == ERANGE || v > max)
    throw TraceParseError(line, std::string(context) + ": " + what +
                                    " overflows '" + token + "'");
  return static_cast<std::size_t>(v);
}

/// Finite double with full-token validation (rejects NaN/inf/overflow).
double parse_finite_token(std::size_t line, const char* context,
                          const char* what, const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || end == token.c_str())
    throw TraceParseError(line, std::string(context) + ": malformed " + what +
                                    " '" + token + "'");
  if (errno == ERANGE || !std::isfinite(v))
    throw TraceParseError(line, std::string(context) + ": non-finite " + what +
                                    " '" + token + "'");
  return v;
}

/// Whitespace-token reader that tracks the 1-based line of the token it
/// last produced, so every validation error can name its source line.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  std::size_t line() const { return line_; }

  /// Returns a previously next()-ed token to the reader; the following
  /// next() call produces it again. Depth one — enough for the optional
  /// `deadlines` directive lookahead.
  void push_back(std::string token) {
    pushed_ = std::move(token);
    has_pushed_ = true;
  }

  /// Next token, or throws naming `what` as the missing field.
  std::string next(const char* context, const char* what) {
    if (has_pushed_) {
      has_pushed_ = false;
      return std::move(pushed_);
    }
    std::string token;
    while (!(line_stream_ >> token)) {
      if (!std::getline(in_, buffer_))
        throw TraceParseError(line_, std::string(context) +
                                         ": truncated input, expected " + what);
      ++line_;
      line_stream_.clear();
      line_stream_.str(buffer_);
    }
    return token;
  }

  std::size_t next_count(const char* context, const char* what,
                         std::size_t max = kMaxCount) {
    return parse_count_token(line_, context, what, next(context, what), max);
  }

  double next_finite(const char* context, const char* what) {
    return parse_finite_token(line_, context, what, next(context, what));
  }

  fabric::PortId next_port(const char* context, const char* what,
                           std::size_t num_ports) {
    const std::size_t p = next_count(context, what, kMaxCount);
    if (p >= num_ports)
      throw TraceParseError(line_, std::string(context) + ": " + what + " " +
                                       std::to_string(p) +
                                       " out of range [0, " +
                                       std::to_string(num_ports) + ")");
    return static_cast<fabric::PortId>(p);
  }

 private:
  std::istream& in_;
  std::string buffer_;
  std::istringstream line_stream_;
  std::size_t line_ = 0;
  std::string pushed_;
  bool has_pushed_ = false;
};

}  // namespace

common::Bytes CoflowSpec::total_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : flows) total += f.bytes;
  return total;
}

common::Bytes CoflowSpec::max_flow_bytes() const {
  common::Bytes largest = 0;
  for (const auto& f : flows) largest = std::max(largest, f.bytes);
  return largest;
}

std::size_t Trace::total_flows() const {
  std::size_t n = 0;
  for (const auto& c : coflows) n += c.flows.size();
  return n;
}

common::Bytes Trace::total_bytes() const {
  common::Bytes total = 0;
  for (const auto& c : coflows) total += c.total_bytes();
  return total;
}

bool Trace::has_deadlines() const {
  for (const auto& c : coflows)
    if (c.has_deadline()) return true;
  return false;
}

void Trace::sort_by_arrival() {
  std::stable_sort(coflows.begin(), coflows.end(),
                   [](const CoflowSpec& a, const CoflowSpec& b) {
                     return a.arrival < b.arrival;
                   });
}

Trace parse_trace(std::istream& in) {
  TokenReader reader(in);
  Trace trace;
  trace.num_ports = reader.next_count("trace", "num_ports");
  if (trace.num_ports == 0)
    throw TraceParseError(reader.line(), "trace: zero ports");
  const std::size_t num_coflows = reader.next_count("trace", "num_coflows");

  // Optional `deadlines` directive: one lookahead token. Coflow ids are
  // numeric, so the keyword cannot collide with the first coflow header.
  bool has_deadlines = false;
  if (num_coflows > 0) {
    std::string tok = reader.next("trace", "coflow id");
    if (tok == "deadlines")
      has_deadlines = true;
    else
      reader.push_back(std::move(tok));
  }

  std::unordered_set<fabric::CoflowId> seen_ids;
  trace.coflows.reserve(num_coflows);
  for (std::size_t i = 0; i < num_coflows; ++i) {
    CoflowSpec coflow;
    coflow.id = reader.next_count("trace", "coflow id",
                                  std::numeric_limits<std::size_t>::max());
    if (!seen_ids.insert(coflow.id).second)
      throw TraceParseError(reader.line(), "trace: duplicate coflow id " +
                                               std::to_string(coflow.id));
    const double arrival_ms = reader.next_finite("trace", "arrival");
    if (arrival_ms < 0)
      throw TraceParseError(reader.line(), "trace: negative arrival");
    coflow.arrival = arrival_ms / 1000.0;
    coflow.job = reader.next_count("trace", "job id",
                                   std::numeric_limits<std::size_t>::max());
    const std::size_t num_flows = reader.next_count("trace", "num_flows");
    if (num_flows == 0)
      throw TraceParseError(reader.line(), "trace: coflow with no flows");
    if (has_deadlines) {
      // next_finite already rejects NaN/inf/overflow ("non-finite deadline").
      const double deadline_ms = reader.next_finite("trace", "deadline");
      if (deadline_ms < 0)
        throw TraceParseError(reader.line(), "trace: negative deadline");
      coflow.deadline = deadline_ms / 1000.0;
    }
    coflow.flows.reserve(num_flows);
    for (std::size_t j = 0; j < num_flows; ++j) {
      FlowSpec flow;
      flow.src = reader.next_port("trace", "src port", trace.num_ports);
      flow.dst = reader.next_port("trace", "dst port", trace.num_ports);
      flow.bytes = reader.next_finite("trace", "flow size");
      if (flow.bytes <= 0)
        throw TraceParseError(reader.line(), "trace: non-positive flow size");
      flow.compressible =
          reader.next_count("trace", "compressible flag", 1) != 0;
      coflow.flows.push_back(flow);
    }
    trace.coflows.push_back(std::move(coflow));
  }
  trace.sort_by_arrival();
  return trace;
}

Trace parse_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return parse_trace(in);
}

void write_trace(std::ostream& out, const Trace& trace) {
  // The `deadlines` directive and its column appear only when some coflow
  // carries one, so pre-deadline traces round-trip byte-identically.
  const bool deadlines = trace.has_deadlines();
  out << trace.num_ports << ' ' << trace.coflows.size();
  if (deadlines) out << " deadlines";
  out << '\n';
  for (const auto& c : trace.coflows) {
    out << c.id << ' ' << c.arrival * 1000.0 << ' ' << c.job << ' '
        << c.flows.size();
    if (deadlines) out << ' ' << c.deadline * 1000.0;
    out << '\n';
    for (const auto& f : c.flows)
      out << f.src << ' ' << f.dst << ' ' << f.bytes << ' '
          << (f.compressible ? 1 : 0) << '\n';
  }
}

Trace parse_facebook_trace(std::istream& in) {
  TokenReader reader(in);
  Trace trace;
  trace.num_ports = reader.next_count("fb-trace", "num_racks");
  if (trace.num_ports == 0)
    throw TraceParseError(reader.line(), "fb-trace: zero racks");
  const std::size_t num_jobs = reader.next_count("fb-trace", "num_jobs");

  // The published trace is 1-based; tolerate 0-based too.
  auto parse_rack = [&](std::size_t rack) {
    if (rack >= 1 && rack <= trace.num_ports)
      return static_cast<fabric::PortId>(rack - 1);
    if (rack < trace.num_ports) return static_cast<fabric::PortId>(rack);
    throw TraceParseError(reader.line(), "fb-trace: rack " +
                                             std::to_string(rack) +
                                             " out of range");
  };

  std::unordered_set<fabric::CoflowId> seen_ids;
  trace.coflows.reserve(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    CoflowSpec coflow;
    coflow.id = reader.next_count("fb-trace", "job id",
                                  std::numeric_limits<std::size_t>::max());
    if (!seen_ids.insert(coflow.id).second)
      throw TraceParseError(reader.line(), "fb-trace: duplicate job id " +
                                               std::to_string(coflow.id));
    coflow.job = coflow.id;
    const double arrival_ms = reader.next_finite("fb-trace", "arrival");
    if (arrival_ms < 0)
      throw TraceParseError(reader.line(), "fb-trace: negative arrival");
    coflow.arrival = arrival_ms / 1000.0;
    const std::size_t num_mappers =
        reader.next_count("fb-trace", "mapper count");
    if (num_mappers == 0)
      throw TraceParseError(reader.line(), "fb-trace: no mappers");

    std::vector<fabric::PortId> mappers(num_mappers);
    for (auto& m : mappers)
      m = parse_rack(reader.next_count("fb-trace", "mapper rack"));

    const std::size_t num_reducers =
        reader.next_count("fb-trace", "reducer count");
    if (num_reducers == 0)
      throw TraceParseError(reader.line(), "fb-trace: bad reducer count");
    for (std::size_t r = 0; r < num_reducers; ++r) {
      const std::string token = reader.next("fb-trace", "reducer record");
      const auto colon = token.find(':');
      if (colon == std::string::npos)
        throw TraceParseError(reader.line(),
                              "fb-trace: reducer missing ':' in " + token);
      const fabric::PortId dst =
          parse_rack(parse_count_token(reader.line(), "fb-trace",
                                       "reducer rack", token.substr(0, colon),
                                       kMaxCount));
      const double total_mb =
          parse_finite_token(reader.line(), "fb-trace", "shuffle size",
                             token.substr(colon + 1));
      if (total_mb <= 0)
        throw TraceParseError(reader.line(),
                              "fb-trace: non-positive shuffle size");
      const common::Bytes per_mapper =
          total_mb * common::kMB / static_cast<double>(num_mappers);
      for (const fabric::PortId src : mappers)
        coflow.flows.push_back(FlowSpec{src, dst, per_mapper, true, 0});
    }
    trace.coflows.push_back(std::move(coflow));
  }
  trace.sort_by_arrival();
  return trace;
}

Trace parse_facebook_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fb-trace: cannot open " + path);
  return parse_facebook_trace(in);
}

Trace filter_smallest_flows(const Trace& trace, double keep_fraction) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0)
    throw std::invalid_argument("filter_smallest_flows: fraction out of (0,1]");
  std::vector<common::Bytes> sizes;
  sizes.reserve(trace.total_flows());
  for (const auto& c : trace.coflows)
    for (const auto& f : c.flows) sizes.push_back(f.bytes);
  if (sizes.empty()) return trace;
  std::sort(sizes.begin(), sizes.end());
  const auto cut = static_cast<std::size_t>(std::llround(
      (1.0 - keep_fraction) * static_cast<double>(sizes.size())));
  const common::Bytes threshold = cut == 0 ? -1.0 : sizes[cut - 1];

  Trace out;
  out.num_ports = trace.num_ports;
  for (const auto& c : trace.coflows) {
    CoflowSpec filtered = c;
    filtered.flows.clear();
    for (const auto& f : c.flows)
      if (f.bytes > threshold) filtered.flows.push_back(f);
    if (!filtered.flows.empty()) out.coflows.push_back(std::move(filtered));
  }
  return out;
}

}  // namespace swallow::workload
