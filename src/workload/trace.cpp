#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace swallow::workload {

common::Bytes CoflowSpec::total_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : flows) total += f.bytes;
  return total;
}

common::Bytes CoflowSpec::max_flow_bytes() const {
  common::Bytes largest = 0;
  for (const auto& f : flows) largest = std::max(largest, f.bytes);
  return largest;
}

std::size_t Trace::total_flows() const {
  std::size_t n = 0;
  for (const auto& c : coflows) n += c.flows.size();
  return n;
}

common::Bytes Trace::total_bytes() const {
  common::Bytes total = 0;
  for (const auto& c : coflows) total += c.total_bytes();
  return total;
}

void Trace::sort_by_arrival() {
  std::stable_sort(coflows.begin(), coflows.end(),
                   [](const CoflowSpec& a, const CoflowSpec& b) {
                     return a.arrival < b.arrival;
                   });
}

Trace parse_trace(std::istream& in) {
  Trace trace;
  std::size_t num_coflows = 0;
  if (!(in >> trace.num_ports >> num_coflows))
    throw std::runtime_error("trace: missing header");
  if (trace.num_ports == 0) throw std::runtime_error("trace: zero ports");

  trace.coflows.reserve(num_coflows);
  for (std::size_t i = 0; i < num_coflows; ++i) {
    CoflowSpec coflow;
    double arrival_ms = 0;
    std::size_t num_flows = 0;
    if (!(in >> coflow.id >> arrival_ms >> coflow.job >> num_flows))
      throw std::runtime_error("trace: truncated coflow header");
    if (arrival_ms < 0) throw std::runtime_error("trace: negative arrival");
    if (num_flows == 0) throw std::runtime_error("trace: coflow with no flows");
    coflow.arrival = arrival_ms / 1000.0;
    coflow.flows.reserve(num_flows);
    for (std::size_t j = 0; j < num_flows; ++j) {
      FlowSpec flow;
      int compressible = 1;
      if (!(in >> flow.src >> flow.dst >> flow.bytes >> compressible))
        throw std::runtime_error("trace: truncated flow record");
      if (flow.src >= trace.num_ports || flow.dst >= trace.num_ports)
        throw std::runtime_error("trace: port out of range");
      if (flow.bytes <= 0) throw std::runtime_error("trace: non-positive flow size");
      flow.compressible = compressible != 0;
      coflow.flows.push_back(flow);
    }
    trace.coflows.push_back(std::move(coflow));
  }
  trace.sort_by_arrival();
  return trace;
}

Trace parse_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return parse_trace(in);
}

void write_trace(std::ostream& out, const Trace& trace) {
  out << trace.num_ports << ' ' << trace.coflows.size() << '\n';
  for (const auto& c : trace.coflows) {
    out << c.id << ' ' << c.arrival * 1000.0 << ' ' << c.job << ' '
        << c.flows.size() << '\n';
    for (const auto& f : c.flows)
      out << f.src << ' ' << f.dst << ' ' << f.bytes << ' '
          << (f.compressible ? 1 : 0) << '\n';
  }
}

Trace parse_facebook_trace(std::istream& in) {
  Trace trace;
  std::size_t num_jobs = 0;
  if (!(in >> trace.num_ports >> num_jobs))
    throw std::runtime_error("fb-trace: missing header");
  if (trace.num_ports == 0) throw std::runtime_error("fb-trace: zero racks");

  trace.coflows.reserve(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    CoflowSpec coflow;
    double arrival_ms = 0;
    std::size_t num_mappers = 0;
    if (!(in >> coflow.id >> arrival_ms >> num_mappers))
      throw std::runtime_error("fb-trace: truncated job header");
    coflow.job = coflow.id;
    coflow.arrival = arrival_ms / 1000.0;
    if (num_mappers == 0) throw std::runtime_error("fb-trace: no mappers");

    auto parse_rack = [&](long rack) {
      // The published trace is 1-based; tolerate 0-based too.
      if (rack >= 1 && static_cast<std::size_t>(rack) <= trace.num_ports)
        return static_cast<fabric::PortId>(rack - 1);
      if (rack >= 0 && static_cast<std::size_t>(rack) < trace.num_ports)
        return static_cast<fabric::PortId>(rack);
      throw std::runtime_error("fb-trace: rack out of range");
    };

    std::vector<fabric::PortId> mappers(num_mappers);
    for (auto& m : mappers) {
      long rack = 0;
      if (!(in >> rack)) throw std::runtime_error("fb-trace: truncated mappers");
      m = parse_rack(rack);
    }

    std::size_t num_reducers = 0;
    if (!(in >> num_reducers) || num_reducers == 0)
      throw std::runtime_error("fb-trace: bad reducer count");
    for (std::size_t r = 0; r < num_reducers; ++r) {
      std::string token;
      if (!(in >> token)) throw std::runtime_error("fb-trace: truncated reducers");
      const auto colon = token.find(':');
      if (colon == std::string::npos)
        throw std::runtime_error("fb-trace: reducer missing ':' in " + token);
      const fabric::PortId dst = parse_rack(std::stol(token.substr(0, colon)));
      const double total_mb = std::stod(token.substr(colon + 1));
      if (total_mb <= 0)
        throw std::runtime_error("fb-trace: non-positive shuffle size");
      const common::Bytes per_mapper =
          total_mb * common::kMB / static_cast<double>(num_mappers);
      for (const fabric::PortId src : mappers)
        coflow.flows.push_back(FlowSpec{src, dst, per_mapper, true, 0});
    }
    trace.coflows.push_back(std::move(coflow));
  }
  trace.sort_by_arrival();
  return trace;
}

Trace parse_facebook_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fb-trace: cannot open " + path);
  return parse_facebook_trace(in);
}

Trace filter_smallest_flows(const Trace& trace, double keep_fraction) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0)
    throw std::invalid_argument("filter_smallest_flows: fraction out of (0,1]");
  std::vector<common::Bytes> sizes;
  sizes.reserve(trace.total_flows());
  for (const auto& c : trace.coflows)
    for (const auto& f : c.flows) sizes.push_back(f.bytes);
  if (sizes.empty()) return trace;
  std::sort(sizes.begin(), sizes.end());
  const auto cut = static_cast<std::size_t>(std::llround(
      (1.0 - keep_fraction) * static_cast<double>(sizes.size())));
  const common::Bytes threshold = cut == 0 ? -1.0 : sizes[cut - 1];

  Trace out;
  out.num_ports = trace.num_ports;
  for (const auto& c : trace.coflows) {
    CoflowSpec filtered = c;
    filtered.flows.clear();
    for (const auto& f : c.flows)
      if (f.bytes > threshold) filtered.flows.push_back(f);
    if (!filtered.flows.empty()) out.coflows.push_back(std::move(filtered));
  }
  return out;
}

}  // namespace swallow::workload
