#include "workload/generator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace swallow::workload {

Trace generate_trace(const GeneratorConfig& config) {
  if (config.num_ports == 0) throw std::invalid_argument("generator: zero ports");
  if (config.width_lo == 0 || config.width_hi < config.width_lo)
    throw std::invalid_argument("generator: bad width range");
  if (config.width_hi > config.num_ports && config.distinct_senders)
    throw std::invalid_argument(
        "generator: width exceeds port count with distinct senders");
  if (config.deadline_fraction < 0 || config.deadline_fraction > 1)
    throw std::invalid_argument("generator: deadline fraction out of [0,1]");
  if (config.deadline_fraction > 0 &&
      (config.deadline_ref_bandwidth <= 0 || config.deadline_slack_lo <= 0 ||
       config.deadline_slack_hi < config.deadline_slack_lo))
    throw std::invalid_argument("generator: bad deadline slack parameters");

  common::Rng rng(config.seed);
  // Deadlines draw from their own stream so enabling them never perturbs
  // the base trace: the same seed yields the same coflows with or without
  // deadlines attached (the zero-deadline A/B relies on this).
  common::Rng deadline_rng(config.seed ^ 0x5105dead11e5ULL);
  Trace trace;
  trace.num_ports = config.num_ports;
  trace.coflows.reserve(config.num_coflows);

  common::Seconds now = 0;
  std::vector<fabric::PortId> ports(config.num_ports);
  std::iota(ports.begin(), ports.end(), 0u);

  for (std::size_t i = 0; i < config.num_coflows; ++i) {
    CoflowSpec coflow;
    coflow.id = i;
    coflow.job = i;  // one coflow per job unless the jobs module regroups
    coflow.arrival = now;
    now += rng.exponential(1.0 / config.mean_interarrival);

    const std::size_t width = static_cast<std::size_t>(
        rng.uniform_int(config.width_lo, config.width_hi));
    if (config.distinct_senders) rng.shuffle(ports);
    // Shuffle semantics: `width` mapper outputs spread over a smaller wave
    // of reducers, so receiver ports see real contention.
    const std::size_t num_receivers =
        static_cast<std::size_t>(rng.uniform_int(1, width));
    std::vector<fabric::PortId> receivers(num_receivers);
    for (auto& r : receivers)
      r = static_cast<fabric::PortId>(rng.uniform_int(0, config.num_ports - 1));

    // One size draw per coflow: the flows of a shuffle stage are the
    // partitions of the same dataset, so they are similar-sized (mild
    // lognormal skew), while sizes across coflows stay heavy-tailed.
    const common::Bytes base_size =
        rng.bounded_pareto(config.size_lo, config.size_hi, config.size_alpha);
    const bool compressible = rng.bernoulli(config.compressible_fraction);

    coflow.flows.reserve(width);
    for (std::size_t j = 0; j < width; ++j) {
      FlowSpec flow;
      flow.src = config.distinct_senders
                     ? ports[j]
                     : static_cast<fabric::PortId>(
                           rng.uniform_int(0, config.num_ports - 1));
      flow.dst = receivers[j % num_receivers];
      flow.bytes = base_size * rng.lognormal(-0.03125, 0.25);
      flow.compressible = compressible;
      coflow.flows.push_back(flow);
    }

    if (config.deadline_fraction > 0 &&
        deadline_rng.bernoulli(config.deadline_fraction)) {
      // Isolation CCT at the reference port speed: the busiest port's byte
      // load over the reference bandwidth. Slack scales how forgiving the
      // SLO is relative to a contention-free run.
      std::vector<common::Bytes> ingress(config.num_ports, 0);
      std::vector<common::Bytes> egress(config.num_ports, 0);
      common::Bytes bottleneck = 0;
      for (const FlowSpec& f : coflow.flows) {
        ingress[f.src] += f.bytes;
        egress[f.dst] += f.bytes;
        bottleneck = std::max({bottleneck, ingress[f.src], egress[f.dst]});
      }
      const common::Seconds isolation =
          bottleneck / config.deadline_ref_bandwidth;
      coflow.deadline =
          isolation * deadline_rng.uniform(config.deadline_slack_lo,
                                           config.deadline_slack_hi);
    }
    trace.coflows.push_back(std::move(coflow));
  }
  trace.sort_by_arrival();
  return trace;
}

Trace generate_fig1_trace(std::size_t num_flows, std::uint64_t seed) {
  GeneratorConfig config;
  config.num_ports = 100;
  config.width_lo = 1;
  config.width_hi = 1;  // Fig. 1 is about flows, not coflow structure
  config.num_coflows = num_flows;
  config.mean_interarrival = 0.01;
  config.seed = seed;
  return generate_trace(config);
}

}  // namespace swallow::workload
