// HiBench-like application workloads.
//
// The paper's deployment evaluation drives HiBench applications whose
// shuffles produce the intermediate data of Table I. Each AppWorkload
// couples a name, a per-app compression ratio (Table I, verbatim) and a
// shuffle geometry, and can emit CoflowSpecs for the simulator or byte
// payloads (via codec::AppProfile) for the runtime.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace swallow::workload {

struct AppWorkload {
  std::string name;
  double compress_ratio;        ///< Table I compressed/uncompressed
  common::Bytes shuffle_bytes;  ///< total bytes moved by one shuffle
  std::size_t mappers = 4;
  std::size_t reducers = 2;

  /// Builds one shuffle coflow: mappers x reducers flows, bytes split
  /// evenly with mild lognormal skew (real partitions are never exact).
  CoflowSpec make_coflow(fabric::CoflowId id, fabric::JobId job,
                         common::Seconds arrival, std::size_t num_ports,
                         common::Rng& rng) const;
};

/// The 11 Table I applications with shuffle volumes proportioned like the
/// paper's measurements, scaled so the whole suite moves `suite_bytes`.
std::vector<AppWorkload> hibench_suite(common::Bytes suite_bytes);

/// A trace interleaving `rounds` rounds of the suite with Poisson arrivals.
Trace hibench_trace(common::Bytes suite_bytes, std::size_t rounds,
                    std::size_t num_ports, common::Seconds mean_interarrival,
                    std::uint64_t seed);

}  // namespace swallow::workload
