// Coflow trace records and the on-disk text format.
//
// The format follows the layout of the public Facebook coflow benchmark
// (the trace Varys/Aalo were evaluated on): a header with the fabric size
// and coflow count, then one block per coflow listing its flows.
//
//   <num_ports> <num_coflows>
//   <coflow_id> <arrival_ms> <job_id> <num_flows>
//   <src_port> <dst_port> <bytes> <compressible 0|1>
//   ...
//
// Deadline extension (backward compatible): when the header line ends with
// the literal directive `deadlines`, every coflow header carries one extra
// column — the coflow's deadline in milliseconds *relative to its arrival*,
// with 0 meaning best-effort (no deadline). The directive is unambiguous
// because coflow ids are numeric, and traces without it parse (and
// round-trip through write_trace) byte-identically to the original format.
//
//   <num_ports> <num_coflows> deadlines
//   <coflow_id> <arrival_ms> <job_id> <num_flows> <deadline_ms>
//   ...
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fabric/coflow.hpp"

namespace swallow::workload {

/// Typed parse failure naming the 1-based input line it was detected on.
/// Derives from std::runtime_error, so pre-existing catch sites keep
/// working; new code can catch the typed form and report `line()`.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line, const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct FlowSpec {
  fabric::PortId src = 0;
  fabric::PortId dst = 0;
  common::Bytes bytes = 0;
  bool compressible = true;
  /// Per-flow compression ratio (compressed/raw); 0 means "use the codec
  /// model's ratio". Set by the HiBench app builder so simulated apps
  /// compress at their Table I ratios. Not serialized in the text format.
  double compress_ratio = 0;
  /// Registration delay of this flow relative to its coflow's arrival.
  /// Only orders FIFO service within simultaneous arrivals (flows of one
  /// shuffle reach the switch in I/O order, not all at once); not
  /// serialized in the text format.
  common::Seconds arrival_offset = 0;
};

struct CoflowSpec {
  fabric::CoflowId id = 0;
  fabric::JobId job = 0;
  common::Seconds arrival = 0;
  /// SLO deadline relative to arrival; 0 (the default) means best-effort.
  /// Serialized as the optional `deadlines` column (milliseconds).
  common::Seconds deadline = 0;
  std::vector<FlowSpec> flows;

  common::Bytes total_bytes() const;
  common::Bytes max_flow_bytes() const;
  std::size_t width() const { return flows.size(); }
  bool has_deadline() const { return deadline > 0; }
};

struct Trace {
  std::size_t num_ports = 0;
  std::vector<CoflowSpec> coflows;

  std::size_t total_flows() const;
  common::Bytes total_bytes() const;
  /// True when any coflow carries a deadline (write_trace then emits the
  /// `deadlines` directive and the extra column).
  bool has_deadlines() const;
  /// Coflows sorted by arrival time (the simulator requires this order).
  void sort_by_arrival();
};

/// Parses the text format above; throws TraceParseError (a
/// std::runtime_error) naming the offending line on malformed input:
/// truncated blocks, non-numeric tokens, NaN/infinite/negative/overflowing
/// sizes or arrivals, ports outside [0, num_ports), duplicate coflow ids.
Trace parse_trace(std::istream& in);
Trace parse_trace_file(const std::string& path);

void write_trace(std::ostream& out, const Trace& trace);

/// Returns a copy keeping only the largest `fraction` of flows by byte count
/// (the paper's "97% / 95% of traces" filtering drops the smallest flows).
/// Coflows left empty are removed.
Trace filter_smallest_flows(const Trace& trace, double keep_fraction);

/// Parses the public Facebook coflow benchmark format (the trace Varys and
/// Aalo were evaluated on; github.com/coflow/coflow-benchmark):
///
///   <num_racks> <num_jobs>
///   <job_id> <arrival_ms> <num_mappers> <rack>... <num_reducers>
///       <rack>:<shuffle_MB>...
///
/// Each reducer receives one flow from every mapper; a reducer's shuffle
/// megabytes split evenly across its mappers. Rack numbers are 1-based in
/// the published trace and map to ports 0..num_racks-1.
Trace parse_facebook_trace(std::istream& in);
Trace parse_facebook_trace_file(const std::string& path);

}  // namespace swallow::workload
