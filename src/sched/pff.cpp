#include "sched/pff.hpp"

namespace swallow::sched {

fabric::Allocation PffScheduler::schedule(const SchedContext& ctx) {
  const std::vector<const fabric::Flow*>& flows = transmittable_flows(ctx);
  const std::vector<double> weights(flows.size(), 1.0);
  return fabric::weighted_max_min(flows, weights, *ctx.fabric);
}

}  // namespace swallow::sched
