#include "sched/pff.hpp"

namespace swallow::sched {

fabric::Allocation PffScheduler::schedule(const SchedContext& ctx) {
  const std::vector<double> weights(ctx.flows.size(), 1.0);
  return fabric::weighted_max_min(ctx.flows, weights, *ctx.fabric);
}

}  // namespace swallow::sched
