// Per-Flow Prioritization: strict smallest-remaining-flow-first (the SRTF
// policy of pFabric/PDQ), provably optimal for average FCT on a single link
// but coflow-agnostic.
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class PfpScheduler final : public Scheduler {
 public:
  explicit PfpScheduler(std::string label = "PFP") : label_(std::move(label)) {}
  std::string name() const override { return label_; }
  fabric::Allocation schedule(const SchedContext& ctx) override;

 private:
  std::string label_;
};

}  // namespace swallow::sched
