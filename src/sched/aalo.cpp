#include "sched/aalo.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace swallow::sched {

AaloScheduler::AaloScheduler() : AaloScheduler(Config{}) {}

AaloScheduler::AaloScheduler(Config config) : config_(config) {
  if (config_.first_threshold <= 0 || config_.threshold_factor <= 1.0 ||
      config_.num_queues == 0)
    throw std::invalid_argument("AaloScheduler: bad queue configuration");
}

std::size_t AaloScheduler::queue_of(common::Bytes sent) const {
  common::Bytes threshold = config_.first_threshold;
  for (std::size_t q = 0; q + 1 < config_.num_queues; ++q) {
    if (sent < threshold) return q;
    threshold *= config_.threshold_factor;
  }
  return config_.num_queues - 1;
}

fabric::Allocation AaloScheduler::schedule(const SchedContext& ctx) {
  if (ctx.tracker != nullptr && ctx.sink == nullptr)
    return schedule_incremental(ctx);
  return schedule_full(ctx);
}

fabric::Allocation AaloScheduler::schedule_full(const SchedContext& ctx) {
  // Attained service per coflow: bytes already on the wire.
  std::unordered_map<fabric::CoflowId, common::Bytes> sent;
  sent.reserve(ctx.coflows.size());
  for (const fabric::Flow* f : ctx.flows) sent[f->coflow] += f->sent;

  // Order coflows by (queue, arrival, id): strict priority across queues,
  // FIFO within a queue.
  std::vector<fabric::Coflow*> order = ctx.coflows;
  std::stable_sort(
      order.begin(), order.end(),
      [&](const fabric::Coflow* a, const fabric::Coflow* b) {
        const std::size_t qa = queue_of(sent[a->id]);
        const std::size_t qb = queue_of(sent[b->id]);
        if (qa != qb) return qa < qb;
        if (a->arrival != b->arrival) return a->arrival < b->arrival;
        return a->id < b->id;
      });

  std::vector<fabric::CoflowId> ids;
  ids.reserve(order.size());
  for (const fabric::Coflow* c : order) ids.push_back(c->id);
  return fabric::strict_priority(order_flows_by_coflow(ctx, ids),
                                 *ctx.fabric);
}

fabric::Allocation AaloScheduler::schedule_incremental(
    const SchedContext& ctx) {
  const DirtyTracker& tracker = *ctx.tracker;
  if (bound_tracker_ != ctx.tracker || session_ != tracker.session()) {
    bound_tracker_ = ctx.tracker;
    session_ = tracker.session();
    index_.clear();
    cache_.clear();
    for (const fabric::Coflow* c : ctx.coflows) refresh_coflow(ctx, *c);
  } else {
    // Aalo has no priority class, so any dirt — including key-only marks
    // from a shared engine feed — just re-derives the queue level.
    for (const fabric::CoflowId id : tracker.dirty()) {
      const fabric::Coflow* c = tracker.coflow(id);
      if (c == nullptr) continue;
      if (c->completed()) {
        index_.erase(id);
        if (id < cache_.size()) cache_[id] = Cached{};
        continue;
      }
      refresh_coflow(ctx, *c);
    }
  }
  ctx.tracker->consume();

  // Concatenating the cached flow lists in index order reproduces the full
  // path's order_flows_by_coflow sequence: coflows by (queue, arrival, id),
  // flows within a coflow by ascending flow id.
  ordered_.clear();
  ordered_.reserve(tracker.flow_count());
  index_.for_each([&](fabric::CoflowId id) {
    const Cached& cc = cache_[id];
    ordered_.insert(ordered_.end(), cc.flows.begin(), cc.flows.end());
  });
  return fabric::strict_priority(ordered_, *ctx.fabric);
}

void AaloScheduler::refresh_coflow(const SchedContext& ctx,
                                   const fabric::Coflow& c) {
  if (c.id >= cache_.size()) cache_.resize(c.id + 1);
  Cached& cc = cache_[c.id];
  cc.valid = true;
  cc.flows.clear();
  const DirtyTracker& tracker = *ctx.tracker;
  // Attained service sums over every unfinished flow — stalled ones
  // included, exactly like the full path's pass over ctx.flows — while the
  // output flow list additionally filters stalled flows, matching
  // transmittable_flows.
  common::Bytes sent = 0;
  for (const fabric::FlowId fid : c.flows) {
    const fabric::Flow& f = tracker.flow(fid);
    if (f.done()) continue;
    sent += f.sent;
    if (!link_stalled(f, *ctx.fabric)) cc.flows.push_back(&f);
  }
  if (cc.flows.empty()) {
    index_.erase(c.id);
    return;
  }
  // Queue levels are small integers: exact as doubles, so the shared rank
  // key compares them precisely.
  index_.insert_or_update(
      c.id, CoflowRankKey{static_cast<double>(queue_of(sent)), c.arrival,
                          c.id});
}

}  // namespace swallow::sched
