#include "sched/aalo.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace swallow::sched {

AaloScheduler::AaloScheduler() : AaloScheduler(Config{}) {}

AaloScheduler::AaloScheduler(Config config) : config_(config) {
  if (config_.first_threshold <= 0 || config_.threshold_factor <= 1.0 ||
      config_.num_queues == 0)
    throw std::invalid_argument("AaloScheduler: bad queue configuration");
}

std::size_t AaloScheduler::queue_of(common::Bytes sent) const {
  common::Bytes threshold = config_.first_threshold;
  for (std::size_t q = 0; q + 1 < config_.num_queues; ++q) {
    if (sent < threshold) return q;
    threshold *= config_.threshold_factor;
  }
  return config_.num_queues - 1;
}

fabric::Allocation AaloScheduler::schedule(const SchedContext& ctx) {
  // Attained service per coflow: bytes already on the wire.
  std::unordered_map<fabric::CoflowId, common::Bytes> sent;
  sent.reserve(ctx.coflows.size());
  for (const fabric::Flow* f : ctx.flows) sent[f->coflow] += f->sent;

  // Order coflows by (queue, arrival, id): strict priority across queues,
  // FIFO within a queue.
  std::vector<fabric::Coflow*> order = ctx.coflows;
  std::stable_sort(
      order.begin(), order.end(),
      [&](const fabric::Coflow* a, const fabric::Coflow* b) {
        const std::size_t qa = queue_of(sent[a->id]);
        const std::size_t qb = queue_of(sent[b->id]);
        if (qa != qb) return qa < qb;
        if (a->arrival != b->arrival) return a->arrival < b->arrival;
        return a->id < b->id;
      });

  std::vector<fabric::CoflowId> ids;
  ids.reserve(order.size());
  for (const fabric::Coflow* c : order) ids.push_back(c->id);
  return fabric::strict_priority(order_flows_by_coflow(ctx, ids),
                                 *ctx.fabric);
}

}  // namespace swallow::sched
