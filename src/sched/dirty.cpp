#include "sched/dirty.hpp"

#include <atomic>

namespace swallow::sched {

namespace {
std::atomic<std::uint64_t> g_next_session{1};
}  // namespace

DirtyTracker::DirtyTracker(std::size_t num_ports)
    : session_(g_next_session.fetch_add(1, std::memory_order_relaxed)),
      src_residents_(num_ports),
      dst_residents_(num_ports),
      cpu_headroom_(num_ports, 0.0),
      cpu_gate_(num_ports, 0) {}

void DirtyTracker::bind_flows(const fabric::Flow* flows, std::size_t count) {
  flows_ = flows;
  flow_count_ = count;
}

void DirtyTracker::mark(fabric::CoflowId c, DirtyLevel lvl) {
  if (c >= level_.size()) level_.resize(c + 1, DirtyLevel::kClean);
  DirtyLevel& cur = level_[c];
  if (cur == DirtyLevel::kClean) dirty_.push_back(c);
  if (static_cast<int>(lvl) > static_cast<int>(cur)) cur = lvl;
}

void DirtyTracker::coflow_arrived(const fabric::Coflow* c) {
  if (c->id >= coflows_.size()) coflows_.resize(c->id + 1, nullptr);
  coflows_[c->id] = c;
  // Register port residency. A coflow's flows are registered in one batch,
  // so every push for a given port list is for this coflow — checking the
  // list's tail fully dedupes without a scratch set.
  for (const fabric::FlowId fid : c->flows) {
    const fabric::Flow& f = flows_[fid];
    auto& src = src_residents_[f.src];
    if (src.empty() || src.back() != c->id) src.push_back(c->id);
    auto& dst = dst_residents_[f.dst];
    if (dst.empty() || dst.back() != c->id) dst.push_back(c->id);
  }
  mark(c->id, DirtyLevel::kRecompute);
}

void DirtyTracker::coflow_changed(fabric::CoflowId c) {
  mark(c, DirtyLevel::kRecompute);
}

void DirtyTracker::flow_progressed(fabric::CoflowId c) {
  mark(c, DirtyLevel::kRecompute);
}

void DirtyTracker::priority_changed(fabric::CoflowId c) {
  mark(c, DirtyLevel::kKeyOnly);
}

void DirtyTracker::dirty_residents(std::vector<fabric::CoflowId>& v) {
  std::size_t w = 0;
  for (const fabric::CoflowId c : v) {
    const fabric::Coflow* cf = coflow(c);
    if (cf == nullptr || cf->completed()) continue;  // lazy prune
    v[w++] = c;
    mark(c, DirtyLevel::kRecompute);
  }
  v.resize(w);
}

void DirtyTracker::port_capacity_changed(fabric::PortId p) {
  dirty_residents(src_residents_[p]);
  dirty_residents(dst_residents_[p]);
}

void DirtyTracker::sample_cpu(const cpu::CpuProvider& cpu,
                              common::Seconds now) {
  // Value-based change detection: the cached Eq. 3 / Eq. 7 terms depend on
  // the CPU only through headroom(src, t) and can_compress(src, t), so a
  // provider that wanders but returns to the previously sampled values by
  // the next decision point dirties nothing. Only source ports matter —
  // compression runs at the sender.
  const std::size_t ports = src_residents_.size();
  for (fabric::PortId p = 0; p < ports; ++p) {
    const double h = cpu.headroom(p, now);
    const char gate = cpu.can_compress(p, now) ? 1 : 0;
    if (cpu_sampled_ && h == cpu_headroom_[p] && gate == cpu_gate_[p])
      continue;
    const bool changed = cpu_sampled_;
    cpu_headroom_[p] = h;
    cpu_gate_[p] = gate;
    if (changed) dirty_residents(src_residents_[p]);
  }
  cpu_sampled_ = true;
}

void DirtyTracker::consume() {
  for (const fabric::CoflowId c : dirty_) level_[c] = DirtyLevel::kClean;
  dirty_.clear();
}

}  // namespace swallow::sched
