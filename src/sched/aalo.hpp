// Aalo-style Discretized Coflow-Aware Least-Attained-Service (D-CLAS).
//
// The paper cites Aalo ("Efficient coflow scheduling without prior
// knowledge", SIGCOMM'15) as the info-agnostic alternative to Varys; we
// implement it as an extension baseline. Coflows live in priority queues
// indexed by the bytes they have already transmitted: a coflow starts in
// the highest-priority queue and is demoted each time its sent bytes cross
// the next geometric threshold. Scheduling is strict priority across
// queues and FIFO within a queue, work-conserving.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/dirty.hpp"
#include "sched/rank_index.hpp"
#include "sched/scheduler.hpp"

namespace swallow::sched {

class AaloScheduler final : public Scheduler {
 public:
  struct Config {
    /// First demotion threshold (bytes sent); Aalo's default is 10 MB.
    common::Bytes first_threshold = 10.0 * 1024 * 1024;
    /// Multiplier between consecutive queue thresholds (Aalo's E).
    double threshold_factor = 10.0;
    /// Number of queues (the last one is unbounded).
    std::size_t num_queues = 10;
  };

  AaloScheduler();  ///< Aalo defaults: 10 MB first threshold, E = 10
  explicit AaloScheduler(Config config);
  std::string name() const override { return "AALO"; }
  fabric::Allocation schedule(const SchedContext& ctx) override;

  /// Queue index for a coflow that has transmitted `sent` bytes.
  std::size_t queue_of(common::Bytes sent) const;

 private:
  fabric::Allocation schedule_full(const SchedContext& ctx);
  fabric::Allocation schedule_incremental(const SchedContext& ctx);
  void refresh_coflow(const SchedContext& ctx, const fabric::Coflow& c);

  Config config_;

  // --- incremental state, valid for one tracker session ---
  struct Cached {
    bool valid = false;
    /// Unfinished, unstalled flows, in coflow flow-id order.
    std::vector<const fabric::Flow*> flows;
  };
  const DirtyTracker* bound_tracker_ = nullptr;
  std::uint64_t session_ = 0;
  std::vector<Cached> cache_;  ///< by dense coflow id
  RankIndex index_;            ///< primary key: queue level (exact integer)
  std::vector<const fabric::Flow*> ordered_;  ///< per-round output scratch
};

}  // namespace swallow::sched
