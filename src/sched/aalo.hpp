// Aalo-style Discretized Coflow-Aware Least-Attained-Service (D-CLAS).
//
// The paper cites Aalo ("Efficient coflow scheduling without prior
// knowledge", SIGCOMM'15) as the info-agnostic alternative to Varys; we
// implement it as an extension baseline. Coflows live in priority queues
// indexed by the bytes they have already transmitted: a coflow starts in
// the highest-priority queue and is demoted each time its sent bytes cross
// the next geometric threshold. Scheduling is strict priority across
// queues and FIFO within a queue, work-conserving.
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class AaloScheduler final : public Scheduler {
 public:
  struct Config {
    /// First demotion threshold (bytes sent); Aalo's default is 10 MB.
    common::Bytes first_threshold = 10.0 * 1024 * 1024;
    /// Multiplier between consecutive queue thresholds (Aalo's E).
    double threshold_factor = 10.0;
    /// Number of queues (the last one is unbounded).
    std::size_t num_queues = 10;
  };

  AaloScheduler();  ///< Aalo defaults: 10 MB first threshold, E = 10
  explicit AaloScheduler(Config config);
  std::string name() const override { return "AALO"; }
  fabric::Allocation schedule(const SchedContext& ctx) override;

  /// Queue index for a coflow that has transmitted `sent` bytes.
  std::size_t queue_of(common::Bytes sent) const;

 private:
  Config config_;
};

}  // namespace swallow::sched
