#include "sched/scheduler.hpp"

#include <algorithm>
#include <unordered_map>

namespace swallow::sched {

std::vector<const fabric::Flow*> order_flows_by_coflow(
    const SchedContext& ctx,
    const std::vector<fabric::CoflowId>& coflow_order) {
  return order_flows_by_coflow(
      std::vector<const fabric::Flow*>(transmittable_flows(ctx)),
      coflow_order);
}

const std::vector<const fabric::Flow*>& transmittable_flows(
    const SchedContext& ctx) {
  std::vector<const fabric::Flow*>& out = ctx.transmittable_scratch;
  out.clear();
  out.reserve(ctx.flows.size());
  for (const fabric::Flow* f : ctx.flows)
    if (!link_stalled(*f, *ctx.fabric)) out.push_back(f);
  return out;
}

std::vector<const fabric::Flow*> order_flows_by_coflow(
    std::vector<const fabric::Flow*> flows,
    const std::vector<fabric::CoflowId>& coflow_order) {
  std::unordered_map<fabric::CoflowId, std::size_t> rank;
  rank.reserve(coflow_order.size());
  for (std::size_t i = 0; i < coflow_order.size(); ++i)
    rank[coflow_order[i]] = i;

  std::vector<const fabric::Flow*> ordered = std::move(flows);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&rank](const fabric::Flow* a, const fabric::Flow* b) {
                     const auto ra = rank.find(a->coflow);
                     const auto rb = rank.find(b->coflow);
                     const std::size_t ka =
                         ra == rank.end() ? rank.size() : ra->second;
                     const std::size_t kb =
                         rb == rank.end() ? rank.size() : rb->second;
                     if (ka != kb) return ka < kb;
                     return a->id < b->id;
                   });
  return ordered;
}

}  // namespace swallow::sched
