#include "sched/wss.hpp"

namespace swallow::sched {

fabric::Allocation WssScheduler::schedule(const SchedContext& ctx) {
  std::vector<double> weights;
  weights.reserve(ctx.flows.size());
  for (const fabric::Flow* f : ctx.flows) weights.push_back(f->volume());
  return fabric::weighted_max_min(ctx.flows, weights, *ctx.fabric);
}

}  // namespace swallow::sched
