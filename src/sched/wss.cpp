#include "sched/wss.hpp"

namespace swallow::sched {

fabric::Allocation WssScheduler::schedule(const SchedContext& ctx) {
  const std::vector<const fabric::Flow*>& flows = transmittable_flows(ctx);
  std::vector<double> weights;
  weights.reserve(flows.size());
  for (const fabric::Flow* f : flows) weights.push_back(f->volume());
  return fabric::weighted_max_min(flows, weights, *ctx.fabric);
}

}  // namespace swallow::sched
