// First-In First-Out: flows served strictly in arrival order; the head of
// each port gets the full residual capacity. The paper's head-of-line
// blocking baseline (Spark's default queue behaves this way).
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "FIFO"; }
  fabric::Allocation schedule(const SchedContext& ctx) override;
};

}  // namespace swallow::sched
