// Coflow-ordering heuristics the paper groups in Table VI:
//   SCF - Smallest-Coflow-First: least total remaining bytes first.
//   NCF - Narrowest-Coflow-First: fewest unfinished flows first.
//   LCF - Lightest-Coflow-First: smallest maximum remaining flow first
//         (the paper never defines LCF; see DESIGN.md section 4.2).
// Each orders coflows by its key and hands flows the full residual port
// capacity in that order (strict priority, work conserving).
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

enum class CoflowSizeKey { kTotalBytes, kWidth, kMaxFlow };

class SizeOrderScheduler final : public Scheduler {
 public:
  SizeOrderScheduler(CoflowSizeKey key, std::string label)
      : key_(key), label_(std::move(label)) {}
  std::string name() const override { return label_; }
  fabric::Allocation schedule(const SchedContext& ctx) override;

 private:
  CoflowSizeKey key_;
  std::string label_;
};

}  // namespace swallow::sched
