#include "sched/size_order.hpp"

#include <algorithm>
#include <unordered_map>

namespace swallow::sched {

fabric::Allocation SizeOrderScheduler::schedule(const SchedContext& ctx) {
  // Per-coflow remaining aggregates.
  std::unordered_map<fabric::CoflowId, double> total, width, max_flow;
  for (const fabric::Flow* f : ctx.flows) {
    if (f->done()) continue;
    total[f->coflow] += f->volume();
    width[f->coflow] += 1.0;
    max_flow[f->coflow] = std::max(max_flow[f->coflow], f->volume());
  }

  std::vector<fabric::Coflow*> order = ctx.coflows;
  auto key_of = [&](const fabric::Coflow* c) {
    switch (key_) {
      case CoflowSizeKey::kTotalBytes: return total[c->id];
      case CoflowSizeKey::kWidth: return width[c->id];
      case CoflowSizeKey::kMaxFlow: return max_flow[c->id];
    }
    return 0.0;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](const fabric::Coflow* a, const fabric::Coflow* b) {
                     const double ka = key_of(a), kb = key_of(b);
                     if (ka != kb) return ka < kb;
                     if (a->arrival != b->arrival) return a->arrival < b->arrival;
                     return a->id < b->id;
                   });

  std::vector<fabric::CoflowId> ids;
  ids.reserve(order.size());
  for (const fabric::Coflow* c : order) ids.push_back(c->id);
  return fabric::strict_priority(order_flows_by_coflow(ctx, ids), *ctx.fabric);
}

}  // namespace swallow::sched
