// Smallest-Effective-Bottleneck-First (Varys): coflows admitted in order of
// their effective bottleneck Gamma = max_port(load/capacity); the admitted
// coflow's flows get MADD rates (all finish together at Gamma), residual
// capacity backfills the remaining coflows in the same order.
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class SebfScheduler final : public Scheduler {
 public:
  /// `backfill` off is the ablation knob (bench_ablation_backfill).
  explicit SebfScheduler(bool backfill = true) : backfill_(backfill) {}
  std::string name() const override {
    return backfill_ ? "SEBF" : "SEBF-NOBACKFILL";
  }
  fabric::Allocation schedule(const SchedContext& ctx) override;

 private:
  bool backfill_;
};

}  // namespace swallow::sched
