// Smallest-Effective-Bottleneck-First (Varys): coflows admitted in order of
// their effective bottleneck Gamma = max_port(load/capacity); the admitted
// coflow's flows get MADD rates (all finish together at Gamma), residual
// capacity backfills the remaining coflows in the same order.
//
// With a DirtyTracker in the context (and no trace sink) the scheduler keeps
// per-coflow Gamma memoized in a RankIndex and re-derives only dirty coflows
// per decision point; allocations stay bit-identical to the full recompute.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/dirty.hpp"
#include "sched/rank_index.hpp"
#include "sched/scheduler.hpp"

namespace swallow::sched {

class SebfScheduler final : public Scheduler {
 public:
  /// `backfill` off is the ablation knob (bench_ablation_backfill).
  explicit SebfScheduler(bool backfill = true) : backfill_(backfill) {}
  std::string name() const override {
    return backfill_ ? "SEBF" : "SEBF-NOBACKFILL";
  }
  fabric::Allocation schedule(const SchedContext& ctx) override;

 private:
  fabric::Allocation schedule_full(const SchedContext& ctx);
  fabric::Allocation schedule_incremental(const SchedContext& ctx);
  void refresh_coflow(const SchedContext& ctx, const fabric::Coflow& c);

  bool backfill_;

  // --- incremental state, valid for one tracker session ---
  struct Cached {
    common::Seconds gamma = 0;
    bool valid = false;
    /// Unfinished, unstalled flows, in coflow flow-id order (the engine's
    /// context order, so MADD's FP accumulation matches the full path).
    std::vector<const fabric::Flow*> flows;
  };
  const DirtyTracker* bound_tracker_ = nullptr;
  std::uint64_t session_ = 0;
  std::vector<Cached> cache_;  ///< by dense coflow id
  RankIndex index_;
  std::vector<common::Bytes> in_load_, out_load_;  ///< per-port scratch
};

}  // namespace swallow::sched
