// Weighted Shuffle Scheduling (Orchestra): every flow weighted by its
// remaining volume, shares allocated proportionally per port. Reproduces
// Fig. 4(b) of the paper exactly on the motivation example.
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class WssScheduler final : public Scheduler {
 public:
  std::string name() const override { return "WSS"; }
  fabric::Allocation schedule(const SchedContext& ctx) override;
};

}  // namespace swallow::sched
