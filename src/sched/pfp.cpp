#include "sched/pfp.hpp"

#include <algorithm>

namespace swallow::sched {

fabric::Allocation PfpScheduler::schedule(const SchedContext& ctx) {
  std::vector<const fabric::Flow*> ordered = transmittable_flows(ctx);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const fabric::Flow* a, const fabric::Flow* b) {
                     if (a->volume() != b->volume())
                       return a->volume() < b->volume();
                     return a->id < b->id;
                   });
  return fabric::strict_priority(ordered, *ctx.fabric);
}

}  // namespace swallow::sched
