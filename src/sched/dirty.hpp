// Dirty-set propagation for incremental scheduling (DESIGN.md section 11).
//
// The simulation engine owns one DirtyTracker per run and feeds it every
// event that can change a coflow's scheduling inputs: coflow arrivals, flow
// and compression completions, per-port capacity-multiplier changes,
// CPU-headroom changes and priority upgrades. A scheduler consumes the
// accumulated set at each decision point and recomputes only the marked
// coflows; everything else keeps its memoized Γ components and its slot in
// the rank index (rank_index.hpp). Port-indexed reverse maps (fabric port →
// resident coflows) make capacity and CPU events precise: a brownout on
// port p dirties exactly the coflows with a flow incident on p.
//
// Correctness contract: over-dirtying is always safe — recomputing a clean
// coflow reproduces its cached values bit-for-bit — while under-dirtying
// silently desynchronizes the cache, so every mark below errs on the side
// of marking. Flow and coflow ids must be dense (the engine's are). The
// tracker is single-producer single-consumer within one run; `session()` is
// process-unique so a scheduler can detect that it is seeing a different
// run (or a restarted one) and rebuild from scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "fabric/coflow.hpp"

namespace swallow::sched {

/// How much of a coflow's cached scheduling state an event invalidated.
enum class DirtyLevel : std::uint8_t {
  kClean = 0,
  /// Only the priority class moved: Γ_C stands, the rank key must be
  /// re-derived (adjusted Γ = Γ / priority) — a pure decrease/increase-key.
  kKeyOnly = 1,
  /// Volumes, membership, port capacities or CPU headroom changed: the Γ
  /// components must be recomputed from the flow set.
  kRecompute = 2,
};

class DirtyTracker {
 public:
  explicit DirtyTracker(std::size_t num_ports);
  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  /// Process-unique id of this tracker instance; schedulers key their
  /// caches on it so stale state from a previous run can never leak in.
  std::uint64_t session() const { return session_; }

  /// Binds the engine's dense flow table. The pointer must stay valid (no
  /// reallocation) for the tracker's lifetime — the engine reserves its
  /// flow vector up front, so this holds by construction.
  void bind_flows(const fabric::Flow* flows, std::size_t count);
  const fabric::Flow& flow(fabric::FlowId id) const { return flows_[id]; }
  std::size_t flow_count() const { return flow_count_; }

  // ---- producer side (the engine's event loop) ----

  /// A coflow arrived: registers its flows' port residency and marks it for
  /// recompute. The pointer must stay valid for the tracker's lifetime.
  void coflow_arrived(const fabric::Coflow* c);
  /// Membership or volume changed inside the coflow (flow completion,
  /// compression-finished event).
  void coflow_changed(fabric::CoflowId c);
  /// The coflow was served by the previous allocation (positive rate or
  /// β = 1 on some flow): its volumes drained, so Γ is stale.
  void flow_progressed(fabric::CoflowId c);
  /// Priority class moved (Pseudocode 3's Upgrade): key-only.
  void priority_changed(fabric::CoflowId c);
  /// A port's capacity multiplier changed: dirties exactly the coflows
  /// resident on the port (and lazily prunes completed residents).
  void port_capacity_changed(fabric::PortId p);
  /// Samples per-port CPU headroom and the Eq. 3 can_compress gate, and
  /// dirties the coflows sourced at ports whose values changed since the
  /// previous sample. Call once per decision point, before schedule().
  void sample_cpu(const cpu::CpuProvider& cpu, common::Seconds now);

  // ---- consumer side (the scheduler) ----

  /// The registered coflow, or nullptr if the id never arrived.
  const fabric::Coflow* coflow(fabric::CoflowId c) const {
    return c < coflows_.size() ? coflows_[c] : nullptr;
  }
  /// Ids marked since the last consume(), in first-marked order.
  const std::vector<fabric::CoflowId>& dirty() const { return dirty_; }
  DirtyLevel level(fabric::CoflowId c) const {
    return c < level_.size() ? level_[c] : DirtyLevel::kClean;
  }
  /// Clears the dirty set. Single consumer: a scheduler that skips a round
  /// (e.g. the traced fallback path) simply leaves the set to accumulate.
  void consume();

  // ---- introspection (tests) ----
  const std::vector<fabric::CoflowId>& src_residents(fabric::PortId p) const {
    return src_residents_[p];
  }
  const std::vector<fabric::CoflowId>& dst_residents(fabric::PortId p) const {
    return dst_residents_[p];
  }

 private:
  void mark(fabric::CoflowId c, DirtyLevel lvl);
  /// Marks every live resident in `v` for recompute, compacting out the
  /// completed ones as it goes (lazy pruning: no removal on completion).
  void dirty_residents(std::vector<fabric::CoflowId>& v);

  std::uint64_t session_;
  const fabric::Flow* flows_ = nullptr;
  std::size_t flow_count_ = 0;

  std::vector<const fabric::Coflow*> coflows_;  ///< by dense coflow id
  std::vector<DirtyLevel> level_;               ///< by dense coflow id
  std::vector<fabric::CoflowId> dirty_;

  /// Port → coflows with a flow sourced / sinking there. Registration
  /// dedupes per coflow; entries outlive completion until lazily pruned.
  std::vector<std::vector<fabric::CoflowId>> src_residents_;
  std::vector<std::vector<fabric::CoflowId>> dst_residents_;

  /// Last-sampled per-port CPU state for change detection.
  std::vector<double> cpu_headroom_;
  std::vector<char> cpu_gate_;
  bool cpu_sampled_ = false;
};

}  // namespace swallow::sched
