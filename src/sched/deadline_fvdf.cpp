#include "sched/deadline_fvdf.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "obs/trace.hpp"

namespace swallow::sched {

namespace {

std::uint64_t stamp_of(const std::vector<std::uint64_t>& v,
                       fabric::CoflowId id) {
  return id < v.size() ? v[id] : 0;
}

void set_stamp(std::vector<std::uint64_t>& v, fabric::CoflowId id,
               std::uint64_t round) {
  if (id >= v.size()) v.resize(id + 1, 0);
  v[id] = round;
}

}  // namespace

DeadlineFvdfScheduler::DeadlineFvdfScheduler(DeadlineFvdfOptions options)
    : options_(options) {}

std::string DeadlineFvdfScheduler::name() const { return "DEADLINE-FVDF"; }

bool DeadlineFvdfScheduler::starved(const fabric::Coflow& c) const {
  // Band-0 promotion guards best-effort work against a monopolizing band 1;
  // in fault fallback there is no band 1, and promotion would only perturb
  // the plain FVDF order the fallback exists to reproduce.
  return any_deadline_ && !seen_degraded_ &&
         c.priority >= options_.starvation_priority;
}

template <typename GammaNcFn>
DeadlineFvdfScheduler::SloRank DeadlineFvdfScheduler::classify(
    const fabric::Coflow& c, common::Seconds gamma_beta, bool has_beta,
    common::Seconds now, GammaNcFn&& gamma_nc) const {
  SloRank r;
  common::Seconds g = gamma_beta;
  bool uncompressed = false;  // g already holds the no-compression Gamma
  if (c.slo == fabric::SloClass::kDegraded) {
    // Admission degraded this coflow for its lifetime: compression never
    // re-enables, so rank it by its uncompressed Gamma.
    r.degrade = true;
    if (has_beta) g = gamma_nc();
    uncompressed = true;
  }
  // Fault fallback (seen_degraded_): from the first brownout of the run
  // onward, every coflow — deadline or not — takes the plain FVDF rank
  // below. Deadline machinery is counterproductive on a fault-prone
  // fabric: pacing stretches feasible coflows across slack that the next
  // fault erases, EDF lets an early-deadline elephant starve cheaper
  // deadlines SJF would meet, and band-3 parking starves transiently
  // infeasible coflows blind FVDF happily finishes. Admission, expiry
  // shedding and re-pricing stay active, and shedding only removes
  // already-missed volume FVDF would keep transmitting, so fallback met
  // fraction and goodput dominate blind FVDF's. A healthy run never sets
  // the flag and keeps the full band ladder.
  if (!seen_degraded_ && c.has_deadline() && now < c.deadline) {
    const common::Seconds slack = c.deadline - now;
    const double sf = options_.slack_factor;
    if (g <= sf * slack) {
      r.band = 1;
    } else if (!uncompressed && has_beta) {
      // Mini shedding ladder, round-local: the compressed estimate misses
      // the deadline (the CPU bill or a throttled compressor is too slow),
      // but shipping raw still fits — degrade before deferring.
      const common::Seconds gnc = gamma_nc();
      if (gnc <= sf * slack) {
        g = gnc;
        r.degrade = true;
        r.band = 1;
      } else {
        r.band = 3;
      }
    } else {
      r.band = 3;
    }
    r.gamma = g;
    r.primary = c.deadline;  // EDF within bands 1 and 3
    // Band 1 flips to 3 when the shrinking slack crosses Gamma; band 3
    // flips to 2 at expiry. Both instants re-derive from classify at
    // refresh time, so a conservative (early) horizon is always safe.
    r.horizon = r.band == 1 ? c.deadline - g / sf : c.deadline;
    return r;
  }
  // Best-effort, expired deadline, or fault fallback: plain FVDF order,
  // with the starvation promotion ahead of the deadline band once the
  // priority class says the coflow has waited long enough.
  r.band = starved(c) ? 0 : 2;
  r.gamma = g;
  r.primary = options_.base.online ? g / std::max(c.priority, 1.0) : g;
  return r;
}

fabric::Allocation DeadlineFvdfScheduler::schedule(const SchedContext& ctx) {
  ++round_;
  const std::uint64_t prev = round_ - 1;
  if (!seen_degraded_ && ctx.fabric->degraded()) {
    seen_degraded_ = true;
    // Entering fault fallback reclassifies every coflow, not just the ones
    // the capacity change dirtied: force the incremental path through its
    // session rebuild so no cached band survives the regime switch.
    bound_tracker_ = nullptr;
  }

  // Upgrade (Pseudocode 3), verbatim from FvdfScheduler: age only coflows
  // that got no service out of the previous decision, at coflow events.
  if (options_.base.upgrade && options_.base.online && ctx.coflow_event) {
    for (fabric::Coflow* c : ctx.coflows) {
      if (stamp_of(seen_round_, c->id) != prev ||
          stamp_of(served_round_, c->id) == prev)
        continue;
      if (c->priority < 1.0) c->priority = 1.0;
      c->priority *= core::kPriorityLogBase;
      if (ctx.tracker != nullptr) ctx.tracker->priority_changed(c->id);
      if (ctx.sink != nullptr) {
        obs::emit_instant(ctx.sink, obs::sim_ts(ctx.now), "priority_upgrade",
                          "dfvdf",
                          obs::Args()
                              .add("coflow", std::int64_t(c->id))
                              .add("priority", c->priority)
                              .str());
        ctx.sink->registry().counter("dfvdf.priority_upgrades").add();
      }
    }
  }

  const bool incremental = ctx.tracker != nullptr && ctx.sink == nullptr;
  fabric::Allocation alloc =
      incremental ? schedule_incremental(ctx) : schedule_full(ctx);

  for (const fabric::Coflow* c : ctx.coflows)
    set_stamp(seen_round_, c->id, round_);
  for (const fabric::Flow* f : ctx.flows)
    if (alloc.rate(f->id) > 0 || alloc.compress(f->id))
      set_stamp(served_round_, f->coflow, round_);
  return alloc;
}

fabric::Allocation DeadlineFvdfScheduler::schedule_full(
    const SchedContext& ctx) {
  const SchedContext* use = &ctx;
  SchedContext local;
  if (!options_.base.compression) {
    local = ctx;
    local.codec = nullptr;
    use = &local;
  }
  const SchedContext& sctx = *use;

  std::vector<core::CoflowEstimate> estimates = core::time_calculation(
      sctx, options_.base.online, options_.base.force_compression);

  any_deadline_ = false;
  for (const fabric::Coflow* c : sctx.coflows) {
    if (c->has_deadline() && c->slo != fabric::SloClass::kRejected) {
      any_deadline_ = true;
      break;
    }
  }

  core::EvalEnv nc_env = core::eval_env(sctx);
  nc_env.codec = nullptr;

  struct Ranked {
    core::CoflowEstimate* est;
    SloRank rank;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(estimates.size());
  for (core::CoflowEstimate& est : estimates) {
    if (est.coflow->slo == fabric::SloClass::kRejected) continue;
    bool has_beta = false;
    for (std::size_t i = 0; i < est.beta.size(); ++i) has_beta |= est.beta[i];
    auto gamma_nc = [&est, &nc_env]() {
      common::Seconds g = 0;
      for (const fabric::Flow* f : est.flows)
        g = std::max(g, core::evaluate_flow(nc_env, *f, false).fct);
      return g;
    };
    SloRank rank =
        classify(*est.coflow, est.gamma, has_beta, sctx.now, gamma_nc);
    if (rank.degrade)
      for (std::size_t i = 0; i < est.beta.size(); ++i) est.beta[i] = false;
    ranked.push_back(Ranked{&est, rank});
  }
  // (band, primary, arrival, id): with zero finite deadlines every entry is
  // band 2 with primary = adjusted Gamma, which is FVDF's exact sort.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.rank.band != b.rank.band)
                       return a.rank.band < b.rank.band;
                     if (a.rank.primary != b.rank.primary)
                       return a.rank.primary < b.rank.primary;
                     if (a.est->coflow->arrival != b.est->coflow->arrival)
                       return a.est->coflow->arrival < b.est->coflow->arrival;
                     return a.est->coflow->id < b.est->coflow->id;
                   });

  fabric::Allocation alloc;
  fabric::PortHeadroom headroom(*sctx.fabric);
  for (const Ranked& rk : ranked) {
    const core::CoflowEstimate& est = *rk.est;
    // Feasible deadline coflows (band 1) are paced, Varys-style: dispose
    // over the remaining slack (less one slice of safety margin) instead of
    // over Gamma, so a deadline coflow takes only the rate it needs and the
    // freed capacity serves later-deadline and best-effort work. EDF then
    // decides only who wins when the *needed* rates contend. The max with
    // Gamma keeps the ASAP floor once the slack tightens to the bound.
    common::Seconds dispose = std::max(rk.rank.gamma, sctx.slice);
    if (rk.rank.band == 1)
      dispose = std::max(dispose,
                         rk.est->coflow->deadline - sctx.now - sctx.slice);
    for (std::size_t i = 0; i < est.flows.size(); ++i) {
      const fabric::Flow* f = est.flows[i];
      if (est.beta[i]) {
        alloc.set_compress(f->id, true);
        alloc.set_rate(f->id, 0.0);
        continue;
      }
      const common::Bps want = f->volume() / dispose;
      const common::Bps r = std::min(want, headroom.available(*f));
      alloc.set_rate(f->id, r);
      headroom.consume(*f, r);
    }
  }
  if (options_.base.backfill) {
    for (const Ranked& rk : ranked) {
      const core::CoflowEstimate& est = *rk.est;
      for (std::size_t i = 0; i < est.flows.size(); ++i) {
        if (est.beta[i]) continue;
        const fabric::Flow* f = est.flows[i];
        const common::Bps extra = headroom.available(*f);
        if (extra <= 0) continue;
        alloc.set_rate(f->id, alloc.rate(f->id) + extra);
        headroom.consume(*f, extra);
      }
    }
  }
  return alloc;
}

fabric::Allocation DeadlineFvdfScheduler::schedule_incremental(
    const SchedContext& ctx) {
  const DirtyTracker& tracker = *ctx.tracker;
  core::EvalEnv env = core::eval_env(ctx);
  if (!options_.base.compression) env.codec = nullptr;
  core::EvalEnv nc_env = env;
  nc_env.codec = nullptr;

  if (bound_tracker_ != ctx.tracker || session_ != tracker.session()) {
    bound_tracker_ = ctx.tracker;
    session_ = tracker.session();
    for (RankIndex& idx : xmit_) idx.clear();
    cache_.clear();
    beta_.assign(tracker.flow_count(), 0);
    horizon_heap_ = {};
    horizon_round_.clear();
    deadline_resident_ = 0;
    need_global_rekey_ = false;
    // Pre-register the deadline residents so every refresh below classifies
    // against the final any_deadline_ value, whatever the coflow order.
    for (const fabric::Coflow* c : ctx.coflows) {
      if (!c->has_deadline() || c->slo == fabric::SloClass::kRejected)
        continue;
      if (c->id >= cache_.size()) cache_.resize(c->id + 1);
      cache_[c->id].counted = true;
      ++deadline_resident_;
    }
    any_deadline_ = deadline_resident_ > 0;
    for (const fabric::Coflow* c : ctx.coflows) {
      if (c->slo == fabric::SloClass::kRejected) continue;
      refresh_coflow(ctx, env, nc_env, *c);
    }
    need_global_rekey_ = false;  // rebuild classified everything coherently
  } else {
    any_deadline_ = deadline_resident_ > 0;
    for (const fabric::CoflowId id : tracker.dirty()) {
      const fabric::Coflow* c = tracker.coflow(id);
      if (c == nullptr) continue;
      if (c->completed() || c->slo == fabric::SloClass::kRejected) {
        drop_coflow(id);
        continue;
      }
      if (tracker.level(id) == DirtyLevel::kKeyOnly && id < cache_.size() &&
          cache_[id].valid) {
        rekey_coflow(*c);
      } else {
        refresh_coflow(ctx, env, nc_env, *c);
      }
    }
  }

  // Time-driven reclassifications: pop every horizon within one slice of
  // now (the pad absorbs FP drift in the stored horizon; classify is the
  // authority) and refresh, unless this round already refreshed the coflow.
  horizon_due_.clear();
  const common::Seconds due = ctx.now + ctx.slice;
  while (!horizon_heap_.empty() && horizon_heap_.top().first <= due) {
    const fabric::CoflowId id = horizon_heap_.top().second;
    horizon_heap_.pop();
    if (id >= cache_.size() || !cache_[id].valid) continue;
    if (stamp_of(horizon_round_, id) == round_) continue;
    set_stamp(horizon_round_, id, round_);
    horizon_due_.push_back(id);
  }
  for (const fabric::CoflowId id : horizon_due_) {
    const fabric::Coflow* c = tracker.coflow(id);
    if (c == nullptr || c->completed() ||
        c->slo == fabric::SloClass::kRejected) {
      drop_coflow(id);
      continue;
    }
    refresh_coflow(ctx, env, nc_env, *c);
  }

  if (need_global_rekey_) {
    rekey_all(ctx);
    need_global_rekey_ = false;
  }
  ctx.tracker->consume();

  // Volume disposal over the memoized lanes, walking bands 0..3; each band
  // index yields the batch path's (primary, arrival, id) sequence, and the
  // band-major walk reproduces its four-way sort exactly. Beta switches
  // install in one bulk copy; the walks stop at port exhaustion.
  fabric::Allocation alloc;
  alloc.reserve(tracker.flow_count());
  alloc.set_compress_all(beta_);
  fabric::PortHeadroom headroom(*ctx.fabric);
  bool more = true;
  for (int b = 0; b < kNumBands && more; ++b) {
    xmit_[b].for_each_while([&](fabric::CoflowId id) {
      const CachedCoflow& cc = cache_[id];
      // Band 1 is deadline-paced: the disposal horizon depends on `now`, so
      // the want is computed live at walk time (identical expression to the
      // batch path — cached wants would go stale between refreshes). Other
      // bands replay the memoized Gamma-paced wants.
      const bool live_want = b == 1;
      common::Seconds dispose = 0;
      if (live_want)
        dispose = std::max(std::max(cc.gamma, ctx.slice),
                           tracker.coflow(id)->deadline - ctx.now - ctx.slice);
      for (const Lane& l : cc.lanes) {
        if (l.beta) continue;
        const common::Bps want =
            live_want ? tracker.flow(l.id).volume() / dispose : l.want;
        const common::Bps r =
            std::min(want, headroom.available(l.src, l.dst));
        if (r > 0) {
          alloc.set_rate(l.id, r);
          headroom.consume(l.src, l.dst, r);
        }
      }
      more = !headroom.exhausted();
      return more;
    });
  }
  if (options_.base.backfill && !headroom.exhausted()) {
    more = true;
    for (int b = 0; b < kNumBands && more; ++b) {
      xmit_[b].for_each_while([&](fabric::CoflowId id) {
        const CachedCoflow& cc = cache_[id];
        for (const Lane& l : cc.lanes) {
          if (l.beta) continue;
          const common::Bps extra = headroom.available(l.src, l.dst);
          if (extra <= 0) continue;
          alloc.set_rate(l.id, alloc.rate(l.id) + extra);
          headroom.consume(l.src, l.dst, extra);
        }
        more = !headroom.exhausted();
        return more;
      });
    }
  }
  return alloc;
}

void DeadlineFvdfScheduler::refresh_coflow(const SchedContext& ctx,
                                           const core::EvalEnv& env,
                                           const core::EvalEnv& nc_env,
                                           const fabric::Coflow& c) {
  if (c.id >= cache_.size()) cache_.resize(c.id + 1);
  CachedCoflow& cc = cache_[c.id];
  for (const Lane& l : cc.lanes)
    if (l.beta) beta_[l.id] = 0;
  const std::uint8_t old_band = cc.band;
  const bool was_valid = cc.valid;
  cc.valid = true;
  cc.arrival = c.arrival;
  cc.gamma = 0;
  cc.has_xmit = false;
  cc.horizon = fabric::kNoDeadline;
  cc.lanes.clear();
  if (c.has_deadline() && !cc.counted) {
    cc.counted = true;
    if (++deadline_resident_ == 1) need_global_rekey_ = true;
    any_deadline_ = true;
  }
  set_stamp(horizon_round_, c.id, round_);

  const DirtyTracker& tracker = *ctx.tracker;
  common::Seconds gamma_beta = 0;
  bool has_beta = false;
  for (const fabric::FlowId fid : c.flows) {
    const fabric::Flow& f = tracker.flow(fid);
    if (f.done()) continue;
    const core::FlowEval ev =
        core::evaluate_flow(env, f, options_.base.force_compression);
    gamma_beta = std::max(gamma_beta, ev.fct);  // Eq. 8
    cc.lanes.push_back(Lane{fid, f.src, f.dst, ev.beta, 0.0});
    has_beta |= ev.beta;
  }
  if (cc.lanes.empty()) {
    if (was_valid) xmit_[old_band].erase(c.id);
    return;
  }
  // Same flow order as the batch path's est.flows (c.flows, done-skipped),
  // so Gamma_nc folds to the same bits on both paths.
  auto gamma_nc = [&c, &tracker, &nc_env]() {
    common::Seconds g = 0;
    for (const fabric::FlowId fid : c.flows) {
      const fabric::Flow& f = tracker.flow(fid);
      if (f.done()) continue;
      g = std::max(g, core::evaluate_flow(nc_env, f, false).fct);
    }
    return g;
  };
  const SloRank rank = classify(c, gamma_beta, has_beta, ctx.now, gamma_nc);
  cc.gamma = rank.gamma;
  cc.horizon = rank.horizon;
  if (rank.degrade)
    for (Lane& l : cc.lanes) l.beta = false;
  for (const Lane& l : cc.lanes) {
    if (l.beta) {
      if (l.id >= beta_.size()) beta_.resize(l.id + 1, 0);
      beta_[l.id] = 1;
    } else {
      cc.has_xmit = true;
    }
  }
  if (was_valid && old_band != rank.band) xmit_[old_band].erase(c.id);
  cc.band = rank.band;
  const common::Seconds g = std::max(cc.gamma, ctx.slice);
  for (Lane& l : cc.lanes)
    if (!l.beta) l.want = tracker.flow(l.id).volume() / g;
  install(c);
  if (cc.horizon < fabric::kNoDeadline)
    horizon_heap_.push({cc.horizon, c.id});
}

void DeadlineFvdfScheduler::rekey_coflow(const fabric::Coflow& c) {
  CachedCoflow& cc = cache_[c.id];
  if (!cc.valid || cc.lanes.empty()) return;
  if (cc.band == 0 || cc.band == 2) {
    const std::uint8_t band = starved(c) ? 0 : 2;
    if (band != cc.band) {
      xmit_[cc.band].erase(c.id);
      cc.band = band;
    }
  }
  // Bands 1/3 key on the deadline: a priority bump moves nothing.
  install(c);
}

void DeadlineFvdfScheduler::rekey_all(const SchedContext& ctx) {
  for (fabric::CoflowId id = 0; id < cache_.size(); ++id) {
    if (!cache_[id].valid) continue;
    const fabric::Coflow* c = ctx.tracker->coflow(id);
    if (c == nullptr) continue;
    rekey_coflow(*c);
  }
}

void DeadlineFvdfScheduler::install(const fabric::Coflow& c) {
  CachedCoflow& cc = cache_[c.id];
  double primary;
  if (cc.band == 1 || cc.band == 3) {
    primary = c.deadline;
  } else {
    primary =
        options_.base.online ? cc.gamma / std::max(c.priority, 1.0) : cc.gamma;
  }
  const CoflowRankKey key{primary, cc.arrival, c.id};
  if (cc.has_xmit)
    xmit_[cc.band].insert_or_update(c.id, key);
  else
    xmit_[cc.band].erase(c.id);
}

void DeadlineFvdfScheduler::drop_coflow(fabric::CoflowId id) {
  for (RankIndex& idx : xmit_) idx.erase(id);
  if (id < cache_.size()) {
    CachedCoflow& cc = cache_[id];
    for (const Lane& l : cc.lanes)
      if (l.beta) beta_[l.id] = 0;
    if (cc.counted) {
      cc.counted = false;
      if (--deadline_resident_ == 0) need_global_rekey_ = true;
      any_deadline_ = deadline_resident_ > 0;
    }
    cc.valid = false;
    cc.has_xmit = false;
    cc.lanes = {};  // free, not just clear: completed coflows linger
    cc.gamma = 0;
    cc.horizon = fabric::kNoDeadline;
  }
}

void DeadlineFvdfScheduler::save_state(recovery::StateWriter& w) const {
  w.u64(round_);
  w.u64(seen_round_.size());
  for (const std::uint64_t s : seen_round_) w.u64(s);
  w.u64(served_round_.size());
  for (const std::uint64_t s : served_round_) w.u64(s);
  w.u64(seen_degraded_ ? 1 : 0);
}

void DeadlineFvdfScheduler::restore_state(recovery::StateReader& r) {
  round_ = r.u64();
  seen_round_.resize(r.count("dfvdf seen stamps"));
  for (std::uint64_t& s : seen_round_) s = r.u64();
  served_round_.resize(r.count("dfvdf served stamps"));
  for (std::uint64_t& s : served_round_) s = r.u64();
  seen_degraded_ = r.u64() != 0;
  // Same contract as FvdfScheduler::restore_state: everything else is
  // session-keyed derived state, rebuilt on the first post-restore round.
  bound_tracker_ = nullptr;
  session_ = 0;
  for (RankIndex& idx : xmit_) idx.clear();
  cache_.clear();
  beta_.clear();
  horizon_heap_ = {};
  horizon_round_.clear();
  horizon_due_.clear();
  deadline_resident_ = 0;
  any_deadline_ = false;
  need_global_rekey_ = false;
}

std::unique_ptr<Scheduler> make_deadline_fvdf(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (key == "DEADLINE-FVDF" || key == "DFVDF")
    return std::make_unique<DeadlineFvdfScheduler>();
  throw std::out_of_range("make_deadline_fvdf: unknown variant " + name);
}

}  // namespace swallow::sched
