// Bottleneck-first primal-dual coflow ordering (Sincronia's BSSI, built on
// the Mastrolilli et al. concurrent-open-shop primal-dual the paper cites
// as [40]).
//
// The paper formulates offline coflow scheduling as a concurrent open shop
// (Section IV-A) and notes LP techniques exist; this scheduler implements
// the combinatorial 2-approximation: repeatedly take the most-bottlenecked
// port, place *last* the coflow with the smallest residual weight per unit
// of load on that port, discount the weights of the rest, and recurse.
// Flows are then served strict-priority in the resulting order (any
// work-conserving rate allocation preserves the approximation bound).
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class SincroniaScheduler final : public Scheduler {
 public:
  std::string name() const override { return "SINCRONIA"; }
  fabric::Allocation schedule(const SchedContext& ctx) override;

  /// The primal-dual permutation over the context's unfinished coflows,
  /// highest priority first. Exposed for tests.
  static std::vector<fabric::CoflowId> bssi_order(const SchedContext& ctx);
};

}  // namespace swallow::sched
