// Deadline-aware FVDF (DESIGN.md section 12).
//
// DCoflow-style feasibility pruning layered on the FVDF core: coflows are
// ranked into four bands walked in order —
//
//   band 0  starvation-promoted best-effort coflows (priority class grew
//           past `starvation_priority` while the deadline band monopolized
//           the fabric), FVDF order;
//   band 1  deadline coflows whose Eq. 3/7/8 completion estimate (including
//           compression CPU cost and current per-port capacity multipliers)
//           still fits the deadline — EDF order (earliest deadline first);
//   band 2  best-effort and expired-deadline coflows, plain FVDF order
//           (adjusted Gamma, arrival, id);
//   band 3  deferred deadline coflows: infeasible on the fabric as it
//           stands, parked on leftovers until capacity recovers or the
//           deadline expires — EDF order.
//
// Inside the feasibility check the scheduler walks its own mini shedding
// ladder: a deadline coflow whose compressed Gamma misses the deadline but
// whose *uncompressed* Gamma fits is degraded for the round (compression's
// CPU bill is priced out by the slack; beta forced 0), and only then
// deferred.
//
// Fault fallback: from the first scheduling round at which any link is
// degraded, the whole band ladder collapses — every coflow takes the plain
// FVDF rank in band 2 for the rest of the run. On a fault-prone fabric the
// deadline machinery is counterproductive (pacing stretches feasible
// coflows across slack the next fault erases; EDF lets an early-deadline
// elephant starve cheaper deadlines SJF would meet; band-3 parking starves
// transiently infeasible coflows blind FVDF happily finishes), while
// admission, expiry shedding and capacity-change re-pricing stay active
// and only remove already-missed volume FVDF would keep transmitting. A
// healthy run never enters fallback. With zero finite deadlines every
// coflow lands in band 2 with
// FVDF's exact rank key and the allocation is bit-for-bit identical to
// FvdfScheduler — the zero-deadline A/B in CI enforces this.
//
// Both scheduling paths exist, mirroring FvdfScheduler: a batch path
// (sort-all every round) and an incremental path over per-band rank indexes
// driven by the DirtyTracker, plus a deadline horizon heap that wakes a
// coflow for reclassification when time alone (not an event) is about to
// flip its band — band 1 -> 3 when the shrinking slack crosses Gamma, band
// 3 -> 2 at expiry. The two paths produce identical allocations (test_slo).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "core/fvdf.hpp"
#include "core/online.hpp"
#include "sched/dirty.hpp"
#include "sched/rank_index.hpp"
#include "sched/scheduler.hpp"

namespace swallow::sched {

struct DeadlineFvdfOptions {
  core::FvdfOptions base;
  /// A deadline coflow is feasible while Gamma <= slack_factor * slack.
  double slack_factor = 1.0;
  /// Priority class at which a starved band-2 coflow is promoted ahead of
  /// the deadline band. The default is kPriorityLogBase^12: twelve
  /// consecutive coflow events with zero service.
  double starvation_priority = 8.916100448256;
};

class DeadlineFvdfScheduler final : public Scheduler {
 public:
  explicit DeadlineFvdfScheduler(DeadlineFvdfOptions options = {});
  std::string name() const override;
  fabric::Allocation schedule(const SchedContext& ctx) override;

  /// Starvation stamps plus the sticky brownout flag, mirroring
  /// FvdfScheduler otherwise: every band index, horizon heap and Γ memo is
  /// session-keyed derived state, rebuilt from the restored coflow/flow
  /// pools on the first post-restore round.
  void save_state(recovery::StateWriter& w) const override;
  void restore_state(recovery::StateReader& r) override;

  const DeadlineFvdfOptions& options() const { return options_; }

 private:
  static constexpr int kNumBands = 4;

  /// One coflow's slot on the band ladder for the current instant.
  struct SloRank {
    std::uint8_t band = 2;
    double primary = 0;          ///< deadline (bands 1/3) or adjusted Gamma
    common::Seconds gamma = 0;   ///< effective Gamma (uncompressed if degraded)
    bool degrade = false;        ///< beta forced 0 this round
    /// Earliest instant at which time alone can change this
    /// classification; kNoDeadline when only events can.
    common::Seconds horizon = fabric::kNoDeadline;
  };
  /// `has_beta` short-circuits the uncompressed re-evaluation when no flow
  /// chose compression (Gamma_nc would equal Gamma bit-for-bit anyway).
  template <typename GammaNcFn>
  SloRank classify(const fabric::Coflow& c, common::Seconds gamma_beta,
                   bool has_beta, common::Seconds now,
                   GammaNcFn&& gamma_nc) const;
  bool starved(const fabric::Coflow& c) const;

  fabric::Allocation schedule_full(const SchedContext& ctx);
  fabric::Allocation schedule_incremental(const SchedContext& ctx);
  void refresh_coflow(const SchedContext& ctx, const core::EvalEnv& env,
                      const core::EvalEnv& nc_env, const fabric::Coflow& c);
  /// Re-derives the rank key (and the band-0/2 promotion) from cached
  /// Gamma; bands 1/3 key on the deadline, so priority-only dirt is a no-op.
  void rekey_coflow(const fabric::Coflow& c);
  /// Re-keys every cached coflow. Runs when the resident-deadline count
  /// crosses zero: band-0 eligibility is global, so every band-0/2 key can
  /// move. Gammas are untouched.
  void rekey_all(const SchedContext& ctx);
  void drop_coflow(fabric::CoflowId id);
  void install(const fabric::Coflow& c);

  DeadlineFvdfOptions options_;

  // --- starvation bookkeeping, identical to FvdfScheduler ---
  std::uint64_t round_ = 0;
  std::vector<std::uint64_t> seen_round_;
  std::vector<std::uint64_t> served_round_;

  // --- incremental state, valid for one tracker session ---
  struct Lane {
    fabric::FlowId id = 0;
    fabric::PortId src = 0;
    fabric::PortId dst = 0;
    bool beta = false;
    common::Bps want = 0;
  };
  struct CachedCoflow {
    common::Seconds gamma = 0;  ///< effective Gamma backing the rank key
    common::Seconds arrival = 0;
    common::Seconds horizon = fabric::kNoDeadline;
    std::uint8_t band = 2;
    bool valid = false;
    bool has_xmit = false;
    bool counted = false;  ///< contributes to deadline_resident_
    std::vector<Lane> lanes;
  };
  const DirtyTracker* bound_tracker_ = nullptr;
  std::uint64_t session_ = 0;
  std::vector<CachedCoflow> cache_;  ///< by dense coflow id
  /// Transmitting coflows per band, each ordered (primary, arrival, id);
  /// walking bands 0..3 reproduces the batch path's unique sort order.
  RankIndex xmit_[kNumBands];
  std::vector<unsigned char> beta_;  ///< by dense flow id
  /// Resident coflows carrying a finite deadline; band-0 promotion exists
  /// only while this is nonzero (the batch path's any_deadline scan).
  std::size_t deadline_resident_ = 0;
  /// Whether any resident coflow carries a finite deadline, as of the
  /// current classification point. The batch path scans ctx.coflows; the
  /// incremental path mirrors deadline_resident_ > 0.
  bool any_deadline_ = false;
  bool need_global_rekey_ = false;
  /// Sticky: the fabric has been degraded at some scheduling round of this
  /// run, and the scheduler is in fault fallback (plain FVDF order for
  /// everyone) from that round onward. Never set on a healthy run, so every
  /// healthy-fabric baseline is untouched. Checkpointed: fallback must
  /// survive a crash-restore into a currently-healthy window.
  bool seen_degraded_ = false;
  /// Lazy min-heap of (horizon, coflow): popped and refreshed when the
  /// horizon falls within one slice of now. Over-popping is safe — classify
  /// is authoritative — and refresh_coflow re-arms the next horizon, so a
  /// coflow is refreshed at most once per round (horizon_round_ stamps).
  std::priority_queue<std::pair<common::Seconds, fabric::CoflowId>,
                      std::vector<std::pair<common::Seconds, fabric::CoflowId>>,
                      std::greater<>>
      horizon_heap_;
  std::vector<std::uint64_t> horizon_round_;  ///< by dense coflow id
  std::vector<fabric::CoflowId> horizon_due_;  ///< scratch for the pop loop
};

/// Factory matching make_fvdf's shape. Recognized names: "DEADLINE-FVDF"
/// and the short alias "DFVDF". Throws std::out_of_range otherwise.
std::unique_ptr<Scheduler> make_deadline_fvdf(const std::string& name);

}  // namespace swallow::sched
