#include "sched/sebf.hpp"

#include <algorithm>
#include <unordered_map>

namespace swallow::sched {

namespace {

// Effective bottleneck over remaining volumes, against *current* port
// capacities. Zero-capacity ports carry no usable load (stalled flows are
// filtered by both callers), so the division is safe to skip. Shared,
// out-of-line: the full and incremental paths must run the *same*
// instantiation so FP contraction cannot differ between them — the
// byte-identity contract of the incremental scheduler depends on it.
[[gnu::noinline]] common::Seconds coflow_bottleneck_time(
    const std::vector<const fabric::Flow*>& flows,
    const fabric::Fabric& fabric, std::vector<common::Bytes>& in_load,
    std::vector<common::Bytes>& out_load) {
  std::fill(in_load.begin(), in_load.end(), 0.0);
  std::fill(out_load.begin(), out_load.end(), 0.0);
  for (const fabric::Flow* f : flows) {
    in_load[f->src] += f->volume();
    out_load[f->dst] += f->volume();
  }
  common::Seconds gamma = 0;
  for (fabric::PortId p = 0; p < fabric.num_ports(); ++p) {
    const common::Bps in_cap = fabric.ingress_capacity(p);
    const common::Bps out_cap = fabric.egress_capacity(p);
    if (in_cap > 0) gamma = std::max(gamma, in_load[p] / in_cap);
    if (out_cap > 0) gamma = std::max(gamma, out_load[p] / out_cap);
  }
  return gamma;
}

}  // namespace

fabric::Allocation SebfScheduler::schedule(const SchedContext& ctx) {
  if (ctx.tracker != nullptr && ctx.sink == nullptr)
    return schedule_incremental(ctx);
  return schedule_full(ctx);
}

fabric::Allocation SebfScheduler::schedule_full(const SchedContext& ctx) {
  struct Entry {
    fabric::Coflow* coflow = nullptr;
    std::vector<const fabric::Flow*> flows;
    common::Seconds gamma = 0;
  };

  // Stalled flows (failed src/dst link) take no allocation and contribute
  // no gamma: MADD over the reachable flows keeps the coflow progressing
  // while the dead port's share waits for recovery.
  const std::vector<const fabric::Flow*>& usable = transmittable_flows(ctx);

  // One pass over the flows instead of a per-coflow rescan (the old
  // coflows x flows nested loop dominated wide traces).
  std::vector<Entry> entries;
  entries.reserve(ctx.coflows.size());
  std::unordered_map<fabric::CoflowId, std::size_t> entry_of;
  entry_of.reserve(ctx.coflows.size());
  for (fabric::Coflow* c : ctx.coflows) {
    entry_of.emplace(c->id, entries.size());
    Entry e;
    e.coflow = c;
    entries.push_back(std::move(e));
  }
  for (const fabric::Flow* f : usable) {
    if (f->done()) continue;
    const auto it = entry_of.find(f->coflow);
    if (it != entry_of.end()) entries[it->second].flows.push_back(f);
  }
  entries.erase(std::remove_if(
                    entries.begin(), entries.end(),
                    [](const Entry& e) { return e.flows.empty(); }),
                entries.end());

  // Per-port scratch reused across entries.
  std::vector<common::Bytes> in_load(ctx.fabric->num_ports(), 0.0);
  std::vector<common::Bytes> out_load(ctx.fabric->num_ports(), 0.0);
  for (Entry& e : entries)
    e.gamma = coflow_bottleneck_time(e.flows, *ctx.fabric, in_load, out_load);

  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.gamma != b.gamma) return a.gamma < b.gamma;
                     if (a.coflow->arrival != b.coflow->arrival)
                       return a.coflow->arrival < b.coflow->arrival;
                     return a.coflow->id < b.coflow->id;
                   });

  fabric::Allocation alloc;
  fabric::PortHeadroom headroom(*ctx.fabric);
  for (const Entry& e : entries)
    if (e.gamma > 0) fabric::madd_into(alloc, e.flows, e.gamma, headroom);
  if (backfill_)
    for (const Entry& e : entries)
      fabric::backfill_into(alloc, e.flows, headroom);
  return alloc;
}

fabric::Allocation SebfScheduler::schedule_incremental(
    const SchedContext& ctx) {
  const DirtyTracker& tracker = *ctx.tracker;
  if (in_load_.size() != ctx.fabric->num_ports()) {
    in_load_.assign(ctx.fabric->num_ports(), 0.0);
    out_load_.assign(ctx.fabric->num_ports(), 0.0);
  }

  if (bound_tracker_ != ctx.tracker || session_ != tracker.session()) {
    bound_tracker_ = ctx.tracker;
    session_ = tracker.session();
    index_.clear();
    cache_.clear();
    for (const fabric::Coflow* c : ctx.coflows) refresh_coflow(ctx, *c);
  } else {
    // SEBF has no priority class, so key-only dirt (priority upgrades from
    // a shared engine feed) still just re-derives Gamma — recomputing a
    // clean coflow is bit-exact, only slightly wasteful.
    for (const fabric::CoflowId id : tracker.dirty()) {
      const fabric::Coflow* c = tracker.coflow(id);
      if (c == nullptr) continue;
      if (c->completed()) {
        index_.erase(id);
        if (id < cache_.size()) cache_[id] = Cached{};
        continue;
      }
      refresh_coflow(ctx, *c);
    }
  }
  ctx.tracker->consume();

  fabric::Allocation alloc;
  alloc.reserve(tracker.flow_count());
  fabric::PortHeadroom headroom(*ctx.fabric);
  // The full path keeps gamma == 0 entries (a coflow whose live ports all
  // browned out to capacity 0): they sort first, take no MADD rates, but do
  // participate in backfill. The index mirrors that exactly. Both walks
  // stop at port exhaustion — every grant past that point is exactly zero
  // (madd_into/backfill_into break out the same way on the full path).
  index_.for_each_while([&](fabric::CoflowId id) {
    const Cached& cc = cache_[id];
    if (cc.gamma > 0) fabric::madd_into(alloc, cc.flows, cc.gamma, headroom);
    return !headroom.exhausted();
  });
  if (backfill_ && !headroom.exhausted())
    index_.for_each_while([&](fabric::CoflowId id) {
      fabric::backfill_into(alloc, cache_[id].flows, headroom);
      return !headroom.exhausted();
    });
  return alloc;
}

void SebfScheduler::refresh_coflow(const SchedContext& ctx,
                                   const fabric::Coflow& c) {
  if (c.id >= cache_.size()) cache_.resize(c.id + 1);
  Cached& cc = cache_[c.id];
  cc.valid = true;
  cc.flows.clear();
  const DirtyTracker& tracker = *ctx.tracker;
  for (const fabric::FlowId fid : c.flows) {
    const fabric::Flow& f = tracker.flow(fid);
    if (f.done() || link_stalled(f, *ctx.fabric)) continue;
    cc.flows.push_back(&f);
  }
  if (cc.flows.empty()) {
    cc.gamma = 0;
    index_.erase(c.id);
    return;
  }
  cc.gamma = coflow_bottleneck_time(cc.flows, *ctx.fabric, in_load_, out_load_);
  index_.insert_or_update(c.id, CoflowRankKey{cc.gamma, c.arrival, c.id});
}

}  // namespace swallow::sched
