#include "sched/sebf.hpp"

#include <algorithm>
#include <unordered_map>

namespace swallow::sched {

fabric::Allocation SebfScheduler::schedule(const SchedContext& ctx) {
  struct Entry {
    fabric::Coflow* coflow = nullptr;
    std::vector<const fabric::Flow*> flows;
    common::Seconds gamma = 0;
  };

  // Stalled flows (failed src/dst link) take no allocation and contribute
  // no gamma: MADD over the reachable flows keeps the coflow progressing
  // while the dead port's share waits for recovery.
  const std::vector<const fabric::Flow*> usable = transmittable_flows(ctx);

  // One pass over the flows instead of a per-coflow rescan (the old
  // coflows x flows nested loop dominated wide traces).
  std::vector<Entry> entries;
  entries.reserve(ctx.coflows.size());
  std::unordered_map<fabric::CoflowId, std::size_t> entry_of;
  entry_of.reserve(ctx.coflows.size());
  for (fabric::Coflow* c : ctx.coflows) {
    entry_of.emplace(c->id, entries.size());
    Entry e;
    e.coflow = c;
    entries.push_back(std::move(e));
  }
  for (const fabric::Flow* f : usable) {
    if (f->done()) continue;
    const auto it = entry_of.find(f->coflow);
    if (it != entry_of.end()) entries[it->second].flows.push_back(f);
  }
  entries.erase(std::remove_if(
                    entries.begin(), entries.end(),
                    [](const Entry& e) { return e.flows.empty(); }),
                entries.end());

  // Effective bottleneck over remaining volumes, against *current* port
  // capacities. Zero-capacity ports carry no usable load (stalled flows
  // were filtered above), so the division is safe to skip. The per-port
  // scratch is reused across entries.
  std::vector<common::Bytes> in_load(ctx.fabric->num_ports(), 0.0);
  std::vector<common::Bytes> out_load(ctx.fabric->num_ports(), 0.0);
  for (Entry& e : entries) {
    std::fill(in_load.begin(), in_load.end(), 0.0);
    std::fill(out_load.begin(), out_load.end(), 0.0);
    for (const fabric::Flow* f : e.flows) {
      in_load[f->src] += f->volume();
      out_load[f->dst] += f->volume();
    }
    e.gamma = 0;
    for (fabric::PortId p = 0; p < ctx.fabric->num_ports(); ++p) {
      const common::Bps in_cap = ctx.fabric->ingress_capacity(p);
      const common::Bps out_cap = ctx.fabric->egress_capacity(p);
      if (in_cap > 0) e.gamma = std::max(e.gamma, in_load[p] / in_cap);
      if (out_cap > 0) e.gamma = std::max(e.gamma, out_load[p] / out_cap);
    }
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.gamma != b.gamma) return a.gamma < b.gamma;
                     if (a.coflow->arrival != b.coflow->arrival)
                       return a.coflow->arrival < b.coflow->arrival;
                     return a.coflow->id < b.coflow->id;
                   });

  fabric::Allocation alloc;
  fabric::PortHeadroom headroom(*ctx.fabric);
  for (const Entry& e : entries)
    if (e.gamma > 0) fabric::madd_into(alloc, e.flows, e.gamma, headroom);
  if (backfill_)
    for (const Entry& e : entries)
      fabric::backfill_into(alloc, e.flows, headroom);
  return alloc;
}

}  // namespace swallow::sched
