#include "sched/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "sched/aalo.hpp"
#include "sched/fifo.hpp"
#include "sched/pff.hpp"
#include "sched/pfp.hpp"
#include "sched/sebf.hpp"
#include "sched/sincronia.hpp"
#include "sched/size_order.hpp"
#include "sched/wss.hpp"

namespace swallow::sched {

std::unique_ptr<Scheduler> make_baseline(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (key == "FIFO") return std::make_unique<FifoScheduler>();
  if (key == "AALO") return std::make_unique<AaloScheduler>();
  if (key == "SINCRONIA" || key == "BSSI")
    return std::make_unique<SincroniaScheduler>();
  if (key == "PFF") return std::make_unique<PffScheduler>("PFF");
  if (key == "FAIR") return std::make_unique<PffScheduler>("FAIR");
  if (key == "WSS") return std::make_unique<WssScheduler>();
  if (key == "PFP") return std::make_unique<PfpScheduler>("PFP");
  if (key == "SRTF") return std::make_unique<PfpScheduler>("SRTF");
  if (key == "SEBF") return std::make_unique<SebfScheduler>();
  if (key == "SEBF-NOBACKFILL") return std::make_unique<SebfScheduler>(false);
  if (key == "SCF")
    return std::make_unique<SizeOrderScheduler>(CoflowSizeKey::kTotalBytes,
                                                "SCF");
  if (key == "NCF")
    return std::make_unique<SizeOrderScheduler>(CoflowSizeKey::kWidth, "NCF");
  if (key == "LCF")
    return std::make_unique<SizeOrderScheduler>(CoflowSizeKey::kMaxFlow,
                                                "LCF");
  throw std::out_of_range("make_baseline: unknown scheduler " + name +
                          " (known: " + known_scheduler_list() + ")");
}

std::vector<std::string> baseline_names() {
  return {"FIFO", "PFF",  "WSS", "PFP",       "SEBF",
          "SCF",  "NCF",  "LCF", "AALO",      "SINCRONIA"};
}

std::vector<std::string> core_scheduler_names() {
  return {"FVDF",          "FVDF-NC",        "FVDF-NOUPGRADE",
          "FVDF-NOBACKFILL", "FVDF-BLIND",   "DEADLINE-FVDF"};
}

std::string known_scheduler_list() {
  std::string out;
  for (const std::string& n : baseline_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  for (const std::string& n : core_scheduler_names()) {
    out += ", ";
    out += n;
  }
  return out;
}

}  // namespace swallow::sched
