#include "sched/sincronia.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

namespace swallow::sched {

std::vector<fabric::CoflowId> SincroniaScheduler::bssi_order(
    const SchedContext& ctx) {
  // Per-coflow load on each of the 2N one-directional ports
  // (0..N-1 ingress, N..2N-1 egress).
  const std::size_t num_ports = ctx.fabric->num_ports();
  struct Job {
    fabric::CoflowId id;
    std::vector<common::Bytes> load;
    double weight = 1.0;  // the dual-discounted residual weight
    bool placed = false;
  };
  std::unordered_map<fabric::CoflowId, std::size_t> index;
  std::vector<Job> jobs;
  for (const fabric::Flow* f : ctx.flows) {
    if (f->done()) continue;
    auto [it, inserted] = index.try_emplace(f->coflow, jobs.size());
    if (inserted) jobs.push_back({f->coflow,
                                  std::vector<common::Bytes>(2 * num_ports, 0),
                                  1.0, false});
    Job& job = jobs[it->second];
    job.load[f->src] += f->volume();
    job.load[num_ports + f->dst] += f->volume();
  }

  const std::size_t n = jobs.size();
  std::vector<fabric::CoflowId> order(n);
  std::size_t remaining = n;

  // Place positions n-1 .. 0, last first.
  while (remaining > 0) {
    // Most-bottlenecked port over unplaced jobs.
    std::size_t bottleneck = 0;
    common::Bytes worst = -1;
    for (std::size_t p = 0; p < 2 * num_ports; ++p) {
      common::Bytes load = 0;
      for (const Job& job : jobs)
        if (!job.placed) load += job.load[p];
      if (load > worst) {
        worst = load;
        bottleneck = p;
      }
    }

    // Job with the smallest residual weight per unit of bottleneck load
    // goes last (it hurts the least when everything queues behind it).
    std::size_t last = n;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      const Job& job = jobs[j];
      if (job.placed || job.load[bottleneck] <= 0) continue;
      const double ratio = job.weight / job.load[bottleneck];
      if (ratio < best_ratio) {
        best_ratio = ratio;
        last = j;
      }
    }
    if (last == n) {
      // No load anywhere (all remaining jobs are empty): place by id.
      for (std::size_t j = 0; j < n; ++j)
        if (!jobs[j].placed) {
          last = j;
          break;
        }
      best_ratio = 0;
    }

    // Dual discount: every unplaced job pays for its bottleneck load.
    const double theta = best_ratio;
    for (Job& job : jobs)
      if (!job.placed)
        job.weight = std::max(0.0, job.weight - theta * job.load[bottleneck]);

    jobs[last].placed = true;
    order[--remaining] = jobs[last].id;
  }
  return order;
}

fabric::Allocation SincroniaScheduler::schedule(const SchedContext& ctx) {
  return fabric::strict_priority(
      order_flows_by_coflow(ctx, bssi_order(ctx)), *ctx.fabric);
}

}  // namespace swallow::sched
