// Addressable ordered index over coflows: the "indexed priority structure"
// of the incremental scheduling core (DESIGN.md section 11).
//
// Every ranking the schedulers use — FVDF's adjusted Γ_C, SEBF's effective
// bottleneck time, Aalo's queue level — reduces to the same strict total
// order: (primary key, arrival, coflow id). RankIndex keeps coflows sorted
// under that order and supports O(log n) decrease/increase-key for the
// coflows a dirty set touches, plus ordered iteration for admission. A full
// sort and an ordered walk of this index therefore produce the *same
// sequence* (the id tiebreak makes the order unique), which is what lets
// the incremental paths reproduce the full-recompute allocations
// bit-for-bit.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "fabric/coflow.hpp"

namespace swallow::sched {

/// The shared ranking key. `primary` compares exactly like the schedulers'
/// historical sort comparators: infinities tie (a down-link coflow ranks by
/// arrival among its peers), and the id tiebreak makes the order total.
struct CoflowRankKey {
  double primary = 0;  ///< adjusted Γ_C / SEBF Γ / Aalo queue level
  common::Seconds arrival = 0;
  fabric::CoflowId id = 0;

  bool operator<(const CoflowRankKey& o) const {
    if (primary != o.primary) return primary < o.primary;
    if (arrival != o.arrival) return arrival < o.arrival;
    return id < o.id;
  }
};

/// Ordered map keyed on CoflowRankKey with a dense per-coflow handle table,
/// so update/erase by coflow id are O(log n) without a lookup pass. Coflow
/// ids must be dense (the engine's are): the handle table is a flat vector.
class RankIndex {
 public:
  bool contains(fabric::CoflowId id) const {
    return id < present_.size() && present_[id] != 0;
  }

  /// Inserts the coflow or moves it to its new rank (decrease/increase-key).
  /// A re-insert with an unchanged key is a no-op.
  void insert_or_update(fabric::CoflowId id, const CoflowRankKey& key) {
    if (id >= present_.size()) {
      present_.resize(id + 1, 0);
      where_.resize(id + 1);
    }
    if (present_[id] != 0) {
      const CoflowRankKey& cur = where_[id]->first;
      if (!(cur < key) && !(key < cur)) return;
      order_.erase(where_[id]);
    }
    where_[id] = order_.emplace(key, id).first;
    present_[id] = 1;
  }

  void erase(fabric::CoflowId id) {
    if (!contains(id)) return;
    order_.erase(where_[id]);
    present_[id] = 0;
  }

  std::size_t size() const { return order_.size(); }

  void clear() {
    order_.clear();
    where_.clear();
    present_.clear();
  }

  /// Walks coflow ids in ascending key order — the admission order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, id] : order_) fn(id);
  }

  /// Like for_each, but `fn` returns false to stop the walk. Greedy
  /// allocators break out the moment the fabric is exhausted instead of
  /// visiting every remaining coflow just to grant it zero.
  template <typename Fn>
  void for_each_while(Fn&& fn) const {
    for (const auto& [key, id] : order_)
      if (!fn(id)) return;
  }

 private:
  using Order = std::map<CoflowRankKey, fabric::CoflowId>;
  Order order_;
  std::vector<Order::iterator> where_;  ///< by coflow id, valid iff present_
  std::vector<char> present_;
};

}  // namespace swallow::sched
