// Per-Flow Fairness: max-min fair shares across all active flows, the
// behaviour of per-flow TCP fairness and of Spark's FAIR scheduler at the
// network level.
#pragma once

#include "sched/scheduler.hpp"

namespace swallow::sched {

class PffScheduler final : public Scheduler {
 public:
  explicit PffScheduler(std::string label = "PFF") : label_(std::move(label)) {}
  std::string name() const override { return label_; }
  fabric::Allocation schedule(const SchedContext& ctx) override;

 private:
  std::string label_;
};

}  // namespace swallow::sched
