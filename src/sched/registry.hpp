// Factory for the baseline schedulers by name. FVDF lives in core/ (it needs
// the codec and CPU substrates); sim/experiment.hpp exposes a combined
// factory covering everything.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace swallow::sched {

/// Known baseline names: FIFO, PFF, FAIR, WSS, PFP, SRTF, SEBF, SCF, NCF,
/// LCF, AALO (case-insensitive). FAIR is PFF relabelled, SRTF is PFP relabelled
/// (the paper uses both vocabularies for the flow-level and Spark contexts).
/// Throws std::out_of_range for unknown names.
std::unique_ptr<Scheduler> make_baseline(const std::string& name);

/// All distinct baseline names (aliases excluded).
std::vector<std::string> baseline_names();

/// The core-library scheduler names (FVDF variants and DEADLINE-FVDF).
/// Listed here so error messages and --help can enumerate every scheduler
/// without this library linking against swallow_core; construction stays in
/// core::make_fvdf.
std::vector<std::string> core_scheduler_names();

/// Every known scheduler name (baselines + core), comma-joined for error
/// messages and usage text.
std::string known_scheduler_list();

}  // namespace swallow::sched
