// Factory for the baseline schedulers by name. FVDF lives in core/ (it needs
// the codec and CPU substrates); sim/experiment.hpp exposes a combined
// factory covering everything.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace swallow::sched {

/// Known baseline names: FIFO, PFF, FAIR, WSS, PFP, SRTF, SEBF, SCF, NCF,
/// LCF, AALO (case-insensitive). FAIR is PFF relabelled, SRTF is PFP relabelled
/// (the paper uses both vocabularies for the flow-level and Spark contexts).
/// Throws std::out_of_range for unknown names.
std::unique_ptr<Scheduler> make_baseline(const std::string& name);

/// All distinct baseline names (aliases excluded).
std::vector<std::string> baseline_names();

}  // namespace swallow::sched
