// Scheduler interface shared by the baselines and FVDF.
//
// The simulation engine invokes schedule() at every preemption point (coflow
// arrival, flow/coflow completion, compression-finished) observed at a slice
// boundary. A scheduler returns a complete Allocation: per-flow transmit
// rates plus the per-flow compression switch. Only FVDF ever enables
// compression; the paper's baselines are pure transmission schedulers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codec/codec_model.hpp"
#include "cpu/cpu_model.hpp"
#include "fabric/allocation.hpp"
#include "fabric/coflow.hpp"
#include "fabric/fabric.hpp"
#include "recovery/state_io.hpp"

namespace swallow::obs {
class Sink;
}

namespace swallow::sched {

class DirtyTracker;

struct SchedContext {
  const fabric::Fabric* fabric = nullptr;
  const cpu::CpuProvider* cpu = nullptr;
  common::Seconds now = 0;
  common::Seconds slice = common::kDefaultSlice;
  /// Unfinished flows of arrived coflows.
  std::vector<const fabric::Flow*> flows;
  /// Arrived, uncompleted coflows. Mutable: FVDF updates priority classes.
  std::vector<fabric::Coflow*> coflows;
  /// Optional coflow grouping of `flows`: when non-empty it has
  /// coflows.size() + 1 entries and the unfinished flows of coflows[i] are
  /// exactly flows[coflow_flow_offsets[i], coflow_flow_offsets[i+1]).
  /// The simulation engine fills this for free (it already walks coflow by
  /// coflow), letting core::time_calculation skip its per-round hash-map
  /// rebuild. Hand-built contexts may leave it empty; consumers must fall
  /// back to grouping by Flow::coflow themselves.
  std::vector<std::size_t> coflow_flow_offsets;
  bool grouped() const {
    return coflow_flow_offsets.size() == coflows.size() + 1;
  }
  /// Resets the per-round vectors while keeping their capacity, so one
  /// context object can be reused across scheduling rounds.
  void clear_round() {
    flows.clear();
    coflows.clear();
    coflow_flow_offsets.clear();
  }
  /// Codec available for compression; nullptr disables compression globally.
  const codec::CodecModel* codec = nullptr;
  /// True when this preemption point is a coflow arrival or completion
  /// (the paper's Pseudocode 3 upgrades priority classes only then; flow
  /// completions and compression-finished events reschedule without aging).
  bool coflow_event = true;
  /// Observability sink for per-decision trace events (Γ_C, priority
  /// classes, β switches, starvation promotions). Null disables tracing at
  /// the cost of one branch per site.
  obs::Sink* sink = nullptr;
  /// Incremental-scheduling event feed (dirty.hpp), owned by the simulation
  /// engine. Null for hand-built contexts and the slice-stepped reference
  /// path, in which case schedulers run their historical full-recompute
  /// path. Schedulers also fall back to full recompute while `sink` is set
  /// (the traced path emits per-coflow estimates, which only the batch
  /// TimeCalculation produces); the unconsumed dirty set simply accumulates.
  DirtyTracker* tracker = nullptr;
  /// Scratch for transmittable_flows(): reused across rounds so the stall
  /// filter stops allocating once its capacity stabilizes.
  mutable std::vector<const fabric::Flow*> transmittable_scratch;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual fabric::Allocation schedule(const SchedContext& ctx) = 0;

  /// Checkpoint/restore hooks (DESIGN.md section 13). A scheduler saves
  /// exactly its *non-derivable* mutable state — for FVDF variants the
  /// starvation round stamps; session-keyed incremental caches (rank
  /// indexes, Γ memos, β tables, horizon heaps) are deliberately excluded:
  /// they are rebuilt from scratch when the scheduler sees the restored
  /// run's fresh DirtyTracker session, and the PR 6 invariant (incremental
  /// ≡ full recompute, bit for bit) makes the rebuild byte-equivalent to
  /// the warm caches. Stateless schedulers inherit these no-ops.
  /// restore_state must also drop any live incremental bindings so a
  /// reused instance cannot serve stale-session state.
  virtual void save_state(recovery::StateWriter& w) const { (void)w; }
  virtual void restore_state(recovery::StateReader& r) { (void)r; }
};

/// Flows sorted by a coflow-level key: every flow of the first coflow
/// precedes every flow of the second, flows within a coflow keep id order.
/// Shared by FIFO(coflow mode)/SEBF/SCF/NCF/LCF-style orderings.
std::vector<const fabric::Flow*> order_flows_by_coflow(
    const SchedContext& ctx, const std::vector<fabric::CoflowId>& coflow_order);
std::vector<const fabric::Flow*> order_flows_by_coflow(
    std::vector<const fabric::Flow*> flows,
    const std::vector<fabric::CoflowId>& coflow_order);

/// True when the flow cannot transmit at this instant: its source or
/// destination port has zero *current* capacity (failed link under the
/// degradation model). Such flows stall — they take no allocation slot and
/// accrue waiting time until the link recovers.
inline bool link_stalled(const fabric::Flow& flow,
                         const fabric::Fabric& fabric) {
  return fabric.ingress_capacity(flow.src) <= 0.0 ||
         fabric.egress_capacity(flow.dst) <= 0.0;
}

/// ctx.flows minus the stalled ones (order preserved). Every policy
/// allocates over this set, so rates are always priced against current
/// port capacities and a failed link never absorbs an allocation.
/// The result lives in ctx.transmittable_scratch and is reused across
/// rounds: it stays valid until the next transmittable_flows() call on the
/// same context, so callers that mutate the order must copy it first.
const std::vector<const fabric::Flow*>& transmittable_flows(
    const SchedContext& ctx);

}  // namespace swallow::sched
