// Experiment helpers shared by the benches, examples and integration tests:
// a combined scheduler factory (baselines + FVDF variants), a side-by-side
// comparison runner, and the paper's Fig. 3 motivation example.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace swallow::sim {

/// Baselines (sched::make_baseline names) plus FVDF variants
/// (core::make_fvdf names). Throws std::out_of_range on unknown names.
std::unique_ptr<sched::Scheduler> make_scheduler(const std::string& name);

struct ComparisonRow {
  std::string scheduler;
  Metrics metrics;
};

/// Runs the same trace under each named scheduler on the same environment.
std::vector<ComparisonRow> compare_schedulers(
    const workload::Trace& trace, const fabric::Fabric& fabric,
    const cpu::CpuProvider& cpu, const std::vector<std::string>& names,
    const SimConfig& config);

/// The paper's Fig. 3 motivation example: a 3x3 fabric carrying coflow C1
/// (flows of 4, 4 and 2 data units) and C2 (2 and 3 units) over three
/// contended egress channels, CPU idle during [0,1) and [3,3.5), and a
/// codec with R = 4 units/time and xi = 0.5. run() on this setup with
/// each scheduler reproduces the averages of Fig. 4 (see DESIGN.md 4.4).
struct MotivationSetup {
  workload::Trace trace;
  fabric::Fabric fabric;
  std::shared_ptr<cpu::CpuProvider> cpu;
  codec::CodecModel codec;
  SimConfig config;  ///< codec pointer already wired to `codec`

  Metrics run(const std::string& scheduler_name) const;
};

/// Builds the setup. The returned object owns everything; copy it per test.
std::unique_ptr<MotivationSetup> motivation_setup();

}  // namespace swallow::sim
