// The slotted fluid simulator.
//
// Time advances in slices of length `slice`. At each slice boundary the
// engine activates newly arrived coflows and, if any event happened since
// the last decision (arrival, flow completion, compression finished), asks
// the scheduler for a fresh Allocation. Within a slice each flow disposes
// volume per the paper's model: a flow with beta = 1 spends the slice
// compressing (raw -> compressed at R_eff = R * cpu_headroom, volume shrinks
// by the (1 - xi) factor); otherwise it transmits at its allocated rate,
// draining compressed bytes before raw bytes. Completion timestamps are
// computed exactly inside the slice; rescheduling still waits for the next
// boundary, which is precisely the staleness the paper's Fig. 7(c) studies.
#pragma once

#include <limits>

#include "codec/codec_model.hpp"
#include "core/admission.hpp"
#include "cpu/cpu_model.hpp"
#include "fabric/degradation.hpp"
#include "fabric/fabric.hpp"
#include "recovery/recovery.hpp"
#include "sched/scheduler.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace swallow::obs {
class Sink;
}

namespace swallow::sim {

/// How run_simulation advances time between preemption points.
enum class EngineMode {
  /// Fast-forward: between preemption points (arrival, flow/compression
  /// completion, capacity change, CPU-headroom change, utilization-sample
  /// boundary) rates and beta are constant, so the engine computes the
  /// earliest next event analytically and applies the intervening slices'
  /// progress in one closed-form bulk update. Metrics are byte-identical
  /// to kSliceStepped: both modes evaluate the same canonical per-segment
  /// formulas, the event mode just skips the interior slice boundaries
  /// where nothing can change (see DESIGN.md section 10).
  kEventDriven = 0,
  /// The historical reference stepper: one slice at a time. Kept for A/B
  /// parity testing and as a bisection aid.
  kSliceStepped = 1,
};

struct SimConfig {
  common::Seconds slice = common::kDefaultSlice;
  /// Time-advance strategy; output is byte-identical across modes.
  EngineMode engine_mode = EngineMode::kEventDriven;
  /// Feed the schedulers a dirty-set tracker so they re-rank only coflows
  /// whose inputs changed since the previous decision point (DESIGN.md
  /// section 11), instead of recomputing every Γ from scratch each round.
  /// Event-driven mode only; the slice-stepped reference always runs the
  /// full recompute, so mode parity (test_engine_parity) doubles as the
  /// byte-identity oracle for the incremental paths. Allocations — and
  /// therefore Metrics — are bit-for-bit identical either way; this knob
  /// exists for A/B benchmarking (bench_engine_scale) and bisection.
  bool incremental_sched = true;
  /// Codec model handed to the scheduler; nullptr disables compression.
  const codec::CodecModel* codec = nullptr;
  /// Abort the run if simulated time passes this point (safety net).
  common::Seconds max_time = 1e7;
  /// Validate every allocation against port capacities (throws on breach).
  bool validate_allocations = true;
  /// Sample fabric-wide egress utilization every this many seconds into
  /// Metrics::utilization (0 disables sampling).
  common::Seconds utilization_sample_period = 0;
  /// Charge the receiver for decompressing the compressed wire bytes (at
  /// the codec model's decompression speed, serialized after the last
  /// byte lands — a conservative, non-pipelined model). The paper omits
  /// this cost arguing decompression is much faster than compression;
  /// bench_ext_decompression quantifies how much that omission matters.
  bool model_decompression = false;
  /// Round completion timestamps up to the next slice boundary — the
  /// paper's slotted accounting, where a flow's bandwidth is held for the
  /// whole slice it finishes in ("waste of time slices", Section VI-A1).
  /// Fig. 7(c) is reproduced with this on; default off for exact metrics.
  bool quantize_completions = false;
  /// Dynamic fabric degradation (link failures, brownouts, flapping).
  /// Disabled by default (rate = 0): the engine then never copies or
  /// mutates port capacities and its output is byte-identical to the
  /// static-fabric path. When enabled, capacity-change instants become
  /// first-class preemption points: at the first slice boundary at or past
  /// each change the engine re-applies the schedule's port multipliers,
  /// re-runs the scheduler (re-evaluating every Eq. 3 compression gate and
  /// the Gamma ranks against *current* capacities) and re-allocates rates.
  /// Capacity changes count as coflow events, so Pseudocode 3's priority
  /// escalation ages coflows pinned behind a failed link.
  fabric::DegradationConfig degradation;
  /// Deadline/SLO admission control and overload shedding (DESIGN.md
  /// section 12). Disabled by default: the arrival path is then
  /// byte-identical to the pre-SLO engine — every coflow is admitted,
  /// nothing is shed, and Metrics::slo stays all-zero. When enabled, each
  /// arriving deadline coflow is priced (isolation bounds on the live
  /// fabric) and admitted / degraded-to-uncompressed / deferred / rejected;
  /// expired deadline coflows are shed at the first slice boundary past
  /// their deadline, which becomes a first-class preemption point.
  core::AdmissionConfig admission;
  /// Crash-fault tolerance (DESIGN.md section 13). Disabled by default
  /// (empty dir): the engine then touches no files and runs byte-identical
  /// to pre-recovery builds. With a dir set, every discrete event is
  /// appended to a write-ahead journal before it is applied, and every
  /// `checkpoint_every` scheduling rounds the engine publishes a
  /// checksummed snapshot at a post-schedule fold point — the restored
  /// run's final Metrics records are byte-identical to the uninterrupted
  /// run's (test_recovery + the CI crash-recovery cmp gate enforce this).
  recovery::RecoveryOptions recovery;
  /// Observability sink (obs::Tracer or custom). When set, the engine
  /// emits arrival/completion/preemption/scheduling-round trace events and
  /// wall-clock profiles of the schedule/advance phases, and the scheduler
  /// sees it via SchedContext::sink. Null (the default) keeps the hot path
  /// untouched apart from one predictable branch per site.
  obs::Sink* sink = nullptr;
};

/// Thrown when a scheduler makes no progress or violates capacities.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

Metrics run_simulation(const workload::Trace& trace,
                       const fabric::Fabric& fabric,
                       const cpu::CpuProvider& cpu, sched::Scheduler& sched,
                       const SimConfig& config = {});

}  // namespace swallow::sim
