#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "fabric/degradation.hpp"

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::sim {

namespace {

constexpr double kTiny = 1e-12;
/// Consecutive zero-progress slices tolerated before declaring deadlock.
constexpr int kMaxStalledSlices = 100000;

struct SimCoflow {
  fabric::Coflow state;
  fabric::CoflowId trace_id = 0;
  fabric::JobId job = 0;
  std::size_t unfinished = 0;
  common::Seconds isolation_bound = 0;  ///< CCT with the fabric to itself
};

}  // namespace

Metrics run_simulation(const workload::Trace& trace,
                       const fabric::Fabric& fabric,
                       const cpu::CpuProvider& cpu, sched::Scheduler& sched,
                       const SimConfig& config) {
  if (config.slice <= 0) throw std::invalid_argument("sim: non-positive slice");
  if (fabric.num_ports() < trace.num_ports)
    throw std::invalid_argument("sim: fabric smaller than trace needs");

  // ---- Dynamic fabric degradation. ----
  // `live` is the engine's mutable view of the fabric: nominal capacities
  // scaled by the degradation schedule's per-port multipliers. Schedulers,
  // the Eq. 3 compression gate and the feasibility check all read `live`,
  // so every decision is priced against what the ports can carry *now*.
  // With degradation off the multipliers stay at 1 and `live` is
  // numerically identical to the caller's fabric.
  const fabric::DegradationSchedule degrade(config.degradation,
                                            fabric.num_ports());
  const bool degrade_on = degrade.enabled();
  fabric::Fabric live = fabric;

  // ---- Build flow/coflow state (ids are dense indices). ----
  std::vector<fabric::Flow> flows;
  std::vector<SimCoflow> coflows;
  flows.reserve(trace.total_flows());
  coflows.reserve(trace.coflows.size());
  for (const auto& spec : trace.coflows) {
    SimCoflow sc;
    sc.trace_id = spec.id;
    sc.job = spec.job;
    sc.state.id = coflows.size();
    sc.state.arrival = spec.arrival;
    sc.state.priority = 1.0;
    sc.unfinished = spec.flows.size();
    for (const auto& fs : spec.flows) {
      fabric::Flow f;
      f.id = flows.size();
      f.coflow = sc.state.id;
      f.src = fs.src;
      f.dst = fs.dst;
      f.original_bytes = fs.bytes;
      f.raw_remaining = fs.bytes;
      f.arrival = spec.arrival + fs.arrival_offset;
      f.compressible = fs.compressible;
      f.compress_ratio = fs.compress_ratio;
      sc.state.flows.push_back(f.id);
      flows.push_back(f);
    }
    sc.isolation_bound = coflow_bottleneck(sc.state, flows, fabric);
    coflows.push_back(std::move(sc));
  }

  // Arrival order (trace is sorted, but be safe).
  std::vector<std::size_t> arrival_order(coflows.size());
  for (std::size_t i = 0; i < arrival_order.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return coflows[a].state.arrival < coflows[b].state.arrival;
                   });

  std::size_t next_arrival = 0;
  std::vector<std::size_t> active;  // indices of arrived, uncompleted coflows
  std::size_t completed = 0;

  // Dense per-flow decision tables refreshed after every schedule() call.
  std::vector<double> rate(flows.size(), 0.0);
  std::vector<char> compress(flows.size(), 0);

  common::Seconds t =
      coflows.empty() ? 0.0 : coflows[arrival_order[0]].state.arrival;
  // Utilization sampling: wire bytes moved in the current window over the
  // fabric's total egress capacity.
  double window_wire = 0;
  common::Seconds window_start = t;
  double egress_capacity_total = 0;
  for (fabric::PortId p = 0; p < fabric.num_ports(); ++p)
    egress_capacity_total += fabric.egress_capacity(p);
  std::vector<UtilizationSample> samples;
  auto maybe_sample = [&](common::Seconds now) {
    if (config.utilization_sample_period <= 0) return;
    while (now - window_start >= config.utilization_sample_period) {
      samples.push_back(
          {window_start + config.utilization_sample_period,
           window_wire / (egress_capacity_total *
                          config.utilization_sample_period)});
      window_wire = 0;
      window_start += config.utilization_sample_period;
    }
  };
  bool need_schedule = true;
  bool coflow_event = true;  // arrival/coflow-completion since last schedule
  int stalled = 0;
  obs::Sink* const sink = config.sink;
  DegradationStats dstats;
  // Flows that have been covered by at least one allocation: a beta change
  // before the first decision is not a "flip".
  std::vector<char> decided(flows.size(), 0);
  // Cold, out-of-line trace emitters: the Args machinery stays off the
  // slice/round hot paths, which see only a null test when no sink is set.
  struct ColdEmit {
    [[gnu::noinline, gnu::cold]] static void flow_complete(
        obs::Sink* sink, common::Seconds when, std::int64_t flow,
        std::int64_t coflow, common::Seconds fct) {
      obs::emit_instant(sink, obs::sim_ts(when), "flow_complete", "sim",
                        obs::Args()
                            .add("flow", flow)
                            .add("coflow", coflow)
                            .add("fct", fct)
                            .str());
    }
    [[gnu::noinline, gnu::cold]] static void coflow_complete(
        obs::Sink* sink, common::Seconds when, std::int64_t coflow,
        common::Seconds cct) {
      obs::emit_instant(sink, obs::sim_ts(when), "coflow_complete", "sim",
                        obs::Args()
                            .add("coflow", coflow)
                            .add("cct", cct)
                            .str());
      sink->registry().counter("sim.coflows_completed").add();
    }
    [[gnu::noinline, gnu::cold]] static void coflow_arrival(
        obs::Sink* sink, common::Seconds when, std::int64_t coflow,
        std::int64_t width) {
      obs::emit_instant(sink, obs::sim_ts(when), "coflow_arrival", "sim",
                        obs::Args()
                            .add("coflow", coflow)
                            .add("width", width)
                            .str());
      sink->registry().counter("sim.coflows_arrived").add();
    }
    [[gnu::noinline, gnu::cold]] static void schedule_round(
        obs::Sink* sink, common::Seconds now, std::uint64_t round,
        const std::string& scheduler, std::int64_t coflows,
        std::int64_t flows) {
      obs::emit_instant(sink, obs::sim_ts(now), "schedule_round", "sim",
                        obs::Args()
                            .add("round", round)
                            .add("scheduler", scheduler)
                            .add("coflows", coflows)
                            .add("flows", flows)
                            .str());
    }
    [[gnu::noinline, gnu::cold]] static void preemption(obs::Sink* sink,
                                                        common::Seconds now,
                                                        std::int64_t flow,
                                                        std::int64_t coflow) {
      obs::emit_instant(sink, obs::sim_ts(now), "preemption", "sim",
                        obs::Args()
                            .add("flow", flow)
                            .add("coflow", coflow)
                            .str());
    }
    [[gnu::noinline, gnu::cold]] static void capacity_change(
        obs::Sink* sink, common::Seconds when, std::int64_t port,
        double old_multiplier, double new_multiplier, double ingress_bps,
        double egress_bps) {
      obs::emit_instant(sink, obs::sim_ts(when), "capacity_change", "fabric",
                        obs::Args()
                            .add("port", port)
                            .add("old_multiplier", old_multiplier)
                            .add("multiplier", new_multiplier)
                            .add("ingress_bps", ingress_bps)
                            .add("egress_bps", egress_bps)
                            .str());
      if (new_multiplier == 0.0)
        obs::emit_instant(sink, obs::sim_ts(when), "link_down", "fabric",
                          obs::Args().add("port", port).str());
      else if (old_multiplier == 0.0)
        obs::emit_instant(sink, obs::sim_ts(when), "link_up", "fabric",
                          obs::Args().add("port", port).str());
    }
    [[gnu::noinline, gnu::cold]] static void compression_done(
        obs::Sink* sink, common::Seconds now, std::int64_t flow,
        std::int64_t coflow, common::Bytes compressed) {
      obs::emit_instant(sink, obs::sim_ts(now), "compression_done", "sim",
                        obs::Args()
                            .add("flow", flow)
                            .add("coflow", coflow)
                            .add("compressed_bytes", compressed)
                            .str());
    }
  };
  std::uint64_t round = 0;   // scheduling rounds, for trace correlation
  std::uint64_t slices = 0;  // advanced slices, reported via the registry

  // Samples the degradation schedule at `now` and applies any changed port
  // multipliers to the live fabric. Capacity changes are first-class
  // preemption points: they force a scheduling round and count as coflow
  // events so Pseudocode 3's priority escalation ages stalled coflows.
  auto apply_capacity = [&](common::Seconds now) {
    for (fabric::PortId p = 0; p < live.num_ports(); ++p) {
      const double m = degrade.multiplier_at(p, now);
      const double prev = live.port_multiplier(p);
      if (m == prev) continue;
      live.set_port_multiplier(p, m);
      ++dstats.capacity_changes;
      if (m == 0.0) ++dstats.link_failures;
      need_schedule = true;
      coflow_event = true;
      if (sink != nullptr) [[unlikely]]
        ColdEmit::capacity_change(sink, now, std::int64_t(p), prev, m,
                                  live.ingress_capacity(p),
                                  live.egress_capacity(p));
    }
  };
  common::Seconds next_capacity_change =
      std::numeric_limits<common::Seconds>::infinity();
  if (degrade_on) {
    apply_capacity(t);  // an episode may already cover the first arrival
    next_capacity_change = degrade.next_change_after(t);
  }

  // Marks a flow finished at `when`, updating its coflow when it was the
  // last one out.
  auto finalize_flow = [&](fabric::Flow& f, SimCoflow& sc,
                           common::Seconds when) {
    if (config.model_decompression && config.codec != nullptr &&
        f.sent_compressed > 0 && config.codec->decompress_speed > 0) {
      // Receiver-side decoding, serialized after the last byte arrives.
      when += f.sent_compressed / config.codec->decompress_speed;
    }
    if (config.quantize_completions) {
      // Slotted accounting: the flow occupies its slice to the boundary
      // (the paper's "waste of time slices", Section VI-A1).
      const double slots = std::ceil((when - 1e-12) / config.slice);
      when = std::max(when, slots * config.slice);
    }
    f.raw_remaining = 0;
    f.compressed_pending = 0;
    f.completion = when;
    need_schedule = true;
    if (sink != nullptr) [[unlikely]]
      ColdEmit::flow_complete(sink, when, std::int64_t(f.id),
                              std::int64_t(sc.trace_id), when - f.arrival);
    if (--sc.unfinished == 0) {
      sc.state.completion = when;
      for (const fabric::FlowId other : sc.state.flows)
        sc.state.completion =
            std::max(sc.state.completion, flows[other].completion);
      ++completed;
      coflow_event = true;
      if (sink != nullptr) [[unlikely]]
        ColdEmit::coflow_complete(sink, sc.state.completion,
                                  std::int64_t(sc.trace_id),
                                  sc.state.completion - sc.state.arrival);
    }
  };

  auto build_context = [&]() {
    sched::SchedContext ctx;
    ctx.fabric = &live;
    ctx.cpu = &cpu;
    ctx.now = t;
    ctx.slice = config.slice;
    ctx.codec = config.codec;
    ctx.sink = sink;
    for (const std::size_t ci : active) {
      ctx.coflows.push_back(&coflows[ci].state);
      for (const fabric::FlowId fid : coflows[ci].state.flows)
        if (!flows[fid].done()) ctx.flows.push_back(&flows[fid]);
    }
    return ctx;
  };

  while (completed < coflows.size()) {
    if (t > config.max_time) throw SimError("sim: exceeded max_time");

    // Apply capacity changes due by this boundary. Sampling the schedule's
    // absolute state at `t` also catches up after idle-time jumps.
    if (degrade_on && next_capacity_change <= t + kTiny) {
      apply_capacity(t);
      next_capacity_change = degrade.next_change_after(t);
    }

    // Activate arrivals due by now.
    while (next_arrival < arrival_order.size() &&
           coflows[arrival_order[next_arrival]].state.arrival <= t + kTiny) {
      active.push_back(arrival_order[next_arrival]);
      if (sink != nullptr) [[unlikely]] {
        const SimCoflow& sc = coflows[arrival_order[next_arrival]];
        ColdEmit::coflow_arrival(sink, sc.state.arrival,
                                 std::int64_t(sc.trace_id),
                                 std::int64_t(sc.state.flows.size()));
      }
      ++next_arrival;
      need_schedule = true;
      coflow_event = true;
    }

    if (active.empty()) {
      if (next_arrival >= arrival_order.size()) break;  // nothing left
      t = coflows[arrival_order[next_arrival]].state.arrival;
      continue;
    }

    if (need_schedule) {
      sched::SchedContext ctx = build_context();
      ctx.coflow_event = coflow_event;
      if (sink != nullptr) [[unlikely]]
        ColdEmit::schedule_round(sink, t, round, sched.name(),
                                 std::int64_t(ctx.coflows.size()),
                                 std::int64_t(ctx.flows.size()));
      fabric::Allocation alloc;
      {
        obs::ProfileScope scope(sink, "sim.schedule");
        alloc = sched.schedule(ctx);
      }
      if (config.validate_allocations && !feasible(alloc, ctx.flows, live))
        throw SimError("sim: scheduler " + sched.name() +
                       " violated port capacities");
      for (const fabric::Flow* f : ctx.flows) {
        const double new_rate = alloc.rate(f->id);
        const bool new_compress = alloc.compress(f->id);
        // A flow that loses its bandwidth mid-life (without switching to
        // compression) was preempted by a shorter coflow.
        if (sink != nullptr && rate[f->id] > kTiny && new_rate <= kTiny &&
            !new_compress) [[unlikely]]
          ColdEmit::preemption(sink, t, std::int64_t(f->id),
                               std::int64_t(coflows[f->coflow].trace_id));
        // An Eq. 3 decision that reversed while raw volume remains: the
        // bottleneck B moved across the R_eff * (1 - xi) threshold (both
        // directions happen under brownouts and recoveries).
        if (decided[f->id] && (compress[f->id] != 0) != new_compress &&
            f->raw_remaining > fabric::kVolumeEpsilon)
          ++dstats.compression_flips;
        decided[f->id] = 1;
        rate[f->id] = new_rate;
        compress[f->id] = new_compress ? 1 : 0;
      }
      need_schedule = false;
      coflow_event = false;
      ++round;
      if (sink != nullptr)
        sink->registry().counter("sim.schedule_rounds").add();
    }

    // ---- Advance one slice. ----
    // Histogram-only profile: per-slice B/E pairs would swamp the trace.
    obs::ProfileScope advance_scope(sink, "sim.advance", "prof",
                                    /*emit_events=*/false);
    double progress = 0.0;
    std::uint64_t stalled_this_slice = 0;
    const bool any_port_degraded = degrade_on && live.degraded();
    for (const std::size_t ci : active) {
      SimCoflow& sc = coflows[ci];
      for (const fabric::FlowId fid : sc.state.flows) {
        fabric::Flow& f = flows[fid];
        if (f.done() || f.completed()) continue;

        if (compress[fid] && config.codec != nullptr &&
            f.raw_remaining > fabric::kVolumeEpsilon) {
          const double r_eff =
              config.codec->compress_speed * cpu.headroom(f.src, t);
          if (r_eff > kTiny) {
            const common::Bytes consumed =
                std::min(f.raw_remaining, r_eff * config.slice);
            f.raw_remaining -= consumed;
            f.compressed_pending +=
                consumed * f.effective_ratio(config.codec->ratio);
            progress += consumed;
            if (f.raw_remaining <= fabric::kVolumeEpsilon) {
              f.raw_remaining = 0;
              need_schedule = true;  // compression finished: hand out a rate
              if (sink != nullptr) [[unlikely]]
                ColdEmit::compression_done(sink, t, std::int64_t(f.id),
                                           std::int64_t(sc.trace_id),
                                           f.compressed_pending);
              // Degenerate codec (ratio ~ 0) may remove the whole volume.
              if (f.done()) finalize_flow(f, sc, t + consumed / r_eff);
            }
          } else {
            // CPU went busy under us: reschedule so beta can be dropped.
            need_schedule = true;
          }
          continue;
        }

        const double r = rate[fid];
        if (r <= kTiny) {
          // Rate zero on a zero-capacity port is a stall, not starvation:
          // the flow accrues waiting time until the link recovers.
          if (any_port_degraded &&
              std::min(live.ingress_capacity(f.src),
                       live.egress_capacity(f.dst)) <= 0.0)
            ++stalled_this_slice;
          continue;
        }
        const common::Bytes budget = r * config.slice;
        const common::Bytes volume = f.volume();
        if (volume <= budget + kTiny) {
          // Completes inside this slice; timestamp is exact.
          f.sent += volume;
          f.sent_compressed += f.compressed_pending;
          progress += volume;
          window_wire += volume;
          finalize_flow(f, sc, t + volume / r);
        } else {
          const common::Bytes from_compressed =
              std::min(f.compressed_pending, budget);
          f.compressed_pending -= from_compressed;
          const common::Bytes from_raw =
              std::min(f.raw_remaining, budget - from_compressed);
          f.raw_remaining -= from_raw;
          f.sent += from_compressed + from_raw;
          f.sent_compressed += from_compressed;
          progress += from_compressed + from_raw;
          window_wire += from_compressed + from_raw;
          if (f.done()) {
            // Float dust left the residue below epsilon: finalize here so
            // the flow cannot linger done-but-uncompleted.
            f.sent += f.volume();
            finalize_flow(f, sc, t + volume / r);
          }
        }
      }
    }

    // Drop completed coflows from the active set.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t ci) {
                                  return coflows[ci].state.completed();
                                }),
                 active.end());

    dstats.stalled_flow_slices += stalled_this_slice;
    if (progress <= kTiny && !active.empty()) {
      if (stalled_this_slice > 0 && std::isfinite(next_capacity_change)) {
        // Every idle flow is pinned behind a failed link and the schedule
        // holds a future capacity change: a legitimate stall that must not
        // trip the deadlock detector (max_time still backstops the run).
        stalled = 0;
      } else if (++stalled > kMaxStalledSlices) {
        throw SimError("sim: no progress for too long (scheduler " +
                       sched.name() + " deadlocked?)");
      }
    } else {
      stalled = 0;
    }

    t += config.slice;
    ++slices;
    maybe_sample(t);
  }

  if (sink != nullptr) {
    sink->registry().gauge("sim.slices").set(static_cast<double>(slices));
    sink->registry().gauge("sim.sim_time_s").set(t);
    if (degrade_on) {
      sink->registry()
          .counter("sim.capacity_changes")
          .add(dstats.capacity_changes);
      sink->registry().counter("sim.link_failures").add(dstats.link_failures);
      sink->registry()
          .counter("sim.stalled_flow_slices")
          .add(dstats.stalled_flow_slices);
      sink->registry()
          .counter("sim.compression_flips")
          .add(dstats.compression_flips);
    }
  }

  // ---- Emit records. ----
  Metrics metrics;
  metrics.utilization = std::move(samples);
  metrics.degradation = dstats;
  metrics.flows.reserve(flows.size());
  for (const auto& f : flows) {
    FlowRecord rec;
    rec.id = f.id;
    rec.coflow = coflows[f.coflow].trace_id;
    rec.job = coflows[f.coflow].job;
    rec.original_bytes = f.original_bytes;
    rec.wire_bytes = f.sent;
    rec.arrival = f.arrival;
    rec.completion = f.completion;
    metrics.flows.push_back(rec);
  }
  metrics.coflows.reserve(coflows.size());
  for (const auto& sc : coflows) {
    CoflowRecord rec;
    rec.id = sc.trace_id;
    rec.job = sc.job;
    rec.width = sc.state.flows.size();
    rec.arrival = sc.state.arrival;
    rec.completion = sc.state.completion;
    rec.isolation_bound = sc.isolation_bound;
    for (const fabric::FlowId fid : sc.state.flows) {
      rec.original_bytes += flows[fid].original_bytes;
      rec.wire_bytes += flows[fid].sent;
    }
    metrics.coflows.push_back(rec);
  }
  return metrics;
}

}  // namespace swallow::sim
