#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "fabric/degradation.hpp"

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "recovery/journal.hpp"
#include "recovery/snapshot.hpp"
#include "sched/dirty.hpp"

namespace swallow::sim {

namespace {

constexpr double kTiny = 1e-12;
/// Consecutive zero-progress slices tolerated before declaring deadlock.
constexpr std::int64_t kMaxStalledSlices = 100000;
constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};

struct SimCoflow {
  fabric::Coflow state;
  fabric::CoflowId trace_id = 0;
  fabric::JobId job = 0;
  std::size_t unfinished = 0;
  common::Seconds isolation_bound = 0;  ///< CCT with the fabric to itself
  /// Running max over finalized flow completions, so the last flow out does
  /// not rescan the whole coflow.
  common::Seconds completion_max = fabric::kNeverCompleted;
};

/// Per-flow snapshot taken at a segment boundary. Between two consecutive
/// fold points (schedule round, CPU-headroom re-evaluation) every rate, beta
/// and capacity is constant, so a flow's pools after j whole slices are a
/// pure function of the snapshot and j — the canonical formulas below.
/// BOTH engine modes evaluate exactly these formulas at exactly the same
/// boundaries; the event-driven mode merely skips the interior boundaries
/// where nothing can happen. That is what makes Metrics byte-identical
/// across modes (DESIGN.md section 10).
struct FlowSeg {
  enum Mode : std::uint8_t { kIdle = 0, kTransmit = 1, kCompress = 2,
                             kBlocked = 3 };
  double d0 = 0;      ///< raw_remaining at segment start
  double D0 = 0;      ///< compressed_pending at segment start
  double sent0 = 0;   ///< sent at segment start
  double sentc0 = 0;  ///< sent_compressed at segment start
  double step = 0;    ///< bytes disposed per whole slice
  double rate = 0;    ///< transmit rate r, or effective compression speed
  double ratio = 0;   ///< effective compression ratio (compress mode)
  std::uint64_t event_j = kNoEvent;  ///< first slice index (1-based within
                                     ///< the segment) with a flow event
  std::uint64_t epoch = 0;           ///< valid iff == current segment epoch
  Mode mode = kIdle;
};

/// Smallest j >= 1 with pred(j), for a monotone predicate (geometric
/// expansion then binary search). Saturates at 2^62 when pred never holds
/// in range — callers treat that as "no event".
template <typename Pred>
std::uint64_t first_true(Pred&& pred) {
  constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
  std::uint64_t lo = 1, hi = 1;
  while (!pred(hi)) {
    lo = hi + 1;
    if (hi >= kCap) return kCap;
    hi *= 2;
  }
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) hi = mid;
    else lo = mid + 1;
  }
  return lo;
}

/// first_true seeded with an algebraic estimate of the boundary. The
/// estimate only has to be within a few ulps of rounding error — the local
/// walk lands on the exact same minimal j the blind search would find (the
/// minimum of a monotone predicate is unique), it just skips the ~60
/// predicate evaluations of the geometric expansion. Falls back to the
/// blind search when the guess is far off (degenerate inputs).
template <typename Pred>
std::uint64_t first_true_near(double guess, Pred&& pred) {
  constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
  if (!(guess >= 1)) guess = 1;
  if (guess >= 9.2e18) return first_true(pred);
  std::uint64_t j = static_cast<std::uint64_t>(guess);
  if (j < 1) j = 1;
  if (j > kCap) j = kCap;
  for (int i = 0; i < 8; ++i) {
    if (pred(j)) {
      if (j == 1 || !pred(j - 1)) return j;
      --j;
    } else {
      if (j >= kCap) return kCap;
      ++j;
      if (pred(j)) return j;
    }
  }
  return first_true(pred);
}

/// Canonical per-segment flow evolution (shared by both engine modes).
/// Transmit drains compressed-then-raw at `step` bytes per slice:
///   w(j)  = min(d0 + D0, j * step)           cumulative wire bytes
///   wc(j) = min(D0, w(j))                    ... of which compressed
///   d(j)  = d0 - min(d0, max(0, w(j) - D0))
/// Compression converts raw at `step` bytes per slice:
///   cc(j) = min(d0, j * step)                cumulative raw consumed
///   d(j)  = d0 - cc(j),  D(j) = D0 + cc(j) * ratio
/// All monotone in j, so event detection is a monotone-predicate search.
void materialize_flow(fabric::Flow& f, const FlowSeg& s, std::uint64_t j) {
  if (s.mode == FlowSeg::kTransmit) {
    const double w = std::min(s.d0 + s.D0, static_cast<double>(j) * s.step);
    const double wc = std::min(s.D0, w);
    f.raw_remaining = s.d0 - std::min(s.d0, std::max(0.0, w - s.D0));
    f.compressed_pending = s.D0 - wc;
    f.sent = s.sent0 + w;
    f.sent_compressed = s.sentc0 + wc;
  } else if (s.mode == FlowSeg::kCompress) {
    const double cc = std::min(s.d0, static_cast<double>(j) * s.step);
    f.raw_remaining = s.d0 - cc;
    f.compressed_pending = s.D0 + cc * s.ratio;
  }
  // kIdle/kBlocked flows do not move.
}

/// Section tags for the snapshot payload: a skewed or truncated payload
/// fails on a named section instead of silently misparsing.
constexpr std::uint32_t tag4(char a, char b, char c, char d) {
  return std::uint32_t(std::uint8_t(a)) |
         (std::uint32_t(std::uint8_t(b)) << 8) |
         (std::uint32_t(std::uint8_t(c)) << 16) |
         (std::uint32_t(std::uint8_t(d)) << 24);
}

void expect_tag(recovery::StateReader& r, std::uint32_t want,
                const char* name) {
  const std::size_t at = r.offset();
  if (r.u32() != want)
    throw recovery::RecoveryError(
        std::string("recovery: snapshot section tag mismatch, expected ") +
            name,
        at);
}

// Cold, out-of-line trace emitters: the Args machinery stays off the
// round hot paths, which see only a null test when no sink is set.
struct ColdEmit {
  [[gnu::noinline, gnu::cold]] static void flow_complete(
      obs::Sink* sink, common::Seconds when, std::int64_t flow,
      std::int64_t coflow, common::Seconds fct) {
    obs::emit_instant(sink, obs::sim_ts(when), "flow_complete", "sim",
                      obs::Args()
                          .add("flow", flow)
                          .add("coflow", coflow)
                          .add("fct", fct)
                          .str());
  }
  [[gnu::noinline, gnu::cold]] static void coflow_complete(
      obs::Sink* sink, common::Seconds when, std::int64_t coflow,
      common::Seconds cct) {
    obs::emit_instant(sink, obs::sim_ts(when), "coflow_complete", "sim",
                      obs::Args()
                          .add("coflow", coflow)
                          .add("cct", cct)
                          .str());
    sink->registry().counter("sim.coflows_completed").add();
  }
  [[gnu::noinline, gnu::cold]] static void coflow_arrival(
      obs::Sink* sink, common::Seconds when, std::int64_t coflow,
      std::int64_t width) {
    obs::emit_instant(sink, obs::sim_ts(when), "coflow_arrival", "sim",
                      obs::Args()
                          .add("coflow", coflow)
                          .add("width", width)
                          .str());
    sink->registry().counter("sim.coflows_arrived").add();
  }
  [[gnu::noinline, gnu::cold]] static void schedule_round(
      obs::Sink* sink, common::Seconds now, std::uint64_t round,
      const std::string& scheduler, std::int64_t coflows,
      std::int64_t flows) {
    obs::emit_instant(sink, obs::sim_ts(now), "schedule_round", "sim",
                      obs::Args()
                          .add("round", round)
                          .add("scheduler", scheduler)
                          .add("coflows", coflows)
                          .add("flows", flows)
                          .str());
  }
  [[gnu::noinline, gnu::cold]] static void preemption(obs::Sink* sink,
                                                      common::Seconds now,
                                                      std::int64_t flow,
                                                      std::int64_t coflow) {
    obs::emit_instant(sink, obs::sim_ts(now), "preemption", "sim",
                      obs::Args()
                          .add("flow", flow)
                          .add("coflow", coflow)
                          .str());
  }
  [[gnu::noinline, gnu::cold]] static void capacity_change(
      obs::Sink* sink, common::Seconds when, std::int64_t port,
      double old_multiplier, double new_multiplier, double ingress_bps,
      double egress_bps) {
    obs::emit_instant(sink, obs::sim_ts(when), "capacity_change", "fabric",
                      obs::Args()
                          .add("port", port)
                          .add("old_multiplier", old_multiplier)
                          .add("multiplier", new_multiplier)
                          .add("ingress_bps", ingress_bps)
                          .add("egress_bps", egress_bps)
                          .str());
    if (new_multiplier == 0.0)
      obs::emit_instant(sink, obs::sim_ts(when), "link_down", "fabric",
                        obs::Args().add("port", port).str());
    else if (old_multiplier == 0.0)
      obs::emit_instant(sink, obs::sim_ts(when), "link_up", "fabric",
                        obs::Args().add("port", port).str());
  }
  [[gnu::noinline, gnu::cold]] static void admission_verdict(
      obs::Sink* sink, common::Seconds when, std::int64_t coflow,
      const char* verdict, const char* reason, common::Seconds slack) {
    obs::emit_instant(sink, obs::sim_ts(when), "admission_verdict", "slo",
                      obs::Args()
                          .add("coflow", coflow)
                          .add("verdict", verdict)
                          .add("reason", reason)
                          .add("slack", slack)
                          .str());
  }
  [[gnu::noinline, gnu::cold]] static void coflow_rejected(
      obs::Sink* sink, common::Seconds when, std::int64_t coflow,
      bool midflight, common::Bytes shed) {
    obs::emit_instant(sink, obs::sim_ts(when),
                      midflight ? "coflow_shed" : "coflow_rejected", "slo",
                      obs::Args()
                          .add("coflow", coflow)
                          .add("shed_bytes", shed)
                          .str());
    sink->registry()
        .counter(midflight ? "slo.coflows_shed" : "slo.coflows_rejected")
        .add();
  }
  [[gnu::noinline, gnu::cold]] static void compression_done(
      obs::Sink* sink, common::Seconds now, std::int64_t flow,
      std::int64_t coflow, common::Bytes compressed) {
    obs::emit_instant(sink, obs::sim_ts(now), "compression_done", "sim",
                      obs::Args()
                          .add("flow", flow)
                          .add("coflow", coflow)
                          .add("compressed_bytes", compressed)
                          .str());
  }
  [[gnu::noinline, gnu::cold]] static void snapshot_written(
      obs::Sink* sink, common::Seconds when, std::uint64_t seq,
      std::int64_t bytes) {
    obs::emit_instant(sink, obs::sim_ts(when), "snapshot", "recovery",
                      obs::Args()
                          .add("seq", std::int64_t(seq))
                          .add("bytes", bytes)
                          .str());
    sink->registry().counter("recovery.snapshots").add();
  }
  [[gnu::noinline, gnu::cold]] static void restored(
      obs::Sink* sink, common::Seconds when, std::uint64_t seq,
      std::int64_t journal_suffix) {
    obs::emit_instant(sink, obs::sim_ts(when), "restore", "recovery",
                      obs::Args()
                          .add("seq", std::int64_t(seq))
                          .add("journal_suffix", journal_suffix)
                          .str());
    sink->registry().counter("recovery.restores").add();
    sink->registry()
        .gauge("recovery.journal_suffix")
        .set(static_cast<double>(journal_suffix));
  }
};

/// The engine, refactored from the historical single-function stepper into
/// a resumable object: every bit of run state is a member, so a checkpoint
/// is a flat serialization (save_state) and a restore re-enters the main
/// loop at the exact boundary the snapshot was cut at. Checkpoints happen
/// only at post-schedule fold points (segment settled, nothing pending),
/// where re-running the loop-top prefix is idempotent — that is what makes
/// the restored run's Metrics byte-identical to the uninterrupted run's
/// (DESIGN.md section 13).
class Engine {
 public:
  Engine(const workload::Trace& trace, const fabric::Fabric& fabric_in,
         const cpu::CpuProvider& cpu_in, sched::Scheduler& sched_in,
         const SimConfig& config_in)
      : fabric(fabric_in),
        cpu(cpu_in),
        sched(sched_in),
        config(config_in),
        event_mode(config_in.engine_mode == EngineMode::kEventDriven),
        degrade(config_in.degradation, fabric_in.num_ports()),
        degrade_on(degrade.enabled()),
        live(fabric_in),
        admit_on(config_in.admission.enabled),
        admission(config_in.admission, fabric_in),
        track(event_mode && config_in.incremental_sched),
        tracker(fabric_in.num_ports()),
        sink(config_in.sink) {
    // ---- Build flow/coflow state (ids are dense indices). ----
    flows.reserve(trace.total_flows());
    coflows.reserve(trace.coflows.size());
    for (const auto& spec : trace.coflows) {
      SimCoflow sc;
      sc.trace_id = spec.id;
      sc.job = spec.job;
      sc.state.id = coflows.size();
      sc.state.arrival = spec.arrival;
      sc.state.priority = 1.0;
      // Trace deadlines are relative to arrival; the engine works in
      // absolute simulated time from here on.
      sc.state.deadline = spec.has_deadline() ? spec.arrival + spec.deadline
                                              : fabric::kNoDeadline;
      sc.unfinished = spec.flows.size();
      for (const auto& fs : spec.flows) {
        fabric::Flow f;
        f.id = flows.size();
        f.coflow = sc.state.id;
        f.src = fs.src;
        f.dst = fs.dst;
        f.original_bytes = fs.bytes;
        f.raw_remaining = fs.bytes;
        f.arrival = spec.arrival + fs.arrival_offset;
        f.compressible = fs.compressible;
        f.compress_ratio = fs.compress_ratio;
        sc.state.flows.push_back(f.id);
        flows.push_back(f);
      }
      sc.isolation_bound = coflow_bottleneck(sc.state, flows, fabric);
      coflows.push_back(std::move(sc));
    }

    // Arrival order (trace is sorted, but be safe).
    arrival_order.resize(coflows.size());
    for (std::size_t i = 0; i < arrival_order.size(); ++i)
      arrival_order[i] = i;
    std::stable_sort(
        arrival_order.begin(), arrival_order.end(),
        [&](std::size_t a, std::size_t b) {
          return coflows[a].state.arrival < coflows[b].state.arrival;
        });

    // Dense per-flow decision tables refreshed after every schedule() call.
    rate.assign(flows.size(), 0.0);
    compress.assign(flows.size(), 0);
    // Flows that have been covered by at least one allocation: a beta
    // change before the first decision is not a "flip".
    decided.assign(flows.size(), 0);
    seg.assign(flows.size(), FlowSeg{});

    // ---- Incremental-scheduling event feed (DESIGN.md section 11). ----
    // flows is reserved up front, so the bound pointer stays valid for the
    // whole run (and across a snapshot restore, which only overwrites the
    // flows' mutable pools in place).
    if (track) tracker.bind_flows(flows.data(), flows.size());

    // ---- Segment state. ----
    // Time is always seg_base + j * slice (never accumulated), so both
    // modes land on bit-identical boundary timestamps.
    seg_base = coflows.empty() ? 0.0 : coflows[arrival_order[0]].state.arrival;
    window_start = seg_base;
    for (fabric::PortId p = 0; p < fabric.num_ports(); ++p)
      egress_capacity_total += fabric.egress_capacity(p);

    // Reusable scheduling context (clear_round() keeps the vectors'
    // capacity, so steady-state rounds do not reallocate).
    ctx.fabric = &live;
    ctx.cpu = &cpu;
    ctx.slice = config.slice;
    ctx.codec = config.codec;
    ctx.sink = sink;
    ctx.tracker = track ? &tracker : nullptr;
  }

  Metrics run();

 private:
  // Lazy min-heap of (absolute deadline, coflow index), maintained with
  // push_heap/pop_heap over a plain vector so the raw heap array
  // serializes verbatim into a snapshot. Entries whose coflow already
  // completed or was rejected are skipped at pop time.
  using ExpiryEntry = std::pair<common::Seconds, std::size_t>;

  common::Seconds slice_time(std::uint64_t j) const {
    return seg_base + static_cast<double>(j) * config.slice;
  }

  common::Seconds next_expiry() {
    while (!expiry.empty()) {
      const std::size_t ci = expiry.front().second;
      if (coflows[ci].state.completed() ||
          coflows[ci].state.slo == fabric::SloClass::kRejected) {
        std::pop_heap(expiry.begin(), expiry.end(),
                      std::greater<ExpiryEntry>{});
        expiry.pop_back();
        continue;
      }
      return expiry.front().first;
    }
    return std::numeric_limits<common::Seconds>::infinity();
  }

  void push_expiry(common::Seconds deadline, std::size_t ci) {
    expiry.emplace_back(deadline, ci);
    std::push_heap(expiry.begin(), expiry.end(), std::greater<ExpiryEntry>{});
  }

  // Samples the degradation schedule at `now` and applies any changed port
  // multipliers to the live fabric. Capacity changes are first-class
  // preemption points: they force a scheduling round and count as coflow
  // events so Pseudocode 3's priority escalation ages stalled coflows.
  void apply_capacity(common::Seconds now) {
    for (fabric::PortId p = 0; p < live.num_ports(); ++p) {
      const double m = degrade.multiplier_at(p, now);
      const double prev = live.port_multiplier(p);
      if (m == prev) continue;
      journal_event(recovery::JournalType::kCapacityChange, now, p, 0, m);
      live.set_port_multiplier(p, m);
      if (track) tracker.port_capacity_changed(p);
      ++dstats.capacity_changes;
      if (m == 0.0) ++dstats.link_failures;
      need_schedule = true;
      coflow_event = true;
      if (admit_on) reprice_due = true;
      if (sink != nullptr) [[unlikely]]
        ColdEmit::capacity_change(sink, now, std::int64_t(p), prev, m,
                                  live.ingress_capacity(p),
                                  live.egress_capacity(p));
    }
  }

  // Marks a flow finished at `when`, updating its coflow when it was the
  // last one out.
  void finalize_flow(fabric::Flow& f, SimCoflow& sc, common::Seconds when) {
    if (config.model_decompression && config.codec != nullptr &&
        f.sent_compressed > 0 && config.codec->decompress_speed > 0) {
      // Receiver-side decoding, serialized after the last byte arrives.
      when += f.sent_compressed / config.codec->decompress_speed;
    }
    if (config.quantize_completions) {
      // Slotted accounting: the flow occupies its slice to the boundary
      // (the paper's "waste of time slices", Section VI-A1).
      const double slots = std::ceil((when - 1e-12) / config.slice);
      when = std::max(when, slots * config.slice);
    }
    journal_event(recovery::JournalType::kFlowComplete, when, f.id,
                  sc.trace_id);
    f.raw_remaining = 0;
    f.compressed_pending = 0;
    f.completion = when;
    need_schedule = true;
    if (track) tracker.coflow_changed(f.coflow);
    if (sink != nullptr) [[unlikely]]
      ColdEmit::flow_complete(sink, when, std::int64_t(f.id),
                              std::int64_t(sc.trace_id), when - f.arrival);
    sc.completion_max = std::max(sc.completion_max, when);
    if (--sc.unfinished == 0) {
      journal_event(recovery::JournalType::kCoflowComplete, sc.completion_max,
                    sc.trace_id);
      sc.state.completion = sc.completion_max;
      ++completed;
      coflow_event = true;
      if (admit_on) admission.release(sc.state.id);
      if (sink != nullptr) [[unlikely]]
        ColdEmit::coflow_complete(sink, sc.state.completion,
                                  std::int64_t(sc.trace_id),
                                  sc.state.completion - sc.state.arrival);
    }
  }

  // Drops a coflow's remaining volume: called at arrival (verdict kReject,
  // before the coflow ever enters the active set) or mid-flight (deadline
  // expired under shed_expired — caller must have folded the running
  // segment first so no live snapshot resurrects the zeroed pools).
  // Completions stay kNeverCompleted, so every FCT/CCT aggregate skips the
  // shed records. Arrival-time rejections are not separately journaled —
  // they follow deterministically from the kAdmissionVerdict record.
  void mark_rejected(SimCoflow& sc, bool midflight, common::Seconds when) {
    if (midflight)
      journal_event(recovery::JournalType::kShed, when, sc.trace_id);
    common::Bytes shed = 0;
    for (const fabric::FlowId fid : sc.state.flows) {
      fabric::Flow& f = flows[fid];
      if (f.completed()) continue;
      shed += f.volume();
      f.raw_remaining = 0;
      f.compressed_pending = 0;
      rate[fid] = 0;
      compress[fid] = 0;
    }
    sstats.shed_bytes += shed;
    sc.state.slo = fabric::SloClass::kRejected;
    ++rejected;
    if (midflight) {
      ++sstats.shed_midflight;
      // The scheduler sees a coflow whose flows are all done and drops it
      // from its memoized rank state.
      if (track) tracker.coflow_changed(sc.state.id);
    } else {
      ++sstats.rejected;
    }
    admission.release(sc.state.id);
    if (sink != nullptr) [[unlikely]]
      ColdEmit::coflow_rejected(sink, when, std::int64_t(sc.trace_id),
                                midflight, shed);
  }

  // Writes every live snapshot member back into its flow's pools at the
  // current boundary. Fold points are mode-independent (schedule rounds and
  // CPU-headroom re-evaluations), which keeps the FP evaluation order — and
  // therefore every emitted metric — identical across engine modes.
  void materialize_segment() {
    for (const fabric::FlowId fid : seg_flows) {
      FlowSeg& s = seg[fid];
      if (s.epoch != seg_epoch) continue;  // settled by an event
      fabric::Flow& f = flows[fid];
      if (!f.completed()) materialize_flow(f, s, seg_j);
      s.epoch = 0;
    }
    seg_valid = false;
  }

  // Cumulative wire bytes over all flows at the current boundary, without
  // materializing (canonical formulas for live snapshot members). Flow-id
  // order fixes the FP summation order across modes.
  double cumulative_sent() const {
    double total = 0;
    for (const fabric::Flow& f : flows) {
      const FlowSeg& s = seg[f.id];
      if (seg_valid && s.epoch == seg_epoch && !f.completed() &&
          s.mode == FlowSeg::kTransmit)
        total += s.sent0 + std::min(s.d0 + s.D0,
                                    static_cast<double>(seg_j) * s.step);
      else
        total += f.sent;
    }
    return total;
  }

  // Settles every utilization window that closed by `now`. Closed-form: the
  // first window takes all bytes moved since the last flush, later windows
  // (idle stretches) are zero — no per-period catch-up loop.
  void maybe_sample(common::Seconds now) {
    if (config.utilization_sample_period <= 0) return;
    const common::Seconds p = config.utilization_sample_period;
    if (now - window_start < p) return;
    const double sent_total = cumulative_sent();
    std::uint64_t n = static_cast<std::uint64_t>((now - window_start) / p);
    while (n > 0 &&
           now - (window_start + static_cast<double>(n - 1) * p) < p)
      --n;
    while (now - (window_start + static_cast<double>(n) * p) >= p) ++n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double wire = i == 0 ? sent_total - window_sent_base : 0.0;
      samples.push_back({window_start + static_cast<double>(i + 1) * p,
                         wire / (egress_capacity_total * p)});
    }
    window_start += static_cast<double>(n) * p;
    window_sent_base = sent_total;
  }

  // Re-snapshots every unfinished flow of every active coflow at the
  // current boundary: decision tables -> per-flow segment constants plus
  // the segment aggregates (earliest event, interior-slice progress, stall
  // census, CPU-headroom promise).
  void snapshot_segment() {
    ++seg_epoch;
    seg_flows.clear();
    seg_min_event_j = kNoEvent;
    seg_progress_step = 0;
    seg_stall_count = 0;
    seg_cpu_T = std::numeric_limits<common::Seconds>::infinity();
    seg_has_blocked = false;
    const bool any_port_degraded = degrade_on && live.degraded();
    for (const std::size_t ci : active) {
      for (const fabric::FlowId fid : coflows[ci].state.flows) {
        fabric::Flow& f = flows[fid];
        if (f.done() || f.completed()) continue;
        FlowSeg& s = seg[fid];
        s.d0 = f.raw_remaining;
        s.D0 = f.compressed_pending;
        s.sent0 = f.sent;
        s.sentc0 = f.sent_compressed;
        s.event_j = kNoEvent;
        s.epoch = seg_epoch;
        if (compress[fid] && config.codec != nullptr &&
            s.d0 > fabric::kVolumeEpsilon) {
          const double r_eff =
              config.codec->compress_speed * cpu.headroom(f.src, seg_base);
          if (r_eff > kTiny) {
            s.mode = FlowSeg::kCompress;
            s.rate = r_eff;
            s.step = r_eff * config.slice;
            s.ratio = f.effective_ratio(config.codec->ratio);
            const double d0 = s.d0, cstep = s.step;
            s.event_j = first_true_near(
                (d0 - fabric::kVolumeEpsilon) / cstep + 1.0,
                [d0, cstep](std::uint64_t j) {
              return d0 - std::min(d0, static_cast<double>(j) * cstep) <=
                     fabric::kVolumeEpsilon;
            });
            seg_progress_step += s.step;
            seg_cpu_T = std::min(
                seg_cpu_T, cpu.headroom_constant_until(f.src, seg_base));
          } else {
            // CPU busy under an assigned beta: resample every slice so the
            // scheduler can drop the switch (historical behavior).
            s.mode = FlowSeg::kBlocked;
            s.rate = 0;
            s.step = 0;
            seg_has_blocked = true;
          }
        } else if (rate[fid] > kTiny) {
          s.mode = FlowSeg::kTransmit;
          s.rate = rate[fid];
          s.step = rate[fid] * config.slice;
          const double V0 = s.d0 + s.D0, step = s.step;
          s.event_j = first_true_near(V0 / step, [V0, step](std::uint64_t j) {
            const double v_prev =
                V0 - std::min(V0, static_cast<double>(j - 1) * step);
            const double v_now =
                V0 - std::min(V0, static_cast<double>(j) * step);
            return v_prev <= step + kTiny ||
                   v_now <= fabric::kVolumeEpsilon;
          });
          seg_progress_step += s.step;
        } else {
          s.mode = FlowSeg::kIdle;
          s.rate = 0;
          s.step = 0;
          // Rate zero on a zero-capacity port is a stall, not starvation:
          // the flow accrues waiting time until the link recovers.
          if (any_port_degraded &&
              std::min(live.ingress_capacity(f.src),
                       live.egress_capacity(f.dst)) <= 0.0)
            ++seg_stall_count;
        }
        seg_flows.push_back(fid);
        seg_min_event_j = std::min(seg_min_event_j, s.event_j);
      }
    }
    seg_valid = true;
  }

  void build_context() {
    ctx.clear_round();
    ctx.now = slice_time(seg_j);
    ctx.coflows.reserve(active.size());
    ctx.coflow_flow_offsets.reserve(active.size() + 1);
    for (const std::size_t ci : active) {
      ctx.coflows.push_back(&coflows[ci].state);
      ctx.coflow_flow_offsets.push_back(ctx.flows.size());
      for (const fabric::FlowId fid : coflows[ci].state.flows)
        if (!flows[fid].done()) ctx.flows.push_back(&flows[fid]);
    }
    ctx.coflow_flow_offsets.push_back(ctx.flows.size());
  }

  // ---- Crash-fault tolerance (DESIGN.md section 13). ----
  void setup_recovery();
  std::uint64_t compute_fingerprint() const;
  void journal_event(recovery::JournalType type, common::Seconds time,
                     std::uint64_t a, std::uint64_t b = 0, double x = 0.0);
  [[noreturn]] void do_crash(const std::string& where);
  void checkpoint(common::Seconds t);
  void save_state(recovery::StateWriter& w) const;
  void restore_state(recovery::StateReader& r);

  // ---- Immutable run inputs. ----
  const fabric::Fabric& fabric;
  const cpu::CpuProvider& cpu;
  sched::Scheduler& sched;
  const SimConfig& config;
  const bool event_mode;
  const fabric::DegradationSchedule degrade;
  const bool degrade_on;
  // `live` is the engine's mutable view of the fabric: nominal capacities
  // scaled by the degradation schedule's per-port multipliers. Schedulers,
  // the Eq. 3 compression gate and the feasibility check all read `live`,
  // so every decision is priced against what the ports can carry *now*.
  fabric::Fabric live;
  const bool admit_on;
  core::AdmissionController admission;
  const bool track;
  sched::DirtyTracker tracker;
  obs::Sink* const sink;

  // ---- Run state (everything save_state serializes or rederives). ----
  std::vector<fabric::Flow> flows;
  std::vector<SimCoflow> coflows;
  std::vector<std::size_t> arrival_order;
  std::size_t next_arrival = 0;
  std::vector<std::size_t> active;  // indices of arrived, uncompleted coflows
  std::size_t completed = 0;
  std::size_t rejected = 0;  // coflows dropped by the SLO admission layer
  std::vector<double> rate;
  std::vector<char> compress;
  SloStats sstats;
  std::vector<ExpiryEntry> expiry;

  common::Seconds seg_base = 0;
  std::uint64_t seg_j = 0;
  bool seg_valid = false;
  std::uint64_t seg_epoch = 0;
  std::vector<FlowSeg> seg;
  std::vector<fabric::FlowId> seg_flows;  // snapshot members, in walk order
  std::uint64_t seg_min_event_j = kNoEvent;
  double seg_progress_step = 0;       // bytes disposed per interior slice
  std::uint64_t seg_stall_count = 0;  // flows pinned on a failed link
  common::Seconds seg_cpu_T = std::numeric_limits<common::Seconds>::infinity();
  bool seg_has_blocked = false;  // compress flow with no CPU: resample ASAP

  common::Seconds window_start = 0;
  double window_sent_base = 0;
  double egress_capacity_total = 0;
  std::vector<UtilizationSample> samples;

  bool need_schedule = true;
  bool coflow_event = true;  // arrival/coflow-completion since last schedule
  // A capacity change landed since the last boundary: re-price admitted
  // deadline commitments against the fabric as it now stands. Consumed
  // before the next schedule round of the same iteration (and before any
  // checkpoint), so it never needs to be part of snapshot state.
  bool reprice_due = false;
  std::int64_t stalled = 0;
  DegradationStats dstats;
  std::vector<char> decided;
  std::uint64_t round = 0;   // scheduling rounds, for trace correlation
  std::uint64_t slices = 0;  // advanced slices, reported via the registry
  common::Seconds next_capacity_change =
      std::numeric_limits<common::Seconds>::infinity();
  sched::SchedContext ctx;

  // ---- Recovery state (process-local, never serialized). ----
  recovery::JournalWriter journal_;
  std::string journal_path_;
  /// Journal suffix a restored run verifies its regenerated events against.
  std::deque<recovery::JournalRecord> verify_;
  std::uint64_t journal_seq_ = 0;
  std::uint64_t event_count_ = 0;    // journaled events this *process*
  std::uint64_t snap_attempts_ = 0;  // snapshot writes this *process*
  std::uint64_t fingerprint_ = 0;
  std::uint64_t ckpt_every_ = 0;
  std::uint64_t restored_seq_ = 0;
  bool journal_on_ = false;
  bool restored_ = false;
  const recovery::CrashPlan* crash_ = nullptr;
};

// ---- Recovery plumbing. ----

std::uint64_t Engine::compute_fingerprint() const {
  recovery::Fingerprint fp;
  fp.mix(std::string("swallow.sim.v1"));
  fp.mix(sched.name());
  fp.mix(config.slice);
  fp.mix(std::uint64_t(event_mode));
  fp.mix(std::uint64_t(config.incremental_sched));
  fp.mix(std::uint64_t(config.codec != nullptr));
  if (config.codec != nullptr) {
    fp.mix(config.codec->name);
    fp.mix(config.codec->compress_speed);
    fp.mix(config.codec->decompress_speed);
    fp.mix(config.codec->ratio);
  }
  fp.mix(config.max_time);
  fp.mix(std::uint64_t(config.quantize_completions));
  fp.mix(std::uint64_t(config.model_decompression));
  fp.mix(config.utilization_sample_period);
  const fabric::DegradationConfig& dg = config.degradation;
  fp.mix(dg.rate);
  fp.mix(dg.seed);
  fp.mix(dg.epoch);
  fp.mix(dg.min_duration);
  fp.mix(dg.max_duration);
  fp.mix(dg.failure_fraction);
  fp.mix(dg.flap_fraction);
  fp.mix(dg.brownout_floor);
  fp.mix(dg.brownout_ceiling);
  fp.mix(dg.flap_half_period);
  const core::AdmissionConfig& ad = config.admission;
  fp.mix(std::uint64_t(ad.enabled));
  fp.mix(ad.reject_margin);
  fp.mix(ad.max_slo_share);
  fp.mix(std::uint64_t(ad.shed_expired));
  fp.mix(std::uint64_t(fabric.num_ports()));
  for (fabric::PortId p = 0; p < fabric.num_ports(); ++p) {
    fp.mix(fabric.nominal_ingress_capacity(p));
    fp.mix(fabric.nominal_egress_capacity(p));
  }
  fp.mix(std::uint64_t(coflows.size()));
  fp.mix(std::uint64_t(flows.size()));
  for (const SimCoflow& sc : coflows) {
    fp.mix(sc.trace_id);
    fp.mix(sc.job);
    fp.mix(sc.state.arrival);
    fp.mix(sc.state.deadline);
    fp.mix(std::uint64_t(sc.state.flows.size()));
  }
  for (const fabric::Flow& f : flows) {
    fp.mix(std::uint64_t(f.src));
    fp.mix(std::uint64_t(f.dst));
    fp.mix(f.original_bytes);
    fp.mix(f.arrival);
    fp.mix(std::uint64_t(f.compressible));
    fp.mix(f.compress_ratio);
  }
  return fp.value();
}

void Engine::setup_recovery() {
  const recovery::RecoveryOptions& opt = config.recovery;
  if (opt.dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opt.dir, ec);
  fingerprint_ = compute_fingerprint();
  ckpt_every_ = opt.checkpoint_every;
  journal_on_ = opt.journal;
  journal_path_ = opt.dir + "/journal.swj";
  crash_ = opt.crash;

  if (opt.restore) {
    auto snap = recovery::load_latest_snapshot(opt.dir, fingerprint_);
    if (snap.has_value()) {
      recovery::StateReader r(snap->payload);
      restore_state(r);
      restored_ = true;
      restored_seq_ = snap->meta.seq;
      // The restored run owns a fresh DirtyTracker session: re-register
      // the active coflows and let the schedulers rebuild their memoized
      // rank state from scratch on first contact (byte-equivalent to the
      // incremental state the crashed run carried — the invariant
      // test_incremental pins).
      if (track)
        for (const std::size_t ci : active)
          tracker.coflow_arrived(&coflows[ci].state);
    }
    if (journal_on_) {
      recovery::JournalScan scan;
      if (fs::exists(journal_path_, ec))
        scan = recovery::read_journal(journal_path_);
      if (scan.torn) recovery::truncate_torn_tail(journal_path_, scan);
      for (const recovery::JournalRecord& rec : scan.records)
        if (rec.seq >= journal_seq_) verify_.push_back(rec);
      if (!verify_.empty() && verify_.front().seq != journal_seq_) {
        // The journal does not reach back to the snapshot's cursor (e.g. a
        // rotated or separately damaged file). Determinism still yields a
        // correct run, so drop the cross-check and restart the journal at
        // the snapshot instead of failing the restore.
        verify_.clear();
        fs::remove(journal_path_, ec);
      }
    }
    if (sink != nullptr)
      ColdEmit::restored(sink, seg_base, restored_seq_,
                         std::int64_t(verify_.size()));
  } else if (journal_on_) {
    // Fresh run: a stale journal from a previous run in the same dir must
    // not be mistaken for this run's prefix.
    fs::remove(journal_path_, ec);
  }
  if (journal_on_) journal_.open(journal_path_);
}

void Engine::journal_event(recovery::JournalType type, common::Seconds time,
                           std::uint64_t a, std::uint64_t b, double x) {
  if (!journal_on_) return;
  recovery::JournalRecord rec;
  rec.seq = journal_seq_++;
  rec.type = type;
  rec.time = time;
  rec.a = a;
  rec.b = b;
  rec.x = x;
  if (!verify_.empty()) {
    // Replay verification: the regenerated stream must reproduce the
    // journal suffix exactly (those bytes are already on disk, so nothing
    // is re-appended). Divergence means the snapshot, trace or config does
    // not match what wrote the journal.
    const recovery::JournalRecord& want = verify_.front();
    if (!(rec == want))
      throw recovery::RecoveryError(
          std::string("recovery: journal divergence at seq ") +
          std::to_string(rec.seq) + " (journal: " +
          recovery::journal_type_name(want.type) + ", regenerated: " +
          recovery::journal_type_name(rec.type) + ")");
    verify_.pop_front();
  } else {
    journal_.append(rec);
  }
  ++event_count_;
  if (crash_ != nullptr && crash_->kill_at_event > 0 &&
      event_count_ == crash_->kill_at_event)
    do_crash("journal event " + std::to_string(event_count_));
}

void Engine::do_crash(const std::string& where) {
  journal_.close();
  if (crash_ != nullptr && crash_->torn_tail_bytes > 0 && journal_on_) {
    // Model an append that only partially reached the disk.
    namespace fs = std::filesystem;
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(journal_path_, ec);
    if (!ec && size > 0) {
      const std::uintmax_t keep =
          size > crash_->torn_tail_bytes ? size - crash_->torn_tail_bytes : 0;
      fs::resize_file(journal_path_, keep, ec);
    }
  }
  throw recovery::CrashError("sim: injected crash at " + where);
}

void Engine::checkpoint(common::Seconds t) {
  // Write-ahead: the checkpoint marker lands in the journal before the
  // snapshot file exists, so a crash mid-snapshot leaves a journal the
  // previous snapshot's replay can still verify end-to-end.
  journal_event(recovery::JournalType::kCheckpoint, t, round);
  recovery::StateWriter w;
  save_state(w);
  ++snap_attempts_;
  struct CrashingHook : recovery::SnapshotCrashHook {
    Engine* engine = nullptr;
    void on_tmp_written(const std::string&) override {
      engine->do_crash("mid-snapshot");
    }
  };
  CrashingHook hook;
  hook.engine = this;
  const bool crash_here = crash_ != nullptr && crash_->kill_mid_snapshot > 0 &&
                          snap_attempts_ == crash_->kill_mid_snapshot;
  recovery::SnapshotMeta meta;
  meta.seq = round;
  meta.fingerprint = fingerprint_;
  recovery::write_snapshot(config.recovery.dir, meta, w.buffer(),
                           crash_here ? &hook : nullptr);
  if (sink != nullptr) [[unlikely]]
    ColdEmit::snapshot_written(sink, t, round, std::int64_t(w.size()));
}

void Engine::save_state(recovery::StateWriter& w) const {
  // Only non-derivable state is serialized: everything keyed to the
  // DirtyTracker session (scheduler rank indexes, memoized Γ caches) is
  // rebuilt from this state on first contact, and the segment tables are
  // always settled (seg_valid == false) at a checkpoint fold point.
  w.u32(tag4('E', 'N', 'G', 'N'));
  w.u64(journal_seq_);
  w.u64(round);
  w.u64(slices);
  w.u64(completed);
  w.u64(rejected);
  w.u64(next_arrival);
  w.u64(static_cast<std::uint64_t>(stalled));
  w.boolean(need_schedule);
  w.boolean(coflow_event);
  w.f64(seg_base);
  w.u64(seg_j);
  w.f64(window_start);
  w.f64(window_sent_base);
  w.f64(next_capacity_change);

  w.u32(tag4('F', 'L', 'W', 'S'));
  w.u64(flows.size());
  for (const fabric::Flow& f : flows) {
    w.f64(f.raw_remaining);
    w.f64(f.compressed_pending);
    w.f64(f.sent);
    w.f64(f.sent_compressed);
    w.f64(f.completion);
    w.boolean(f.compress_enabled);
  }

  w.u32(tag4('R', 'A', 'T', 'E'));
  for (std::size_t i = 0; i < flows.size(); ++i) {
    w.f64(rate[i]);
    w.u8(static_cast<std::uint8_t>(compress[i]));
    w.u8(static_cast<std::uint8_t>(decided[i]));
  }

  w.u32(tag4('C', 'O', 'F', 'L'));
  w.u64(coflows.size());
  for (const SimCoflow& sc : coflows) {
    w.f64(sc.state.priority);
    w.f64(sc.state.completion);
    w.u8(static_cast<std::uint8_t>(sc.state.slo));
    w.u64(sc.unfinished);
    w.f64(sc.completion_max);
  }

  w.u32(tag4('A', 'C', 'T', 'V'));
  w.u64(active.size());
  for (const std::size_t ci : active) w.u64(ci);

  w.u32(tag4('E', 'X', 'P', 'H'));
  w.u64(expiry.size());
  for (const ExpiryEntry& e : expiry) {
    w.f64(e.first);
    w.u64(e.second);
  }

  w.u32(tag4('F', 'A', 'B', 'R'));
  w.u64(live.num_ports());
  for (fabric::PortId p = 0; p < live.num_ports(); ++p)
    w.f64(live.port_multiplier(p));

  w.u32(tag4('U', 'T', 'I', 'L'));
  w.u64(samples.size());
  for (const UtilizationSample& s : samples) {
    w.f64(s.t);
    w.f64(s.egress_utilization);
  }

  w.u32(tag4('D', 'S', 'T', 'A'));
  w.u64(dstats.capacity_changes);
  w.u64(dstats.link_failures);
  w.u64(dstats.stalled_flow_slices);
  w.u64(dstats.compression_flips);

  w.u32(tag4('S', 'S', 'T', 'A'));
  w.u64(sstats.with_deadline);
  w.u64(sstats.admitted);
  w.u64(sstats.degraded);
  w.u64(sstats.deferred);
  w.u64(sstats.rejected);
  w.u64(sstats.shed_midflight);
  w.f64(sstats.shed_bytes);
  w.u64(sstats.repriced_shed);
  w.u64(sstats.repriced_demoted);

  w.u32(tag4('A', 'D', 'M', 'S'));
  w.boolean(admit_on);
  if (admit_on) admission.save_state(w);

  w.u32(tag4('S', 'C', 'H', 'D'));
  w.str(sched.name());
  sched.save_state(w);

  w.u32(tag4('E', 'N', 'D', '!'));
}

void Engine::restore_state(recovery::StateReader& r) {
  expect_tag(r, tag4('E', 'N', 'G', 'N'), "ENGN");
  journal_seq_ = r.u64();
  round = r.u64();
  slices = r.u64();
  completed = r.u64();
  rejected = r.u64();
  next_arrival = r.u64();
  if (next_arrival > arrival_order.size())
    throw recovery::RecoveryError(
        "recovery: snapshot arrival cursor out of range");
  stalled = static_cast<std::int64_t>(r.u64());
  need_schedule = r.boolean();
  coflow_event = r.boolean();
  seg_base = r.f64();
  seg_j = r.u64();
  window_start = r.f64();
  window_sent_base = r.f64();
  next_capacity_change = r.f64();

  expect_tag(r, tag4('F', 'L', 'W', 'S'), "FLWS");
  if (r.u64() != flows.size())
    throw recovery::RecoveryError("recovery: snapshot flow count mismatch");
  for (fabric::Flow& f : flows) {
    f.raw_remaining = r.f64();
    f.compressed_pending = r.f64();
    f.sent = r.f64();
    f.sent_compressed = r.f64();
    f.completion = r.f64();
    f.compress_enabled = r.boolean();
  }

  expect_tag(r, tag4('R', 'A', 'T', 'E'), "RATE");
  for (std::size_t i = 0; i < flows.size(); ++i) {
    rate[i] = r.f64();
    compress[i] = static_cast<char>(r.u8());
    decided[i] = static_cast<char>(r.u8());
  }

  expect_tag(r, tag4('C', 'O', 'F', 'L'), "COFL");
  if (r.u64() != coflows.size())
    throw recovery::RecoveryError("recovery: snapshot coflow count mismatch");
  for (SimCoflow& sc : coflows) {
    sc.state.priority = r.f64();
    sc.state.completion = r.f64();
    const std::uint8_t slo = r.u8();
    if (slo > static_cast<std::uint8_t>(fabric::SloClass::kRejected))
      throw recovery::RecoveryError(
          "recovery: snapshot carries an invalid SLO class");
    sc.state.slo = static_cast<fabric::SloClass>(slo);
    sc.unfinished = r.u64();
    if (sc.unfinished > sc.state.flows.size())
      throw recovery::RecoveryError(
          "recovery: snapshot unfinished count exceeds coflow width");
    sc.completion_max = r.f64();
  }

  expect_tag(r, tag4('A', 'C', 'T', 'V'), "ACTV");
  active.resize(r.count("active coflow"));
  for (std::size_t& ci : active) {
    ci = r.u64();
    if (ci >= coflows.size())
      throw recovery::RecoveryError(
          "recovery: snapshot active index out of range");
  }

  expect_tag(r, tag4('E', 'X', 'P', 'H'), "EXPH");
  expiry.resize(r.count("expiry heap"));
  for (ExpiryEntry& e : expiry) {
    e.first = r.f64();
    e.second = r.u64();
    if (e.second >= coflows.size())
      throw recovery::RecoveryError(
          "recovery: snapshot expiry index out of range");
  }

  expect_tag(r, tag4('F', 'A', 'B', 'R'), "FABR");
  if (r.u64() != live.num_ports())
    throw recovery::RecoveryError("recovery: snapshot port count mismatch");
  for (fabric::PortId p = 0; p < live.num_ports(); ++p) {
    const double m = r.f64();
    if (!(m >= 0.0 && m <= 1.0))
      throw recovery::RecoveryError(
          "recovery: snapshot port multiplier out of range");
    live.set_port_multiplier(p, m);
  }

  expect_tag(r, tag4('U', 'T', 'I', 'L'), "UTIL");
  samples.resize(r.count("utilization sample"));
  for (UtilizationSample& s : samples) {
    s.t = r.f64();
    s.egress_utilization = r.f64();
  }

  expect_tag(r, tag4('D', 'S', 'T', 'A'), "DSTA");
  dstats.capacity_changes = r.u64();
  dstats.link_failures = r.u64();
  dstats.stalled_flow_slices = r.u64();
  dstats.compression_flips = r.u64();

  expect_tag(r, tag4('S', 'S', 'T', 'A'), "SSTA");
  sstats.with_deadline = r.u64();
  sstats.admitted = r.u64();
  sstats.degraded = r.u64();
  sstats.deferred = r.u64();
  sstats.rejected = r.u64();
  sstats.shed_midflight = r.u64();
  sstats.shed_bytes = r.f64();
  sstats.repriced_shed = r.u64();
  sstats.repriced_demoted = r.u64();

  expect_tag(r, tag4('A', 'D', 'M', 'S'), "ADMS");
  if (r.boolean() != admit_on)
    throw recovery::RecoveryError(
        "recovery: snapshot admission layer on/off mismatch");
  if (admit_on) admission.restore_state(r);

  expect_tag(r, tag4('S', 'C', 'H', 'D'), "SCHD");
  const std::string snap_sched = r.str();
  if (snap_sched != sched.name())
    throw recovery::RecoveryError("recovery: snapshot was taken under " +
                                  snap_sched + ", restoring under " +
                                  sched.name());
  sched.restore_state(r);

  expect_tag(r, tag4('E', 'N', 'D', '!'), "END!");
  if (!r.at_end())
    throw recovery::RecoveryError(
        "recovery: trailing bytes after snapshot payload", r.offset());

  // Snapshots are only cut at fold points: the segment tables restart
  // empty and the next loop iteration re-snapshots at the same boundary
  // the crashed run did.
  seg_valid = false;
  seg_epoch = 0;
}

// ---- The main loop. ----

Metrics Engine::run() {
  setup_recovery();

  if (!restored_ && degrade_on) {
    // An episode may already cover the first arrival. Runs after recovery
    // setup so the initial capacity events hit the journal too; a restored
    // run skips it — its multipliers and schedule cursor come from the
    // snapshot.
    apply_capacity(seg_base);
    next_capacity_change = degrade.next_change_after(seg_base);
  }

  while (completed + rejected < coflows.size()) {
    const common::Seconds t = slice_time(seg_j);
    if (t > config.max_time) throw SimError("sim: exceeded max_time");

    // Apply capacity changes due by this boundary. Sampling the schedule's
    // absolute state at `t` also catches up after idle-time jumps.
    if (degrade_on && next_capacity_change <= t + kTiny) {
      apply_capacity(t);
      next_capacity_change = degrade.next_change_after(t);
    }

    // Activate arrivals due by now, gating each through admission when the
    // SLO layer is on. Verdicts are priced at the coflow's own arrival
    // instant against the live fabric — both mode-independent quantities,
    // so event and slice engines reach identical decisions.
    while (next_arrival < arrival_order.size() &&
           coflows[arrival_order[next_arrival]].state.arrival <= t + kTiny) {
      const std::size_t ci = arrival_order[next_arrival];
      SimCoflow& sc = coflows[ci];
      ++next_arrival;
      journal_event(recovery::JournalType::kArrival, sc.state.arrival,
                    sc.trace_id, sc.state.flows.size());
      if (sink != nullptr) [[unlikely]]
        ColdEmit::coflow_arrival(sink, sc.state.arrival,
                                 std::int64_t(sc.trace_id),
                                 std::int64_t(sc.state.flows.size()));
      if (admit_on && sc.state.has_deadline()) {
        ++sstats.with_deadline;
        const core::AdmissionDecision d = admission.admit(
            sc.state, flows, live, cpu, config.codec, sc.state.arrival);
        journal_event(recovery::JournalType::kAdmissionVerdict,
                      sc.state.arrival, sc.trace_id,
                      static_cast<std::uint64_t>(d.verdict),
                      sc.state.deadline - sc.state.arrival);
        if (sink != nullptr) [[unlikely]] {
          static constexpr const char* kVerdictNames[] = {"admit", "degrade",
                                                          "defer", "reject"};
          ColdEmit::admission_verdict(
              sink, sc.state.arrival, std::int64_t(sc.trace_id),
              kVerdictNames[static_cast<std::uint8_t>(d.verdict)], d.reason,
              sc.state.deadline - sc.state.arrival);
        }
        if (d.verdict == core::AdmissionVerdict::kReject) {
          // Dropped at the door: never enters the active set, the tracker
          // never hears of it. The arrival still counts as a coflow event.
          mark_rejected(sc, /*midflight=*/false, sc.state.arrival);
          need_schedule = true;
          coflow_event = true;
          continue;
        }
        switch (d.verdict) {
          case core::AdmissionVerdict::kAdmit:
            sc.state.slo = fabric::SloClass::kAdmitted;
            ++sstats.admitted;
            break;
          case core::AdmissionVerdict::kDegrade:
            sc.state.slo = fabric::SloClass::kDegraded;
            ++sstats.degraded;
            break;
          default:
            sc.state.slo = fabric::SloClass::kDeferred;
            ++sstats.deferred;
            break;
        }
        if (config.admission.shed_expired)
          push_expiry(sc.state.deadline, ci);
      }
      active.push_back(ci);
      if (track) tracker.coflow_arrived(&sc.state);
      need_schedule = true;
      coflow_event = true;
    }

    if (active.empty()) {
      if (next_arrival >= arrival_order.size()) break;  // nothing left
      seg_base = coflows[arrival_order[next_arrival]].state.arrival;
      seg_j = 0;
      seg_valid = false;
      continue;
    }

    // Fold: settle the running segment before any decision that changes
    // the constants it was snapshot under. The CPU promise expiring is a
    // fold without a schedule round (rates stand, effective compression
    // speed is re-read); both folds are boundary-exact and
    // mode-independent. Expiry shedding must also fold first: zeroing a
    // shed flow's pools under a live snapshot would be undone by the next
    // materialize.
    const bool shed_due = admit_on && next_expiry() <= t + kTiny;
    const bool cpu_fold_due = seg_valid && seg_j > 0 && t >= seg_cpu_T;
    if (seg_valid && (need_schedule || cpu_fold_due || shed_due))
      materialize_segment();

    if (shed_due) {
      // Shed every coflow whose deadline passed by this boundary (the
      // event mode caps each segment at the next expiry, so both modes
      // shed at the same first boundary at-or-past the deadline).
      while (next_expiry() <= t + kTiny) {
        const std::size_t ci = expiry.front().second;
        std::pop_heap(expiry.begin(), expiry.end(),
                      std::greater<ExpiryEntry>{});
        expiry.pop_back();
        mark_rejected(coflows[ci], /*midflight=*/true, t);
        need_schedule = true;
        coflow_event = true;
      }
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&](std::size_t ci) {
                                    return coflows[ci].state.slo ==
                                           fabric::SloClass::kRejected;
                                  }),
                   active.end());
      if (active.empty()) {
        if (next_arrival >= arrival_order.size()) break;
        continue;  // top-of-loop idle jump re-bases time at the next arrival
      }
    }

    // Capacity-change re-pricing: arrival verdicts were priced against the
    // fabric as it stood then, so a brownout can strand commitments the
    // degraded fabric can no longer honor — they block feasible arrivals
    // via the EDF demand bound and drain doomed bytes until expiry. Runs
    // at the fold boundary right after apply_capacity (volumes settled,
    // pre-schedule, pre-checkpoint), on remaining volumes, in sorted
    // commitment order: a pure function of folded state at `t`, identical
    // across engine modes.
    if (admit_on && reprice_due) {
      reprice_due = false;
      const core::AdmissionController::RepriceOutcome outcome =
          admission.reprice(flows, live, cpu, config.codec, t,
                            [&](fabric::CoflowId id) -> const fabric::Coflow& {
                              return coflows[id].state;
                            });
      for (const fabric::CoflowId id : outcome.shed) {
        SimCoflow& sc = coflows[id];
        mark_rejected(sc, /*midflight=*/true, t);
        ++sstats.repriced_shed;
        need_schedule = true;
        coflow_event = true;
      }
      for (const fabric::CoflowId id : outcome.demoted) {
        SimCoflow& sc = coflows[id];
        ++sstats.repriced_demoted;
        // kAdmitted drops to kDeferred (unpromised, served by leftovers) —
        // allocations do not key on the difference, so no extra round. A
        // kDegraded coflow keeps its class: the beta-force must persist
        // for its lifetime even after the commitment is withdrawn.
        if (sc.state.slo == fabric::SloClass::kAdmitted)
          sc.state.slo = fabric::SloClass::kDeferred;
      }
      if (!outcome.shed.empty()) {
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::size_t ci) {
                                      return coflows[ci].state.slo ==
                                             fabric::SloClass::kRejected;
                                    }),
                     active.end());
        if (active.empty()) {
          if (next_arrival >= arrival_order.size()) break;
          continue;  // idle jump re-bases at the next arrival
        }
      }
    }

    if (need_schedule) {
      build_context();
      ctx.coflow_event = coflow_event;
      // The cached Γ terms read CPU headroom through Eq. 3/7; sampling here
      // (value-compared per port) dirties exactly the coflows sourced at
      // ports whose headroom or compress gate moved since the last round.
      if (track) tracker.sample_cpu(cpu, ctx.now);
      if (sink != nullptr) [[unlikely]]
        ColdEmit::schedule_round(sink, t, round, sched.name(),
                                 std::int64_t(ctx.coflows.size()),
                                 std::int64_t(ctx.flows.size()));
      fabric::Allocation alloc;
      {
        obs::ProfileScope scope(sink, "sim.schedule");
        alloc = sched.schedule(ctx);
      }
      if (config.validate_allocations && !feasible(alloc, ctx.flows, live))
        throw SimError("sim: scheduler " + sched.name() +
                       " violated port capacities");
      for (const fabric::Flow* f : ctx.flows) {
        const double new_rate = alloc.rate(f->id);
        const bool new_compress = alloc.compress(f->id);
        // A flow that loses its bandwidth mid-life (without switching to
        // compression) was preempted by a shorter coflow.
        if (sink != nullptr && rate[f->id] > kTiny && new_rate <= kTiny &&
            !new_compress) [[unlikely]]
          ColdEmit::preemption(sink, t, std::int64_t(f->id),
                               std::int64_t(coflows[f->coflow].trace_id));
        // An Eq. 3 decision that reversed while raw volume remains: the
        // bottleneck B moved across the R_eff * (1 - xi) threshold (both
        // directions happen under brownouts and recoveries).
        if (decided[f->id] && (compress[f->id] != 0) != new_compress &&
            f->raw_remaining > fabric::kVolumeEpsilon)
          ++dstats.compression_flips;
        decided[f->id] = 1;
        rate[f->id] = new_rate;
        compress[f->id] = new_compress ? 1 : 0;
        // Served flows drain volume over the coming segment, so their Γ
        // terms are stale by the next decision point. Zero-rate flows do
        // not move — in a saturated fabric this keeps the dirty set near
        // O(ports served), not O(coflows).
        if (track && (new_rate > kTiny || new_compress))
          tracker.flow_progressed(f->coflow);
      }
      need_schedule = false;
      coflow_event = false;
      ++round;
      if (sink != nullptr)
        sink->registry().counter("sim.schedule_rounds").add();
      // Post-schedule fold point: the segment is settled (seg_valid just
      // went false above) and nothing is pending, so re-entering the loop
      // top from this state replays the rest of the iteration identically.
      // Checkpointing anywhere else would add fold points the uncrashed
      // run never had and break byte-identity.
      if (ckpt_every_ > 0 && round % ckpt_every_ == 0) checkpoint(t);
    }

    if (!seg_valid) {
      seg_base = t;
      seg_j = 0;
      snapshot_segment();
    }

    // ---- Advance k slices in one closed-form step. ----
    // Interior boundaries are provably eventless: each cap below stops the
    // batch at the first boundary where an arrival, capacity change, flow
    // event, sample flush, CPU re-read, stall verdict or max_time check is
    // due. The slice-stepped reference simply pins k = 1 and therefore
    // visits every boundary — evaluating the same formulas either way.
    obs::ProfileScope advance_scope(sink, "sim.advance", "prof",
                                    /*emit_events=*/false);
    std::uint64_t k = 1;
    if (event_mode) {
      std::uint64_t cap =
          seg_min_event_j == kNoEvent ? kNoEvent : seg_min_event_j - seg_j;
      if (next_arrival < arrival_order.size()) {
        const common::Seconds arr =
            coflows[arrival_order[next_arrival]].state.arrival;
        cap = std::min(
            cap, first_true_near(
                     (arr - seg_base) / config.slice - double(seg_j),
                     [&](std::uint64_t n) {
                       return arr <= slice_time(seg_j + n) + kTiny;
                     }));
      }
      if (degrade_on && std::isfinite(next_capacity_change))
        cap = std::min(
            cap,
            first_true_near(
                (next_capacity_change - seg_base) / config.slice -
                    double(seg_j),
                [&](std::uint64_t n) {
                  return next_capacity_change <= slice_time(seg_j + n) + kTiny;
                }));
      if (admit_on) {
        const common::Seconds nx = next_expiry();
        if (std::isfinite(nx))
          cap = std::min(
              cap, first_true_near(
                       (nx - seg_base) / config.slice - double(seg_j),
                       [&](std::uint64_t n) {
                         return nx <= slice_time(seg_j + n) + kTiny;
                       }));
      }
      if (config.utilization_sample_period > 0)
        cap = std::min(
            cap, first_true_near(
                     (window_start + config.utilization_sample_period -
                      seg_base) /
                             config.slice -
                         double(seg_j),
                     [&](std::uint64_t n) {
                       return slice_time(seg_j + n) - window_start >=
                              config.utilization_sample_period;
                     }));
      if (std::isfinite(seg_cpu_T))
        cap = std::min(
            cap, first_true_near(
                     (seg_cpu_T - seg_base) / config.slice - double(seg_j),
                     [&](std::uint64_t n) {
                       return slice_time(seg_j + n) >= seg_cpu_T;
                     }));
      cap = std::min(
          cap, first_true_near(
                   (config.max_time - seg_base) / config.slice -
                       double(seg_j) + 1.0,
                   [&](std::uint64_t n) {
                     return slice_time(seg_j + n) > config.max_time;
                   }));
      if (seg_progress_step <= kTiny &&
          !(seg_stall_count > 0 && std::isfinite(next_capacity_change)))
        cap = std::min(
            cap, static_cast<std::uint64_t>(kMaxStalledSlices - stalled + 1));
      if (seg_has_blocked) cap = 1;
      k = std::max<std::uint64_t>(1, cap);
    }

    const std::uint64_t target = seg_j + k;
    if (seg_min_event_j == target) {
      // Flow events land in slice `target` (the slice starting at
      // target - 1 boundaries past the segment base). Walk in the same
      // coflow-then-flow order as the historical per-slice loop.
      const common::Seconds start =
          slice_time(0) + static_cast<double>(target - 1) * config.slice;
      for (const std::size_t ci : active) {
        SimCoflow& sc = coflows[ci];
        for (const fabric::FlowId fid : sc.state.flows) {
          FlowSeg& s = seg[fid];
          if (s.epoch != seg_epoch || s.event_j != target) continue;
          fabric::Flow& f = flows[fid];
          if (s.mode == FlowSeg::kTransmit) {
            const double V0 = s.d0 + s.D0;
            const double w_prev =
                std::min(V0, static_cast<double>(target - 1) * s.step);
            const double wc_prev = std::min(s.D0, w_prev);
            const double v_start = V0 - w_prev;
            const double dc_start = s.D0 - wc_prev;
            const bool whole = v_start <= s.step + kTiny;
            f.sent = s.sent0 + w_prev + v_start;
            f.sent_compressed =
                s.sentc0 + wc_prev +
                (whole ? dc_start : std::min(dc_start, s.step));
            s.epoch = 0;
            finalize_flow(f, sc, start + v_start / s.rate);
          } else {  // kCompress: raw pool exhausted this slice
            const double cc =
                std::min(s.d0, static_cast<double>(target) * s.step);
            f.raw_remaining = 0;
            f.compressed_pending = s.D0 + cc * s.ratio;
            s.epoch = 0;
            need_schedule = true;  // compression finished: hand out a rate
            // The round that switched this flow to compression already left
            // a pending flow_progressed mark, so this re-mark is redundant
            // today — kept so the dirty feed stays correct even if marks
            // are ever consumed between here and that round.
            if (track) tracker.flow_progressed(f.coflow);
            if (sink != nullptr) [[unlikely]]
              ColdEmit::compression_done(sink, start, std::int64_t(f.id),
                                         std::int64_t(sc.trace_id),
                                         f.compressed_pending);
            if (f.done()) {
              // Degenerate codec (ratio ~ 0) removed the whole volume.
              const double d_prev = s.d0 -
                  std::min(s.d0, static_cast<double>(target - 1) * s.step);
              const double consumed = std::min(d_prev, s.step);
              finalize_flow(f, sc, start + consumed / s.rate);
            }
          }
        }
      }
    }
    if (seg_has_blocked) need_schedule = true;

    // Drop completed (and, belt-and-suspenders, shed) coflows.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t ci) {
                                  return coflows[ci].state.completed() ||
                                         coflows[ci].state.slo ==
                                             fabric::SloClass::kRejected;
                                }),
                 active.end());

    // Stall accounting, k slices at once: interior slices of a segment all
    // dispose the same seg_progress_step bytes, and a slice with a flow
    // event always has progress (the completing flow's residual volume),
    // so the per-slice verdicts are segment-constant.
    dstats.stalled_flow_slices += seg_stall_count * k;
    if (seg_progress_step <= kTiny && !active.empty()) {
      if (seg_stall_count > 0 && std::isfinite(next_capacity_change)) {
        // Every idle flow is pinned behind a failed link and the schedule
        // holds a future capacity change: a legitimate stall that must not
        // trip the deadlock detector (max_time still backstops the run).
        stalled = 0;
      } else {
        stalled += static_cast<std::int64_t>(k);
        if (stalled > kMaxStalledSlices)
          throw SimError("sim: no progress for too long (scheduler " +
                         sched.name() + " deadlocked?)");
      }
    } else {
      stalled = 0;
    }

    seg_j += k;
    slices += k;
    maybe_sample(slice_time(seg_j));
  }

  if (journal_on_ && !verify_.empty())
    throw recovery::RecoveryError(
        "recovery: journal holds " + std::to_string(verify_.size()) +
        " record(s) the restored run never regenerated (next seq " +
        std::to_string(verify_.front().seq) + ")");
  journal_.close();

  if (sink != nullptr) {
    sink->registry().gauge("sim.slices").set(static_cast<double>(slices));
    sink->registry().gauge("sim.sim_time_s").set(slice_time(seg_j));
    if (degrade_on) {
      sink->registry()
          .counter("sim.capacity_changes")
          .add(dstats.capacity_changes);
      sink->registry().counter("sim.link_failures").add(dstats.link_failures);
      sink->registry()
          .counter("sim.stalled_flow_slices")
          .add(dstats.stalled_flow_slices);
      sink->registry()
          .counter("sim.compression_flips")
          .add(dstats.compression_flips);
    }
    if (admit_on) {
      sink->registry().counter("slo.with_deadline").add(sstats.with_deadline);
      sink->registry().counter("slo.admitted").add(sstats.admitted);
      sink->registry().counter("slo.degraded").add(sstats.degraded);
      sink->registry().counter("slo.deferred").add(sstats.deferred);
      sink->registry().counter("slo.rejected").add(sstats.rejected);
      sink->registry()
          .counter("slo.shed_midflight")
          .add(sstats.shed_midflight);
      sink->registry().gauge("slo.shed_bytes").set(sstats.shed_bytes);
      sink->registry()
          .counter("slo.repriced_shed")
          .add(sstats.repriced_shed);
      sink->registry()
          .counter("slo.repriced_demoted")
          .add(sstats.repriced_demoted);
    }
  }

  // ---- Emit records. ----
  Metrics metrics;
  metrics.utilization = std::move(samples);
  metrics.degradation = dstats;
  metrics.flows.reserve(flows.size());
  for (const auto& f : flows) {
    FlowRecord rec;
    rec.id = f.id;
    rec.coflow = coflows[f.coflow].trace_id;
    rec.job = coflows[f.coflow].job;
    rec.original_bytes = f.original_bytes;
    rec.wire_bytes = f.sent;
    rec.arrival = f.arrival;
    rec.completion = f.completion;
    metrics.flows.push_back(rec);
  }
  metrics.coflows.reserve(coflows.size());
  for (const auto& sc : coflows) {
    CoflowRecord rec;
    rec.id = sc.trace_id;
    rec.job = sc.job;
    rec.width = sc.state.flows.size();
    rec.arrival = sc.state.arrival;
    rec.completion = sc.state.completion;
    rec.isolation_bound = sc.isolation_bound;
    rec.deadline = sc.state.deadline;
    rec.rejected = sc.state.slo == fabric::SloClass::kRejected;
    for (const fabric::FlowId fid : sc.state.flows) {
      rec.original_bytes += flows[fid].original_bytes;
      rec.wire_bytes += flows[fid].sent;
    }
    metrics.coflows.push_back(rec);
  }
  metrics.slo = sstats;
  if (sink != nullptr && admit_on) {
    sink->registry()
        .gauge("slo.deadlines_met")
        .set(static_cast<double>(metrics.deadlines_met()));
    sink->registry()
        .gauge("slo.deadline_met_fraction")
        .set(metrics.deadline_met_fraction());
  }
  return metrics;
}

}  // namespace

Metrics run_simulation(const workload::Trace& trace,
                       const fabric::Fabric& fabric,
                       const cpu::CpuProvider& cpu, sched::Scheduler& sched,
                       const SimConfig& config) {
  if (config.slice <= 0) throw std::invalid_argument("sim: non-positive slice");
  if (fabric.num_ports() < trace.num_ports)
    throw std::invalid_argument("sim: fabric smaller than trace needs");
  Engine engine(trace, fabric, cpu, sched, config);
  return engine.run();
}

}  // namespace swallow::sim
