// Metrics captured by a simulation run: per-flow, per-coflow and per-job
// completion records plus traffic accounting, with the derived statistics
// the paper reports (average FCT/CCT/JCT, CDFs, per-time-unit job
// throughput, traffic reduction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cdf.hpp"
#include "common/units.hpp"
#include "fabric/coflow.hpp"

namespace swallow::sim {

struct FlowRecord {
  fabric::FlowId id = 0;
  fabric::CoflowId coflow = 0;
  fabric::JobId job = 0;
  common::Bytes original_bytes = 0;  ///< uncompressed size
  common::Bytes wire_bytes = 0;      ///< bytes actually transmitted
  common::Seconds arrival = 0;
  /// kNeverCompleted (negative) when the flow's coflow was rejected or shed
  /// by the SLO admission layer; such records are excluded from the FCT
  /// aggregates below.
  common::Seconds completion = 0;
  common::Seconds fct() const { return completion - arrival; }
  bool completed() const { return completion >= 0; }
};

struct CoflowRecord {
  fabric::CoflowId id = 0;
  fabric::JobId job = 0;
  std::size_t width = 0;
  common::Bytes original_bytes = 0;
  common::Bytes wire_bytes = 0;
  common::Seconds arrival = 0;
  /// kNeverCompleted (negative) when rejected/shed; excluded from CCT
  /// aggregates.
  common::Seconds completion = 0;
  /// CCT lower bound: the coflow's effective bottleneck with the whole
  /// fabric to itself at arrival (Varys' normalization baseline).
  common::Seconds isolation_bound = 0;
  /// Absolute SLO deadline; fabric::kNoDeadline (+inf) when best-effort.
  common::Seconds deadline = fabric::kNoDeadline;
  /// Refused at arrival or shed mid-flight by the admission layer.
  bool rejected = false;
  common::Seconds cct() const { return completion - arrival; }
  bool completed() const { return completion >= 0; }
  bool has_deadline() const { return deadline < fabric::kNoDeadline; }
  /// Completed at or before its deadline (false for best-effort coflows).
  bool deadline_met() const {
    return has_deadline() && completed() && completion <= deadline;
  }
  /// CCT / isolation bound; >= 1 up to slice granularity.
  double normalized_cct() const {
    return isolation_bound > 0 ? cct() / isolation_bound : 0.0;
  }
};

struct JobRecord {
  fabric::JobId id = 0;
  common::Seconds arrival = 0;
  common::Seconds completion = 0;
  common::Seconds jct() const { return completion - arrival; }
};

/// One sample of fabric-wide utilization (enabled via
/// SimConfig::utilization_sample_period).
struct UtilizationSample {
  common::Seconds t = 0;
  double egress_utilization = 0;  ///< wire bytes moved / fabric capacity
};

/// What the fabric degradation layer did to a run (all zero when
/// SimConfig::degradation is disabled). Mirrored into the obs registry as
/// sim.capacity_changes / sim.link_failures / sim.stalled_flow_slices /
/// sim.compression_flips when a sink is attached.
struct DegradationStats {
  std::uint64_t capacity_changes = 0;    ///< port multiplier transitions
  std::uint64_t link_failures = 0;       ///< transitions to multiplier == 0
  std::uint64_t stalled_flow_slices = 0; ///< (flow, slice) pairs stuck on a
                                         ///< zero-capacity port
  std::uint64_t compression_flips = 0;   ///< beta decisions that reversed
                                         ///< after the flow's first slice
};

/// What the SLO admission layer did to a run (all zero when
/// SimConfig::admission is disabled). Mirrored into the obs registry as
/// slo.* counters when a sink is attached.
struct SloStats {
  std::uint64_t with_deadline = 0;   ///< arrived coflows carrying a deadline
  std::uint64_t admitted = 0;        ///< admission verdict kAdmit
  std::uint64_t degraded = 0;        ///< kDegrade: compression priced out
  std::uint64_t deferred = 0;        ///< kDefer: infeasible at arrival
  std::uint64_t rejected = 0;        ///< kReject: dropped at arrival
  std::uint64_t shed_midflight = 0;  ///< expired mid-flight, volume dropped
  common::Bytes shed_bytes = 0;      ///< remaining volume discarded by both
  /// Capacity-change re-pricing (DESIGN.md section 12): commitments shed
  /// early (hopeless at nominal with remaining volume) and commitments
  /// withdrawn (infeasible on the degraded fabric; coflow demoted to
  /// deferred and served by leftovers).
  std::uint64_t repriced_shed = 0;
  std::uint64_t repriced_demoted = 0;
};

class Metrics {
 public:
  std::vector<FlowRecord> flows;
  std::vector<CoflowRecord> coflows;
  std::vector<UtilizationSample> utilization;
  DegradationStats degradation;
  SloStats slo;

  double avg_fct() const;
  double avg_cct() const;
  double avg_jct() const;
  /// Mean CCT / isolation-bound over coflows with a positive bound.
  double avg_normalized_cct() const;

  common::Cdf fct_cdf() const;
  common::Cdf cct_cdf() const;

  /// Jobs aggregated from coflow records (job arrival = earliest coflow
  /// arrival, completion = latest coflow completion).
  std::vector<JobRecord> jobs() const;

  common::Bytes total_original_bytes() const;
  common::Bytes total_wire_bytes() const;
  /// 1 - wire/original: the paper's "traffic reduction".
  double traffic_reduction() const;

  /// Table V: cumulative jobs completed by the end of each of `units` time
  /// units of length `unit` seconds (measured from t = 0).
  std::vector<std::size_t> cumulative_jobs_per_unit(common::Seconds unit,
                                                    std::size_t units) const;

  /// Completion time of the last flow.
  common::Seconds makespan() const;

  /// Average FCT restricted to flows with original size in [lo, hi).
  double avg_fct_in_size_band(common::Bytes lo, common::Bytes hi) const;

  /// Mean egress utilization over the sampled horizon (0 if not sampled).
  double mean_utilization() const;

  // ---- SLO aggregates (trivial when the trace carries no deadlines) ----
  /// Number of coflows that arrived with a finite deadline.
  std::size_t deadline_coflows() const;
  /// Deadline coflows that completed at or before their deadline.
  std::size_t deadlines_met() const;
  /// deadlines_met / deadline_coflows; 1.0 when the trace has no deadlines.
  double deadline_met_fraction() const;
  /// Wire bytes of useful work: coflows that completed and either had no
  /// deadline or met it. Shed and deadline-missing traffic is excluded.
  common::Bytes goodput_bytes() const;
};

}  // namespace swallow::sim
