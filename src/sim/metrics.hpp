// Metrics captured by a simulation run: per-flow, per-coflow and per-job
// completion records plus traffic accounting, with the derived statistics
// the paper reports (average FCT/CCT/JCT, CDFs, per-time-unit job
// throughput, traffic reduction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cdf.hpp"
#include "common/units.hpp"
#include "fabric/coflow.hpp"

namespace swallow::sim {

struct FlowRecord {
  fabric::FlowId id = 0;
  fabric::CoflowId coflow = 0;
  fabric::JobId job = 0;
  common::Bytes original_bytes = 0;  ///< uncompressed size
  common::Bytes wire_bytes = 0;      ///< bytes actually transmitted
  common::Seconds arrival = 0;
  common::Seconds completion = 0;
  common::Seconds fct() const { return completion - arrival; }
};

struct CoflowRecord {
  fabric::CoflowId id = 0;
  fabric::JobId job = 0;
  std::size_t width = 0;
  common::Bytes original_bytes = 0;
  common::Bytes wire_bytes = 0;
  common::Seconds arrival = 0;
  common::Seconds completion = 0;
  /// CCT lower bound: the coflow's effective bottleneck with the whole
  /// fabric to itself at arrival (Varys' normalization baseline).
  common::Seconds isolation_bound = 0;
  common::Seconds cct() const { return completion - arrival; }
  /// CCT / isolation bound; >= 1 up to slice granularity.
  double normalized_cct() const {
    return isolation_bound > 0 ? cct() / isolation_bound : 0.0;
  }
};

struct JobRecord {
  fabric::JobId id = 0;
  common::Seconds arrival = 0;
  common::Seconds completion = 0;
  common::Seconds jct() const { return completion - arrival; }
};

/// One sample of fabric-wide utilization (enabled via
/// SimConfig::utilization_sample_period).
struct UtilizationSample {
  common::Seconds t = 0;
  double egress_utilization = 0;  ///< wire bytes moved / fabric capacity
};

/// What the fabric degradation layer did to a run (all zero when
/// SimConfig::degradation is disabled). Mirrored into the obs registry as
/// sim.capacity_changes / sim.link_failures / sim.stalled_flow_slices /
/// sim.compression_flips when a sink is attached.
struct DegradationStats {
  std::uint64_t capacity_changes = 0;    ///< port multiplier transitions
  std::uint64_t link_failures = 0;       ///< transitions to multiplier == 0
  std::uint64_t stalled_flow_slices = 0; ///< (flow, slice) pairs stuck on a
                                         ///< zero-capacity port
  std::uint64_t compression_flips = 0;   ///< beta decisions that reversed
                                         ///< after the flow's first slice
};

class Metrics {
 public:
  std::vector<FlowRecord> flows;
  std::vector<CoflowRecord> coflows;
  std::vector<UtilizationSample> utilization;
  DegradationStats degradation;

  double avg_fct() const;
  double avg_cct() const;
  double avg_jct() const;
  /// Mean CCT / isolation-bound over coflows with a positive bound.
  double avg_normalized_cct() const;

  common::Cdf fct_cdf() const;
  common::Cdf cct_cdf() const;

  /// Jobs aggregated from coflow records (job arrival = earliest coflow
  /// arrival, completion = latest coflow completion).
  std::vector<JobRecord> jobs() const;

  common::Bytes total_original_bytes() const;
  common::Bytes total_wire_bytes() const;
  /// 1 - wire/original: the paper's "traffic reduction".
  double traffic_reduction() const;

  /// Table V: cumulative jobs completed by the end of each of `units` time
  /// units of length `unit` seconds (measured from t = 0).
  std::vector<std::size_t> cumulative_jobs_per_unit(common::Seconds unit,
                                                    std::size_t units) const;

  /// Completion time of the last flow.
  common::Seconds makespan() const;

  /// Average FCT restricted to flows with original size in [lo, hi).
  double avg_fct_in_size_band(common::Bytes lo, common::Bytes hi) const;

  /// Mean egress utilization over the sampled horizon (0 if not sampled).
  double mean_utilization() const;
};

}  // namespace swallow::sim
