#include "sim/metrics.hpp"

#include <algorithm>
#include <map>

namespace swallow::sim {

// Rejected/shed work never completes (completion stays kNeverCompleted);
// every completion-time aggregate below averages over completed records
// only, so a run with shedding reports the FCT/CCT of the work it did.
double Metrics::avg_fct() const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (!f.completed()) continue;
    sum += f.fct();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double Metrics::avg_cct() const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : coflows) {
    if (!c.completed()) continue;
    sum += c.cct();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double Metrics::avg_normalized_cct() const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : coflows) {
    if (c.isolation_bound <= 0 || !c.completed()) continue;
    sum += c.normalized_cct();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<JobRecord> Metrics::jobs() const {
  std::map<fabric::JobId, JobRecord> by_job;
  for (const auto& c : coflows) {
    if (!c.completed()) continue;
    auto [it, inserted] = by_job.try_emplace(c.job);
    JobRecord& job = it->second;
    if (inserted) {
      job.id = c.job;
      job.arrival = c.arrival;
      job.completion = c.completion;
    } else {
      job.arrival = std::min(job.arrival, c.arrival);
      job.completion = std::max(job.completion, c.completion);
    }
  }
  std::vector<JobRecord> out;
  out.reserve(by_job.size());
  for (const auto& [id, job] : by_job) out.push_back(job);
  return out;
}

double Metrics::avg_jct() const {
  const auto all = jobs();
  if (all.empty()) return 0.0;
  double sum = 0;
  for (const auto& j : all) sum += j.jct();
  return sum / static_cast<double>(all.size());
}

common::Cdf Metrics::fct_cdf() const {
  common::Cdf cdf;
  for (const auto& f : flows)
    if (f.completed()) cdf.add(f.fct());
  cdf.finalize();
  return cdf;
}

common::Cdf Metrics::cct_cdf() const {
  common::Cdf cdf;
  for (const auto& c : coflows)
    if (c.completed()) cdf.add(c.cct());
  cdf.finalize();
  return cdf;
}

common::Bytes Metrics::total_original_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : flows) total += f.original_bytes;
  return total;
}

common::Bytes Metrics::total_wire_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : flows) total += f.wire_bytes;
  return total;
}

double Metrics::traffic_reduction() const {
  const common::Bytes original = total_original_bytes();
  if (original <= 0) return 0.0;
  return 1.0 - total_wire_bytes() / original;
}

std::vector<std::size_t> Metrics::cumulative_jobs_per_unit(
    common::Seconds unit, std::size_t units) const {
  std::vector<std::size_t> out(units, 0);
  for (const auto& j : jobs()) {
    for (std::size_t u = 0; u < units; ++u) {
      if (j.completion <= unit * static_cast<double>(u + 1)) ++out[u];
    }
  }
  return out;
}

common::Seconds Metrics::makespan() const {
  common::Seconds last = 0;
  for (const auto& f : flows) last = std::max(last, f.completion);
  return last;
}

double Metrics::mean_utilization() const {
  if (utilization.empty()) return 0.0;
  double sum = 0;
  for (const auto& u : utilization) sum += u.egress_utilization;
  return sum / static_cast<double>(utilization.size());
}

double Metrics::avg_fct_in_size_band(common::Bytes lo,
                                     common::Bytes hi) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.completed() && f.original_bytes >= lo && f.original_bytes < hi) {
      sum += f.fct();
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::size_t Metrics::deadline_coflows() const {
  std::size_t n = 0;
  for (const auto& c : coflows)
    if (c.has_deadline()) ++n;
  return n;
}

std::size_t Metrics::deadlines_met() const {
  std::size_t n = 0;
  for (const auto& c : coflows)
    if (c.deadline_met()) ++n;
  return n;
}

double Metrics::deadline_met_fraction() const {
  const std::size_t total = deadline_coflows();
  if (total == 0) return 1.0;
  return static_cast<double>(deadlines_met()) / static_cast<double>(total);
}

common::Bytes Metrics::goodput_bytes() const {
  common::Bytes total = 0;
  for (const auto& c : coflows) {
    if (!c.completed()) continue;
    if (c.has_deadline() && !c.deadline_met()) continue;
    total += c.wire_bytes;
  }
  return total;
}

}  // namespace swallow::sim
