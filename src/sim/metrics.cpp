#include "sim/metrics.hpp"

#include <algorithm>
#include <map>

namespace swallow::sim {

double Metrics::avg_fct() const {
  if (flows.empty()) return 0.0;
  double sum = 0;
  for (const auto& f : flows) sum += f.fct();
  return sum / static_cast<double>(flows.size());
}

double Metrics::avg_cct() const {
  if (coflows.empty()) return 0.0;
  double sum = 0;
  for (const auto& c : coflows) sum += c.cct();
  return sum / static_cast<double>(coflows.size());
}

double Metrics::avg_normalized_cct() const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& c : coflows) {
    if (c.isolation_bound <= 0) continue;
    sum += c.normalized_cct();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<JobRecord> Metrics::jobs() const {
  std::map<fabric::JobId, JobRecord> by_job;
  for (const auto& c : coflows) {
    auto [it, inserted] = by_job.try_emplace(c.job);
    JobRecord& job = it->second;
    if (inserted) {
      job.id = c.job;
      job.arrival = c.arrival;
      job.completion = c.completion;
    } else {
      job.arrival = std::min(job.arrival, c.arrival);
      job.completion = std::max(job.completion, c.completion);
    }
  }
  std::vector<JobRecord> out;
  out.reserve(by_job.size());
  for (const auto& [id, job] : by_job) out.push_back(job);
  return out;
}

double Metrics::avg_jct() const {
  const auto all = jobs();
  if (all.empty()) return 0.0;
  double sum = 0;
  for (const auto& j : all) sum += j.jct();
  return sum / static_cast<double>(all.size());
}

common::Cdf Metrics::fct_cdf() const {
  common::Cdf cdf;
  for (const auto& f : flows) cdf.add(f.fct());
  cdf.finalize();
  return cdf;
}

common::Cdf Metrics::cct_cdf() const {
  common::Cdf cdf;
  for (const auto& c : coflows) cdf.add(c.cct());
  cdf.finalize();
  return cdf;
}

common::Bytes Metrics::total_original_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : flows) total += f.original_bytes;
  return total;
}

common::Bytes Metrics::total_wire_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : flows) total += f.wire_bytes;
  return total;
}

double Metrics::traffic_reduction() const {
  const common::Bytes original = total_original_bytes();
  if (original <= 0) return 0.0;
  return 1.0 - total_wire_bytes() / original;
}

std::vector<std::size_t> Metrics::cumulative_jobs_per_unit(
    common::Seconds unit, std::size_t units) const {
  std::vector<std::size_t> out(units, 0);
  for (const auto& j : jobs()) {
    for (std::size_t u = 0; u < units; ++u) {
      if (j.completion <= unit * static_cast<double>(u + 1)) ++out[u];
    }
  }
  return out;
}

common::Seconds Metrics::makespan() const {
  common::Seconds last = 0;
  for (const auto& f : flows) last = std::max(last, f.completion);
  return last;
}

double Metrics::mean_utilization() const {
  if (utilization.empty()) return 0.0;
  double sum = 0;
  for (const auto& u : utilization) sum += u.egress_utilization;
  return sum / static_cast<double>(utilization.size());
}

double Metrics::avg_fct_in_size_band(common::Bytes lo,
                                     common::Bytes hi) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.original_bytes >= lo && f.original_bytes < hi) {
      sum += f.fct();
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace swallow::sim
