#include "sim/experiment.hpp"

#include <stdexcept>

#include "core/online.hpp"

namespace swallow::sim {

std::unique_ptr<sched::Scheduler> make_scheduler(const std::string& name) {
  try {
    return core::make_fvdf(name);
  } catch (const std::out_of_range&) {
    return sched::make_baseline(name);
  }
}

std::vector<ComparisonRow> compare_schedulers(
    const workload::Trace& trace, const fabric::Fabric& fabric,
    const cpu::CpuProvider& cpu, const std::vector<std::string>& names,
    const SimConfig& config) {
  std::vector<ComparisonRow> rows;
  rows.reserve(names.size());
  for (const auto& name : names) {
    const auto scheduler = make_scheduler(name);
    rows.push_back(
        {scheduler->name(),
         run_simulation(trace, fabric, cpu, *scheduler, config)});
  }
  return rows;
}

Metrics MotivationSetup::run(const std::string& scheduler_name) const {
  const auto scheduler = make_scheduler(scheduler_name);
  return run_simulation(trace, fabric, *cpu, *scheduler, config);
}

std::unique_ptr<MotivationSetup> motivation_setup() {
  auto setup = std::make_unique<MotivationSetup>(MotivationSetup{
      /*trace=*/{},
      // Three "channels": the egress ports are the unit-capacity resources
      // of the example; ingress links are made non-binding.
      fabric::Fabric(std::vector<common::Bps>(3, 100.0),
                     std::vector<common::Bps>(3, 1.0)),
      std::make_shared<cpu::WindowedCpu>(
          std::vector<cpu::WindowedCpu::Window>{{0.0, 1.0}, {3.0, 3.5}}),
      // "Suppose the compression ratio of 47.59%": the example's codec
      // halves the data and compresses 4 units per time unit.
      codec::CodecModel{"example", 4.0, 16.0, 0.5},
      /*config=*/{}});

  setup->config.slice = 0.01;
  setup->config.codec = &setup->codec;

  workload::Trace& trace = setup->trace;
  trace.num_ports = 3;

  // Port map reverse-engineered from the published averages (DESIGN.md 4.4):
  //   channel A (egress 0): f1 (C1, 4)
  //   channel B (egress 1): f2 (C1, 4), f4 (C2, 2)
  //   channel C (egress 2): f3 (C1, 2), f5 (C2, 3)
  // FIFO registration order: f1, f2, f5, f3, f4 (offsets below).
  auto flow = [](fabric::PortId src, fabric::PortId dst, double bytes,
                 common::Seconds offset) {
    workload::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.bytes = bytes;
    spec.compressible = true;
    spec.arrival_offset = offset;
    return spec;
  };
  workload::CoflowSpec c1;
  c1.id = 1;
  c1.job = 1;
  c1.arrival = 0;
  c1.flows = {
      flow(0, 0, 4.0, 0e-9),  // f1
      flow(1, 1, 4.0, 1e-9),  // f2
      flow(0, 2, 2.0, 3e-9),  // f3
  };
  workload::CoflowSpec c2;
  c2.id = 2;
  c2.job = 2;
  c2.arrival = 0;
  c2.flows = {
      flow(2, 1, 2.0, 4e-9),  // f4
      flow(1, 2, 3.0, 2e-9),  // f5
  };
  trace.coflows = {c1, c2};
  return setup;
}

}  // namespace swallow::sim
