// Parallel sweep runner: runs independent (trace, fabric, config)
// simulations across a work-stealing thread pool.
//
// Parameter sweeps (bench_ext_degradation's episode rates, Fig. 6 style
// bandwidth ladders, seed batteries) are embarrassingly parallel: each run
// owns its trace and Metrics and shares nothing mutable. run_batch gives
// them a deterministic harness — results land in index order regardless of
// thread count or OS scheduling, and per-run seeds derive from (base seed,
// index) only — so a sweep's output is byte-identical whether it ran on 1
// thread or 16.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace swallow::sim {

struct BatchOptions {
  /// Worker count; 0 (the default) uses std::thread::hardware_concurrency.
  std::size_t threads = 0;
};

/// Deterministic per-run seed: splitmix64 over (base, index). Independent
/// of thread count and execution order, so seeded sweeps stay reproducible
/// when parallelized.
std::uint64_t batch_seed(std::uint64_t base, std::uint64_t index);

namespace detail {
void run_batch_impl(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    const BatchOptions& options);
}  // namespace detail

/// Runs fn(0) .. fn(count - 1) on a work-stealing pool and returns the
/// results in index order. Each worker drains its own queue LIFO and steals
/// FIFO from siblings when it runs dry. Every result is written into its
/// preallocated slot, so the returned vector is identical to serial
/// execution; the first exception any job throws is rethrown on the caller
/// after all workers drain. threads <= 1 runs inline (no pool).
template <typename Fn>
auto run_batch(std::size_t count, Fn&& fn, const BatchOptions& options = {})
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results(count);
  detail::run_batch_impl(
      count, [&](std::size_t i) { results[i] = fn(i); }, options);
  return results;
}

}  // namespace swallow::sim
