#include "sim/report.hpp"

#include <ostream>

namespace swallow::sim {

void write_flows_csv(std::ostream& out, const Metrics& metrics) {
  out << "flow_id,coflow_id,job_id,original_bytes,wire_bytes,arrival,"
         "completion,fct\n";
  for (const auto& f : metrics.flows) {
    out << f.id << ',' << f.coflow << ',' << f.job << ','
        << f.original_bytes << ',' << f.wire_bytes << ',' << f.arrival << ','
        << f.completion << ',' << f.fct() << '\n';
  }
}

void write_coflows_csv(std::ostream& out, const Metrics& metrics) {
  out << "coflow_id,job_id,width,original_bytes,wire_bytes,arrival,"
         "completion,cct,isolation_bound,normalized_cct,deadline,"
         "deadline_met,rejected\n";
  for (const auto& c : metrics.coflows) {
    out << c.id << ',' << c.job << ',' << c.width << ',' << c.original_bytes
        << ',' << c.wire_bytes << ',' << c.arrival << ',' << c.completion
        << ',' << c.cct() << ',' << c.isolation_bound << ','
        << c.normalized_cct() << ',' << c.deadline << ','
        << (c.deadline_met() ? 1 : 0) << ',' << (c.rejected ? 1 : 0) << '\n';
  }
}

void write_utilization_csv(std::ostream& out, const Metrics& metrics) {
  out << "t,egress_utilization\n";
  for (const auto& u : metrics.utilization)
    out << u.t << ',' << u.egress_utilization << '\n';
}

}  // namespace swallow::sim
