// CSV export of simulation metrics, for plotting outside the repo
// (gnuplot/pandas). One row per flow / coflow / utilization sample.
#pragma once

#include <iosfwd>

#include "sim/metrics.hpp"

namespace swallow::sim {

/// Columns: flow_id,coflow_id,job_id,original_bytes,wire_bytes,arrival,
/// completion,fct
void write_flows_csv(std::ostream& out, const Metrics& metrics);

/// Columns: coflow_id,job_id,width,original_bytes,wire_bytes,arrival,
/// completion,cct,isolation_bound,normalized_cct,deadline,deadline_met,
/// rejected (deadline prints "inf" for best-effort coflows)
void write_coflows_csv(std::ostream& out, const Metrics& metrics);

/// Columns: t,egress_utilization
void write_utilization_csv(std::ostream& out, const Metrics& metrics);

}  // namespace swallow::sim
