#include "sim/run_batch.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace swallow::sim {

std::uint64_t batch_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64: decorrelates adjacent indices and the base seed itself.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace detail {

namespace {

struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> jobs;
};

}  // namespace

void run_batch_impl(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    const BatchOptions& options) {
  if (count == 0) return;
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > count) threads = count;
  if (threads <= 1) {
    // Inline execution: identical semantics, no pool overhead.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // All jobs are known up front, dealt round-robin; nothing is ever
  // re-enqueued, so "every queue empty" means every job has been claimed
  // and a dry worker can exit after one failed stealing sweep.
  std::vector<WorkerQueue> queues(threads);
  for (std::size_t i = 0; i < count; ++i)
    queues[i % threads].jobs.push_back(i);

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](std::size_t self) {
    const std::size_t kNone = count;
    for (;;) {
      std::size_t job = kNone;
      {
        std::lock_guard<std::mutex> lock(queues[self].mu);
        if (!queues[self].jobs.empty()) {
          job = queues[self].jobs.back();  // own queue LIFO: warm caches
          queues[self].jobs.pop_back();
        }
      }
      for (std::size_t off = 1; off < threads && job == kNone; ++off) {
        WorkerQueue& victim = queues[(self + off) % threads];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.jobs.empty()) {
          job = victim.jobs.front();  // steal FIFO: oldest, coldest work
          victim.jobs.pop_front();
        }
      }
      if (job == kNone) return;
      try {
        body(job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail
}  // namespace swallow::sim
