// Byte-exact state serialization primitives for crash recovery.
//
// StateWriter/StateReader move POD values through a flat little-endian
// byte stream. Doubles travel as their IEEE-754 bit patterns (bit_cast to
// u64), so every simulated-time instant, byte pool and rate restores to
// the exact value it was saved from — the foundation of the kill-anywhere
// byte-identity contract (DESIGN.md section 13). The reader is fully
// bounds-checked: any truncated, oversized or type-skewed input surfaces
// as a typed RecoveryError carrying the byte offset, never as UB (the
// loader fuzz tests in test_recovery run this under ASan/UBSan).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace swallow::recovery {

/// Any failure of the recovery machinery: truncated or corrupted snapshot
/// or journal bytes, version skew, config/trace mismatch between the
/// snapshot and the restoring run, or a journal record that contradicts
/// the deterministically replayed event stream.
class RecoveryError : public std::runtime_error {
 public:
  /// `offset` is the byte position in the offending stream when the error
  /// is about malformed bytes; npos (the default) when it is semantic.
  static constexpr std::uint64_t npos = ~std::uint64_t{0};
  explicit RecoveryError(const std::string& what,
                         std::uint64_t offset = npos)
      : std::runtime_error(offset == npos
                               ? what
                               : what + " (at byte offset " +
                                     std::to_string(offset) + ")"),
        offset_(offset) {}

  std::uint64_t offset() const { return offset_; }

 private:
  std::uint64_t offset_;
};

/// Appends little-endian primitives to a growing byte buffer.
class StateWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  const std::vector<std::uint8_t>& buffer() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked reader over a byte span; throws RecoveryError (with the
/// current offset) instead of reading past the end.
class StateReader {
 public:
  explicit StateReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n, "string payload");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Length-prefix guard: a count about to drive a reserve/resize must be
  /// storable in the remaining bytes (at >= 1 byte per element), so a
  /// corrupted length can never become a reserve bomb.
  std::uint64_t count(const char* what) {
    const std::uint64_t n = u64();
    if (n > remaining())
      throw RecoveryError(std::string("recovery: implausible ") + what +
                              " count " + std::to_string(n),
                          pos_);
    return n;
  }

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n, const char* what) {
    if (data_.size() - pos_ < n)
      throw RecoveryError(std::string("recovery: truncated stream reading ") +
                              what,
                          pos_);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace swallow::recovery
