// Versioned, checksummed snapshot files.
//
// A snapshot wraps an opaque state payload (produced by the engine's or
// the runtime master's save_state) in the codec frame container, which
// gives per-block FNV-1a checksums and transparent compression for free:
//
//   'S''W''S''N' | u32le version | u64le config_fingerprint |
//   codec::frame(payload)
//
// The config fingerprint hashes everything that must match between the
// saving and restoring run (trace, scheduler, SimConfig knobs); restoring
// against a different configuration is a semantic error, caught up front
// instead of as silent divergence. Writes are atomic (tmp file + rename),
// so a crash mid-snapshot leaves either no file or a complete one — and a
// directory of `snap-<seq>.swsnap` files is scanned newest-first, skipping
// invalid entries, so a torn or corrupted newest snapshot falls back to
// the previous (or to a cold start, which determinism makes equally
// correct, merely slower).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "recovery/state_io.hpp"

namespace swallow::recovery {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotMeta {
  std::uint64_t seq = 0;          // checkpoint sequence number
  std::uint32_t version = kSnapshotVersion;
  std::uint64_t fingerprint = 0;  // config/trace fingerprint
};

/// Injection point for the mid-snapshot crash test: called between the
/// partial tmp-file write and the rename. Null in production.
struct SnapshotCrashHook {
  virtual ~SnapshotCrashHook() = default;
  virtual void on_tmp_written(const std::string& tmp_path) = 0;
};

/// Writes `payload` as snapshot file `dir/snap-<seq>.swsnap` atomically.
/// Throws RecoveryError on I/O failure. `crash_hook`, when set, fires
/// after the tmp file hits disk but before the rename (so a hook that
/// throws models a crash mid-snapshot: the tmp file is left behind, the
/// published name never appears).
void write_snapshot(const std::string& dir, const SnapshotMeta& meta,
                    std::span<const std::uint8_t> payload,
                    SnapshotCrashHook* crash_hook = nullptr);

/// Parses one snapshot file; throws RecoveryError (with offset where
/// meaningful) on truncation, corruption, or version/fingerprint skew.
/// `expected_fingerprint` of 0 skips the fingerprint check.
struct LoadedSnapshot {
  SnapshotMeta meta;
  std::vector<std::uint8_t> payload;
};
LoadedSnapshot read_snapshot(const std::string& path,
                             std::uint64_t expected_fingerprint = 0);

/// Scans `dir` for `snap-*.swsnap` files and loads the newest (highest
/// seq) that parses and matches the fingerprint, skipping torn/corrupt
/// candidates. Returns nullopt when none qualifies (cold start).
std::optional<LoadedSnapshot> load_latest_snapshot(
    const std::string& dir, std::uint64_t expected_fingerprint = 0);

/// Path a given sequence number publishes to.
std::string snapshot_path(const std::string& dir, std::uint64_t seq);

/// FNV-1a-based fingerprint builder for config/trace identity. Order of
/// mix calls is part of the fingerprint.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v);
  Fingerprint& mix(double v);
  Fingerprint& mix(const std::string& s);
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV offset basis
};

}  // namespace swallow::recovery
