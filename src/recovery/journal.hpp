// Write-ahead event journal.
//
// Every discrete event the engine is about to apply — arrival, flow or
// coflow completion, capacity change, admission verdict, deadline shed,
// checkpoint marker — is appended (and flushed) to the journal BEFORE the
// state mutation happens. Because the simulator is deterministic, the
// journal's primary recovery role is as a cross-check rather than a redo
// log: after restoring a snapshot the engine regenerates the event stream
// and verifies each regenerated event against the journal suffix, turning
// any snapshot/config/trace mismatch into a typed RecoveryError instead
// of a silently divergent run. A record journaled but never applied
// (crash between append and apply) is harmless: the regenerated stream
// reproduces it exactly.
//
// On-disk layout, per record:
//   u32le payload_len | u64le fnv1a64(payload) | payload bytes
// A reader stops cleanly at the first truncated or checksum-failing
// record (torn tail from a crash mid-append); corruption strictly before
// the tail still throws, because a torn *middle* cannot be produced by a
// crash and indicates real damage.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "recovery/state_io.hpp"

namespace swallow::recovery {

enum class JournalType : std::uint8_t {
  kArrival = 1,          // a: coflow trace id, b: flow count
  kFlowComplete = 2,     // a: flow id, b: coflow trace id
  kCoflowComplete = 3,   // a: coflow trace id
  kCapacityChange = 4,   // a: port id, x: new multiplier
  kAdmissionVerdict = 5, // a: coflow trace id, b: verdict code, x: slack
  kShed = 6,             // a: coflow trace id
  kCheckpoint = 7,       // a: snapshot sequence number (scheduling round)
};

struct JournalRecord {
  std::uint64_t seq = 0;   // strictly increasing record number
  JournalType type = JournalType::kArrival;
  double time = 0.0;       // simulated time of the event
  std::uint64_t a = 0;     // type-specific payload (ids, counts)
  std::uint64_t b = 0;
  double x = 0.0;          // type-specific scalar (e.g. capacity multiplier)

  bool operator==(const JournalRecord&) const = default;
};

/// Appends records to a journal file, flushing after every record so the
/// write truly happens ahead of the state mutation. Opens in append mode:
/// a restored run continues the same file past the replay point.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens (creating or appending). Throws RecoveryError on I/O failure.
  void open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }

  /// Appends one record and flushes. Throws RecoveryError on I/O failure.
  void append(const JournalRecord& rec);

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Reads every valid record from a journal file. A torn tail (truncated
/// or checksum-failing final record — the normal signature of a crash
/// mid-append) ends the scan cleanly and is reported via `torn`; malformed
/// bytes with further valid records after them throw RecoveryError.
struct JournalScan {
  std::vector<JournalRecord> records;
  bool torn = false;           // file ended in a partial/corrupt record
  std::uint64_t valid_bytes = 0;  // prefix length covering `records`
};

JournalScan read_journal(const std::string& path);

/// Truncates the journal file to its valid prefix (drops a torn tail) so
/// a subsequent JournalWriter::open appends after the last good record.
/// No-op when the file is already clean. Throws RecoveryError on I/O
/// failure.
void truncate_torn_tail(const std::string& path, const JournalScan& scan);

/// Serializes one record into `w` / parses one from `r` (payload bytes
/// only; framing is the writer/reader's job). Exposed for tests.
void encode_record(StateWriter& w, const JournalRecord& rec);
JournalRecord decode_record(StateReader& r);

const char* journal_type_name(JournalType type);

}  // namespace swallow::recovery
