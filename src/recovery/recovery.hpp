// Recovery configuration and the crash-injection harness.
//
// RecoveryOptions plugs into SimConfig (and the trace_replay CLI as
// --checkpoint-every / --recovery-dir / --restore): the engine writes a
// snapshot every N scheduling rounds at its natural fold points and
// appends every discrete event to the write-ahead journal first.
//
// CrashPlan simulates the crash itself, deterministically: kill exactly
// at the Nth journaled event, kill mid-snapshot (after the tmp write,
// before the rename), or tear the last M bytes off the journal tail at
// crash time. In-process the "kill" is a thrown CrashError — the same
// non-local exit a SIGKILL gives the persistent files, since every
// journal append is flushed and snapshots publish atomically; across a
// process boundary trace_replay converts CrashError into exit code 42
// for the CI cmp gate.
#pragma once

#include <cstdint>
#include <string>

#include "recovery/state_io.hpp"

namespace swallow::recovery {

/// Thrown at an injected crash point. Deliberately NOT a RecoveryError:
/// a crash is the event under test, not a recovery failure.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& what) : std::runtime_error(what) {}
};

/// Deterministic crash injection. Default-constructed = never crash.
struct CrashPlan {
  /// Crash immediately after appending the Nth journal record (1-based;
  /// 0 = disabled). The record is on disk, its mutation never applies —
  /// the worst-case write-ahead window.
  std::uint64_t kill_at_event = 0;

  /// Crash after the Nth snapshot's tmp file is written but before it is
  /// renamed into place (1-based; 0 = disabled).
  std::uint64_t kill_mid_snapshot = 0;

  /// At crash time, additionally truncate this many bytes off the journal
  /// tail, modeling an append that only partially reached the disk.
  std::uint64_t torn_tail_bytes = 0;

  bool enabled() const { return kill_at_event > 0 || kill_mid_snapshot > 0; }
};

struct RecoveryOptions {
  /// Snapshot every N scheduling rounds (0 = no snapshots). Checkpoints
  /// happen only at post-schedule fold points, so they never perturb the
  /// byte-identity of the simulation itself.
  std::uint64_t checkpoint_every = 0;

  /// Directory for snapshot files and the event journal. Empty disables
  /// all persistence (and restore).
  std::string dir;

  /// Maintain the write-ahead journal (requires `dir`).
  bool journal = true;

  /// Start by restoring the newest valid snapshot in `dir` (cold start
  /// if none) and verify regenerated events against the journal suffix.
  bool restore = false;

  /// Crash injection for tests/CI; not owned.
  const CrashPlan* crash = nullptr;

  bool persistence_enabled() const {
    return !dir.empty() && (checkpoint_every > 0 || journal);
  }
};

}  // namespace swallow::recovery
