#include "recovery/snapshot.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "codec/codec.hpp"
#include "codec/frame.hpp"

namespace swallow::recovery {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'W', 'S', 'N'};
constexpr std::size_t kHeaderSize = 4 + 8 + 4 + 8;  // magic|seq|version|fpr

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    throw RecoveryError("snapshot: cannot open '" + path +
                        "': " + std::strerror(errno));
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[64 * 1024];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    data.insert(data.end(), chunk, chunk + n);
  std::fclose(f);
  return data;
}

}  // namespace

Fingerprint& Fingerprint::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xff;
    h_ *= 1099511628211ull;
  }
  return *this;
}

Fingerprint& Fingerprint::mix(double v) {
  return mix(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::mix(const std::string& s) {
  mix(static_cast<std::uint64_t>(s.size()));
  for (unsigned char c : s) {
    h_ ^= c;
    h_ *= 1099511628211ull;
  }
  return *this;
}

std::string snapshot_path(const std::string& dir, std::uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof name, "snap-%012llu.swsnap",
                static_cast<unsigned long long>(seq));
  return (fs::path(dir) / name).string();
}

void write_snapshot(const std::string& dir, const SnapshotMeta& meta,
                    std::span<const std::uint8_t> payload,
                    SnapshotCrashHook* crash_hook) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw RecoveryError("snapshot: cannot create directory '" + dir +
                        "': " + ec.message());

  StateWriter out;
  out.bytes(std::span<const std::uint8_t>(kMagic, 4));
  out.u64(meta.seq);
  out.u32(meta.version);
  out.u64(meta.fingerprint);
  // LZ framing keeps large engine states small on disk; the frame's
  // per-block checksums are the corruption guard.
  auto codec = codec::make_codec(codec::CodecKind::kLzFast);
  out.bytes(codec::frame_compress(*codec, payload));

  const std::string final_path = snapshot_path(dir, meta.seq);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (!f)
    throw RecoveryError("snapshot: cannot create '" + tmp_path +
                        "': " + std::strerror(errno));
  const auto& buf = out.buffer();
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed)
    throw RecoveryError("snapshot: short write to '" + tmp_path +
                        "': " + std::strerror(errno));

  if (crash_hook) crash_hook->on_tmp_written(tmp_path);

  fs::rename(tmp_path, final_path, ec);
  if (ec)
    throw RecoveryError("snapshot: cannot publish '" + final_path +
                        "': " + ec.message());
}

LoadedSnapshot read_snapshot(const std::string& path,
                             std::uint64_t expected_fingerprint) {
  const std::vector<std::uint8_t> data = read_file(path);
  if (data.size() < kHeaderSize)
    throw RecoveryError("snapshot: '" + path + "' truncated before header",
                        data.size());
  StateReader r(data);
  for (int i = 0; i < 4; ++i)
    if (r.u8() != kMagic[i])
      throw RecoveryError("snapshot: '" + path + "' has bad magic", 0);

  LoadedSnapshot snap;
  snap.meta.seq = r.u64();
  snap.meta.version = r.u32();
  snap.meta.fingerprint = r.u64();
  if (snap.meta.version != kSnapshotVersion)
    throw RecoveryError("snapshot: '" + path + "' is format version " +
                            std::to_string(snap.meta.version) +
                            ", this build reads version " +
                            std::to_string(kSnapshotVersion),
                        4 + 8);
  if (expected_fingerprint != 0 &&
      snap.meta.fingerprint != expected_fingerprint)
    throw RecoveryError(
        "snapshot: '" + path +
            "' was taken under a different configuration/trace "
            "(fingerprint mismatch)",
        4 + 8 + 4);

  std::span<const std::uint8_t> frame(data.data() + r.offset(),
                                      data.size() - r.offset());
  try {
    snap.payload = codec::frame_decompress(frame);
  } catch (const codec::CodecError& e) {
    throw RecoveryError("snapshot: '" + path +
                            "' payload frame is corrupt: " + e.what(),
                        r.offset());
  }
  return snap;
}

std::optional<LoadedSnapshot> load_latest_snapshot(
    const std::string& dir, std::uint64_t expected_fingerprint) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return std::nullopt;

  std::vector<std::string> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with("snap-") && name.ends_with(".swsnap"))
      candidates.push_back(entry.path().string());
  }
  // Names embed zero-padded seq, so lexicographic descending = newest
  // first.
  std::sort(candidates.rbegin(), candidates.rend());
  for (const std::string& path : candidates) {
    try {
      return read_snapshot(path, expected_fingerprint);
    } catch (const RecoveryError&) {
      // Torn/corrupt/mismatched snapshot: fall back to the next-newest.
      continue;
    }
  }
  return std::nullopt;
}

}  // namespace swallow::recovery
