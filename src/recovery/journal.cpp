#include "recovery/journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "codec/frame.hpp"

namespace swallow::recovery {

namespace {

constexpr std::size_t kFrameHeader = 4 + 8;  // u32 len + u64 checksum
// A record payload is seq,type,time,a,b,x — 41 bytes today. Anything
// wildly larger is corruption, not a future format; cap it so a flipped
// length byte cannot drive a giant allocation.
constexpr std::uint32_t kMaxPayload = 4096;

}  // namespace

void encode_record(StateWriter& w, const JournalRecord& rec) {
  w.u64(rec.seq);
  w.u8(static_cast<std::uint8_t>(rec.type));
  w.f64(rec.time);
  w.u64(rec.a);
  w.u64(rec.b);
  w.f64(rec.x);
}

JournalRecord decode_record(StateReader& r) {
  JournalRecord rec;
  rec.seq = r.u64();
  const std::uint8_t t = r.u8();
  if (t < static_cast<std::uint8_t>(JournalType::kArrival) ||
      t > static_cast<std::uint8_t>(JournalType::kCheckpoint))
    throw RecoveryError("journal: unknown record type " + std::to_string(t),
                        r.offset());
  rec.type = static_cast<JournalType>(t);
  rec.time = r.f64();
  rec.a = r.u64();
  rec.b = r.u64();
  rec.x = r.f64();
  return rec;
}

const char* journal_type_name(JournalType type) {
  switch (type) {
    case JournalType::kArrival: return "arrival";
    case JournalType::kFlowComplete: return "flow_complete";
    case JournalType::kCoflowComplete: return "coflow_complete";
    case JournalType::kCapacityChange: return "capacity_change";
    case JournalType::kAdmissionVerdict: return "admission_verdict";
    case JournalType::kShed: return "shed";
    case JournalType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_)
    throw RecoveryError("journal: cannot open '" + path +
                        "': " + std::strerror(errno));
  path_ = path;
}

void JournalWriter::append(const JournalRecord& rec) {
  if (!file_) throw RecoveryError("journal: append on closed writer");
  StateWriter payload;
  encode_record(payload, rec);
  StateWriter framed;
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.u64(codec::fnv1a64(payload.buffer()));
  framed.bytes(payload.buffer());
  const auto& buf = framed.buffer();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size() ||
      std::fflush(file_) != 0)
    throw RecoveryError("journal: write to '" + path_ +
                        "' failed: " + std::strerror(errno));
}

void JournalWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

JournalScan read_journal(const std::string& path) {
  JournalScan scan;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return scan;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    throw RecoveryError("journal: cannot open '" + path +
                        "': " + std::strerror(errno));
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[64 * 1024];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    data.insert(data.end(), chunk, chunk + n);
  std::fclose(f);

  StateReader r(data);
  std::uint64_t expect_seq = 0;
  bool first = true;
  while (!r.at_end()) {
    const std::uint64_t start = r.offset();
    // Tail detection: anything short/corrupt from here to EOF is a torn
    // append — unless a later record parses, which we only learn by
    // finishing the scan, so a mid-file checksum failure throws below.
    if (r.remaining() < kFrameHeader) {
      scan.torn = true;
      break;
    }
    const std::uint32_t len = r.u32();
    const std::uint64_t checksum = r.u64();
    if (len > kMaxPayload || r.remaining() < len) {
      scan.torn = true;
      scan.valid_bytes = start;
      return scan;
    }
    std::span<const std::uint8_t> payload(data.data() + r.offset(), len);
    if (codec::fnv1a64(payload) != checksum) {
      if (r.offset() + len == data.size()) {
        // Exactly the final record: a crash mid-append / torn tail.
        scan.torn = true;
        scan.valid_bytes = start;
        return scan;
      }
      throw RecoveryError("journal: checksum mismatch mid-file in '" + path +
                              "'",
                          start);
    }
    StateReader body(payload);
    JournalRecord rec = decode_record(body);
    if (!body.at_end())
      throw RecoveryError("journal: trailing bytes in record payload", start);
    if (!first && rec.seq != expect_seq)
      throw RecoveryError("journal: sequence gap in '" + path + "' (expected " +
                              std::to_string(expect_seq) + ", found " +
                              std::to_string(rec.seq) + ")",
                          start);
    first = false;
    expect_seq = rec.seq + 1;
    for (std::size_t i = 0; i < len; ++i) r.u8();  // consume payload
    scan.records.push_back(rec);
    scan.valid_bytes = r.offset();
  }
  return scan;
}

void truncate_torn_tail(const std::string& path, const JournalScan& scan) {
  if (!scan.torn) return;
  std::error_code ec;
  std::filesystem::resize_file(path, scan.valid_bytes, ec);
  if (ec)
    throw RecoveryError("journal: cannot truncate torn tail of '" + path +
                        "': " + ec.message());
}

}  // namespace swallow::recovery
