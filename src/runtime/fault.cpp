#include "runtime/fault.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::runtime {

namespace {

/// splitmix64-style avalanche of (seed, kind, block, attempt) into one
/// 64-bit stream seed. Multiplicative constants are the splitmix64 ones.
std::uint64_t mix64(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) {
  std::uint64_t x = seed;
  x ^= a * 0x9e3779b97f4a7c15ULL;
  x ^= b * 0xbf58476d1ce4e5b9ULL;
  x ^= c * 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCodecFail: return "codec_fail";
    case FaultKind::kWorkerKill: return "worker_kill";
  }
  return "unknown";
}

common::Seconds backoff_delay(const RetryPolicy& retry, int attempt,
                              common::Rng& rng) {
  double delay = retry.base_backoff;
  for (int i = 1; i < attempt; ++i) delay *= retry.backoff_multiplier;
  delay = std::min(delay, retry.max_backoff);
  return delay * (1.0 - retry.jitter * rng.uniform());
}

const char* shuffle_failure_name(ShuffleFailure kind) {
  switch (kind) {
    case ShuffleFailure::kVerification: return "verification";
    case ShuffleFailure::kPullTimeout: return "pull_timeout";
    case ShuffleFailure::kCorruption: return "corruption";
    case ShuffleFailure::kCodecFailure: return "codec_failure";
  }
  return "unknown";
}

ShuffleError::ShuffleError(ShuffleFailure kind, CoflowRef coflow,
                           RtFlowId flow, BlockId block)
    : std::runtime_error(std::string("shuffle: ") +
                         shuffle_failure_name(kind) + " (coflow " +
                         std::to_string(coflow) + ", flow " +
                         std::to_string(flow) + ", block " +
                         std::to_string(block) + ")"),
      kind_(kind),
      coflow_(coflow),
      flow_(flow),
      block_(block) {}

void FaultCounters::mirror(const char* name) const {
  if (sink_ != nullptr) sink_->registry().counter(name).add(1);
}

void FaultCounters::on_injected(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: drops_.fetch_add(1); break;
    case FaultKind::kCorrupt: corruptions_.fetch_add(1); break;
    case FaultKind::kStall: stalls_.fetch_add(1); break;
    case FaultKind::kCodecFail: codec_failures_.fetch_add(1); break;
    case FaultKind::kWorkerKill: kills_.fetch_add(1); break;
  }
  mirror("runtime.faults_injected");
}

void FaultCounters::on_retry() {
  retries_.fetch_add(1);
  mirror("runtime.retries");
}

void FaultCounters::on_retransmit() {
  retransmits_.fetch_add(1);
  mirror("runtime.retransmits");
}

void FaultCounters::on_corrupt_frame() {
  corrupt_frames_.fetch_add(1);
  mirror("runtime.corrupt_frames");
}

void FaultCounters::on_pull_timeout() {
  pull_timeouts_.fetch_add(1);
  mirror("runtime.pull_timeouts");
}

FaultStats FaultCounters::snapshot() const {
  FaultStats stats;
  stats.injected_drops = drops_.load();
  stats.injected_corruptions = corruptions_.load();
  stats.injected_stalls = stalls_.load();
  stats.injected_codec_failures = codec_failures_.load();
  stats.worker_kills = kills_.load();
  stats.retries = retries_.load();
  stats.retransmits = retransmits_.load();
  stats.corrupt_frames = corrupt_frames_.load();
  stats.pull_timeouts = pull_timeouts_.load();
  return stats;
}

FaultInjector::FaultInjector(const FaultConfig& config,
                             FaultCounters* counters, obs::Sink* sink)
    : config_(config), counters_(counters), sink_(sink) {}

double FaultInjector::rate_of(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kDrop: return config_.drop_rate;
    case FaultKind::kCorrupt: return config_.corrupt_rate;
    case FaultKind::kStall: return config_.stall_rate;
    case FaultKind::kCodecFail: return config_.codec_fail_rate;
    case FaultKind::kWorkerKill: return 0;  // point-triggered, not a rate
  }
  return 0;
}

bool FaultInjector::fires(FaultKind kind, BlockId block, int attempt) const {
  if (!config_.enabled) return false;
  const double rate = rate_of(kind);
  if (rate <= 0) return false;
  common::Rng rng(mix64(config_.seed, static_cast<std::uint64_t>(kind) + 1,
                        block, static_cast<std::uint64_t>(attempt)));
  return rng.uniform() < rate;
}

bool FaultInjector::inject(FaultKind kind, BlockId block, int attempt) {
  if (!fires(kind, block, attempt)) return false;
  if (counters_ != nullptr) counters_->on_injected(kind);
  if (sink_ != nullptr)
    obs::emit_instant(sink_, obs::wall_now_us(),
                      std::string("fault.") + fault_kind_name(kind), "fault",
                      obs::Args()
                          .add("block", block)
                          .add("attempt", attempt)
                          .str(),
                      obs::kWallPid, obs::current_thread_tid());
  return true;
}

void FaultInjector::corrupt(std::span<std::uint8_t> wire, BlockId block,
                            int attempt) const {
  // Frame layout: 4-byte magic, then codec id / sizes / checksums / payload.
  // Flip one byte past the magic so decoding proceeds far enough to hit the
  // per-block validation instead of dying on is_frame().
  constexpr std::size_t kMagicBytes = 4;
  if (wire.size() <= kMagicBytes) return;
  const std::uint64_t h = mix64(config_.seed, 0x5bd1e995, block,
                                static_cast<std::uint64_t>(attempt));
  const std::size_t offset =
      kMagicBytes + static_cast<std::size_t>(h % (wire.size() - kMagicBytes));
  wire[offset] ^= 0xFF;
}

bool FaultInjector::count_delivery_and_check_kill() {
  const std::size_t delivered = deliveries_.fetch_add(1) + 1;
  if (!config_.enabled || !config_.kill_enabled) return false;
  if (delivered < config_.kill_after_deliveries) return false;
  if (kill_fired_.exchange(true)) return false;
  return true;
}

void RetentionStore::retain(BlockKey key, WorkerId src, WorkerId dst,
                            std::span<const std::uint8_t> raw) {
  Retained entry{src, dst, codec::Buffer(raw.begin(), raw.end())};
  std::lock_guard<std::mutex> lock(mutex_);
  blocks_[key] = std::move(entry);
}

std::optional<RetentionStore::Retained> RetentionStore::lookup(
    BlockKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blocks_.find(key);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

std::vector<BlockKey> RetentionStore::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BlockKey> out;
  out.reserve(blocks_.size());
  for (const auto& [key, retained] : blocks_) out.push_back(key);
  return out;
}

std::size_t RetentionStore::drop_coflow(CoflowRef coflow) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t freed = 0;
  for (auto it = blocks_.lower_bound({coflow, 0});
       it != blocks_.end() && it->first.coflow == coflow;) {
    freed += it->second.raw.size();
    it = blocks_.erase(it);
  }
  return freed;
}

std::size_t RetentionStore::block_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

std::size_t RetentionStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, entry] : blocks_) total += entry.raw.size();
  return total;
}

}  // namespace swallow::runtime
