// The Swallow master: aggregates coflow information from the workers and
// turns the FVDF heuristic into runtime decisions — a coflow service order
// (ranks for the port gates) and a per-flow compression switch (Eq. 3
// against the cluster's NIC speed and measured codec parameters).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "codec/codec_model.hpp"
#include "runtime/worker.hpp"

namespace swallow::runtime {

/// Aggregated coflow information (Table IV: output of aggregate()).
struct CoflowInfo {
  CoflowRef ref = 0;  ///< assigned by Master::add
  std::vector<FlowInfo> flows;
  std::size_t total_bytes() const;
};

struct FlowDecision {
  bool compress = false;
  common::Bps rate = 0;  ///< advisory per-flow rate (NIC-capped)
};

/// Output of scheduling() (Table IV's schResult): the coflow service order
/// and the per-flow decisions.
struct SchedResult {
  std::vector<CoflowRef> order;  ///< highest priority first
  std::map<RtFlowId, FlowDecision> decisions;
};

class Master {
 public:
  /// `nic_rate` is the per-worker NIC speed (the B of Eq. 3); `codec` the
  /// model whose (R, xi) gate compression; `cpu_headroom` the assumed idle
  /// CPU share; `compression` mirrors swallow.smartCompress. `sink`
  /// (optional) receives per-decision trace events and profiling data.
  Master(common::Bps nic_rate, codec::CodecModel codec, double cpu_headroom,
         bool compression, obs::Sink* sink = nullptr);

  CoflowRef add(CoflowInfo info);
  void remove(CoflowRef ref);

  /// FVDF: coflows ordered by expected completion (volume after optional
  /// compression over the NIC bottleneck), shortest first, adjusted by the
  /// priority classes which are upgraded on every call (Pseudocode 3).
  SchedResult scheduling(const std::vector<CoflowRef>& refs);

  /// Applies a scheduling result: ranks become the port-gate priorities.
  void alloc(const SchedResult& result);

  /// Gate rank of a coflow (position in the last applied order; coflows
  /// never scheduled sort after scheduled ones, by ref).
  std::uint64_t rank_of(CoflowRef ref) const;

  /// Compression decision for a flow (false if never scheduled).
  FlowDecision decision_of(RtFlowId flow) const;

  std::size_t active_coflows() const;

 private:
  struct Entry {
    CoflowInfo info;
    double priority = 1.0;
  };

  mutable std::mutex mutex_;
  common::Bps nic_rate_;
  codec::CodecModel codec_;
  double cpu_headroom_;
  bool compression_;
  obs::Sink* sink_;
  CoflowRef next_ref_ = 1;
  std::map<CoflowRef, Entry> coflows_;
  std::map<CoflowRef, std::uint64_t> ranks_;
  std::map<RtFlowId, FlowDecision> decisions_;
};

}  // namespace swallow::runtime
