// The Swallow master: aggregates coflow information from the workers and
// turns the FVDF heuristic into runtime decisions — a coflow service order
// (ranks for the port gates) and a per-flow compression switch (Eq. 3
// against the cluster's NIC speed and measured codec parameters).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "codec/codec_model.hpp"
#include "recovery/state_io.hpp"
#include "runtime/worker.hpp"

namespace swallow::runtime {

/// Aggregated coflow information (Table IV: output of aggregate()).
struct CoflowInfo {
  CoflowRef ref = 0;  ///< assigned by Master::add
  std::vector<FlowInfo> flows;
  std::size_t total_bytes() const;
};

struct FlowDecision {
  bool compress = false;
  common::Bps rate = 0;  ///< advisory per-flow rate (NIC-capped)
  /// Graceful degradation: true once repeated codec/corruption failures
  /// made the master flip this flow to uncompressed (compress stays false
  /// for the rest of the flow's life, including re-scheduling).
  bool degraded = false;
};

/// Output of scheduling() (Table IV's schResult): the coflow service order
/// and the per-flow decisions.
struct SchedResult {
  std::vector<CoflowRef> order;  ///< highest priority first
  std::map<RtFlowId, FlowDecision> decisions;
};

class Master {
 public:
  /// `nic_rate` is the per-worker NIC speed (the B of Eq. 3); `codec` the
  /// model whose (R, xi) gate compression; `cpu_headroom` the assumed idle
  /// CPU share; `compression` mirrors swallow.smartCompress. `sink`
  /// (optional) receives per-decision trace events and profiling data.
  /// `degrade_after` is the failure count at which a flow degrades to
  /// uncompressed (RetryPolicy::degrade_after); <= 0 disables degradation.
  Master(common::Bps nic_rate, codec::CodecModel codec, double cpu_headroom,
         bool compression, obs::Sink* sink = nullptr, int degrade_after = 2);

  CoflowRef add(CoflowInfo info);
  void remove(CoflowRef ref);

  /// FVDF: coflows ordered by expected completion (volume after optional
  /// compression over the NIC bottleneck), shortest first, adjusted by the
  /// priority classes which are upgraded on every call (Pseudocode 3).
  SchedResult scheduling(const std::vector<CoflowRef>& refs);

  /// Applies a scheduling result: ranks become the port-gate priorities.
  void alloc(const SchedResult& result);

  /// Gate rank of a coflow (position in the last applied order; coflows
  /// never scheduled sort after scheduled ones, by ref).
  std::uint64_t rank_of(CoflowRef ref) const;

  /// Compression decision for a flow (false if never scheduled).
  FlowDecision decision_of(RtFlowId flow) const;

  /// Recovery ladder: records one codec/corruption failure against a flow.
  /// On reaching the configured threshold the decision flips to
  /// uncompressed (degraded) — retransmits then take the cheap, robust
  /// path — and the change is counted (runtime.degraded_flows) and traced
  /// (`fault` category flow_degraded event). Returns the new count.
  int record_flow_failure(RtFlowId flow);

  std::size_t active_coflows() const;
  std::size_t degraded_flows() const;

  // ---- Crash-fault tolerance (DESIGN.md section 13) ----

  /// Serializes the master's full bookkeeping — registered coflows with
  /// their priority classes, the applied rank order, per-flow decisions,
  /// ownership and failure counts — in deterministic (key-sorted) order.
  void save_state(recovery::StateWriter& w) const;
  /// Rebuilds the bookkeeping from save_state bytes; throws RecoveryError
  /// on malformed input. Replaces any existing state.
  void restore_state(recovery::StateReader& r);

  /// Publishes a checksummed `snap-<seq>.swsnap` of save_state() in `dir`
  /// (atomic tmp+rename, LZ-framed; see recovery/snapshot.hpp).
  void checkpoint(const std::string& dir, std::uint64_t seq) const;
  /// Loads the newest usable snapshot in `dir` (fingerprint-checked
  /// against this master's configuration) into this master. Returns false
  /// — leaving the master untouched — when no usable snapshot exists.
  bool restore_from(const std::string& dir);

  /// Identity of the configuration the snapshots are only valid under
  /// (NIC rate, codec model, headroom, compression and degradation knobs).
  std::uint64_t config_fingerprint() const;

  /// Fail-over re-registration: re-inserts a coflow under its ORIGINAL ref
  /// (receivers blocked in pull() hold that ref) when a replacement master
  /// cold-starts from the workers' registration logs. No-op if the ref is
  /// already present (the snapshot got there first). Priority restarts at
  /// the base class — the upgrade ladder re-ages it.
  void restore_coflow(CoflowRef ref, CoflowInfo info);

  bool has_coflow(CoflowRef ref) const;
  /// Flow ids of a registered coflow (empty if unknown); the driver uses
  /// this on remove() to prune the workers' registration logs.
  std::vector<RtFlowId> flows_of(CoflowRef ref) const;

  /// Bookkeeping sizes, exposed so tests can assert remove() leaves no
  /// stale ranks/decisions behind across job lifecycles.
  std::size_t decision_count() const;
  std::size_t rank_count() const;

 private:
  struct Entry {
    CoflowInfo info;
    double priority = 1.0;
  };

  bool degraded_locked(RtFlowId flow) const;

  mutable std::mutex mutex_;
  common::Bps nic_rate_;
  codec::CodecModel codec_;
  double cpu_headroom_;
  bool compression_;
  obs::Sink* sink_;
  int degrade_after_;
  std::size_t degraded_count_ = 0;
  CoflowRef next_ref_ = 1;
  std::map<CoflowRef, Entry> coflows_;
  std::map<CoflowRef, std::uint64_t> ranks_;
  std::map<RtFlowId, FlowDecision> decisions_;
  /// flow -> owning coflow; guards alloc() against resurrecting decisions
  /// of a coflow removed between scheduling() and alloc().
  std::map<RtFlowId, CoflowRef> flow_owner_;
  std::map<RtFlowId, int> flow_failures_;
};

}  // namespace swallow::runtime
