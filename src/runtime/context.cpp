#include "runtime/context.hpp"

#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>

#include "codec/frame.hpp"
#include "codec/null_codec.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::runtime {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      codec_(codec::make_codec(config.codec)),
      master_(config.nic_rate, config.codec_model, config.cpu_headroom,
              config.smart_compress, config.sink, config.retry.degrade_after),
      injector_(config.fault, &fault_counters_, config.sink) {
  if (config.num_workers == 0)
    throw std::invalid_argument("Cluster: zero workers");
  fault_counters_.set_sink(config.sink);
  if (config.chunk_bytes > 0)
    chunk_pool_ = std::make_unique<codec::ChunkPool>(config.codec_threads,
                                                     config.sink);
  ledger_.set_sink(config.sink);
  workers_.reserve(config.num_workers);
  for (std::size_t i = 0; i < config.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        static_cast<WorkerId>(i), config.nic_rate, config.sink));
    workers_.back()->egress_gate().set_holder_timeout(
        config.retry.gate_holder_timeout);
  }
}

Worker& Cluster::worker(WorkerId id) { return *workers_.at(id); }

std::size_t Cluster::total_wire_bytes() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->wire_bytes_sent();
  return total;
}

std::size_t Cluster::total_raw_bytes() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->raw_bytes_sent();
  return total;
}

void Cluster::kill_worker(WorkerId id) {
  if (id >= workers_.size()) return;
  Worker& victim = *workers_[id];
  if (victim.dead()) return;
  std::size_t alive = 0;
  for (const auto& w : workers_)
    if (!w->dead()) ++alive;
  if (alive <= 1) return;  // someone must survive to route around the dead
  victim.mark_dead();
  victim.store().clear();
  fault_counters_.on_injected(FaultKind::kWorkerKill);
  if (config_.sink != nullptr) {
    config_.sink->registry().counter("runtime.worker_kills").add(1);
    obs::emit_instant(config_.sink, obs::wall_now_us(), "fault.worker_kill",
                      "fault",
                      obs::Args()
                          .add("worker", static_cast<std::uint64_t>(id))
                          .str(),
                      obs::kWallPid, obs::current_thread_tid());
  }
}

bool Cluster::worker_dead(WorkerId id) const {
  return id < workers_.size() && workers_[id]->dead();
}

WorkerId Cluster::effective_worker(WorkerId id) const {
  const auto n = static_cast<WorkerId>(workers_.size());
  for (WorkerId k = 0; k < n; ++k) {
    const WorkerId candidate = static_cast<WorkerId>((id + k) % n);
    if (!workers_[candidate]->dead()) return candidate;
  }
  return id;  // unreachable: kill_worker never kills the last survivor
}

bool Cluster::restore_master(const std::string& dir) {
  const bool from_snapshot = master_.restore_from(dir);

  // Cold half of the fail-over: flows the snapshot missed (or everything,
  // when no snapshot loaded) are re-announced from the workers' logs. The
  // original CoflowRef is recovered from the retention keys — block id ==
  // flow id throughout the runtime.
  std::map<RtFlowId, FlowInfo> by_flow;
  for (const auto& w : workers_) {
    if (w->dead()) continue;
    for (const FlowInfo& f : w->registration_log()) by_flow[f.flow_id] = f;
  }
  std::map<CoflowRef, CoflowInfo> rebuilt;
  for (const BlockKey& key : retention_.keys()) {
    const auto it = by_flow.find(key.block);
    if (it == by_flow.end()) continue;
    if (master_.has_coflow(key.coflow)) continue;
    rebuilt[key.coflow].flows.push_back(it->second);
  }
  for (auto& [ref, info] : rebuilt) master_.restore_coflow(ref, std::move(info));

  if (config_.sink != nullptr) {
    config_.sink->registry().counter("recovery.master_failovers").add(1);
    obs::emit_instant(config_.sink, obs::wall_now_us(), "master_failover",
                      "recovery",
                      obs::Args()
                          .add("snapshot", from_snapshot)
                          .add("reregistered",
                               static_cast<std::uint64_t>(rebuilt.size()))
                          .str(),
                      obs::kWallPid, obs::current_thread_tid());
  }
  return from_snapshot;
}

FaultStats Cluster::fault_stats() const {
  FaultStats stats = fault_counters_.snapshot();
  for (const auto& w : workers_)
    stats.gate_evictions += w->egress_gate().evictions();
  stats.degraded_flows = master_.degraded_flows();
  return stats;
}

std::vector<FlowInfo> SwallowContext::hook(WorkerId executor) {
  return cluster_->worker(executor).drain_registrations();
}

CoflowInfo SwallowContext::aggregate(std::vector<FlowInfo> flows) {
  CoflowInfo info;
  info.flows = std::move(flows);
  return info;
}

CoflowRef SwallowContext::add(CoflowInfo info) {
  return cluster_->master().add(std::move(info));
}

void SwallowContext::remove(CoflowRef ref) {
  // Prune the workers' registration logs first — flows_of needs the
  // master's bookkeeping, which remove() erases.
  const std::vector<RtFlowId> flows = cluster_->master().flows_of(ref);
  for (WorkerId w = 0; w < cluster_->size(); ++w)
    cluster_->worker(w).forget_flows(flows);
  cluster_->master().remove(ref);
  for (WorkerId w = 0; w < cluster_->size(); ++w)
    cluster_->worker(w).store().drop_coflow(ref);
  cluster_->retention().drop_coflow(ref);
}

SchedResult SwallowContext::scheduling(const std::vector<CoflowRef>& refs) {
  return cluster_->master().scheduling(refs);
}

void SwallowContext::alloc(const SchedResult& result) {
  cluster_->master().alloc(result);
}

bool SwallowContext::transfer_once(CoflowRef ref, BlockId block,
                                   std::span<const std::uint8_t> data,
                                   WorkerId src, WorkerId dst, int attempt) {
  FaultInjector& injector = cluster_->injector();
  // Dead workers are routed around: a killed sender's retained blocks go
  // out through a survivor, a killed receiver's partitions land on its
  // replacement (where the re-pull finds them).
  const WorkerId esrc = cluster_->effective_worker(src);
  const WorkerId edst = cluster_->effective_worker(dst);
  Worker& sender = cluster_->worker(esrc);
  Worker& receiver = cluster_->worker(edst);

  // blockId encodes the flow: the master keyed its decision on it. Blocks
  // travel as checksummed frames (codec/frame.hpp), so wire corruption is
  // detected at pull time rather than silently reducing garbage.
  const FlowDecision decision = cluster_->master().decision_of(block);
  const std::size_t chunk_bytes = cluster_->config().chunk_bytes;
  const codec::NullCodec null;
  const codec::Codec& chosen =
      decision.compress ? cluster_->codec()
                        : static_cast<const codec::Codec&>(null);
  // Injected CPU-side failure: only a real compressor can crash; a
  // degraded (uncompressed) flow is immune, which is what makes the
  // degradation ladder terminate.
  if (decision.compress &&
      injector.inject(FaultKind::kCodecFail, block, attempt))
    throw codec::CodecError("injected codec failure");

  codec::Buffer wire;
  if (chunk_bytes > 0) {
    // Pipelined chunked path (DESIGN.md §14): chunk N crosses the NIC
    // limiters while chunk N+1 encodes on the shared pool, overlapping the
    // paper's compression and transmission stages inside one block. The
    // SWF2 framing is deterministic (byte-identical to the one-shot serial
    // encode), and corrupt injection is a pure function of
    // (seed, kind, block, attempt), so flipping bytes on the assembled
    // wire after transfer is equivalent to the legacy corrupt-then-send.
    codec::ChunkEncoder enc(chosen, data, chunk_bytes,
                            cluster_->chunk_pool(), &cluster_->ledger());
    obs::ProfileScope scope(cluster_->sink(), "runtime.push.transfer",
                            "runtime");
    const std::uint64_t rank = cluster_->master().rank_of(ref);
    const PortGate::Ticket ticket = sender.egress_gate().acquire(rank);
    try {
      while (enc.has_next()) {
        const codec::Buffer piece = enc.next();
        sender.egress().acquire(piece.size());
        receiver.ingress().acquire(piece.size());
        wire.insert(wire.end(), piece.begin(), piece.end());
      }
    } catch (...) {
      sender.egress_gate().release(ticket);
      throw;
    }
    sender.egress_gate().release(ticket);
    wire.shrink_to_fit();
    if (injector.inject(FaultKind::kCorrupt, block, attempt))
      injector.corrupt(wire, block, attempt);
  } else {
    {
      obs::ProfileScope scope(cluster_->sink(), "runtime.push.compress",
                              "runtime");
      wire = codec::frame_compress(chosen, data);
    }

    // Size the transfer buffer to the payload (receive buffers hold exactly
    // what crossed the wire, which is what compression shrinks).
    wire.shrink_to_fit();

    if (injector.inject(FaultKind::kCorrupt, block, attempt))
      injector.corrupt(wire, block, attempt);

    {
      obs::ProfileScope scope(cluster_->sink(), "runtime.push.transfer",
                              "runtime");
      const std::uint64_t rank = cluster_->master().rank_of(ref);
      const PortGate::Ticket ticket = sender.egress_gate().acquire(rank);
      sender.egress().acquire(wire.size());
      receiver.ingress().acquire(wire.size());
      sender.egress_gate().release(ticket);
    }
  }

  // Straggler: the frame crossed the NICs but dawdles before landing.
  if (injector.inject(FaultKind::kStall, block, attempt))
    std::this_thread::sleep_for(
        std::chrono::duration<double>(injector.stall_duration()));

  // The bytes crossed the (rate-limited) wire either way; loss happens
  // past the NICs, so dropped and duplicate transfers still cost traffic.
  sender.account_transfer(data.size(), wire.size());

  if (injector.inject(FaultKind::kDrop, block, attempt)) return false;

  receiver.store().put(BlockKey{ref, block}, std::move(wire));

  // Configured kill point: a worker dies right after this delivery. When
  // the victim is this sender and kill_holding_gate is set, it "crashes"
  // while still holding its egress gate on a fresh acquire — the deadlock
  // class the PortGate holder timeout exists to break.
  if (injector.count_delivery_and_check_kill()) {
    const FaultConfig& fc = injector.config();
    if (fc.kill_holding_gate && cluster_->effective_worker(fc.kill_worker) ==
                                    cluster_->effective_worker(esrc)) {
      (void)sender.egress_gate().acquire(0);  // ticket abandoned on purpose
      cluster_->kill_worker(fc.kill_worker);
      return true;  // gate intentionally left busy; eviction recovers it
    }
    cluster_->kill_worker(fc.kill_worker);
  }
  return true;
}

bool SwallowContext::retransmit(CoflowRef ref, BlockId block, int attempt) {
  const auto retained = cluster_->retention().lookup(BlockKey{ref, block});
  if (!retained) return false;
  cluster_->fault_counters().on_retransmit();
  try {
    transfer_once(ref, block, retained->raw, retained->src, retained->dst,
                  attempt);
  } catch (const codec::CodecError&) {
    // Injected codec failure on the retransmit attempt: count it against
    // the flow (degradation ladder) and let the caller's retry loop decide.
    cluster_->master().record_flow_failure(block);
  }
  return true;
}

std::size_t SwallowContext::replay_in_flight() {
  std::size_t replayed = 0;
  for (const BlockKey& key : cluster_->retention().keys()) {
    const auto retained = cluster_->retention().lookup(key);
    if (!retained) continue;  // raced with a remove(); nothing to replay
    const WorkerId edst = cluster_->effective_worker(retained->dst);
    if (cluster_->worker(edst).store().contains(key)) continue;
    cluster_->fault_counters().on_retransmit();
    try {
      transfer_once(key.coflow, key.block, retained->raw, retained->src,
                    retained->dst, /*attempt=*/0);
      ++replayed;
    } catch (const codec::CodecError&) {
      // Injected codec failure on the replay: count it toward the flow's
      // degradation ladder; the receiver's pull retry loop re-requests.
      cluster_->master().record_flow_failure(key.block);
    }
  }
  return replayed;
}

void SwallowContext::push(CoflowRef ref, BlockId block,
                          std::span<const std::uint8_t> data, WorkerId src,
                          WorkerId dst) {
  obs::ProfileScope push_scope(cluster_->sink(), "runtime.push", "runtime");
  const RetryPolicy& retry = cluster_->config().retry;
  // Retain before the first attempt so even a sender crash mid-transfer
  // leaves the bytes recoverable (only when faults can actually happen —
  // the disabled path keeps zero copies).
  if (cluster_->injector().enabled())
    cluster_->retention().retain(BlockKey{ref, block}, src, dst, data);

  common::Rng jitter_rng(cluster_->config().fault.seed ^ (block * 0x9e37ULL));
  for (int attempt = 0;; ++attempt) {
    try {
      transfer_once(ref, block, data, src, dst, attempt);
      return;  // delivered — or silently lost, which the pull side recovers
    } catch (const codec::CodecError&) {
      cluster_->master().record_flow_failure(block);
      if (attempt + 1 >= retry.max_attempts)
        throw ShuffleError(ShuffleFailure::kCodecFailure, ref, block, block);
      cluster_->fault_counters().on_retry();
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff_delay(retry, attempt + 1, jitter_rng)));
    }
  }
}

codec::Buffer SwallowContext::pull(CoflowRef ref, BlockId block, WorkerId dst,
                                   BufferPool* wire_reclaim) {
  obs::ProfileScope pull_scope(cluster_->sink(), "runtime.pull", "runtime");
  const RetryPolicy& retry = cluster_->config().retry;
  common::Rng jitter_rng(cluster_->config().fault.seed ^
                         (block * 0x85ebca6bULL));
  for (int attempt = 0;; ++attempt) {
    const WorkerId edst = cluster_->effective_worker(dst);
    std::optional<codec::Buffer> wire =
        cluster_->worker(edst).store().take_for(BlockKey{ref, block},
                                                retry.pull_timeout);
    if (!wire) {
      cluster_->fault_counters().on_pull_timeout();
      if (attempt + 1 >= retry.max_attempts)
        throw ShuffleError(ShuffleFailure::kPullTimeout, ref, block, block);
      cluster_->fault_counters().on_retry();
      retransmit(ref, block, attempt + 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff_delay(retry, attempt + 1, jitter_rng)));
      continue;
    }

    codec::Buffer data;
    try {
      obs::ProfileScope scope(cluster_->sink(), "runtime.pull.decompress",
                              "runtime");
      // Blocks land as SWF2 chunk frames on the chunked path (chunks decode
      // concurrently on the shared pool) or SWF1 frames on the legacy path;
      // retransmits after a config change may carry either, so dispatch on
      // the magic rather than on the current config.
      if (codec::is_chunk_frame(*wire))
        data = codec::chunk_decompress(*wire, cluster_->chunk_pool(),
                                       &cluster_->ledger());
      else
        data = codec::frame_decompress(*wire);
    } catch (const codec::CodecError&) {
      // Wire corruption caught by the frame checksums: count it against
      // the flow (the degradation ladder flips persistent offenders to
      // uncompressed) and ask for a retransmit.
      cluster_->fault_counters().on_corrupt_frame();
      cluster_->master().record_flow_failure(block);
      if (attempt + 1 >= retry.max_attempts)
        throw ShuffleError(ShuffleFailure::kCorruption, ref, block, block);
      cluster_->fault_counters().on_retry();
      retransmit(ref, block, attempt + 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff_delay(retry, attempt + 1, jitter_rng)));
      continue;
    }
    if (wire_reclaim != nullptr) wire_reclaim->release(std::move(*wire));
    return data;
  }
}

}  // namespace swallow::runtime
