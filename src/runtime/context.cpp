#include "runtime/context.hpp"

#include <stdexcept>

#include "codec/frame.hpp"
#include "codec/null_codec.hpp"
#include "obs/profile.hpp"

namespace swallow::runtime {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      codec_(codec::make_codec(config.codec)),
      master_(config.nic_rate, config.codec_model, config.cpu_headroom,
              config.smart_compress, config.sink) {
  if (config.num_workers == 0)
    throw std::invalid_argument("Cluster: zero workers");
  workers_.reserve(config.num_workers);
  for (std::size_t i = 0; i < config.num_workers; ++i)
    workers_.push_back(std::make_unique<Worker>(
        static_cast<WorkerId>(i), config.nic_rate, config.sink));
}

Worker& Cluster::worker(WorkerId id) { return *workers_.at(id); }

std::size_t Cluster::total_wire_bytes() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->wire_bytes_sent();
  return total;
}

std::size_t Cluster::total_raw_bytes() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->raw_bytes_sent();
  return total;
}

std::vector<FlowInfo> SwallowContext::hook(WorkerId executor) {
  return cluster_->worker(executor).drain_registrations();
}

CoflowInfo SwallowContext::aggregate(std::vector<FlowInfo> flows) {
  CoflowInfo info;
  info.flows = std::move(flows);
  return info;
}

CoflowRef SwallowContext::add(CoflowInfo info) {
  return cluster_->master().add(std::move(info));
}

void SwallowContext::remove(CoflowRef ref) {
  cluster_->master().remove(ref);
  for (WorkerId w = 0; w < cluster_->size(); ++w)
    cluster_->worker(w).store().drop_coflow(ref);
}

SchedResult SwallowContext::scheduling(const std::vector<CoflowRef>& refs) {
  return cluster_->master().scheduling(refs);
}

void SwallowContext::alloc(const SchedResult& result) {
  cluster_->master().alloc(result);
}

void SwallowContext::push(CoflowRef ref, BlockId block,
                          std::span<const std::uint8_t> data, WorkerId src,
                          WorkerId dst) {
  Worker& sender = cluster_->worker(src);
  Worker& receiver = cluster_->worker(dst);

  // blockId encodes the flow: the master keyed its decision on it. Blocks
  // travel as checksummed frames (codec/frame.hpp), so wire corruption is
  // detected at pull time rather than silently reducing garbage.
  obs::ProfileScope push_scope(cluster_->sink(), "runtime.push", "runtime");
  const FlowDecision decision = cluster_->master().decision_of(block);
  codec::Buffer wire;
  {
    obs::ProfileScope scope(cluster_->sink(), "runtime.push.compress",
                            "runtime");
    if (decision.compress) {
      wire = codec::frame_compress(cluster_->codec(), data);
    } else {
      const codec::NullCodec null;
      wire = codec::frame_compress(null, data);
    }
  }

  // Size the transfer buffer to the payload (receive buffers hold exactly
  // what crossed the wire, which is what compression shrinks).
  wire.shrink_to_fit();

  {
    obs::ProfileScope scope(cluster_->sink(), "runtime.push.transfer",
                            "runtime");
    const std::uint64_t rank = cluster_->master().rank_of(ref);
    sender.egress_gate().acquire(rank);
    sender.egress().acquire(wire.size());
    receiver.ingress().acquire(wire.size());
    sender.egress_gate().release();
  }

  sender.account_transfer(data.size(), wire.size());
  receiver.store().put(BlockKey{ref, block}, std::move(wire));
}

codec::Buffer SwallowContext::pull(CoflowRef ref, BlockId block, WorkerId dst,
                                   BufferPool* wire_reclaim) {
  obs::ProfileScope pull_scope(cluster_->sink(), "runtime.pull", "runtime");
  codec::Buffer wire =
      cluster_->worker(dst).store().take(BlockKey{ref, block});
  codec::Buffer data;
  {
    obs::ProfileScope scope(cluster_->sink(), "runtime.pull.decompress",
                            "runtime");
    data = codec::frame_decompress(wire);
  }
  if (wire_reclaim != nullptr) wire_reclaim->release(std::move(wire));
  return data;
}

}  // namespace swallow::runtime
