// Channel<T> is header-only; this translation unit anchors the library and
// holds nothing else.
#include "runtime/bus.hpp"
