#include "runtime/worker.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::runtime {

PortGate::Ticket PortGate::acquire(std::uint64_t rank) {
  const double t0 = sink_ != nullptr ? obs::wall_now_us() : 0.0;
  Ticket ticket = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = waiters_.insert(rank);
    for (;;) {
      if (!busy_ && waiters_.begin() == it) break;
      if (holder_timeout_ <= 0) {
        cv_.wait(lock);
        continue;
      }
      if (busy_) {
        const auto deadline =
            busy_since_ + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(holder_timeout_));
        if (Clock::now() >= deadline) {
          // The holder has sat on the port past the timeout: presume it
          // dead and evict. Its ticket goes stale, so a late release()
          // from a merely-slow holder is ignored.
          busy_ = false;
          holder_ = 0;
          ++evictions_;
          if (sink_ != nullptr)
            sink_->registry().counter("runtime.gate_evictions").add(1);
          cv_.notify_all();
          continue;
        }
        cv_.wait_until(lock, deadline);
      } else {
        // Port free but a better-ranked waiter exists; wake on handoff.
        cv_.wait(lock);
      }
    }
    waiters_.erase(it);
    busy_ = true;
    busy_since_ = Clock::now();
    ticket = ++next_ticket_;
    holder_ = ticket;
  }
  if (sink_ != nullptr)
    sink_->registry()
        .histogram("runtime.gate_wait_us")
        .record(obs::wall_now_us() - t0);
  return ticket;
}

void PortGate::release(Ticket ticket) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!busy_ || holder_ != ticket) return;  // superseded by an eviction
    busy_ = false;
    holder_ = 0;
  }
  cv_.notify_all();
}

void PortGate::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    busy_ = false;
    holder_ = 0;
  }
  cv_.notify_all();
}

void PortGate::set_holder_timeout(common::Seconds timeout) {
  std::lock_guard<std::mutex> lock(mutex_);
  holder_timeout_ = timeout;
}

std::size_t PortGate::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

Worker::Worker(WorkerId id, common::Bps nic_rate, obs::Sink* sink)
    : id_(id), sink_(sink), egress_(nic_rate), ingress_(nic_rate) {
  egress_gate_.set_sink(sink);
}

void Worker::register_flow(const FlowInfo& info) {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  registrations_.push_back(info);
  registration_log_.push_back(info);
}

std::vector<FlowInfo> Worker::drain_registrations() {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  std::vector<FlowInfo> out;
  out.swap(registrations_);
  return out;
}

std::vector<FlowInfo> Worker::registration_log() const {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  return registration_log_;
}

void Worker::forget_flows(const std::vector<RtFlowId>& flows) {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  std::erase_if(registration_log_, [&](const FlowInfo& f) {
    return std::find(flows.begin(), flows.end(), f.flow_id) != flows.end();
  });
}

void Worker::account_transfer(std::size_t raw_bytes, std::size_t wire_bytes) {
  raw_bytes_.fetch_add(raw_bytes);
  wire_bytes_.fetch_add(wire_bytes);
  if (sink_ != nullptr) {
    obs::Registry& reg = sink_->registry();
    reg.counter("runtime.raw_bytes").add(raw_bytes);
    reg.counter("runtime.wire_bytes").add(wire_bytes);
  }
}

}  // namespace swallow::runtime
