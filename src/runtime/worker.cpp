#include "runtime/worker.hpp"

namespace swallow::runtime {

void PortGate::acquire(std::uint64_t rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = waiters_.insert(rank);
  cv_.wait(lock, [&] { return !busy_ && waiters_.begin() == it; });
  waiters_.erase(it);
  busy_ = true;
}

void PortGate::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    busy_ = false;
  }
  cv_.notify_all();
}

Worker::Worker(WorkerId id, common::Bps nic_rate)
    : id_(id), egress_(nic_rate), ingress_(nic_rate) {}

void Worker::register_flow(const FlowInfo& info) {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  registrations_.push_back(info);
}

std::vector<FlowInfo> Worker::drain_registrations() {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  std::vector<FlowInfo> out;
  out.swap(registrations_);
  return out;
}

void Worker::account_transfer(std::size_t raw_bytes, std::size_t wire_bytes) {
  raw_bytes_.fetch_add(raw_bytes);
  wire_bytes_.fetch_add(wire_bytes);
}

}  // namespace swallow::runtime
