#include "runtime/worker.hpp"

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::runtime {

void PortGate::acquire(std::uint64_t rank) {
  const double t0 = sink_ != nullptr ? obs::wall_now_us() : 0.0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = waiters_.insert(rank);
    cv_.wait(lock, [&] { return !busy_ && waiters_.begin() == it; });
    waiters_.erase(it);
    busy_ = true;
  }
  if (sink_ != nullptr)
    sink_->registry()
        .histogram("runtime.gate_wait_us")
        .record(obs::wall_now_us() - t0);
}

void PortGate::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    busy_ = false;
  }
  cv_.notify_all();
}

Worker::Worker(WorkerId id, common::Bps nic_rate, obs::Sink* sink)
    : id_(id), sink_(sink), egress_(nic_rate), ingress_(nic_rate) {
  egress_gate_.set_sink(sink);
}

void Worker::register_flow(const FlowInfo& info) {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  registrations_.push_back(info);
}

std::vector<FlowInfo> Worker::drain_registrations() {
  std::lock_guard<std::mutex> lock(reg_mutex_);
  std::vector<FlowInfo> out;
  out.swap(registrations_);
  return out;
}

void Worker::account_transfer(std::size_t raw_bytes, std::size_t wire_bytes) {
  raw_bytes_.fetch_add(raw_bytes);
  wire_bytes_.fetch_add(wire_bytes);
  if (sink_ != nullptr) {
    obs::Registry& reg = sink_->registry();
    reg.counter("runtime.raw_bytes").add(raw_bytes);
    reg.counter("runtime.wire_bytes").add(wire_bytes);
  }
}

}  // namespace swallow::runtime
