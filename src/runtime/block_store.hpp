// Per-worker block storage and the buffer pool whose reclamation statistics
// stand in for the paper's JVM garbage-collection measurements (Table VIII):
// both quantify time spent releasing transfer buffers, and both shrink when
// compression shrinks the live buffers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "common/units.hpp"

namespace swallow::runtime {

using BlockId = std::uint64_t;
using CoflowRef = std::uint64_t;

struct BlockKey {
  CoflowRef coflow;
  BlockId block;
  auto operator<=>(const BlockKey&) const = default;
};

/// Thread-safe block map with blocking reads: pull-side tasks wait until
/// the sender's transfer lands.
class BlockStore {
 public:
  void put(BlockKey key, codec::Buffer data);

  /// Blocks until the block exists, then removes and returns it.
  codec::Buffer take(BlockKey key);

  /// Bounded take: waits at most `timeout` seconds for the block. nullopt
  /// means the deadline expired — the caller's cue to retry, retransmit,
  /// or surface a typed error instead of hanging (recovery path).
  std::optional<codec::Buffer> take_for(BlockKey key, common::Seconds timeout);

  /// Non-blocking residency probe (master fail-over replay: only missing
  /// blocks are re-pushed).
  bool contains(BlockKey key) const;

  /// Removes every block of a coflow (remove() path); returns bytes freed.
  std::size_t drop_coflow(CoflowRef coflow);

  /// Drops every block (worker-kill path); returns bytes freed.
  std::size_t clear();

  std::size_t block_count() const;
  std::size_t resident_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<BlockKey, codec::Buffer> blocks_;
  std::size_t resident_bytes_ = 0;
};

/// Reclamation statistics of transfer buffers (the GC-time analog).
/// release() scrubs the buffer (byte-proportional work, like a copying
/// collector touching the dead object) and times it.
class BufferPool {
 public:
  codec::Buffer allocate(std::size_t bytes);
  void release(codec::Buffer buffer);

  struct Stats {
    std::size_t allocations = 0;
    std::size_t releases = 0;
    std::size_t bytes_allocated = 0;
    std::size_t bytes_released = 0;
    common::Seconds reclaim_time = 0;  ///< total time spent in release()
  };
  Stats stats() const;
  void reset_stats();

 private:
  mutable std::mutex mutex_;
  Stats stats_;
};

}  // namespace swallow::runtime
