#include "runtime/shuffle.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/profile.hpp"

namespace swallow::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// jthread fan-out that survives exceptions: a ShuffleError thrown on a
/// mapper/reducer thread is captured (first one wins) and rethrown on the
/// calling thread after everyone joined — an uncaught throw in a jthread
/// would std::terminate the process instead of failing the job.
class TaskGroup {
 public:
  template <typename F>
  void spawn(F&& fn) {
    threads_.emplace_back([this, fn = std::forward<F>(fn)]() mutable {
      try {
        fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    });
  }

  void join_and_rethrow() {
    threads_.clear();  // jthread dtors join
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  std::vector<std::jthread> threads_;
  std::mutex mutex_;
  std::exception_ptr first_error_;
};

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ShuffleReport run_shuffle_job(Cluster& cluster,
                              const ShuffleJobConfig& config) {
  if (config.mappers == 0 || config.reducers == 0)
    throw std::invalid_argument("shuffle: zero tasks");

  SwallowContext ctx(cluster);
  ShuffleReport report;
  report.app = config.app.name;

  BufferPool map_pool, reduce_pool;
  const FaultStats faults_before = cluster.fault_stats();
  const std::size_t chunks_enc_before = cluster.ledger().chunks_encoded();
  const std::size_t chunks_dec_before = cluster.ledger().chunks_decoded();
  const auto job_start = Clock::now();

  // ---- Map stage: generate partitions, register flows. ----
  // blockId doubles as the flow id the master keys its decisions on; the
  // seed-derived base keeps concurrent jobs' flow ids disjoint.
  const BlockId base = config.seed * 1'000'000;
  auto block_id = [&](std::size_t m, std::size_t r) {
    return static_cast<BlockId>(base + m * config.reducers + r + 1);
  };
  auto mapper_worker = [&](std::size_t m) {
    return static_cast<WorkerId>(m % cluster.size());
  };
  auto reducer_worker = [&](std::size_t r) {
    return static_cast<WorkerId>((config.mappers + r) % cluster.size());
  };

  std::vector<codec::Buffer> partitions(config.mappers * config.reducers);
  std::map<BlockId, std::uint64_t> checksums;
  std::mutex checksum_mutex;

  {
    obs::ProfileScope stage(cluster.sink(), "shuffle.map", "runtime");
    std::vector<std::jthread> map_tasks;
    map_tasks.reserve(config.mappers);
    for (std::size_t m = 0; m < config.mappers; ++m) {
      map_tasks.emplace_back([&, m] {
        common::Rng rng(config.seed * 1000003 + m);
        for (std::size_t r = 0; r < config.reducers; ++r) {
          codec::Buffer part = map_pool.allocate(config.bytes_per_partition);
          const codec::Buffer payload =
              config.app.generate(config.bytes_per_partition, rng);
          std::copy(payload.begin(), payload.end(), part.begin());
          const BlockId id = block_id(m, r);
          {
            std::lock_guard<std::mutex> lock(checksum_mutex);
            checksums[id] = fnv1a(part);
          }
          cluster.worker(mapper_worker(m))
              .register_flow(FlowInfo{id, 0, mapper_worker(m),
                                      reducer_worker(r), part.size(),
                                      /*compressible=*/true});
          partitions[m * config.reducers + r] = std::move(part);
        }
      });
    }
  }
  report.map_time = seconds_since(job_start);

  // ---- Driver: hook -> aggregate -> add -> scheduling -> alloc. ----
  std::vector<FlowInfo> all_flows;
  for (WorkerId w = 0; w < cluster.size(); ++w) {
    auto flows = ctx.hook(w);
    all_flows.insert(all_flows.end(), flows.begin(), flows.end());
  }
  CoflowInfo info = ctx.aggregate(std::move(all_flows));
  const CoflowRef ref = ctx.add(std::move(info));
  ctx.alloc(ctx.scheduling({ref}));

  // ---- Shuffle stage: concurrent pushes and pulls. ----
  const std::size_t wire_before = cluster.total_wire_bytes();
  const auto shuffle_start = Clock::now();
  std::atomic<bool> verified{true};
  std::atomic<BlockId> first_bad_block{0};
  double reduce_seconds = 0;
  std::mutex reduce_mutex;
  std::vector<codec::Buffer> outputs(config.reducers);
  {
    obs::ProfileScope stage(cluster.sink(), "shuffle.transfer", "runtime");
    TaskGroup tasks;
    for (std::size_t m = 0; m < config.mappers; ++m) {
      tasks.spawn([&, m] {
        for (std::size_t r = 0; r < config.reducers; ++r) {
          const std::size_t idx = m * config.reducers + r;
          ctx.push(ref, block_id(m, r), partitions[idx], mapper_worker(m),
                   reducer_worker(r));
          map_pool.release(std::move(partitions[idx]));
        }
      });
    }
    for (std::size_t r = 0; r < config.reducers; ++r) {
      tasks.spawn([&, r] {
        std::uint64_t sink = 0;
        double my_reduce = 0;
        codec::Buffer output;
        for (std::size_t m = 0; m < config.mappers; ++m) {
          const BlockId id = block_id(m, r);
          codec::Buffer data =
              ctx.pull(ref, id, reducer_worker(r), &reduce_pool);
          const auto t0 = Clock::now();
          std::uint64_t expected;
          {
            std::lock_guard<std::mutex> lock(checksum_mutex);
            expected = checksums.at(id);
          }
          if (fnv1a(data) != expected) {
            verified = false;
            BlockId none = 0;
            first_bad_block.compare_exchange_strong(none, id);
          }
          // "Reduce": fold the bytes into the sink and keep the output for
          // the optional result stage.
          for (const std::uint8_t b : data) sink += b;
          if (config.result_replicas > 0)
            output.insert(output.end(), data.begin(), data.end());
          my_reduce += seconds_since(t0);
        }
        outputs[r] = std::move(output);
        std::lock_guard<std::mutex> lock(reduce_mutex);
        reduce_seconds += my_reduce;
        (void)sink;
      });
    }
    try {
      tasks.join_and_rethrow();
    } catch (...) {
      ctx.remove(ref);  // failed jobs must not leak master/store state
      throw;
    }
  }
  report.shuffle_time = seconds_since(shuffle_start);
  report.reduce_time = reduce_seconds;

  ctx.remove(ref);

  // ---- Result stage: replicate reducer outputs over the network (the
  // paper's "save output as Hadoop files"). Its traffic rides the same
  // compression decision machinery as the shuffle. ----
  if (config.result_replicas > 0) {
    obs::ProfileScope stage(cluster.sink(), "shuffle.result", "runtime");
    const auto result_start = Clock::now();
    auto result_block = [&](std::size_t r, std::size_t k) {
      return static_cast<BlockId>(base + 500'000 + r * 100 + k);
    };
    for (std::size_t r = 0; r < config.reducers; ++r) {
      for (std::size_t k = 0; k < config.result_replicas; ++k) {
        const auto dst = static_cast<WorkerId>(
            (reducer_worker(r) + k + 1) % cluster.size());
        cluster.worker(reducer_worker(r))
            .register_flow(FlowInfo{result_block(r, k), 0,
                                    reducer_worker(r), dst,
                                    outputs[r].size(), true});
      }
    }
    std::vector<FlowInfo> result_flows;
    for (WorkerId w = 0; w < cluster.size(); ++w) {
      auto flows = ctx.hook(w);
      result_flows.insert(result_flows.end(), flows.begin(), flows.end());
    }
    const CoflowRef result_ref = ctx.add(ctx.aggregate(std::move(result_flows)));
    ctx.alloc(ctx.scheduling({result_ref}));
    {
      TaskGroup writers;
      for (std::size_t r = 0; r < config.reducers; ++r) {
        writers.spawn([&, r] {
          for (std::size_t k = 0; k < config.result_replicas; ++k) {
            const auto dst = static_cast<WorkerId>(
                (reducer_worker(r) + k + 1) % cluster.size());
            ctx.push(result_ref, result_block(r, k), outputs[r],
                     reducer_worker(r), dst);
          }
        });
      }
      try {
        writers.join_and_rethrow();
      } catch (...) {
        ctx.remove(result_ref);
        throw;
      }
    }
    ctx.remove(result_ref);
    report.result_time = seconds_since(result_start);
  }

  report.jct = seconds_since(job_start);
  report.raw_bytes =
      config.mappers * config.reducers * config.bytes_per_partition *
      (1 + config.result_replicas);
  report.wire_bytes = cluster.total_wire_bytes() - wire_before;
  report.map_pool = map_pool.stats();
  report.reduce_pool = reduce_pool.stats();
  report.verified = verified.load();

  const FaultStats faults_after = cluster.fault_stats();
  report.faults_injected =
      faults_after.total_injected() - faults_before.total_injected();
  report.retries = faults_after.retries - faults_before.retries;
  report.retransmits = faults_after.retransmits - faults_before.retransmits;
  report.corrupt_frames =
      faults_after.corrupt_frames - faults_before.corrupt_frames;
  report.pull_timeouts =
      faults_after.pull_timeouts - faults_before.pull_timeouts;
  report.gate_evictions =
      faults_after.gate_evictions - faults_before.gate_evictions;
  report.degraded_flows =
      faults_after.degraded_flows - faults_before.degraded_flows;

  report.encode_mbps = cluster.ledger().encode_mbps();
  report.decode_mbps = cluster.ledger().decode_mbps();
  report.chunks_encoded =
      cluster.ledger().chunks_encoded() - chunks_enc_before;
  report.chunks_decoded =
      cluster.ledger().chunks_decoded() - chunks_dec_before;

  if (!report.verified) {
    const BlockId bad = first_bad_block.load();
    throw ShuffleError(ShuffleFailure::kVerification, ref, bad, bad);
  }
  return report;
}

}  // namespace swallow::runtime
