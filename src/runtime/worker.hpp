// A Swallow worker: one "machine" of the in-process cluster. Passive owner
// of the machine's block store, NIC rate limiters, the priority gate that
// serializes its egress port in coflow order, and the pending flow
// registrations the driver collects via hook().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "runtime/block_store.hpp"
#include "runtime/rate_limiter.hpp"

namespace swallow::obs {
class Sink;
}

namespace swallow::runtime {

using WorkerId = std::uint32_t;
using RtFlowId = std::uint64_t;

/// Flow metadata a sender registers before shuffling (Table IV: the
/// flowInfo array returned by hook()).
struct FlowInfo {
  RtFlowId flow_id = 0;
  CoflowRef coflow = 0;
  WorkerId src = 0;
  WorkerId dst = 0;
  std::size_t bytes = 0;
  bool compressible = true;
};

/// Serializes transfers through a port in scheduling-priority order: the
/// waiter with the smallest rank proceeds when the port frees up.
///
/// Failure model: a holder that dies without releasing (a crashed worker)
/// would wedge the port and every waiter behind it forever. With a holder
/// timeout configured, waiters evict a holder that has sat on the port too
/// long; tickets make the dead holder's eventual release() a no-op, so an
/// evicted-but-alive straggler cannot free the port out from under the new
/// holder. Eviction trades strict mutual exclusion for liveness during
/// recovery — the evicted transfer may still be mid-flight, which in this
/// in-process model only relaxes the port ordering, never corrupts data.
class PortGate {
 public:
  /// Monotonic holder identity; pass it to release(). 0 is never issued.
  using Ticket = std::uint64_t;

  /// Blocks until first-in-rank-order, then takes the port.
  Ticket acquire(std::uint64_t rank);
  /// Releases the port iff `ticket` is still the live holder (no-op after
  /// an eviction superseded it).
  void release(Ticket ticket);
  /// Unticketed release: frees the port unconditionally. Only safe when no
  /// holder timeout is configured (the pre-fault-injection protocol).
  void release();

  /// Holder timeout in seconds; 0 (default) never evicts, preserving the
  /// original block-forever behaviour bit-for-bit.
  void set_holder_timeout(common::Seconds timeout);
  std::size_t evictions() const;

  /// Records per-acquire wait times into the sink's
  /// "runtime.gate_wait_us" histogram; null disables.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool busy_ = false;
  Ticket next_ticket_ = 0;
  Ticket holder_ = 0;
  Clock::time_point busy_since_{};
  double holder_timeout_ = 0;
  std::size_t evictions_ = 0;
  std::multiset<std::uint64_t> waiters_;
  obs::Sink* sink_ = nullptr;
};

class Worker {
 public:
  Worker(WorkerId id, common::Bps nic_rate, obs::Sink* sink = nullptr);

  WorkerId id() const { return id_; }
  BlockStore& store() { return store_; }
  RateLimiter& egress() { return egress_; }
  RateLimiter& ingress() { return ingress_; }
  PortGate& egress_gate() { return egress_gate_; }

  /// Sender-side registration; drained by SwallowContext::hook().
  void register_flow(const FlowInfo& info);
  std::vector<FlowInfo> drain_registrations();

  /// Crash recovery: every registration is also appended to a durable
  /// per-worker log (drain_registrations is destructive, the log is not),
  /// so a replacement master can ask the workers to re-announce their
  /// flows. Pruned via forget_flows when the driver removes the coflow.
  std::vector<FlowInfo> registration_log() const;
  void forget_flows(const std::vector<RtFlowId>& flows);

  /// Worker-kill support: a dead worker keeps its objects alive (threads
  /// may still hold references) but the cluster routes around it.
  void mark_dead() { dead_.store(true, std::memory_order_relaxed); }
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  /// Traffic counters (bytes): what went on the wire vs the raw payload.
  void account_transfer(std::size_t raw_bytes, std::size_t wire_bytes);
  std::size_t wire_bytes_sent() const { return wire_bytes_.load(); }
  std::size_t raw_bytes_sent() const { return raw_bytes_.load(); }

 private:
  WorkerId id_;
  obs::Sink* sink_;
  BlockStore store_;
  RateLimiter egress_;
  RateLimiter ingress_;
  PortGate egress_gate_;

  mutable std::mutex reg_mutex_;
  std::vector<FlowInfo> registrations_;
  std::vector<FlowInfo> registration_log_;

  std::atomic<std::size_t> wire_bytes_{0};
  std::atomic<std::size_t> raw_bytes_{0};
  std::atomic<bool> dead_{false};
};

}  // namespace swallow::runtime
