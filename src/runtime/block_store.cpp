#include "runtime/block_store.hpp"

#include <chrono>
#include <cstring>
#include <ctime>

namespace swallow::runtime {

void BlockStore::put(BlockKey key, codec::Buffer data) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    resident_bytes_ += data.size();
    auto [it, inserted] = blocks_.try_emplace(key, std::move(data));
    if (!inserted) {
      resident_bytes_ -= it->second.size();
      it->second = std::move(data);
    }
  }
  cv_.notify_all();
}

codec::Buffer BlockStore::take(BlockKey key) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return blocks_.count(key) > 0; });
  auto it = blocks_.find(key);
  codec::Buffer data = std::move(it->second);
  resident_bytes_ -= data.size();
  blocks_.erase(it);
  return data;
}

std::optional<codec::Buffer> BlockStore::take_for(BlockKey key,
                                                  common::Seconds timeout) {
  // Absolute deadline computed once, then a wait_until loop: a spurious
  // wakeup re-waits for the *remaining* time instead of granting the full
  // timeout again (the drift a bare wait_for in a loop would accumulate).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout));
  std::unique_lock<std::mutex> lock(mutex_);
  while (blocks_.count(key) == 0) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        blocks_.count(key) == 0)
      return std::nullopt;
  }
  auto it = blocks_.find(key);
  codec::Buffer data = std::move(it->second);
  resident_bytes_ -= data.size();
  blocks_.erase(it);
  return data;
}

bool BlockStore::contains(BlockKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.count(key) > 0;
}

std::size_t BlockStore::drop_coflow(CoflowRef coflow) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t freed = 0;
  for (auto it = blocks_.lower_bound({coflow, 0});
       it != blocks_.end() && it->first.coflow == coflow;) {
    freed += it->second.size();
    it = blocks_.erase(it);
  }
  resident_bytes_ -= freed;
  return freed;
}

std::size_t BlockStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t freed = resident_bytes_;
  blocks_.clear();
  resident_bytes_ = 0;
  return freed;
}

std::size_t BlockStore::block_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

std::size_t BlockStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

codec::Buffer BufferPool::allocate(std::size_t bytes) {
  codec::Buffer buffer(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.allocations;
  stats_.bytes_allocated += bytes;
  return buffer;
}

void BufferPool::release(codec::Buffer buffer) {
  // Thread CPU time: reclaim cost must not include preemption by the
  // transfer threads sharing the core.
  timespec ts0{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts0);
  // Scrub before returning memory: byte-proportional reclaim work, the
  // runtime's analog of a collector touching the dead buffer.
  if (!buffer.empty()) std::memset(buffer.data(), 0, buffer.size());
  const std::size_t bytes = buffer.size();
  buffer.clear();
  buffer.shrink_to_fit();
  timespec ts1{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts1);
  const double elapsed = static_cast<double>(ts1.tv_sec - ts0.tv_sec) +
                         static_cast<double>(ts1.tv_nsec - ts0.tv_nsec) * 1e-9;

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.releases;
  stats_.bytes_released += bytes;
  stats_.reclaim_time += elapsed;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferPool::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = {};
}

}  // namespace swallow::runtime
