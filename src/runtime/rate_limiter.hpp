// Token-bucket rate limiter emulating a NIC: acquire(bytes) blocks the
// calling transfer thread until the bytes fit the configured rate.
#pragma once

#include <chrono>
#include <mutex>

#include "common/units.hpp"

namespace swallow::runtime {

class RateLimiter {
 public:
  /// `rate` in bytes/second; `burst` is the bucket depth (default: 64 KiB
  /// or 10 ms worth of tokens, whichever is larger).
  explicit RateLimiter(common::Bps rate, double burst = 0);

  /// Blocks until `bytes` tokens are available, then consumes them.
  void acquire(std::size_t bytes);

  /// Updates the rate (master's alloc() path). Takes effect immediately.
  void set_rate(common::Bps rate);
  common::Bps rate() const;

 private:
  using Clock = std::chrono::steady_clock;
  void refill_locked(Clock::time_point now);

  mutable std::mutex mutex_;
  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace swallow::runtime
