#include "runtime/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace swallow::runtime {

RateLimiter::RateLimiter(common::Bps rate, double burst)
    : rate_(rate), burst_(burst), last_refill_(Clock::now()) {
  if (rate <= 0) throw std::invalid_argument("RateLimiter: non-positive rate");
  if (burst_ <= 0) burst_ = std::max(64.0 * 1024.0, rate_ * 0.010);
  tokens_ = burst_;
}

void RateLimiter::refill_locked(Clock::time_point now) {
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_refill_ = now;
}

void RateLimiter::acquire(std::size_t bytes) {
  double need = static_cast<double>(bytes);
  while (need > 0) {
    double wait_seconds = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      refill_locked(Clock::now());
      const double take = std::min(tokens_, need);
      tokens_ -= take;
      need -= take;
      if (need > 0) {
        // Time until a bucket's worth (or the remainder) is available.
        wait_seconds = std::min(need, burst_) / rate_;
      }
    }
    if (need > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_seconds));
  }
}

void RateLimiter::set_rate(common::Bps rate) {
  if (rate <= 0) throw std::invalid_argument("RateLimiter: non-positive rate");
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(Clock::now());
  rate_ = rate;
}

common::Bps RateLimiter::rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_;
}

}  // namespace swallow::runtime
