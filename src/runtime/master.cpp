#include "runtime/master.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/online.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::runtime {

std::size_t CoflowInfo::total_bytes() const {
  std::size_t total = 0;
  for (const auto& f : flows) total += f.bytes;
  return total;
}

Master::Master(common::Bps nic_rate, codec::CodecModel codec,
               double cpu_headroom, bool compression, obs::Sink* sink,
               int degrade_after)
    : nic_rate_(nic_rate),
      codec_(std::move(codec)),
      cpu_headroom_(cpu_headroom),
      compression_(compression),
      sink_(sink),
      degrade_after_(degrade_after) {
  if (nic_rate <= 0) throw std::invalid_argument("Master: non-positive NIC rate");
}

CoflowRef Master::add(CoflowInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  const CoflowRef ref = next_ref_++;
  info.ref = ref;
  for (const auto& f : info.flows) flow_owner_[f.flow_id] = ref;
  coflows_[ref] = Entry{std::move(info), 1.0};
  return ref;
}

void Master::remove(CoflowRef ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = coflows_.find(ref);
  if (it == coflows_.end()) return;
  for (const auto& f : it->second.info.flows) {
    decisions_.erase(f.flow_id);
    flow_owner_.erase(f.flow_id);
    flow_failures_.erase(f.flow_id);
  }
  coflows_.erase(it);
  ranks_.erase(ref);
}

SchedResult Master::scheduling(const std::vector<CoflowRef>& refs) {
  obs::ProfileScope scope(sink_, "master.scheduling", "runtime");
  std::lock_guard<std::mutex> lock(mutex_);
  SchedResult result;

  struct Scored {
    CoflowRef ref;
    double gamma;
  };
  std::vector<Scored> scored;
  scored.reserve(refs.size());

  for (const CoflowRef ref : refs) {
    const auto it = coflows_.find(ref);
    if (it == coflows_.end())
      throw std::out_of_range("Master::scheduling: unknown coflow ref");
    Entry& entry = it->second;
    // Pseudocode 3 Upgrade: every scheduling event bumps priority classes.
    entry.priority *= core::kPriorityLogBase;

    double gamma = 0;
    for (const auto& f : entry.info.flows) {
      // Eq. 3 gate against the NIC bottleneck B. A degraded flow (repeated
      // codec/corruption failures) stays uncompressed no matter what the
      // gate says — re-scheduling must not resurrect the failing path.
      const bool degraded = degraded_locked(f.flow_id);
      const bool beta = !degraded && compression_ && f.compressible &&
                        cpu_headroom_ >= cpu::kMinCompressionHeadroom &&
                        codec_.beats_bandwidth(nic_rate_, cpu_headroom_);
      const double volume =
          beta ? static_cast<double>(f.bytes) * codec_.ratio
               : static_cast<double>(f.bytes);
      // Expected flow time: compression pipeline then the wire.
      const double compress_time =
          beta ? static_cast<double>(f.bytes) /
                     (codec_.compress_speed * cpu_headroom_)
               : 0.0;
      gamma = std::max(gamma, compress_time + volume / nic_rate_);
      result.decisions[f.flow_id] = FlowDecision{beta, nic_rate_, degraded};
      if (sink_ != nullptr)
        obs::emit_instant(sink_, obs::wall_now_us(), "beta_decision",
                          "runtime",
                          obs::Args()
                              .add("flow", f.flow_id)
                              .add("coflow", ref)
                              .add("beta", beta)
                              .str(),
                          obs::kWallPid, obs::current_thread_tid());
    }
    scored.push_back({ref, gamma / entry.priority});
    if (sink_ != nullptr)
      obs::emit_instant(sink_, obs::wall_now_us(), "coflow_estimate",
                        "runtime",
                        obs::Args()
                            .add("coflow", ref)
                            .add("gamma", gamma)
                            .add("priority", entry.priority)
                            .add("key", gamma / entry.priority)
                            .str(),
                        obs::kWallPid, obs::current_thread_tid());
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.gamma != b.gamma) return a.gamma < b.gamma;
                     return a.ref < b.ref;
                   });
  result.order.reserve(scored.size());
  for (const auto& s : scored) result.order.push_back(s.ref);
  return result;
}

void Master::alloc(const SchedResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_.clear();
  for (std::size_t i = 0; i < result.order.size(); ++i) {
    // Only coflows still registered get a rank: a stale SchedResult must
    // not leave orphaned entries behind after remove().
    if (coflows_.count(result.order[i]) > 0) ranks_[result.order[i]] = i;
  }
  for (const auto& [flow, decision] : result.decisions) {
    // Same hygiene per flow, and degradation is sticky across re-allocs.
    if (flow_owner_.count(flow) == 0) continue;
    FlowDecision applied = decision;
    if (degraded_locked(flow)) {
      applied.compress = false;
      applied.degraded = true;
    }
    decisions_[flow] = applied;
  }
}

std::uint64_t Master::rank_of(CoflowRef ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ranks_.find(ref);
  if (it != ranks_.end()) return it->second;
  // Unscheduled coflows queue behind scheduled ones, ordered by ref.
  return 1'000'000 + ref;
}

FlowDecision Master::decision_of(RtFlowId flow) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = decisions_.find(flow);
  return it == decisions_.end() ? FlowDecision{} : it->second;
}

bool Master::degraded_locked(RtFlowId flow) const {
  if (degrade_after_ <= 0) return false;
  const auto it = flow_failures_.find(flow);
  return it != flow_failures_.end() && it->second >= degrade_after_;
}

int Master::record_flow_failure(RtFlowId flow) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int count = ++flow_failures_[flow];
  if (degrade_after_ > 0 && count == degrade_after_) {
    ++degraded_count_;
    const auto it = decisions_.find(flow);
    if (it != decisions_.end()) {
      it->second.compress = false;
      it->second.degraded = true;
    }
    if (sink_ != nullptr) {
      sink_->registry().counter("runtime.degraded_flows").add(1);
      obs::emit_instant(sink_, obs::wall_now_us(), "flow_degraded", "fault",
                        obs::Args()
                            .add("flow", flow)
                            .add("failures", count)
                            .str(),
                        obs::kWallPid, obs::current_thread_tid());
    }
  }
  return count;
}

std::size_t Master::active_coflows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coflows_.size();
}

std::size_t Master::degraded_flows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_count_;
}

std::size_t Master::decision_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_.size();
}

std::size_t Master::rank_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ranks_.size();
}

}  // namespace swallow::runtime
