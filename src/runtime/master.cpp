#include "runtime/master.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/online.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "recovery/snapshot.hpp"

namespace swallow::runtime {

std::size_t CoflowInfo::total_bytes() const {
  std::size_t total = 0;
  for (const auto& f : flows) total += f.bytes;
  return total;
}

Master::Master(common::Bps nic_rate, codec::CodecModel codec,
               double cpu_headroom, bool compression, obs::Sink* sink,
               int degrade_after)
    : nic_rate_(nic_rate),
      codec_(std::move(codec)),
      cpu_headroom_(cpu_headroom),
      compression_(compression),
      sink_(sink),
      degrade_after_(degrade_after) {
  if (nic_rate <= 0) throw std::invalid_argument("Master: non-positive NIC rate");
}

CoflowRef Master::add(CoflowInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  const CoflowRef ref = next_ref_++;
  info.ref = ref;
  for (const auto& f : info.flows) flow_owner_[f.flow_id] = ref;
  coflows_[ref] = Entry{std::move(info), 1.0};
  return ref;
}

void Master::remove(CoflowRef ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = coflows_.find(ref);
  if (it == coflows_.end()) return;
  for (const auto& f : it->second.info.flows) {
    decisions_.erase(f.flow_id);
    flow_owner_.erase(f.flow_id);
    flow_failures_.erase(f.flow_id);
  }
  coflows_.erase(it);
  ranks_.erase(ref);
}

SchedResult Master::scheduling(const std::vector<CoflowRef>& refs) {
  obs::ProfileScope scope(sink_, "master.scheduling", "runtime");
  std::lock_guard<std::mutex> lock(mutex_);
  SchedResult result;

  struct Scored {
    CoflowRef ref;
    double gamma;
  };
  std::vector<Scored> scored;
  scored.reserve(refs.size());

  for (const CoflowRef ref : refs) {
    const auto it = coflows_.find(ref);
    if (it == coflows_.end())
      throw std::out_of_range("Master::scheduling: unknown coflow ref");
    Entry& entry = it->second;
    // Pseudocode 3 Upgrade: every scheduling event bumps priority classes.
    entry.priority *= core::kPriorityLogBase;

    double gamma = 0;
    for (const auto& f : entry.info.flows) {
      // Eq. 3 gate against the NIC bottleneck B. A degraded flow (repeated
      // codec/corruption failures) stays uncompressed no matter what the
      // gate says — re-scheduling must not resurrect the failing path.
      const bool degraded = degraded_locked(f.flow_id);
      const bool beta = !degraded && compression_ && f.compressible &&
                        cpu_headroom_ >= cpu::kMinCompressionHeadroom &&
                        codec_.beats_bandwidth(nic_rate_, cpu_headroom_);
      const double volume =
          beta ? static_cast<double>(f.bytes) * codec_.ratio
               : static_cast<double>(f.bytes);
      // Expected flow time: compression pipeline then the wire.
      const double compress_time =
          beta ? static_cast<double>(f.bytes) /
                     (codec_.compress_speed * cpu_headroom_)
               : 0.0;
      gamma = std::max(gamma, compress_time + volume / nic_rate_);
      result.decisions[f.flow_id] = FlowDecision{beta, nic_rate_, degraded};
      if (sink_ != nullptr)
        obs::emit_instant(sink_, obs::wall_now_us(), "beta_decision",
                          "runtime",
                          obs::Args()
                              .add("flow", f.flow_id)
                              .add("coflow", ref)
                              .add("beta", beta)
                              .str(),
                          obs::kWallPid, obs::current_thread_tid());
    }
    scored.push_back({ref, gamma / entry.priority});
    if (sink_ != nullptr)
      obs::emit_instant(sink_, obs::wall_now_us(), "coflow_estimate",
                        "runtime",
                        obs::Args()
                            .add("coflow", ref)
                            .add("gamma", gamma)
                            .add("priority", entry.priority)
                            .add("key", gamma / entry.priority)
                            .str(),
                        obs::kWallPid, obs::current_thread_tid());
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.gamma != b.gamma) return a.gamma < b.gamma;
                     return a.ref < b.ref;
                   });
  result.order.reserve(scored.size());
  for (const auto& s : scored) result.order.push_back(s.ref);
  return result;
}

void Master::alloc(const SchedResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_.clear();
  for (std::size_t i = 0; i < result.order.size(); ++i) {
    // Only coflows still registered get a rank: a stale SchedResult must
    // not leave orphaned entries behind after remove().
    if (coflows_.count(result.order[i]) > 0) ranks_[result.order[i]] = i;
  }
  for (const auto& [flow, decision] : result.decisions) {
    // Same hygiene per flow, and degradation is sticky across re-allocs.
    if (flow_owner_.count(flow) == 0) continue;
    FlowDecision applied = decision;
    if (degraded_locked(flow)) {
      applied.compress = false;
      applied.degraded = true;
    }
    decisions_[flow] = applied;
  }
}

std::uint64_t Master::rank_of(CoflowRef ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ranks_.find(ref);
  if (it != ranks_.end()) return it->second;
  // Unscheduled coflows queue behind scheduled ones, ordered by ref.
  return 1'000'000 + ref;
}

FlowDecision Master::decision_of(RtFlowId flow) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = decisions_.find(flow);
  return it == decisions_.end() ? FlowDecision{} : it->second;
}

bool Master::degraded_locked(RtFlowId flow) const {
  if (degrade_after_ <= 0) return false;
  const auto it = flow_failures_.find(flow);
  return it != flow_failures_.end() && it->second >= degrade_after_;
}

int Master::record_flow_failure(RtFlowId flow) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int count = ++flow_failures_[flow];
  if (degrade_after_ > 0 && count == degrade_after_) {
    ++degraded_count_;
    const auto it = decisions_.find(flow);
    if (it != decisions_.end()) {
      it->second.compress = false;
      it->second.degraded = true;
    }
    if (sink_ != nullptr) {
      sink_->registry().counter("runtime.degraded_flows").add(1);
      obs::emit_instant(sink_, obs::wall_now_us(), "flow_degraded", "fault",
                        obs::Args()
                            .add("flow", flow)
                            .add("failures", count)
                            .str(),
                        obs::kWallPid, obs::current_thread_tid());
    }
  }
  return count;
}

std::size_t Master::active_coflows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coflows_.size();
}

std::size_t Master::degraded_flows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_count_;
}

std::size_t Master::decision_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_.size();
}

std::size_t Master::rank_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ranks_.size();
}

void Master::save_state(recovery::StateWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.u64(next_ref_);
  w.u64(degraded_count_);
  w.u64(coflows_.size());
  for (const auto& [ref, entry] : coflows_) {
    w.u64(ref);
    w.f64(entry.priority);
    w.u64(entry.info.flows.size());
    for (const FlowInfo& f : entry.info.flows) {
      w.u64(f.flow_id);
      w.u64(f.coflow);
      w.u32(f.src);
      w.u32(f.dst);
      w.u64(f.bytes);
      w.boolean(f.compressible);
    }
  }
  w.u64(ranks_.size());
  for (const auto& [ref, rank] : ranks_) {
    w.u64(ref);
    w.u64(rank);
  }
  w.u64(decisions_.size());
  for (const auto& [flow, d] : decisions_) {
    w.u64(flow);
    w.boolean(d.compress);
    w.f64(d.rate);
    w.boolean(d.degraded);
  }
  w.u64(flow_owner_.size());
  for (const auto& [flow, ref] : flow_owner_) {
    w.u64(flow);
    w.u64(ref);
  }
  w.u64(flow_failures_.size());
  for (const auto& [flow, count] : flow_failures_) {
    w.u64(flow);
    w.u64(static_cast<std::uint64_t>(count));
  }
}

void Master::restore_state(recovery::StateReader& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  coflows_.clear();
  ranks_.clear();
  decisions_.clear();
  flow_owner_.clear();
  flow_failures_.clear();
  next_ref_ = r.u64();
  degraded_count_ = r.u64();
  const std::uint64_t ncoflows = r.count("master coflows");
  for (std::uint64_t i = 0; i < ncoflows; ++i) {
    const CoflowRef ref = r.u64();
    if (ref >= next_ref_)
      throw recovery::RecoveryError(
          "master: restored coflow ref outside the issued range", r.offset());
    Entry entry;
    entry.info.ref = ref;
    entry.priority = r.f64();
    const std::uint64_t nflows = r.count("master coflow flows");
    entry.info.flows.reserve(nflows);
    for (std::uint64_t k = 0; k < nflows; ++k) {
      FlowInfo f;
      f.flow_id = r.u64();
      f.coflow = r.u64();
      f.src = r.u32();
      f.dst = r.u32();
      f.bytes = r.u64();
      f.compressible = r.boolean();
      entry.info.flows.push_back(f);
    }
    coflows_[ref] = std::move(entry);
  }
  const std::uint64_t nranks = r.count("master ranks");
  for (std::uint64_t i = 0; i < nranks; ++i) {
    const CoflowRef ref = r.u64();
    const std::uint64_t rank = r.u64();
    if (coflows_.count(ref) == 0)
      throw recovery::RecoveryError("master: rank for unknown coflow",
                                    r.offset());
    ranks_[ref] = rank;
  }
  const std::uint64_t ndecisions = r.count("master decisions");
  for (std::uint64_t i = 0; i < ndecisions; ++i) {
    const RtFlowId flow = r.u64();
    FlowDecision d;
    d.compress = r.boolean();
    d.rate = r.f64();
    d.degraded = r.boolean();
    decisions_[flow] = d;
  }
  const std::uint64_t nowners = r.count("master flow owners");
  for (std::uint64_t i = 0; i < nowners; ++i) {
    const RtFlowId flow = r.u64();
    const CoflowRef ref = r.u64();
    if (coflows_.count(ref) == 0)
      throw recovery::RecoveryError("master: flow owned by unknown coflow",
                                    r.offset());
    flow_owner_[flow] = ref;
  }
  const std::uint64_t nfailures = r.count("master flow failures");
  for (std::uint64_t i = 0; i < nfailures; ++i) {
    const RtFlowId flow = r.u64();
    flow_failures_[flow] = static_cast<int>(r.u64());
  }
}

std::uint64_t Master::config_fingerprint() const {
  recovery::Fingerprint fp;
  fp.mix(std::string("swallow.runtime.master.v1"));
  fp.mix(nic_rate_);
  fp.mix(codec_.name);
  fp.mix(codec_.compress_speed);
  fp.mix(codec_.decompress_speed);
  fp.mix(codec_.ratio);
  fp.mix(cpu_headroom_);
  fp.mix(static_cast<std::uint64_t>(compression_));
  fp.mix(static_cast<std::uint64_t>(degrade_after_));
  return fp.value();
}

void Master::checkpoint(const std::string& dir, std::uint64_t seq) const {
  recovery::StateWriter w;
  save_state(w);
  recovery::SnapshotMeta meta;
  meta.seq = seq;
  meta.fingerprint = config_fingerprint();
  recovery::write_snapshot(dir, meta, w.buffer());
  if (sink_ != nullptr)
    sink_->registry().counter("recovery.master_snapshots").add(1);
}

bool Master::restore_from(const std::string& dir) {
  const auto snap = recovery::load_latest_snapshot(dir, config_fingerprint());
  if (!snap) return false;
  recovery::StateReader r(snap->payload);
  restore_state(r);
  if (!r.at_end())
    throw recovery::RecoveryError("master: trailing bytes after state",
                                  r.offset());
  if (sink_ != nullptr)
    sink_->registry().counter("recovery.master_restores").add(1);
  return true;
}

void Master::restore_coflow(CoflowRef ref, CoflowInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (coflows_.count(ref) > 0) return;  // the snapshot already carried it
  info.ref = ref;
  for (const auto& f : info.flows) flow_owner_[f.flow_id] = ref;
  coflows_[ref] = Entry{std::move(info), 1.0};
  if (ref >= next_ref_) next_ref_ = ref + 1;
}

bool Master::has_coflow(CoflowRef ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coflows_.count(ref) > 0;
}

std::vector<RtFlowId> Master::flows_of(CoflowRef ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RtFlowId> flows;
  const auto it = coflows_.find(ref);
  if (it == coflows_.end()) return flows;
  flows.reserve(it->second.info.flows.size());
  for (const auto& f : it->second.info.flows) flows.push_back(f.flow_id);
  return flows;
}

}  // namespace swallow::runtime
