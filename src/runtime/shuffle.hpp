// End-to-end shuffle engine: runs a map -> shuffle -> reduce job over the
// in-process cluster through the SwallowContext API, with real payloads,
// real compression and payload verification. Backs the deployment-style
// experiments (Fig. 7(a), Table VII, Table VIII).
#pragma once

#include <cstdint>
#include <string>

#include "codec/synth_data.hpp"
#include "runtime/context.hpp"

namespace swallow::runtime {

struct ShuffleJobConfig {
  codec::AppProfile app;                 ///< payload generator (Table I app)
  std::size_t mappers = 4;
  std::size_t reducers = 2;
  std::size_t bytes_per_partition = 64 * 1024;
  /// Result stage ("save output as Hadoop files", Fig. 7(a)): each reducer
  /// writes its output to this many replica workers over the network.
  /// 0 disables the stage.
  std::size_t result_replicas = 0;
  std::uint64_t seed = 1;
};

struct ShuffleReport {
  std::string app;
  common::Seconds map_time = 0;      ///< payload generation (map stage)
  common::Seconds shuffle_time = 0;  ///< concurrent push+pull wall time
  common::Seconds reduce_time = 0;   ///< reduce aggregation CPU time
  common::Seconds result_time = 0;   ///< replica writes (0 if disabled)
  common::Seconds jct = 0;           ///< total job completion time

  std::size_t raw_bytes = 0;   ///< payload bytes the job shuffled
  std::size_t wire_bytes = 0;  ///< bytes that crossed the (rate-limited) wire

  BufferPool::Stats map_pool;     ///< sender-side (raw partition) reclamation
  BufferPool::Stats reduce_pool;  ///< receiver-side (wire buffer) reclamation:
                                  ///< shrinks with compression (Table VIII)

  bool verified = false;  ///< every block matched its pre-shuffle checksum

  /// Measured per-chunk codec throughput over the job (deltas of the
  /// cluster ThroughputLedger; zero on the legacy SWF1 path, which does
  /// not record per-chunk samples).
  double encode_mbps = 0;          ///< raw MB/s through the encoders
  double decode_mbps = 0;          ///< raw MB/s through the decoders
  std::size_t chunks_encoded = 0;  ///< SWF2 chunk records produced
  std::size_t chunks_decoded = 0;  ///< SWF2 chunk records verified+decoded

  /// Fault/recovery activity during this job (deltas of the cluster-wide
  /// FaultStats around the run; all zero with the injector disabled).
  std::size_t faults_injected = 0;
  std::size_t retries = 0;          ///< push/pull attempts beyond the first
  std::size_t retransmits = 0;      ///< re-pushes from the retention store
  std::size_t corrupt_frames = 0;   ///< frames rejected by FNV checksums
  std::size_t pull_timeouts = 0;    ///< bounded waits that expired
  std::size_t gate_evictions = 0;   ///< dead PortGate holders evicted
  std::size_t degraded_flows = 0;   ///< flows flipped to uncompressed

  double traffic_reduction() const {
    return raw_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(wire_bytes) /
                           static_cast<double>(raw_bytes);
  }
};

/// Runs one job; mappers live on workers [0..mappers), reducers on workers
/// ((mapper_count + j) mod cluster size). Failures surface as typed
/// ShuffleError (kVerification when a payload mismatched its pre-shuffle
/// checksum; kPullTimeout / kCorruption / kCodecFailure propagated from the
/// push/pull recovery paths) — worker-thread exceptions are rethrown on the
/// calling thread, never std::terminate.
ShuffleReport run_shuffle_job(Cluster& cluster, const ShuffleJobConfig& config);

}  // namespace swallow::runtime
