// SwallowContext: the Table IV programming API, backed by an in-process
// cluster. Cluster frameworks drive shuffles exactly as the paper's Scala
// snippet does:
//
//   auto flow_info  = ctx.hook(executor);          // Driver
//   auto coflow     = ctx.aggregate(flow_info);    // Driver
//   auto ref        = ctx.add(coflow);             // Driver
//   auto result     = ctx.scheduling({ref});       // Driver
//   ctx.alloc(result);                             // ClusterManager
//   ctx.push(ref, block_id, data, src, dst);       // Sender
//   auto data       = ctx.pull(ref, block_id, dst);// Receiver
//   ctx.remove(ref);                               // Driver
#pragma once

#include <memory>
#include <vector>

#include "codec/chunk.hpp"
#include "codec/codec.hpp"
#include "codec/throughput.hpp"
#include "runtime/fault.hpp"
#include "runtime/master.hpp"
#include "runtime/worker.hpp"

namespace swallow::runtime {

struct ClusterConfig {
  std::size_t num_workers = 4;
  common::Bps nic_rate = 64.0 * 1024 * 1024;  ///< 64 MiB/s keeps tests brisk
  codec::CodecKind codec = codec::CodecKind::kLzBalanced;
  /// The swallow.smartCompress option of the paper's library.
  bool smart_compress = true;
  /// Assumed idle CPU share feeding Eq. 3 (R_eff = R * headroom).
  double cpu_headroom = 0.9;
  /// (R, xi) model for the compression gate; defaults to Table II's LZ4.
  codec::CodecModel codec_model = codec::default_codec_model();
  /// Chunk size for the pipelined codec data plane (DESIGN.md §14): blocks
  /// travel as SWF2 chunk frames, chunk N transmitting while chunk N+1
  /// encodes. 0 falls back to the serial SWF1 frame path.
  std::size_t chunk_bytes = codec::kDefaultChunkBytes;
  /// Codec worker threads shared by all transfers (0 = auto: min(4, hw)).
  unsigned codec_threads = 0;
  /// Observability sink shared by the master, workers and context data
  /// paths (scheduling decisions, transfer counters, gate-wait and
  /// compress/transfer/decompress profiles). Null disables tracing.
  obs::Sink* sink = nullptr;
  /// Fault model (disabled by default: the data path is then byte-identical
  /// to a fault-free build) and the recovery knobs opposite it.
  FaultConfig fault;
  RetryPolicy retry;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  std::size_t size() const { return workers_.size(); }
  Worker& worker(WorkerId id);
  Master& master() { return master_; }
  const ClusterConfig& config() const { return config_; }
  const codec::Codec& codec() const { return *codec_; }
  obs::Sink* sink() const { return config_.sink; }

  /// Shared codec worker pool (null when chunk_bytes == 0: legacy SWF1
  /// serial path). All transfers' encode/decode jobs multiplex onto it.
  codec::ChunkPool* chunk_pool() { return chunk_pool_.get(); }
  /// Measured per-chunk codec throughput; calibrate() turns it into a
  /// CodecModel for the sim/gate side.
  codec::ThroughputLedger& ledger() { return ledger_; }
  const codec::ThroughputLedger& ledger() const { return ledger_; }

  /// Cluster-wide traffic totals (sum over workers).
  std::size_t total_wire_bytes() const;
  std::size_t total_raw_bytes() const;

  // ---- Failure model & recovery (DESIGN.md §8) ----
  FaultInjector& injector() { return injector_; }
  FaultCounters& fault_counters() { return fault_counters_; }
  RetentionStore& retention() { return retention_; }

  /// Marks a worker dead and wipes its block store (its in-flight and
  /// resident blocks are lost; retransmits land on the replacement).
  /// The last live worker cannot be killed.
  void kill_worker(WorkerId id);
  bool worker_dead(WorkerId id) const;
  /// `id` if alive, else the first surviving worker after it (wrap-around).
  WorkerId effective_worker(WorkerId id) const;

  /// Cluster-wide fault/recovery totals: injections + retries/retransmits
  /// (context paths) + gate evictions (workers) + degraded flows (master).
  FaultStats fault_stats() const;

  // ---- Master fail-over (DESIGN.md section 13) ----

  /// Rebuilds the master's bookkeeping after a master crash: loads the
  /// newest usable snapshot in `dir` (fingerprint-checked; an empty or
  /// snapshot-free dir cold-starts instead), then has every live worker
  /// re-announce its registration log so coflows the snapshot missed are
  /// re-registered under their ORIGINAL refs — receivers blocked in pull()
  /// hold those refs, and the retention/store keys embed them. Ownership
  /// of log flows is reconstructed from the RetentionStore keys (block id
  /// == flow id). Returns true when a snapshot was used.
  bool restore_master(const std::string& dir);

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<codec::Codec> codec_;
  std::unique_ptr<codec::ChunkPool> chunk_pool_;
  codec::ThroughputLedger ledger_;
  Master master_;
  FaultCounters fault_counters_;
  FaultInjector injector_;
  RetentionStore retention_;
};

class SwallowContext {
 public:
  explicit SwallowContext(Cluster& cluster) : cluster_(&cluster) {}

  /// Drains the flow registrations of one executor (worker).
  std::vector<FlowInfo> hook(WorkerId executor);
  /// Merges flow infos into one coflow.
  CoflowInfo aggregate(std::vector<FlowInfo> flows);
  CoflowRef add(CoflowInfo info);
  void remove(CoflowRef ref);
  SchedResult scheduling(const std::vector<CoflowRef>& refs);
  void alloc(const SchedResult& result);

  /// Sender side: optionally compresses, waits for the coflow's turn on the
  /// source egress port, moves the bytes through both NIC limiters, and
  /// lands the block in the destination's store. Blocking. Injected codec
  /// failures are retried with backoff (degrading the flow to uncompressed
  /// past the RetryPolicy threshold); injected drops/stalls are invisible
  /// to the sender — the pull side recovers them. Throws ShuffleError
  /// (kCodecFailure) when the retry budget is exhausted.
  void push(CoflowRef ref, BlockId block, std::span<const std::uint8_t> data,
            WorkerId src, WorkerId dst);

  /// Receiver side: waits for the block (bounded by RetryPolicy's
  /// per-attempt pull_timeout), decompresses if needed, and on timeout or
  /// a corrupt frame requests a retransmit from the sender-side retention
  /// store with exponential backoff. Throws ShuffleError (kPullTimeout /
  /// kCorruption) when the retry budget is exhausted — never hangs.
  /// When `wire_reclaim` is given, the wire buffer (compressed when the
  /// master enabled compression) is released through it after decoding —
  /// the receiver-side reclamation that Table VIII's GC analog measures.
  codec::Buffer pull(CoflowRef ref, BlockId block, WorkerId dst,
                     BufferPool* wire_reclaim = nullptr);

  /// Master fail-over replay: re-pushes every retained block that is not
  /// resident in its (surviving) destination's store — in-flight transfers
  /// the crash may have lost land again, waking receivers blocked in
  /// pull() without waiting for their per-attempt timeouts. Blocks already
  /// consumed by a receiver are re-landed too (indistinguishable from lost
  /// ones sender-side) and swept out by remove() with the coflow. Returns
  /// the number of blocks re-pushed.
  std::size_t replay_in_flight();

 private:
  /// One delivery attempt; returns true when the block reached the
  /// receiver's store (false: injected drop or sender death mid-transfer).
  /// Throws codec::CodecError on an injected codec failure.
  bool transfer_once(CoflowRef ref, BlockId block,
                     std::span<const std::uint8_t> data, WorkerId src,
                     WorkerId dst, int attempt);
  /// Re-push from the retention store; false when nothing was retained.
  bool retransmit(CoflowRef ref, BlockId block, int attempt);

  Cluster* cluster_;
};

}  // namespace swallow::runtime
