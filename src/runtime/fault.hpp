// Fault injection and recovery for the runtime cluster.
//
// The paper's deployment numbers come from a 100-VM Spark cluster where
// stragglers, lost blocks and corrupted transfers are routine; this layer
// gives the in-process runtime the same adversity — deterministically.
// A FaultInjector decides per (fault kind, block, attempt) from a seeded
// xoshiro stream whether to drop a block in flight, corrupt its wire frame
// (exercising the FNV checksums of codec/frame.hpp), stall the transfer,
// fail the codec call, or kill a worker at a configured point. Decisions
// are pure functions of (seed, kind, block, attempt), so runs are
// bit-reproducible regardless of thread interleaving.
//
// Opposite the injector sits the recovery machinery the rest of the
// runtime uses: bounded exponential backoff with jitter (RetryPolicy),
// sender-side block retention for retransmits (RetentionStore), the typed
// ShuffleError surfaced when recovery is exhausted, and the FaultCounters
// every retry/retransmit/degradation reports through (mirrored into the
// obs registry as runtime.retries / runtime.retransmits /
// runtime.corrupt_frames / runtime.degraded_flows and friends).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "runtime/worker.hpp"

namespace swallow::runtime {

/// Fault classes the injector can produce. Each maps to one obs event
/// name in the `fault` category ("fault.drop", "fault.corrupt", ...).
enum class FaultKind : std::uint8_t {
  kDrop = 0,       ///< block vanishes between sender NIC and receiver store
  kCorrupt = 1,    ///< wire frame bytes flipped in flight
  kStall = 2,      ///< straggler: transfer delayed by stall_duration
  kCodecFail = 3,  ///< compression call throws (CPU-side failure)
  kWorkerKill = 4, ///< a worker dies at the configured kill point
};

const char* fault_kind_name(FaultKind kind);

/// Per-cluster fault model (ClusterConfig::fault). Disabled by default:
/// with enabled=false the injector never consults the RNG and the runtime
/// data path is byte-identical to an injector-free build.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;     ///< root of every injection decision
  double drop_rate = 0;       ///< per (block, attempt) drop probability
  double corrupt_rate = 0;    ///< per (block, attempt) corruption probability
  double stall_rate = 0;      ///< per (block, attempt) straggler probability
  double codec_fail_rate = 0; ///< per (block, attempt) codec-crash probability
  common::Seconds stall_duration = 0.05;

  /// Worker kill: when kill_after_deliveries blocks have landed cluster-wide,
  /// kill_worker dies. With kill_holding_gate the victim crashes while
  /// holding its egress PortGate (the deadlock class holder-timeout eviction
  /// exists for).
  bool kill_enabled = false;
  WorkerId kill_worker = 0;
  std::size_t kill_after_deliveries = 0;
  bool kill_holding_gate = false;

  /// Convenience: same rate for drop/corrupt/stall/codec faults.
  void set_uniform_rate(double rate) {
    drop_rate = corrupt_rate = stall_rate = codec_fail_rate = rate;
  }
};

/// Recovery knobs (ClusterConfig::retry). Active even when injection is
/// off, so a genuine bug times out with a typed error instead of hanging.
struct RetryPolicy {
  int max_attempts = 5;                    ///< per-block push/pull attempts
  common::Seconds base_backoff = 0.005;    ///< first retry delay
  double backoff_multiplier = 2.0;         ///< exponential growth
  common::Seconds max_backoff = 0.25;      ///< backoff ceiling
  double jitter = 0.5;                     ///< fraction of delay randomized
  common::Seconds pull_timeout = 30.0;     ///< per-attempt block wait
  common::Seconds gate_holder_timeout = 0; ///< PortGate eviction; 0 = never
  int degrade_after = 2;  ///< codec/corruption failures before a flow is
                          ///< flipped to uncompressed (graceful degradation)
};

/// Bounded exponential backoff with jitter: attempt 1 waits ~base, each
/// further attempt doubles (per multiplier) up to max_backoff, scaled by
/// a uniform factor in [1 - jitter, 1].
common::Seconds backoff_delay(const RetryPolicy& retry, int attempt,
                              common::Rng& rng);

/// Failure classes a shuffle surfaces when recovery is exhausted.
enum class ShuffleFailure : std::uint8_t {
  kVerification = 0,  ///< payload checksum mismatch after a verified pull
  kPullTimeout = 1,   ///< block never arrived within the retry budget
  kCorruption = 2,    ///< every retransmit of the block arrived corrupt
  kCodecFailure = 3,  ///< compression kept failing past the retry budget
};

const char* shuffle_failure_name(ShuffleFailure kind);

/// Typed shuffle error carrying the coflow/flow/block coordinates of the
/// failure (replaces the bare std::runtime_error the shuffle used to throw).
class ShuffleError : public std::runtime_error {
 public:
  ShuffleError(ShuffleFailure kind, CoflowRef coflow, RtFlowId flow,
               BlockId block);

  ShuffleFailure kind() const { return kind_; }
  CoflowRef coflow() const { return coflow_; }
  RtFlowId flow() const { return flow_; }
  BlockId block() const { return block_; }

 private:
  ShuffleFailure kind_;
  CoflowRef coflow_;
  RtFlowId flow_;
  BlockId block_;
};

/// Snapshot of the cluster's fault/recovery activity (Cluster::fault_stats).
struct FaultStats {
  std::size_t injected_drops = 0;
  std::size_t injected_corruptions = 0;
  std::size_t injected_stalls = 0;
  std::size_t injected_codec_failures = 0;
  std::size_t worker_kills = 0;

  std::size_t retries = 0;         ///< backoff-and-retry rounds (push + pull)
  std::size_t retransmits = 0;     ///< blocks re-sent from retention
  std::size_t corrupt_frames = 0;  ///< pull-side frame decode failures
  std::size_t pull_timeouts = 0;   ///< per-attempt block waits that expired
  std::size_t gate_evictions = 0;  ///< dead PortGate holders evicted
  std::size_t degraded_flows = 0;  ///< flows flipped to uncompressed

  std::size_t total_injected() const {
    return injected_drops + injected_corruptions + injected_stalls +
           injected_codec_failures + worker_kills;
  }
};

/// Thread-safe recovery counters, mirrored into the obs registry when a
/// sink is attached (runtime.retries, runtime.retransmits, ...).
class FaultCounters {
 public:
  void set_sink(obs::Sink* sink) { sink_ = sink; }

  void on_injected(FaultKind kind);
  void on_retry();
  void on_retransmit();
  void on_corrupt_frame();
  void on_pull_timeout();

  /// Partial snapshot; Cluster::fault_stats() adds gate evictions (summed
  /// from the workers) and degraded flows (tracked by the master).
  FaultStats snapshot() const;

 private:
  void mirror(const char* name) const;

  obs::Sink* sink_ = nullptr;
  std::atomic<std::size_t> drops_{0};
  std::atomic<std::size_t> corruptions_{0};
  std::atomic<std::size_t> stalls_{0};
  std::atomic<std::size_t> codec_failures_{0};
  std::atomic<std::size_t> kills_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> retransmits_{0};
  std::atomic<std::size_t> corrupt_frames_{0};
  std::atomic<std::size_t> pull_timeouts_{0};
};

/// Deterministic, seeded fault source. Every decision hashes
/// (seed, kind, block, attempt) into a fresh xoshiro stream, so the fault
/// pattern is a pure function of the seed — independent of scheduling,
/// thread count, or how often other blocks consult the injector.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, FaultCounters* counters,
                obs::Sink* sink);

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  /// Pure query: would `kind` fire for this (block, attempt)?
  bool fires(FaultKind kind, BlockId block, int attempt) const;

  /// fires() plus the side effects: counts the injection and emits the
  /// `fault` category obs event. Call sites act on a true return.
  bool inject(FaultKind kind, BlockId block, int attempt);

  /// Flips one deterministic byte of the wire frame (never the 4-byte
  /// magic, so the corruption reaches the checksum machinery instead of
  /// failing fast on the header).
  void corrupt(std::span<std::uint8_t> wire, BlockId block, int attempt) const;

  common::Seconds stall_duration() const { return config_.stall_duration; }

  /// Called once per delivered block; returns true exactly once, when the
  /// configured kill point is crossed.
  bool count_delivery_and_check_kill();

 private:
  double rate_of(FaultKind kind) const;

  FaultConfig config_;
  FaultCounters* counters_;
  obs::Sink* sink_;
  std::atomic<std::size_t> deliveries_{0};
  std::atomic<bool> kill_fired_{false};
};

/// Sender-side retention: raw payload copies kept while a coflow is live so
/// a lost or corrupted block can be re-pushed (to the original destination
/// or, after a worker death, its surviving replacement). Populated only
/// when injection is enabled; dropped with the coflow.
class RetentionStore {
 public:
  struct Retained {
    WorkerId src = 0;
    WorkerId dst = 0;
    codec::Buffer raw;
  };

  void retain(BlockKey key, WorkerId src, WorkerId dst,
              std::span<const std::uint8_t> raw);
  /// Copy-out lookup (the retransmit path re-encodes from the copy).
  std::optional<Retained> lookup(BlockKey key) const;
  /// Keys of every retained block, in deterministic (sorted) order — the
  /// master fail-over replay walks these to re-push in-flight blocks.
  std::vector<BlockKey> keys() const;
  std::size_t drop_coflow(CoflowRef coflow);
  std::size_t block_count() const;
  std::size_t resident_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::map<BlockKey, Retained> blocks_;
};

}  // namespace swallow::runtime
