// In-process message bus: a closable MPMC channel (mutex + condvar).
// The runtime's stand-in for the Akka messaging of the original Scala
// implementation; see DESIGN.md's substitution table.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace swallow::runtime {

template <typename T>
class Channel {
 public:
  /// Returns false if the channel was closed.
  bool send(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a value or close; nullopt means closed-and-drained.
  std::optional<T> receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Bounded receive: waits at most `timeout` for a value. nullopt means
  /// the timeout expired or the channel is closed-and-drained (disambiguate
  /// with closed() if it matters). The runtime prefers this over receive()
  /// so a lost message can never wedge a thread forever.
  template <typename Rep, typename Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    // Absolute deadline + wait_until loop: spurious wakeups re-wait only
    // for the remaining time, so the total wait can never drift past the
    // caller's budget.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mutex_);
    while (queue_.empty() && !closed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          queue_.empty() && !closed_)
        return std::nullopt;  // timed out
    }
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace swallow::runtime
