#include "common/cdf.hpp"

#include <algorithm>
#include <stdexcept>

namespace swallow::common {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  sorted_ = false;
  ensure_sorted();
}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::finalize() { ensure_sorted(); }

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) throw std::logic_error("Cdf::at on empty CDF");
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty CDF");
  if (q <= 0.0 || q > 1.0)
    throw std::invalid_argument("Cdf::quantile: q out of (0,1]");
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size()) - 1e-12);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Cdf::mass_fraction_above(double x) const {
  double total = 0.0, above = 0.0;
  for (double v : samples_) {
    total += v;
    if (v > x) above += v;
  }
  return total > 0.0 ? above / total : 0.0;
}

std::vector<std::pair<double, double>> Cdf::points(std::size_t n) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace swallow::common
