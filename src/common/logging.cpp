#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace swallow::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;  // keeps multi-threaded runtime log lines whole
LogSinkFn g_sink;    // guarded by g_mutex; empty => stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "debug") return LogLevel::kDebug;
  if (key == "info") return LogLevel::kInfo;
  if (key == "warn" || key == "warning") return LogLevel::kWarn;
  if (key == "error") return LogLevel::kError;
  throw std::invalid_argument("parse_log_level: unknown level " + name);
}

void set_log_sink(LogSinkFn sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace swallow::common
