#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace swallow::common {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % span;
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("exponential: rate <= 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0 || alpha <= 0) throw std::invalid_argument("pareto: bad params");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  if (lo <= 0 || hi <= lo || alpha <= 0)
    throw std::invalid_argument("bounded_pareto: bad params");
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = uniform();
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: n == 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first rank whose CDF exceeds u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo + 1;
}

}  // namespace swallow::common
