#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace swallow::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(sample.begin(), sample.end());
  const double h = (static_cast<double>(sample.size()) - 1.0) * p;
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

double mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket + 1);
}

double Histogram::fraction(std::size_t bucket) const {
  return total_ ? static_cast<double>(counts_.at(bucket)) /
                      static_cast<double>(total_)
                : 0.0;
}

}  // namespace swallow::common
