#include "common/flags.hpp"

#include <stdexcept>
#include <string>

namespace swallow::common {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("Flags: expected --key[=value], got " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos)
      values_[arg] = "true";
    else
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

long Flags::get_int(const std::string& key, long def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stol(it->second);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace swallow::common
