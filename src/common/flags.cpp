#include "common/flags.hpp"

#include <stdexcept>
#include <string>

#include "common/logging.hpp"

namespace swallow::common {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("Flags: expected --key[=value], got " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value": consume the next token unless it is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

long Flags::get_int(const std::string& key, long def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stol(it->second);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void apply_log_level_flag(const Flags& flags) {
  if (!flags.has("log-level")) return;
  const std::string level = flags.get("log-level", "warn");
  try {
    set_log_level(parse_log_level(level));
  } catch (const std::invalid_argument&) {
    // A bad level must not abort the program it was meant to make chattier.
    log_error("flags: ignoring unknown --log-level '", level,
              "' (expected debug|info|warn|error)");
  }
}

}  // namespace swallow::common
