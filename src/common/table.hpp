// ASCII table printer: every bench binary renders its paper-style table with
// this, so reports stay visually consistent.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace swallow::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with column-aligned pipes and a separator under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers for table cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 2);  ///< 0.4841 -> "48.41%"
std::string fmt_bytes(double bytes);       ///< human units: 1.5 MB, 2.3 GB...
std::string fmt_speedup(double factor);    ///< 1.47 -> "1.47x"
std::string fmt_int(double v);             ///< thousands separators: 79,913

}  // namespace swallow::common
