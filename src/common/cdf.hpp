// Empirical CDFs, used for Fig. 1 (flow size distribution), Fig. 6(d)
// (FCT CDF) and Fig. 7(c) (CCT CDF under different time slices).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace swallow::common {

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);
  /// Sorts pending samples; called lazily by the query methods.
  void finalize();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// P(X <= x) over the sample.
  double at(double x) const;
  /// Inverse CDF: smallest sample value v with P(X <= v) >= q, q in (0, 1].
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Weighted fraction of total mass contributed by samples > x
  /// (e.g. "flows larger than 10 GB create 93% of bytes", Fig. 1(b)).
  double mass_fraction_above(double x) const;

  /// Evenly spaced (value, cumulative fraction) points for plotting/printing.
  std::vector<std::pair<double, double>> points(std::size_t n) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace swallow::common
