// Running statistics and percentile helpers used by metrics collection.
#pragma once

#include <cstddef>
#include <vector>

namespace swallow::common {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample using linear interpolation (R-7, the spreadsheet
/// default). `p` in [0, 1]. The input is copied and sorted.
double percentile(std::vector<double> sample, double p);

double mean(const std::vector<double>& sample);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used for Fig. 2-style utilization summaries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;
  /// Fraction of samples in this bucket (0 if empty histogram).
  double fraction(std::size_t bucket) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace swallow::common
