// Units used throughout Swallow.
//
// The fluid simulator works in double-precision bytes and seconds; bandwidth
// is bytes per second. Helpers below convert the unit conventions the paper
// mixes freely (Mbps/Gbps links, MB/s compression speeds, KB..GB flows).
#pragma once

#include <cstdint>

namespace swallow::common {

using Bytes = double;    ///< payload volume (fluid model; fractions allowed)
using Seconds = double;  ///< simulated wall-clock time
using Bps = double;      ///< bandwidth in bytes per second

inline constexpr Bytes kKB = 1024.0;
inline constexpr Bytes kMB = 1024.0 * kKB;
inline constexpr Bytes kGB = 1024.0 * kMB;
inline constexpr Bytes kTB = 1024.0 * kGB;

/// Network link speeds are quoted in decimal bits per second (IEEE style).
constexpr Bps mbps(double v) { return v * 1e6 / 8.0; }
constexpr Bps gbps(double v) { return v * 1e9 / 8.0; }

/// Compression speeds in the paper's Table II are quoted in MB/s (binary).
constexpr Bps mb_per_s(double v) { return v * kMB; }

constexpr double to_mb(Bytes b) { return b / kMB; }
constexpr double to_gb(Bytes b) { return b / kGB; }

/// Milliseconds helper: the paper's default scheduling slice is 10 ms.
constexpr Seconds ms(double v) { return v / 1000.0; }

inline constexpr Seconds kDefaultSlice = 0.010;

}  // namespace swallow::common
