#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace swallow::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_bytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= 1024.0 * 1024.0 * 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0 * 1024.0 * 1024.0;
    unit = "TB";
  } else if (v >= 1024.0 * 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0 * 1024.0;
    unit = "GB";
  } else if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    unit = "MB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    unit = "KB";
  }
  return fmt_double(v, 2) + " " + unit;
}

std::string fmt_speedup(double factor) { return fmt_double(factor, 2) + "x"; }

std::string fmt_int(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", std::round(v));
  std::string digits = buf;
  bool negative = !digits.empty() && digits[0] == '-';
  std::string body = negative ? digits.substr(1) : digits;
  std::string out;
  int count = 0;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return negative ? "-" + out : out;
}

}  // namespace swallow::common
