// Deterministic random number generation for simulations.
//
// Everything random in this repository flows from an explicitly seeded
// xoshiro256++ generator, so experiments are reproducible bit-for-bit.
// Includes the heavy-tailed distributions needed to model datacenter flow
// sizes (Pareto, lognormal, Zipf) alongside the usual uniform/exponential.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace swallow::common {

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with given rate (mean 1/rate); used for Poisson arrivals.
  double exponential(double rate);

  /// Pareto with scale x_m and shape alpha; heavy tail for alpha <= 2.
  double pareto(double x_m, double alpha);

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Lognormal via Box-Muller (mu/sigma are of the underlying normal).
  double lognormal(double mu, double sigma);

  /// Standard normal.
  double normal();

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf(1..n, s) sampler with precomputed CDF; used for word frequencies in
/// synthetic compressible data and for skewed partition sizes.
class Zipf {
 public:
  Zipf(std::size_t n, double s);
  /// Sample a rank in [1, n].
  std::size_t sample(Rng& rng) const;
  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace swallow::common
