// Minimal leveled logger. Defaults to WARN so tests and benches stay quiet;
// examples raise it to INFO to narrate what they do.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace swallow::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug"/"info"/"warn"/"error" (case-insensitive); throws
/// std::invalid_argument otherwise.
LogLevel parse_log_level(const std::string& name);

/// Where formatted log lines go. Called with the mutex held, so sinks need
/// no synchronization of their own but must not log re-entrantly.
using LogSinkFn = std::function<void(LogLevel, const std::string&)>;

/// Replaces the stderr writer (tests capture output this way); an empty
/// function restores the default.
void set_log_sink(LogSinkFn sink);

void log(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, detail::concat(args...));
}

}  // namespace swallow::common
