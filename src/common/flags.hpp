// Minimal --key=value command-line parser for bench/example binaries.
#pragma once

#include <map>
#include <string>

namespace swallow::common {

class Flags {
 public:
  /// Accepts "--key=value" and bare "--key" (=> "true"); rejects positionals.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  long get_int(const std::string& key, long def) const;
  bool get_bool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace swallow::common
