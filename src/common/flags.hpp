// Minimal --key=value command-line parser for bench/example binaries.
#pragma once

#include <map>
#include <string>

namespace swallow::common {

class Flags {
 public:
  /// Accepts "--key=value", "--key value" (the next token, when it does not
  /// itself start with "--"), and bare "--key" (=> "true"); rejects
  /// positionals.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  long get_int(const std::string& key, long def) const;
  bool get_bool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Applies the standard --log-level=debug|info|warn|error flag to the
/// global logger (no-op when absent). Examples call this first thing.
void apply_log_level_flag(const Flags& flags);

}  // namespace swallow::common
