// Synthetic shuffle-payload generators.
//
// The paper's Table I measures the compressibility of intermediate shuffle
// data for 11 HiBench applications (ratios 18.97%..75.13%). We cannot ship
// HiBench outputs, so each application gets a synthetic generator whose
// statistical structure (token repetition, numeric records, random payload
// fraction) is tuned to land near the paper's measured ratio under a real
// LZ codec. Tests assert the ordering and coarse bands, not exact bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "common/rng.hpp"

namespace swallow::codec {

/// Uniformly random bytes: essentially incompressible.
Buffer random_bytes(std::size_t n, common::Rng& rng);

/// Long runs of repeated bytes: extremely compressible (RLE-friendly).
Buffer run_bytes(std::size_t n, common::Rng& rng, std::size_t mean_run = 64);

/// Space-separated words drawn from a Zipf-distributed vocabulary; models
/// text shuffles (Wordcount, Pagerank URLs...). Smaller vocab / heavier skew
/// => more repetition => better ratio.
Buffer text_bytes(std::size_t n, common::Rng& rng, std::size_t vocab = 4096,
                  double zipf_s = 1.1);

/// Key=value records with a fixed small key set and random numeric values;
/// models serialized feature vectors (ML workloads).
Buffer record_bytes(std::size_t n, common::Rng& rng, std::size_t keys = 32,
                    std::size_t value_digits = 8);

/// Mixture: `random_fraction` of the payload is incompressible, the rest is
/// text-like. The main calibration knob for per-app profiles.
Buffer mixed_bytes(std::size_t n, common::Rng& rng, double random_fraction,
                   std::size_t vocab = 4096, double zipf_s = 1.1);

/// One Table I application profile. The payload is a three-way mixture:
/// `run_fraction` of run-dominated bytes (sorted/serialized records share
/// long prefixes), `random_fraction` of incompressible bytes (hashes,
/// floats), and text for the remainder. The knobs are calibrated so the
/// measured swlz-balanced ratio lands near the paper's Table I column.
struct AppProfile {
  std::string name;          ///< HiBench application name
  double paper_ratio;        ///< Table I compressed/uncompressed
  double run_fraction;       ///< run-dominated share
  double random_fraction;    ///< incompressible share
  std::size_t vocab;         ///< text vocabulary size
  double zipf_s;             ///< vocabulary skew

  /// Generates `n` bytes of this application's shuffle payload.
  Buffer generate(std::size_t n, common::Rng& rng) const;
};

/// The 11 applications of Table I with their paper-measured ratios.
const std::vector<AppProfile>& table1_apps();

const AppProfile& app_by_name(const std::string& name);

}  // namespace swallow::codec
