// Chunk-parallel frame container: the multi-chunk extension of the SWF1
// frame (frame.hpp) that the runtime data plane uses to overlap compression
// with transmission (PAPER.md Eq. 1/2: codec time hides behind wire time).
//
// A payload is split at fixed deterministic boundaries (`chunk_bytes`,
// default 256 KiB). Each chunk compresses independently into a
// self-contained record, and records concatenate in chunk order — so the
// container bytes are a pure function of (payload, codec, chunk_bytes),
// regardless of how many threads raced to produce them. Parallel output is
// byte-identical to serial output by construction; test_codec_chunked and
// bench_codec_micro assert it.
//
// Layout (SWF2):
//   magic 'S''W''F''2' | varint raw_size | varint chunk_bytes |
//   per chunk: u8 codec id | varint stored_size | u64le FNV-1a-of-raw |
//              container bytes
//
// The per-record codec id (redundant with the container's own leading id
// byte, and cross-checked against it on decode) makes every record
// self-describing, so a receiver can decode chunks as they land without
// the frame header in hand.
//
// Three access patterns:
//   - chunk_compress / chunk_decompress: one-shot whole-buffer calls, fanned
//     across a ChunkPool when one is supplied.
//   - ChunkEncoder: pull-based streaming producer. next() yields the header,
//     then each record in order; a bounded window of chunks encodes ahead on
//     the pool while the caller transmits the piece it just pulled
//     (compress-while-transmitting).
//   - ChunkDecoder: push-based streaming consumer. feed() accepts arbitrary
//     splits of the wire bytes and dispatches each completed record to the
//     pool the moment its last byte lands.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "codec/codec.hpp"

namespace swallow::obs {
class Sink;
}

namespace swallow::codec {

class ThroughputLedger;

inline constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

/// Bounded worker pool for chunk encode/decode jobs. Jobs are independent
/// (no job ever waits on another job), so a single pool can be shared by
/// every encoder/decoder in a process without deadlock. With a sink
/// attached it keeps the `codec.chunks_inflight` gauge current.
class ChunkPool {
 public:
  /// `threads` == 0 picks min(4, hardware_concurrency).
  explicit ChunkPool(unsigned threads = 0, obs::Sink* sink = nullptr);
  ~ChunkPool();

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }
  void submit(std::function<void()> job);

 private:
  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  int inflight_ = 0;  // queued + running, for the gauge
  obs::Sink* sink_ = nullptr;
  std::vector<std::jthread> workers_;
};

/// Streaming chunk producer. Construction kicks off the first `window`
/// chunk encodes on the pool (every chunk at once for the one-shot
/// helpers); each next() waits only for the oldest outstanding chunk and
/// tops the window back up, so chunk N+1 encodes while the caller is
/// transmitting chunk N. Without a pool, chunks encode lazily inline
/// (the serial reference path).
class ChunkEncoder {
 public:
  /// `window` == 0 picks max(2, 2 * pool threads); pass SIZE_MAX (as
  /// chunk_compress does) to fan out every chunk immediately.
  ChunkEncoder(const Codec& codec, std::span<const std::uint8_t> payload,
               std::size_t chunk_bytes = kDefaultChunkBytes,
               ChunkPool* pool = nullptr, ThroughputLedger* ledger = nullptr,
               std::size_t window = 0);
  ~ChunkEncoder();

  ChunkEncoder(const ChunkEncoder&) = delete;
  ChunkEncoder& operator=(const ChunkEncoder&) = delete;

  std::size_t num_chunks() const { return num_chunks_; }
  /// Container bytes still to be pulled? (header + all records)
  bool has_next() const {
    return !header_emitted_ || next_emit_ < num_chunks_;
  }
  /// Header first, then chunk records in index order. Throws CodecError
  /// (rethrown from the worker) if a chunk fails to encode.
  Buffer next();

 private:
  struct Slot {
    Buffer record;
    std::exception_ptr error;
    bool done = false;
  };

  Buffer encode_record(std::size_t index) const;
  void submit_until(std::size_t hi);

  const Codec* codec_;
  std::span<const std::uint8_t> payload_;
  std::size_t chunk_bytes_;
  std::size_t num_chunks_;
  std::size_t window_;
  std::size_t next_emit_ = 0;
  std::size_t next_submit_ = 0;
  bool header_emitted_ = false;
  ChunkPool* pool_;
  ThroughputLedger* ledger_;
  std::vector<Slot> slots_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
};

/// Streaming chunk consumer: feed() arbitrary splits of the container; each
/// record decodes (on the pool when given one) as soon as its last byte
/// arrives. take() blocks for in-flight decodes, verifies the stream is
/// complete, and returns the payload. Errors (checksum mismatch, torn
/// records, trailing garbage) surface as CodecError from feed() or take().
class ChunkDecoder {
 public:
  explicit ChunkDecoder(ChunkPool* pool = nullptr,
                        ThroughputLedger* ledger = nullptr);
  ~ChunkDecoder();

  ChunkDecoder(const ChunkDecoder&) = delete;
  ChunkDecoder& operator=(const ChunkDecoder&) = delete;

  void feed(std::span<const std::uint8_t> bytes);
  /// All bytes of a well-formed frame consumed and every chunk dispatched?
  /// (In-flight decodes may still be running; take() joins them.)
  bool done() const;
  Buffer take();

 private:
  void dispatch(std::size_t index, Buffer record, std::size_t raw_off,
                std::size_t raw_len);
  void wait_idle();

  ChunkPool* pool_;
  ThroughputLedger* ledger_;
  Buffer pending_;  // bytes fed but not yet consumed by a complete record
  Buffer out_;
  bool header_parsed_ = false;
  std::size_t raw_size_ = 0;
  std::size_t chunk_bytes_ = 0;
  std::size_t num_chunks_ = 0;
  std::size_t next_chunk_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  int inflight_ = 0;
  std::exception_ptr error_;
};

/// One-shot helpers. With a pool, every chunk encodes/decodes concurrently;
/// output bytes are identical either way.
Buffer chunk_compress(const Codec& codec, std::span<const std::uint8_t> payload,
                      std::size_t chunk_bytes = kDefaultChunkBytes,
                      ChunkPool* pool = nullptr,
                      ThroughputLedger* ledger = nullptr);
Buffer chunk_decompress(std::span<const std::uint8_t> frame,
                        ChunkPool* pool = nullptr,
                        ThroughputLedger* ledger = nullptr);
/// Zero-copy variant: decodes into caller-owned storage (>= the frame's
/// recorded raw size). Returns the payload size.
std::size_t chunk_decompress_into(std::span<const std::uint8_t> frame,
                                  std::span<std::uint8_t> out,
                                  ChunkPool* pool = nullptr,
                                  ThroughputLedger* ledger = nullptr);

/// Raw size recorded in a chunk-frame header (validates the magic).
std::size_t chunk_decompressed_size(std::span<const std::uint8_t> frame);

/// True if the buffer starts with the SWF2 magic.
bool is_chunk_frame(std::span<const std::uint8_t> data);

}  // namespace swallow::codec
