#include "codec/frame.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "codec/varint.hpp"

namespace swallow::codec {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'W', 'F', '1'};

void write_u64le(std::uint64_t v, std::span<std::uint8_t> out,
                 std::size_t pos) {
  for (int i = 0; i < 8; ++i)
    out[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t read_u64le(std::span<const std::uint8_t> in, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

Buffer frame_compress(const Codec& codec,
                      std::span<const std::uint8_t> payload,
                      std::size_t block_size, unsigned num_threads) {
  if (block_size == 0) throw CodecError("frame: zero block size");
  const std::size_t num_blocks =
      payload.empty() ? 0 : (payload.size() + block_size - 1) / block_size;

  // Compress blocks (possibly concurrently) into fixed worst-case slots of
  // one shared scratch buffer — one allocation for the whole frame instead
  // of a Buffer per block, and the span compress API skips the allocating
  // wrapper's intermediate copy.
  const std::size_t slot = codec.max_compressed_size(block_size);
  Buffer scratch(num_blocks * slot);
  std::vector<std::size_t> sizes(num_blocks);
  auto compress_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const std::size_t off = b * block_size;
      const std::size_t len = std::min(block_size, payload.size() - off);
      sizes[b] = codec.compress(
          payload.subspan(off, len),
          std::span<std::uint8_t>(scratch.data() + b * slot, slot));
    }
  };
  const unsigned threads =
      std::max(1u, std::min<unsigned>(num_threads,
                                      static_cast<unsigned>(num_blocks)));
  if (threads <= 1) {
    compress_range(0, num_blocks);
  } else {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t lo = num_blocks * t / threads;
      const std::size_t hi = num_blocks * (t + 1) / threads;
      workers.emplace_back([&, lo, hi] { compress_range(lo, hi); });
    }
  }

  std::size_t total = sizeof(kMagic) + 1 + varint_size(payload.size()) +
                      varint_size(block_size);
  for (std::size_t b = 0; b < num_blocks; ++b)
    total += varint_size(sizes[b]) + 8 + sizes[b];

  Buffer out(total);
  std::size_t pos = 0;
  std::copy(std::begin(kMagic), std::end(kMagic), out.begin());
  pos += sizeof(kMagic);
  out[pos++] = codec.id();
  pos += write_varint(payload.size(), out, pos);
  pos += write_varint(block_size, out, pos);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t off = b * block_size;
    const std::size_t len = std::min(block_size, payload.size() - off);
    pos += write_varint(sizes[b], out, pos);
    write_u64le(fnv1a64(payload.subspan(off, len)), out, pos);
    pos += 8;
    std::copy_n(scratch.data() + b * slot, sizes[b],
                out.begin() + static_cast<std::ptrdiff_t>(pos));
    pos += sizes[b];
  }
  out.resize(pos);
  return out;
}

std::size_t frame_decompressed_size(std::span<const std::uint8_t> frame) {
  if (!is_frame(frame)) throw CodecError("frame: bad magic");
  std::size_t pos = sizeof(kMagic) + 1;  // magic + codec id
  return static_cast<std::size_t>(read_varint(frame, pos));
}

bool is_frame(std::span<const std::uint8_t> data) {
  return data.size() >= sizeof(kMagic) &&
         std::equal(std::begin(kMagic), std::end(kMagic), data.begin());
}

std::size_t frame_decompress_into(std::span<const std::uint8_t> frame,
                                  std::span<std::uint8_t> out,
                                  unsigned num_threads) {
  if (!is_frame(frame)) throw CodecError("frame: bad magic");
  std::size_t pos = sizeof(kMagic);
  const std::uint8_t codec_id = frame[pos++];
  const auto raw_size = static_cast<std::size_t>(read_varint(frame, pos));
  const auto block_size = static_cast<std::size_t>(read_varint(frame, pos));
  if (block_size == 0) throw CodecError("frame: zero block size in header");
  if (out.size() < raw_size)
    throw CodecError("frame: output buffer too small");

  std::unique_ptr<Codec> codec;
  for (const CodecKind kind : all_codec_kinds()) {
    auto candidate = make_codec(kind);
    if (candidate->id() == codec_id) {
      codec = std::move(candidate);
      break;
    }
  }
  if (!codec) throw CodecError("frame: unknown codec id");

  const std::size_t num_blocks =
      raw_size == 0 ? 0 : (raw_size + block_size - 1) / block_size;

  // Walk the index first so blocks can be decoded concurrently.
  struct BlockRef {
    std::size_t container_pos;
    std::size_t container_size;
    std::uint64_t checksum;
    std::size_t raw_off;
    std::size_t raw_len;
  };
  std::vector<BlockRef> refs;
  refs.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto stored = static_cast<std::size_t>(read_varint(frame, pos));
    if (pos + 8 > frame.size()) throw CodecError("frame: truncated checksum");
    const std::uint64_t checksum = read_u64le(frame, pos);
    pos += 8;
    if (pos + stored > frame.size()) throw CodecError("frame: truncated block");
    const std::size_t off = b * block_size;
    refs.push_back({pos, stored, checksum, off,
                    std::min(block_size, raw_size - off)});
    pos += stored;
  }
  if (pos != frame.size()) throw CodecError("frame: trailing garbage");

  auto decode_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const BlockRef& ref = refs[b];
      const std::size_t n = codec->decompress(
          frame.subspan(ref.container_pos, ref.container_size),
          std::span<std::uint8_t>(out.data() + ref.raw_off, ref.raw_len));
      if (n != ref.raw_len) throw CodecError("frame: block size mismatch");
      if (fnv1a64({out.data() + ref.raw_off, ref.raw_len}) != ref.checksum)
        throw CodecError("frame: checksum mismatch in block " +
                         std::to_string(b));
    }
  };
  const unsigned threads =
      std::max(1u, std::min<unsigned>(num_threads,
                                      static_cast<unsigned>(num_blocks)));
  if (threads <= 1) {
    decode_range(0, num_blocks);
  } else {
    // Exceptions must not escape a jthread: capture and rethrow.
    std::vector<std::exception_ptr> errors(threads);
    {
      std::vector<std::jthread> workers;
      workers.reserve(threads);
      for (unsigned t = 0; t < threads; ++t) {
        const std::size_t lo = num_blocks * t / threads;
        const std::size_t hi = num_blocks * (t + 1) / threads;
        workers.emplace_back([&, lo, hi, t] {
          try {
            decode_range(lo, hi);
          } catch (...) {
            errors[t] = std::current_exception();
          }
        });
      }
    }
    for (const auto& error : errors)
      if (error) std::rethrow_exception(error);
  }
  return raw_size;
}

Buffer frame_decompress(std::span<const std::uint8_t> frame,
                        unsigned num_threads) {
  Buffer out(frame_decompressed_size(frame));
  frame_decompress_into(frame, out, num_threads);
  return out;
}

}  // namespace swallow::codec
