// Wall-clock measurement of a codec's speed and ratio on a payload; backs
// the Table II reproduction for our from-scratch codecs. ThroughputLedger
// is the live counterpart: the chunked data plane (chunk.hpp) feeds it one
// sample per chunk, and calibrate() folds the samples into a CodecModel so
// the simulator's speed/ratio assumptions track what the machine actually
// does.
#pragma once

#include <atomic>

#include "codec/codec.hpp"
#include "codec/codec_model.hpp"

namespace swallow::obs {
class Sink;
}

namespace swallow::codec {

struct ThroughputResult {
  double compress_mbps;    ///< MB/s of raw input consumed while compressing
  double decompress_mbps;  ///< MB/s of raw output produced while decompressing
  double ratio;            ///< compressed/raw
};

/// Runs `repeats` compress+decompress cycles over `payload` and reports the
/// best (least-noisy) cycle. Verifies the roundtrip and throws CodecError on
/// mismatch, so a benchmark can never silently report a broken codec.
ThroughputResult measure_codec(const Codec& codec,
                               std::span<const std::uint8_t> payload,
                               int repeats = 3);

/// Thread-safe accumulator of measured per-chunk codec throughput. Encode
/// and decode workers record each chunk as it finishes (lock-free atomics:
/// safe from any pool thread); readers see cumulative MB/s and ratio. With
/// a sink attached, each encode sample refreshes the `codec.encode_mbps`
/// gauge.
class ThroughputLedger {
 public:
  void set_sink(obs::Sink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  void record_encode(std::size_t raw_bytes, std::size_t wire_bytes,
                     double seconds);
  void record_decode(std::size_t raw_bytes, double seconds);

  /// Cumulative MB/s of raw bytes through encode (0 with no samples).
  double encode_mbps() const;
  /// Cumulative MB/s of raw bytes out of decode (0 with no samples).
  double decode_mbps() const;
  /// Cumulative wire/raw ratio (1.0 with no samples).
  double ratio() const;
  std::uint64_t chunks_encoded() const {
    return enc_chunks_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunks_decoded() const {
    return dec_chunks_.load(std::memory_order_relaxed);
  }

  /// Folds the measured samples into a CodecModel for the simulator:
  /// measured compress/decompress speeds and ratio where samples exist,
  /// `base`'s numbers where they do not. The returned model is named
  /// "<base>.measured" so reports show which runs used live calibration.
  CodecModel calibrate(const CodecModel& base) const;

 private:
  std::atomic<std::uint64_t> enc_raw_{0}, enc_wire_{0}, enc_chunks_{0};
  std::atomic<std::uint64_t> dec_raw_{0}, dec_chunks_{0};
  std::atomic<double> enc_seconds_{0.0}, dec_seconds_{0.0};
  std::atomic<obs::Sink*> sink_{nullptr};
};

}  // namespace swallow::codec
