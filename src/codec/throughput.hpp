// Wall-clock measurement of a codec's speed and ratio on a payload; backs
// the Table II reproduction for our from-scratch codecs.
#pragma once

#include "codec/codec.hpp"

namespace swallow::codec {

struct ThroughputResult {
  double compress_mbps;    ///< MB/s of raw input consumed while compressing
  double decompress_mbps;  ///< MB/s of raw output produced while decompressing
  double ratio;            ///< compressed/raw
};

/// Runs `repeats` compress+decompress cycles over `payload` and reports the
/// best (least-noisy) cycle. Verifies the roundtrip and throws CodecError on
/// mismatch, so a benchmark can never silently report a broken codec.
ThroughputResult measure_codec(const Codec& codec,
                               std::span<const std::uint8_t> payload,
                               int repeats = 3);

}  // namespace swallow::codec
