// Framed container: chunks a payload into fixed-size blocks, compresses
// each independently, and guards every block with an FNV-1a checksum.
//
// This is how production transports actually ship compressed streams
// (LZ4 frame format, Snappy framing): blocks bound memory, allow streaming
// and parallel (de)compression, and the checksums catch the corruption
// class a raw LZ stream cannot detect (flipped literal bytes decode
// "successfully" into wrong data). The runtime's push/pull path and any
// long-lived storage should prefer frames over bare containers.
//
// Layout:
//   magic 'S''W''F''1' | codec id | varint raw_size | varint block_size |
//   per block: varint stored_size | u64le checksum-of-raw | container bytes
#pragma once

#include <cstdint>

#include "codec/codec.hpp"

namespace swallow::codec {

inline constexpr std::size_t kDefaultFrameBlock = 256 * 1024;

/// FNV-1a over a byte span (the frame checksum).
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

/// Compresses `payload` into a frame using `codec` per block.
/// `num_threads` > 1 compresses blocks concurrently (blocks are
/// independent); the output is byte-identical regardless of thread count.
Buffer frame_compress(const Codec& codec, std::span<const std::uint8_t> payload,
                      std::size_t block_size = kDefaultFrameBlock,
                      unsigned num_threads = 1);

/// Decompresses a frame produced by frame_compress, verifying every block
/// checksum; throws CodecError on any mismatch, truncation, or bad header.
/// Dispatches on the stored codec id (any built-in codec).
Buffer frame_decompress(std::span<const std::uint8_t> frame,
                        unsigned num_threads = 1);

/// Zero-copy variant of frame_decompress: decodes into caller-owned storage
/// (>= the frame's recorded raw size — see frame_decompressed_size) instead
/// of allocating. Returns the payload size.
std::size_t frame_decompress_into(std::span<const std::uint8_t> frame,
                                  std::span<std::uint8_t> out,
                                  unsigned num_threads = 1);

/// Raw size recorded in a frame header (validates the magic).
std::size_t frame_decompressed_size(std::span<const std::uint8_t> frame);

/// True if the buffer starts with the frame magic.
bool is_frame(std::span<const std::uint8_t> data);

}  // namespace swallow::codec
