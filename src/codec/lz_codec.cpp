#include "codec/lz_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "codec/varint.hpp"

namespace swallow::codec {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
// The last bytes stay literal so 4-byte hash reads and match extension never
// run past the input.
constexpr std::size_t kTailGuard = 8;

std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t hash32(std::uint32_t v, int bits) {
  return (v * 2654435761u) >> (32 - bits);
}

/// Emits one sequence; returns new output position.
std::size_t emit_sequence(std::span<std::uint8_t> out, std::size_t op,
                          const std::uint8_t* literals, std::size_t lit_len,
                          std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nib = std::min<std::size_t>(lit_len, 15);
  std::size_t token_pos = op++;
  if (lit_len >= 15) {
    std::size_t rest = lit_len - 15;
    while (rest >= 255) {
      out[op++] = 255;
      rest -= 255;
    }
    out[op++] = static_cast<std::uint8_t>(rest);
  }
  std::copy_n(literals, lit_len,
              out.begin() + static_cast<std::ptrdiff_t>(op));
  op += lit_len;

  if (match_len == 0) {  // final literal-only sequence
    out[token_pos] = static_cast<std::uint8_t>(lit_nib << 4);
    return op;
  }

  const std::size_t m = match_len - kMinMatch;
  const std::size_t match_nib = std::min<std::size_t>(m, 15);
  out[token_pos] =
      static_cast<std::uint8_t>((lit_nib << 4) | match_nib);
  out[op++] = static_cast<std::uint8_t>(offset & 0xff);
  out[op++] = static_cast<std::uint8_t>(offset >> 8);
  if (m >= 15) {
    std::size_t rest = m - 15;
    while (rest >= 255) {
      out[op++] = 255;
      rest -= 255;
    }
    out[op++] = static_cast<std::uint8_t>(rest);
  }
  return op;
}

// Word-at-a-time match extension: compare 8 bytes per step and locate the
// first differing byte with a count-zero-bits on the XOR. Same result as the
// byte loop (the tail guard keeps reads in-bounds only up to `limit`, so the
// word path stops 8 bytes early and the byte loop finishes).
std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         const std::uint8_t* limit) {
  const std::uint8_t* start = b;
  while (b + 8 <= limit) {
    std::uint64_t x, y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    const std::uint64_t diff = x ^ y;
    if (diff != 0) {
      const int bits = std::endian::native == std::endian::little
                           ? std::countr_zero(diff)
                           : std::countl_zero(diff);
      return static_cast<std::size_t>(b - start) +
             static_cast<std::size_t>(bits >> 3);
    }
    a += 8;
    b += 8;
  }
  while (b < limit && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(b - start);
}

}  // namespace

LzCodec::LzCodec(LzPreset preset) : preset_(preset) {}

std::string LzCodec::name() const {
  switch (preset_) {
    case LzPreset::kFast: return "swlz-fast";
    case LzPreset::kBalanced: return "swlz-balanced";
    case LzPreset::kHigh: return "swlz-high";
  }
  return "swlz";
}

std::uint8_t LzCodec::id() const {
  switch (preset_) {
    case LzPreset::kFast: return 2;
    case LzPreset::kBalanced: return 3;
    case LzPreset::kHigh: return 4;
  }
  return 2;
}

std::size_t LzCodec::max_payload_size(std::size_t raw) const {
  return raw + raw / 255 + 16;
}

std::size_t LzCodec::max_compressed_size(std::size_t raw) const {
  return 1 + varint_size(raw) + max_payload_size(raw);
}

std::size_t LzCodec::encode(std::span<const std::uint8_t> in,
                            std::span<std::uint8_t> out) const {
  if (in.size() <= kTailGuard + kMinMatch)
    return emit_sequence(out, 0, in.data(), in.size(), 0, 0);
  switch (preset_) {
    case LzPreset::kFast: return encode_hash(in, out, 13, /*accelerate=*/true);
    case LzPreset::kBalanced:
      return encode_hash(in, out, 16, /*accelerate=*/false);
    case LzPreset::kHigh: return encode_chain(in, out);
  }
  throw CodecError("swlz: unknown preset");
}

std::size_t LzCodec::encode_hash(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out, int hash_bits,
                                 bool accelerate) const {
  const std::uint8_t* base = in.data();
  const std::size_t n = in.size();
  const std::size_t match_limit = n - kTailGuard;
  // Per-thread scratch: assign() re-zeroes without reallocating when block
  // after block hits the same preset (the chunk pool's workers each keep
  // their own copy).
  thread_local std::vector<std::uint32_t> table;
  table.assign(std::size_t{1} << hash_bits, 0);

  std::size_t op = 0;
  std::size_t anchor = 0;  // start of the pending literal run
  std::size_t ip = 0;
  std::uint32_t misses = 0;

  while (ip < match_limit) {
    const std::uint32_t h = hash32(read32(base + ip), hash_bits);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(ip + 1);

    const bool usable =
        cand != 0 && (ip + 1 - cand) <= kMaxOffset &&
        read32(base + cand - 1) == read32(base + ip);
    if (!usable) {
      // Skip acceleration: in incompressible regions stride grows so the
      // scan stays O(n) with a small constant (LZ4's trick).
      ip += accelerate ? 1 + (misses++ >> 6) : 1;
      continue;
    }
    misses = 0;
    const std::size_t match_pos = cand - 1;
    const std::size_t len =
        match_length(base + match_pos, base + ip, base + match_limit);
    if (len < kMinMatch) {
      ++ip;
      continue;
    }
    op = emit_sequence(out, op, base + anchor, ip - anchor, len,
                       ip - match_pos);
    ip += len;
    anchor = ip;
    // Seed the table inside the match so back-to-back matches chain well.
    if (ip < match_limit)
      table[hash32(read32(base + ip - 2), hash_bits)] =
          static_cast<std::uint32_t>(ip - 1);
  }
  return emit_sequence(out, op, base + anchor, n - anchor, 0, 0);
}

std::size_t LzCodec::encode_chain(std::span<const std::uint8_t> in,
                                  std::span<std::uint8_t> out) const {
  constexpr int kHashBits = 16;
  constexpr std::size_t kChainDepth = 64;
  const std::uint8_t* base = in.data();
  const std::size_t n = in.size();
  const std::size_t match_limit = n - kTailGuard;

  thread_local std::vector<std::uint32_t> head;
  thread_local std::vector<std::uint32_t> prev;
  head.assign(std::size_t{1} << kHashBits, 0);
  prev.assign(n, 0);  // prev[pos] = earlier pos + 1

  auto insert = [&](std::size_t pos) {
    const std::uint32_t h = hash32(read32(base + pos), kHashBits);
    prev[pos] = head[h];
    head[h] = static_cast<std::uint32_t>(pos + 1);
  };

  std::size_t op = 0;
  std::size_t anchor = 0;
  std::size_t ip = 0;

  while (ip < match_limit) {
    const std::uint32_t h = hash32(read32(base + ip), kHashBits);
    // Hoisted window bound: one subtraction here replaces a subtract+compare
    // against ip at every chain hop.
    const std::size_t window_lo = ip > kMaxOffset ? ip - kMaxOffset : 0;
    std::size_t best_len = 0, best_pos = 0;
    std::uint32_t cand = head[h];
    for (std::size_t depth = 0; cand != 0 && depth < kChainDepth; ++depth) {
      const std::size_t pos = cand - 1;
      if (pos < window_lo) break;  // chain is ordered by recency
      if (base[pos + best_len] == base[ip + best_len]) {
        const std::size_t len =
            match_length(base + pos, base + ip, base + match_limit);
        if (len > best_len) {
          best_len = len;
          best_pos = pos;
        }
      }
      cand = prev[pos];
    }
    insert(ip);
    if (best_len < kMinMatch) {
      ++ip;
      continue;
    }
    op = emit_sequence(out, op, base + anchor, ip - anchor, best_len,
                       ip - best_pos);
    // Index every position inside the match (bounded work, better ratio).
    const std::size_t end = std::min(ip + best_len, match_limit);
    for (std::size_t pos = ip + 1; pos < end; ++pos) insert(pos);
    ip += best_len;
    anchor = ip;
  }
  return emit_sequence(out, op, base + anchor, n - anchor, 0, 0);
}

void LzCodec::decode(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const {
  std::size_t ip = 0, op = 0;
  const std::size_t in_size = in.size();
  const std::size_t out_size = out.size();

  auto read_extended = [&](std::size_t nib) {
    std::size_t len = nib;
    if (nib == 15) {
      std::uint8_t b;
      do {
        if (ip >= in_size) throw CodecError("swlz: truncated length");
        b = in[ip++];
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (true) {
    if (ip >= in_size) throw CodecError("swlz: missing token");
    const std::uint8_t token = in[ip++];
    const std::size_t lit_len = read_extended(token >> 4);
    if (ip + lit_len > in_size) throw CodecError("swlz: truncated literals");
    if (op + lit_len > out_size)
      throw CodecError("swlz: literals overflow output");
    std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(ip), lit_len,
                out.begin() + static_cast<std::ptrdiff_t>(op));
    ip += lit_len;
    op += lit_len;

    if (ip == in_size) {
      if (op != out_size) throw CodecError("swlz: output size mismatch");
      return;  // final literal-only sequence
    }

    if (ip + 2 > in_size) throw CodecError("swlz: truncated offset");
    const std::size_t offset =
        static_cast<std::size_t>(in[ip]) |
        (static_cast<std::size_t>(in[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > op) throw CodecError("swlz: bad match offset");
    const std::size_t match_len = read_extended(token & 0x0f) + kMinMatch;
    if (op + match_len > out_size)
      throw CodecError("swlz: match overflows output");
    // Byte-wise copy: overlapping matches (offset < len) replicate runs.
    const std::uint8_t* src = out.data() + (op - offset);
    std::uint8_t* dst = out.data() + op;
    for (std::size_t i = 0; i < match_len; ++i) dst[i] = src[i];
    op += match_len;
  }
}

}  // namespace swallow::codec
