// Pass-through codec: stores bytes verbatim. Baseline for benches and the
// runtime's "compression off" path.
#pragma once

#include "codec/codec.hpp"

namespace swallow::codec {

class NullCodec final : public Codec {
 public:
  std::string name() const override { return "null"; }
  std::uint8_t id() const override { return 0; }
  std::size_t max_compressed_size(std::size_t raw) const override;

 protected:
  std::size_t encode(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decode(std::span<const std::uint8_t> in,
              std::span<std::uint8_t> out) const override;
  std::size_t max_payload_size(std::size_t raw) const override { return raw; }
};

}  // namespace swallow::codec
