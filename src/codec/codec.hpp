// Compression codec interface.
//
// Every codec writes a self-describing container: a one-byte codec id, a
// varint raw size, then the codec-specific payload. decompress() therefore
// needs no out-of-band metadata, mirroring how Spark block transfers carry
// their own framing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace swallow::codec {

using Buffer = std::vector<std::uint8_t>;

/// Thrown on corrupt or truncated compressed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string name() const = 0;
  /// One-byte id stored in the container header.
  virtual std::uint8_t id() const = 0;

  /// Worst-case container size for `raw` input bytes.
  virtual std::size_t max_compressed_size(std::size_t raw) const = 0;

  /// Compresses `in` into `out` (sized >= max_compressed_size(in.size())).
  /// Returns the container size.
  std::size_t compress(std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> out) const;

  /// Decompresses a container produced by this codec. Returns raw size.
  /// `out` must be at least decompressed_size(in) bytes.
  std::size_t decompress(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out) const;

  /// Raw size recorded in a container header (validates the codec id).
  std::size_t decompressed_size(std::span<const std::uint8_t> in) const;

  // Convenience allocating wrappers.
  Buffer compress(std::span<const std::uint8_t> in) const;
  Buffer decompress(std::span<const std::uint8_t> in) const;

 protected:
  /// Codec-specific payload encode; returns payload size.
  virtual std::size_t encode(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;
  /// Codec-specific payload decode into exactly `out.size()` bytes.
  virtual void decode(std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out) const = 0;
  /// Worst-case payload size (container adds its own header on top).
  virtual std::size_t max_payload_size(std::size_t raw) const = 0;
};

/// Compressed-over-raw ratio of a container (paper convention: smaller is
/// better, e.g. LZ4 "62.15%").
double compression_ratio(std::size_t raw, std::size_t compressed);

enum class CodecKind : std::uint8_t {
  kNull = 0,
  kRle = 1,
  kLzFast = 2,      ///< swlz-fast: small hash table + skip acceleration
  kLzBalanced = 3,  ///< swlz-balanced: full hash table, greedy
  kLzHigh = 4,      ///< swlz-high: hash chains, better ratio, slower
  kHuffman = 5,     ///< order-0 canonical Huffman (entropy only)
  kLzHuff = 6,      ///< swlz-max: swlz-high chained into Huffman
};

/// Factory for the built-in codecs.
std::unique_ptr<Codec> make_codec(CodecKind kind);

/// All built-in kinds, for parameterized tests and benches.
std::vector<CodecKind> all_codec_kinds();

/// Decodes any container produced by a built-in codec by dispatching on the
/// id byte (containers are self-describing). Throws CodecError on unknown
/// ids or corrupt payloads.
Buffer decompress_any(std::span<const std::uint8_t> container);

const char* codec_kind_name(CodecKind kind);

}  // namespace swallow::codec
