#include "codec/null_codec.hpp"

#include <algorithm>

#include "codec/varint.hpp"

namespace swallow::codec {

std::size_t NullCodec::max_compressed_size(std::size_t raw) const {
  return 1 + varint_size(raw) + raw;
}

std::size_t NullCodec::encode(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const {
  std::copy(in.begin(), in.end(), out.begin());
  return in.size();
}

void NullCodec::decode(std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> out) const {
  if (in.size() < out.size()) throw CodecError("null: truncated payload");
  std::copy_n(in.begin(), out.size(), out.begin());
}

}  // namespace swallow::codec
