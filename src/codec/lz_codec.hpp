// swlz: an LZ77 byte compressor with an LZ4-style block format.
//
// Sequence layout (repeated): a token byte whose high nibble is the literal
// count and low nibble is (match length - 4), each nibble extended by 255-run
// bytes when it saturates; then the literals; then a 2-byte little-endian
// match offset (1..65535). The final sequence carries literals only.
//
// Three presets trade speed for ratio, standing in for the LZ4 / Snappy /
// Zstandard points of the paper's Table II:
//   kFast      - small hash table + skip acceleration (fastest, worst ratio)
//   kBalanced  - full hash table, greedy matching
//   kHigh      - hash chains with bounded search depth (slowest, best ratio)
#pragma once

#include "codec/codec.hpp"

namespace swallow::codec {

enum class LzPreset { kFast, kBalanced, kHigh };

class LzCodec final : public Codec {
 public:
  explicit LzCodec(LzPreset preset);

  std::string name() const override;
  std::uint8_t id() const override;
  std::size_t max_compressed_size(std::size_t raw) const override;

  LzPreset preset() const { return preset_; }

 protected:
  std::size_t encode(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decode(std::span<const std::uint8_t> in,
              std::span<std::uint8_t> out) const override;
  std::size_t max_payload_size(std::size_t raw) const override;

 private:
  std::size_t encode_hash(std::span<const std::uint8_t> in,
                          std::span<std::uint8_t> out, int hash_bits,
                          bool accelerate) const;
  std::size_t encode_chain(std::span<const std::uint8_t> in,
                           std::span<std::uint8_t> out) const;

  LzPreset preset_;
};

}  // namespace swallow::codec
