#include "codec/varint.hpp"

#include "codec/codec.hpp"

namespace swallow::codec {

std::size_t write_varint(std::uint64_t value, std::span<std::uint8_t> out,
                         std::size_t pos) {
  std::size_t n = 0;
  while (value >= 0x80) {
    out[pos + n] = static_cast<std::uint8_t>(value | 0x80);
    value >>= 7;
    ++n;
  }
  out[pos + n] = static_cast<std::uint8_t>(value);
  return n + 1;
}

std::uint64_t read_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (std::size_t n = 0; n < kMaxVarintBytes; ++n) {
    if (pos >= in.size()) throw CodecError("varint: truncated input");
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  throw CodecError("varint: overlong encoding");
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace swallow::codec
