#include "codec/throughput.hpp"

#include <algorithm>
#include <chrono>

#include "obs/trace.hpp"

namespace swallow::codec {

namespace {
double mbps(std::size_t bytes, std::chrono::steady_clock::duration d) {
  const double secs = std::chrono::duration<double>(d).count();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / secs;
}
}  // namespace

ThroughputResult measure_codec(const Codec& codec,
                               std::span<const std::uint8_t> payload,
                               int repeats) {
  using Clock = std::chrono::steady_clock;
  Buffer compressed(codec.max_compressed_size(payload.size()));
  Buffer restored(payload.size());

  double best_compress = 0.0, best_decompress = 0.0;
  std::size_t compressed_size = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    compressed_size = codec.compress(payload, compressed);
    const auto t1 = Clock::now();
    codec.decompress(
        std::span<const std::uint8_t>(compressed.data(), compressed_size),
        restored);
    const auto t2 = Clock::now();
    if (!std::equal(payload.begin(), payload.end(), restored.begin()))
      throw CodecError(codec.name() + ": roundtrip mismatch in measurement");
    best_compress = std::max(best_compress, mbps(payload.size(), t1 - t0));
    best_decompress = std::max(best_decompress, mbps(payload.size(), t2 - t1));
  }
  return {best_compress, best_decompress,
          compression_ratio(payload.size(), compressed_size)};
}

namespace {
double atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  return cur + v;
}

double safe_mbps(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0 || bytes == 0) return 0.0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}
}  // namespace

void ThroughputLedger::record_encode(std::size_t raw_bytes,
                                     std::size_t wire_bytes, double seconds) {
  enc_raw_.fetch_add(raw_bytes, std::memory_order_relaxed);
  enc_wire_.fetch_add(wire_bytes, std::memory_order_relaxed);
  enc_chunks_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(enc_seconds_, seconds);
  if (obs::Sink* sink = sink_.load(std::memory_order_acquire))
    sink->registry().gauge("codec.encode_mbps").set(encode_mbps());
}

void ThroughputLedger::record_decode(std::size_t raw_bytes, double seconds) {
  dec_raw_.fetch_add(raw_bytes, std::memory_order_relaxed);
  dec_chunks_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(dec_seconds_, seconds);
}

double ThroughputLedger::encode_mbps() const {
  return safe_mbps(enc_raw_.load(std::memory_order_relaxed),
                   enc_seconds_.load(std::memory_order_relaxed));
}

double ThroughputLedger::decode_mbps() const {
  return safe_mbps(dec_raw_.load(std::memory_order_relaxed),
                   dec_seconds_.load(std::memory_order_relaxed));
}

double ThroughputLedger::ratio() const {
  const std::uint64_t raw = enc_raw_.load(std::memory_order_relaxed);
  if (raw == 0) return 1.0;
  return static_cast<double>(enc_wire_.load(std::memory_order_relaxed)) /
         static_cast<double>(raw);
}

CodecModel ThroughputLedger::calibrate(const CodecModel& base) const {
  CodecModel m = base;
  m.name = base.name + ".measured";
  const std::uint64_t enc_raw = enc_raw_.load(std::memory_order_relaxed);
  const double enc_s = enc_seconds_.load(std::memory_order_relaxed);
  if (enc_raw > 0 && enc_s > 0.0) {
    m.compress_speed = static_cast<double>(enc_raw) / enc_s;
    m.ratio = ratio();
  }
  const std::uint64_t dec_raw = dec_raw_.load(std::memory_order_relaxed);
  const double dec_s = dec_seconds_.load(std::memory_order_relaxed);
  if (dec_raw > 0 && dec_s > 0.0)
    m.decompress_speed = static_cast<double>(dec_raw) / dec_s;
  return m;
}

}  // namespace swallow::codec
