#include "codec/throughput.hpp"

#include <algorithm>
#include <chrono>

namespace swallow::codec {

namespace {
double mbps(std::size_t bytes, std::chrono::steady_clock::duration d) {
  const double secs = std::chrono::duration<double>(d).count();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / secs;
}
}  // namespace

ThroughputResult measure_codec(const Codec& codec,
                               std::span<const std::uint8_t> payload,
                               int repeats) {
  using Clock = std::chrono::steady_clock;
  Buffer compressed(codec.max_compressed_size(payload.size()));
  Buffer restored(payload.size());

  double best_compress = 0.0, best_decompress = 0.0;
  std::size_t compressed_size = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    compressed_size = codec.compress(payload, compressed);
    const auto t1 = Clock::now();
    codec.decompress(
        std::span<const std::uint8_t>(compressed.data(), compressed_size),
        restored);
    const auto t2 = Clock::now();
    if (!std::equal(payload.begin(), payload.end(), restored.begin()))
      throw CodecError(codec.name() + ": roundtrip mismatch in measurement");
    best_compress = std::max(best_compress, mbps(payload.size(), t1 - t0));
    best_decompress = std::max(best_decompress, mbps(payload.size(), t2 - t1));
  }
  return {best_compress, best_decompress,
          compression_ratio(payload.size(), compressed_size)};
}

}  // namespace swallow::codec
