// LEB128-style unsigned varints used by the codec container headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace swallow::codec {

inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends `value` to `out` (which must have >= kMaxVarintBytes free space
/// beyond `pos`); returns bytes written.
std::size_t write_varint(std::uint64_t value, std::span<std::uint8_t> out,
                         std::size_t pos);

/// Reads a varint at `pos`; advances `pos`; throws CodecError on truncation
/// or overlong encodings.
std::uint64_t read_varint(std::span<const std::uint8_t> in, std::size_t& pos);

/// Encoded size of `value` in bytes.
std::size_t varint_size(std::uint64_t value);

}  // namespace swallow::codec
