// Byte-level run-length encoder. Effective on the zero-padded regions of
// serialized shuffle blocks; also a simple second reference codec for tests.
#pragma once

#include "codec/codec.hpp"

namespace swallow::codec {

/// Format: a stream of (control, ...) groups.
///  control < 0x80: a run  -> control+1 copies of the next byte (1..128)
///  control >= 0x80: literals -> (control-0x80)+1 raw bytes follow (1..128)
class RleCodec final : public Codec {
 public:
  std::string name() const override { return "rle"; }
  std::uint8_t id() const override { return 1; }
  std::size_t max_compressed_size(std::size_t raw) const override;

 protected:
  std::size_t encode(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decode(std::span<const std::uint8_t> in,
              std::span<std::uint8_t> out) const override;
  std::size_t max_payload_size(std::size_t raw) const override;
};

}  // namespace swallow::codec
