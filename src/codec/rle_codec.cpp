#include "codec/rle_codec.hpp"

#include <algorithm>

#include "codec/varint.hpp"

namespace swallow::codec {

namespace {
constexpr std::size_t kMaxGroup = 128;
// Runs shorter than this are cheaper to fold into a literal group.
constexpr std::size_t kMinRun = 3;
}  // namespace

std::size_t RleCodec::max_payload_size(std::size_t raw) const {
  // Worst case: all literals, one control byte per 128 bytes, plus slack.
  return raw + raw / kMaxGroup + 2;
}

std::size_t RleCodec::max_compressed_size(std::size_t raw) const {
  return 1 + varint_size(raw) + max_payload_size(raw);
}

std::size_t RleCodec::encode(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const {
  std::size_t ip = 0, op = 0;
  std::size_t literal_start = 0;

  auto flush_literals = [&](std::size_t end) {
    std::size_t start = literal_start;
    while (start < end) {
      const std::size_t n = std::min(kMaxGroup, end - start);
      out[op++] = static_cast<std::uint8_t>(0x80 + n - 1);
      std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(start), n,
                  out.begin() + static_cast<std::ptrdiff_t>(op));
      op += n;
      start += n;
    }
  };

  while (ip < in.size()) {
    std::size_t run = 1;
    while (ip + run < in.size() && in[ip + run] == in[ip] && run < kMaxGroup)
      ++run;
    if (run >= kMinRun) {
      flush_literals(ip);
      out[op++] = static_cast<std::uint8_t>(run - 1);
      out[op++] = in[ip];
      ip += run;
      literal_start = ip;
    } else {
      ip += run;
    }
  }
  flush_literals(in.size());
  return op;
}

void RleCodec::decode(std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out) const {
  std::size_t ip = 0, op = 0;
  while (op < out.size()) {
    if (ip >= in.size()) throw CodecError("rle: truncated payload");
    const std::uint8_t control = in[ip++];
    if (control < 0x80) {
      const std::size_t n = control + 1u;
      if (ip >= in.size()) throw CodecError("rle: truncated run");
      if (op + n > out.size()) throw CodecError("rle: run overflows output");
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(op), n, in[ip++]);
      op += n;
    } else {
      const std::size_t n = static_cast<std::size_t>(control - 0x80) + 1u;
      if (ip + n > in.size()) throw CodecError("rle: truncated literals");
      if (op + n > out.size())
        throw CodecError("rle: literals overflow output");
      std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(ip), n,
                  out.begin() + static_cast<std::ptrdiff_t>(op));
      ip += n;
      op += n;
    }
  }
  if (ip != in.size()) throw CodecError("rle: trailing garbage in payload");
}

}  // namespace swallow::codec
