#include "codec/synth_data.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace swallow::codec {

using common::Rng;
using common::Zipf;

Buffer random_bytes(std::size_t n, Rng& rng) {
  Buffer out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(out.data() + i, &v, 8);
    i += 8;
  }
  for (; i < n; ++i) out[i] = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

Buffer run_bytes(std::size_t n, Rng& rng, std::size_t mean_run) {
  Buffer out;
  out.reserve(n);
  while (out.size() < n) {
    const auto len = static_cast<std::size_t>(
        1 + rng.exponential(1.0 / static_cast<double>(mean_run)));
    const auto byte = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
    const std::size_t take = std::min(len, n - out.size());
    out.insert(out.end(), take, byte);
  }
  return out;
}

namespace {
/// Deterministic pseudo-word for a vocabulary rank: 2+ syllables (4+ chars),
/// like natural-language tokens, so LZ77 matches span whole words.
std::string word_for_rank(std::size_t rank) {
  static const char* kSyllables[32] = {
      "ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu", "na",
      "pe", "qui", "ro", "su", "ta", "ve", "wi", "xo", "yu", "za", "bre",
      "cla", "dro", "fli", "gra", "ple", "sto", "tri", "vla", "sne", "kro"};
  std::string w;
  std::size_t v = rank;
  do {
    w += kSyllables[v % 32];
    v /= 32;
  } while (v != 0);
  if (w.size() < 4) w += kSyllables[rank % 32];
  return w;
}
}  // namespace

Buffer text_bytes(std::size_t n, Rng& rng, std::size_t vocab, double zipf_s) {
  const Zipf dist(vocab, zipf_s);
  Buffer out;
  out.reserve(n + 16);
  while (out.size() < n) {
    const std::string w = word_for_rank(dist.sample(rng));
    out.insert(out.end(), w.begin(), w.end());
    out.push_back(' ');
  }
  out.resize(n);
  return out;
}

Buffer record_bytes(std::size_t n, Rng& rng, std::size_t keys,
                    std::size_t value_digits) {
  Buffer out;
  out.reserve(n + 32);
  char buf[64];
  while (out.size() < n) {
    const auto key = rng.uniform_int(0, keys - 1);
    std::uint64_t limit = 1;
    for (std::size_t d = 0; d < value_digits; ++d) limit *= 10;
    const auto value = rng.uniform_int(0, limit - 1);
    const int len = std::snprintf(buf, sizeof(buf), "k%02llu=%0*llu;",
                                  static_cast<unsigned long long>(key),
                                  static_cast<int>(value_digits),
                                  static_cast<unsigned long long>(value));
    out.insert(out.end(), buf, buf + len);
  }
  out.resize(n);
  return out;
}

Buffer mixed_bytes(std::size_t n, Rng& rng, double random_fraction,
                   std::size_t vocab, double zipf_s) {
  random_fraction = std::clamp(random_fraction, 0.0, 1.0);
  const auto n_random = static_cast<std::size_t>(
      static_cast<double>(n) * random_fraction);
  Buffer out = text_bytes(n - n_random, rng, vocab, zipf_s);
  // Interleave random chunks so the incompressible part is not one block
  // (matches real serialized payloads where binary fields pepper the text).
  const Buffer noise = random_bytes(n_random, rng);
  if (noise.empty()) return out;
  const std::size_t chunks = std::max<std::size_t>(1, noise.size() / 4096);
  const std::size_t chunk = noise.size() / chunks;
  std::size_t taken = 0;
  Buffer result;
  result.reserve(n);
  const std::size_t stride = out.size() / chunks + 1;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t text_lo = c * stride;
    const std::size_t text_hi = std::min(out.size(), text_lo + stride);
    if (text_lo < text_hi)
      result.insert(result.end(), out.begin() + static_cast<std::ptrdiff_t>(text_lo),
                    out.begin() + static_cast<std::ptrdiff_t>(text_hi));
    const std::size_t take =
        (c + 1 == chunks) ? noise.size() - taken : chunk;
    result.insert(result.end(), noise.begin() + static_cast<std::ptrdiff_t>(taken),
                  noise.begin() + static_cast<std::ptrdiff_t>(taken + take));
    taken += take;
  }
  result.resize(n);
  return result;
}

Buffer AppProfile::generate(std::size_t n, Rng& rng) const {
  const auto n_runs = static_cast<std::size_t>(
      static_cast<double>(n) * std::clamp(run_fraction, 0.0, 1.0));
  Buffer out = run_bytes(n_runs, rng);
  const Buffer rest =
      mixed_bytes(n - n_runs, rng, random_fraction, vocab, zipf_s);
  // Alternate run and mixed chunks so the payload is not two monolithic
  // halves (real shuffle blocks interleave record headers and values).
  Buffer result;
  result.reserve(n);
  const std::size_t chunks = 16;
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto runs_lo = n_runs * c / chunks, runs_hi = n_runs * (c + 1) / chunks;
    const auto rest_lo = rest.size() * c / chunks,
               rest_hi = rest.size() * (c + 1) / chunks;
    result.insert(result.end(), out.begin() + static_cast<std::ptrdiff_t>(runs_lo),
                  out.begin() + static_cast<std::ptrdiff_t>(runs_hi));
    result.insert(result.end(), rest.begin() + static_cast<std::ptrdiff_t>(rest_lo),
                  rest.begin() + static_cast<std::ptrdiff_t>(rest_hi));
  }
  result.resize(n);
  return result;
}

const std::vector<AppProfile>& table1_apps() {
  // paper_ratio values are Table I, verbatim. The mixture knobs are
  // calibrated against swlz-balanced; bench_table1 prints paper vs measured.
  static const std::vector<AppProfile> kApps = {
      {"Wordcount", 0.5591, 0.06, 0.00, 65536, 1.02},
      {"Sort", 0.2496, 0.62, 0.00, 1024, 1.25},
      {"Terasort", 0.2793, 0.56, 0.00, 1024, 1.25},
      {"Enhanced DFSIO", 0.1897, 0.76, 0.00, 1024, 1.2},
      {"Logistic Regression", 0.7513, 0.00, 0.37, 65536, 1.0},
      {"Latent Dirichlet Allocation", 0.6830, 0.00, 0.21, 65536, 1.0},
      {"Support Vector Machine", 0.4796, 0.21, 0.00, 16384, 1.05},
      {"Bayes", 0.2633, 0.60, 0.00, 1024, 1.25},
      {"Random Forest", 0.6830, 0.00, 0.21, 65536, 1.0},
      {"Pagerank", 0.4241, 0.30, 0.00, 8192, 1.1},
      {"NWeight", 0.2897, 0.55, 0.00, 2048, 1.2},
  };
  return kApps;
}

const AppProfile& app_by_name(const std::string& name) {
  for (const auto& app : table1_apps())
    if (app.name == name) return app;
  throw std::out_of_range("app_by_name: unknown application " + name);
}

}  // namespace swallow::codec
