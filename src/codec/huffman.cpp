#include "codec/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <array>
#include <vector>

namespace swallow::codec {

namespace {

constexpr std::size_t kSymbols = 256;
constexpr std::size_t kHeaderBytes = kSymbols;
// Huffman depth is bounded by log_phi(total); 64 covers any addressable
// input with comfortable margin.
constexpr int kMaxCodeLength = 64;

// A tree over 256 leaves has at most 255 internal nodes.
constexpr std::size_t kMaxNodes = 2 * kSymbols - 1;

/// Huffman code lengths from symbol counts (0 for absent symbols).
/// The comparator is a strict total order (count, then index), so the pair
/// extracted at every merge is unique — lengths are deterministic no matter
/// how the heap lays its array out.
std::array<std::uint8_t, kSymbols> code_lengths(
    const std::array<std::uint64_t, kSymbols>& counts) {
  std::array<std::uint8_t, kSymbols> lengths{};
  struct Node {
    std::uint64_t count;
    int index;  // < kSymbols: leaf; otherwise internal
  };
  const auto heavier = [](const Node& a, const Node& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.index > b.index;  // deterministic tie-break
  };
  // parent[] over leaves (0..255) then internal nodes (256..); fixed-size
  // scratch, no per-block allocation in the hot loop.
  std::array<int, kMaxNodes> parent;
  parent.fill(-1);
  // Reused across blocks on the same thread (the chunk pool gives each
  // worker its own).
  thread_local std::vector<Node> heap;
  heap.clear();
  heap.reserve(kSymbols);
  std::size_t present = 0;
  int last_leaf = -1;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (counts[s] == 0) continue;
    heap.push_back({counts[s], static_cast<int>(s)});
    ++present;
    last_leaf = static_cast<int>(s);
  }
  if (present == 0) return lengths;
  if (present == 1) {
    lengths[static_cast<std::size_t>(last_leaf)] = 1;
    return lengths;
  }
  std::make_heap(heap.begin(), heap.end(), heavier);
  int num_nodes = static_cast<int>(kSymbols);
  while (heap.size() > 1) {
    std::pop_heap(heap.begin(), heap.end(), heavier);
    const Node a = heap.back();
    heap.pop_back();
    std::pop_heap(heap.begin(), heap.end(), heavier);
    const Node b = heap.back();
    heap.pop_back();
    const int internal = num_nodes++;
    parent[static_cast<std::size_t>(a.index)] = internal;
    parent[static_cast<std::size_t>(b.index)] = internal;
    heap.push_back({a.count + b.count, internal});
    std::push_heap(heap.begin(), heap.end(), heavier);
  }
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (counts[s] == 0) continue;
    int depth = 0;
    for (int node = static_cast<int>(s); parent[static_cast<std::size_t>(node)] != -1;
         node = parent[static_cast<std::size_t>(node)])
      ++depth;
    lengths[s] = static_cast<std::uint8_t>(depth);
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, value) receive
/// consecutive codes per length tier.
struct CanonicalCodes {
  std::array<std::uint64_t, kSymbols> code{};
  std::array<std::uint8_t, kSymbols> length{};
  // Decoder tables indexed by code length.
  std::array<std::uint64_t, kMaxCodeLength + 1> first_code{};
  std::array<std::uint32_t, kMaxCodeLength + 1> first_index{};
  std::array<std::uint32_t, kMaxCodeLength + 1> count{};
  std::array<std::uint8_t, kSymbols> sorted_symbols{};  // by (length, value)
  std::uint32_t num_symbols = 0;
};

CanonicalCodes build_canonical(const std::array<std::uint8_t, kSymbols>& lengths) {
  CanonicalCodes canon;
  canon.length = lengths;
  // Counting sort by (length, value): a length histogram feeds per-tier
  // cursors, and one ascending pass over symbol values lands each symbol in
  // (length, value) order — the same canonical order as the old
  // length-major double loop, minus the 64x256 scan.
  std::array<std::uint32_t, kMaxCodeLength + 1> hist{};
  for (std::size_t s = 0; s < kSymbols; ++s) ++hist[lengths[s]];
  hist[0] = 0;  // absent symbols carry no code

  std::uint64_t code = 0;
  std::uint32_t index = 0;
  std::array<std::uint32_t, kMaxCodeLength + 1> cursor{};
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    const auto l = static_cast<std::size_t>(len);
    code <<= 1;
    canon.first_code[l] = code;
    canon.first_index[l] = index;
    canon.count[l] = hist[l];
    cursor[l] = index;
    index += hist[l];
    code += hist[l];
  }
  canon.num_symbols = index;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    const auto l = static_cast<std::size_t>(lengths[s]);
    if (l == 0) continue;
    canon.sorted_symbols[cursor[l]] = static_cast<std::uint8_t>(s);
    canon.code[s] = canon.first_code[l] + (cursor[l] - canon.first_index[l]);
    ++cursor[l];
  }
  return canon;
}

// 64-bit MSB-first accumulator; emits the same byte sequence as the old
// bit-at-a-time writer (including the zero-padded final partial byte) in
// word-sized steps.
class BitWriter {
 public:
  explicit BitWriter(std::span<std::uint8_t> out) : out_(out) {}
  void put(std::uint64_t code, int bits) {
    if (bits == 0) return;
    if (bits > 32) {  // codes up to kMaxCodeLength split into two halves
      put(code >> 32, bits - 32);
      put(code & 0xffffffffull, 32);
      return;
    }
    acc_ |= (code & ((1ull << bits) - 1)) << (64 - have_ - bits);
    have_ += bits;
    while (have_ >= 8) {
      out_[pos_++] = static_cast<std::uint8_t>(acc_ >> 56);
      acc_ <<= 8;
      have_ -= 8;
    }
  }
  std::size_t finish() {
    if (have_ > 0) {
      out_[pos_++] = static_cast<std::uint8_t>(acc_ >> 56);
      acc_ = 0;
      have_ = 0;
    }
    return pos_;
  }

 private:
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int have_ = 0;
};

// Buffered MSB-first reader: peek() exposes the next kFastBits bits
// (zero-padded past the end) for the table-driven fast path; next() keeps
// the old bit-at-a-time contract for the fallback loop.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in)
      : in_(in), bits_left_(in.size() * 8) {}
  std::uint32_t peek(int k) {
    refill();
    return static_cast<std::uint32_t>(buf_ >> (64 - k));
  }
  void consume(int k) {
    buf_ <<= k;
    have_ -= k;
    bits_left_ -= static_cast<std::size_t>(k);
  }
  std::size_t bits_left() const { return bits_left_; }
  int next() {
    if (bits_left_ == 0) return -1;
    refill();
    const int bit = static_cast<int>(buf_ >> 63);
    consume(1);
    return bit;
  }

 private:
  void refill() {
    while (have_ <= 56 && byte_ < in_.size()) {
      buf_ |= static_cast<std::uint64_t>(in_[byte_++]) << (56 - have_);
      have_ += 8;
    }
  }
  std::span<const std::uint8_t> in_;
  std::size_t byte_ = 0;
  std::uint64_t buf_ = 0;
  int have_ = 0;
  std::size_t bits_left_;
};

// Primary decode table width: codes up to kFastBits resolve in one lookup;
// longer (rare) codes fall back to the per-bit loop.
constexpr int kFastBits = 11;

}  // namespace

std::size_t HuffmanCodec::max_payload_size(std::size_t raw) const {
  // Optimal prefix codes never beat the trivial 8-bit code, plus header
  // and the final partial byte.
  return raw + kHeaderBytes + 8;
}

std::size_t HuffmanCodec::max_compressed_size(std::size_t raw) const {
  return 1 + 10 + max_payload_size(raw);
}

std::size_t HuffmanCodec::encode(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out) const {
  std::array<std::uint64_t, kSymbols> counts{};
  for (const std::uint8_t b : in) ++counts[b];
  const auto lengths = code_lengths(counts);
  const CanonicalCodes canon = build_canonical(lengths);

  std::copy(lengths.begin(), lengths.end(), out.begin());
  BitWriter writer(out.subspan(kHeaderBytes));
  for (const std::uint8_t b : in) writer.put(canon.code[b], lengths[b]);
  return kHeaderBytes + writer.finish();
}

void HuffmanCodec::decode(std::span<const std::uint8_t> in,
                          std::span<std::uint8_t> out) const {
  if (out.empty()) {
    if (in.size() < kHeaderBytes && !in.empty())
      throw CodecError("huffman: truncated header");
    return;
  }
  if (in.size() < kHeaderBytes) throw CodecError("huffman: truncated header");
  std::array<std::uint8_t, kSymbols> lengths{};
  std::copy_n(in.begin(), kHeaderBytes, lengths.begin());
  for (const std::uint8_t len : lengths)
    if (len > kMaxCodeLength) throw CodecError("huffman: bad code length");
  const CanonicalCodes canon = build_canonical(lengths);
  if (canon.num_symbols == 0)
    throw CodecError("huffman: empty code table with nonempty output");

  // Kraft check: a non-prefix-complete table means a corrupt header.
  double kraft = 0;
  for (std::uint32_t i = 0; i < canon.num_symbols; ++i)
    kraft += std::pow(2.0, -static_cast<double>(
                               lengths[canon.sorted_symbols[i]]));
  if (kraft > 1.0 + 1e-9) throw CodecError("huffman: invalid code table");

  // Primary table: every code of <= kFastBits bits owns the 2^(kFastBits -
  // len) windows it prefixes, so one peek resolves symbol and length at
  // once. Prefix-freeness (Kraft-checked above) keeps the fill ranges
  // disjoint; anything unmatched (longer codes, junk near the end of a
  // corrupt stream) takes the per-bit fallback, which preserves the exact
  // error behavior of the old loop.
  std::array<std::uint16_t, std::size_t{1} << kFastBits> fast{};  // len<<8|sym
  for (std::uint32_t i = 0; i < canon.num_symbols; ++i) {
    const std::uint8_t s = canon.sorted_symbols[i];
    const int len = lengths[s];
    if (len > kFastBits) continue;
    const std::size_t base = static_cast<std::size_t>(canon.code[s])
                             << (kFastBits - len);
    const std::size_t n = std::size_t{1} << (kFastBits - len);
    if (base + n > fast.size()) continue;  // inconsistent header: fallback
    const auto entry =
        static_cast<std::uint16_t>((len << 8) | s);
    std::fill_n(fast.begin() + base, n, entry);
  }

  BitReader reader(in.subspan(kHeaderBytes));
  for (std::size_t produced = 0; produced < out.size(); ++produced) {
    const std::uint16_t entry = fast[reader.peek(kFastBits)];
    const int flen = entry >> 8;
    if (flen != 0 && static_cast<std::size_t>(flen) <= reader.bits_left()) {
      out[produced] = static_cast<std::uint8_t>(entry & 0xff);
      reader.consume(flen);
      continue;
    }
    std::uint64_t code = 0;
    int len = 0;
    while (true) {
      const int bit = reader.next();
      if (bit < 0) throw CodecError("huffman: truncated bitstream");
      code = (code << 1) | static_cast<std::uint64_t>(bit);
      if (++len > kMaxCodeLength) throw CodecError("huffman: code overrun");
      const auto l = static_cast<std::size_t>(len);
      if (canon.count[l] != 0 && code >= canon.first_code[l] &&
          code - canon.first_code[l] < canon.count[l]) {
        out[produced] = canon.sorted_symbols[canon.first_index[l] +
                                             (code - canon.first_code[l])];
        break;
      }
    }
  }
}

ChainedCodec::ChainedCodec(std::unique_ptr<Codec> inner,
                           std::unique_ptr<Codec> outer, std::string name,
                           std::uint8_t id)
    : inner_(std::move(inner)),
      outer_(std::move(outer)),
      name_(std::move(name)),
      id_(id) {}

std::size_t ChainedCodec::max_payload_size(std::size_t raw) const {
  return outer_->max_compressed_size(inner_->max_compressed_size(raw));
}

std::size_t ChainedCodec::max_compressed_size(std::size_t raw) const {
  return 1 + 10 + max_payload_size(raw);
}

std::size_t ChainedCodec::encode(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out) const {
  const Buffer stage1 = inner_->compress(in);
  return outer_->compress(stage1, out);
}

void ChainedCodec::decode(std::span<const std::uint8_t> in,
                          std::span<std::uint8_t> out) const {
  const Buffer stage1 = outer_->decompress(in);
  const std::size_t n = inner_->decompress(stage1, out);
  if (n != out.size()) throw CodecError(name_ + ": chained size mismatch");
}

}  // namespace swallow::codec
