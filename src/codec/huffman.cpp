#include "codec/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <array>
#include <queue>
#include <vector>

namespace swallow::codec {

namespace {

constexpr std::size_t kSymbols = 256;
constexpr std::size_t kHeaderBytes = kSymbols;
// Huffman depth is bounded by log_phi(total); 64 covers any addressable
// input with comfortable margin.
constexpr int kMaxCodeLength = 64;

/// Huffman code lengths from symbol counts (0 for absent symbols).
std::array<std::uint8_t, kSymbols> code_lengths(
    const std::array<std::uint64_t, kSymbols>& counts) {
  std::array<std::uint8_t, kSymbols> lengths{};
  struct Node {
    std::uint64_t count;
    int index;  // < kSymbols: leaf; otherwise internal
  };
  const auto heavier = [](const Node& a, const Node& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.index > b.index;  // deterministic tie-break
  };
  std::priority_queue<Node, std::vector<Node>, decltype(heavier)> heap(
      heavier);
  // parent[] over leaves (0..255) then internal nodes (256..).
  std::vector<int> parent;
  parent.resize(kSymbols, -1);
  std::size_t present = 0;
  int last_leaf = -1;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (counts[s] == 0) continue;
    heap.push({counts[s], static_cast<int>(s)});
    ++present;
    last_leaf = static_cast<int>(s);
  }
  if (present == 0) return lengths;
  if (present == 1) {
    lengths[static_cast<std::size_t>(last_leaf)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    const int internal = static_cast<int>(parent.size());
    parent.push_back(-1);
    parent[static_cast<std::size_t>(a.index)] = internal;
    parent[static_cast<std::size_t>(b.index)] = internal;
    heap.push({a.count + b.count, internal});
  }
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (counts[s] == 0) continue;
    int depth = 0;
    for (int node = static_cast<int>(s); parent[static_cast<std::size_t>(node)] != -1;
         node = parent[static_cast<std::size_t>(node)])
      ++depth;
    lengths[s] = static_cast<std::uint8_t>(depth);
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, value) receive
/// consecutive codes per length tier.
struct CanonicalCodes {
  std::array<std::uint64_t, kSymbols> code{};
  std::array<std::uint8_t, kSymbols> length{};
  // Decoder tables indexed by code length.
  std::array<std::uint64_t, kMaxCodeLength + 1> first_code{};
  std::array<std::uint32_t, kMaxCodeLength + 1> first_index{};
  std::array<std::uint32_t, kMaxCodeLength + 1> count{};
  std::vector<std::uint8_t> sorted_symbols;  // by (length, value)
};

CanonicalCodes build_canonical(const std::array<std::uint8_t, kSymbols>& lengths) {
  CanonicalCodes canon;
  canon.length = lengths;
  for (int len = 1; len <= kMaxCodeLength; ++len)
    for (std::size_t s = 0; s < kSymbols; ++s)
      if (lengths[s] == len)
        canon.sorted_symbols.push_back(static_cast<std::uint8_t>(s));

  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    canon.first_code[static_cast<std::size_t>(len)] = code;
    canon.first_index[static_cast<std::size_t>(len)] = index;
    for (const std::uint8_t s : canon.sorted_symbols) {
      if (lengths[s] != len) continue;
      canon.code[s] = code++;
      ++index;
    }
    canon.count[static_cast<std::size_t>(len)] =
        index - canon.first_index[static_cast<std::size_t>(len)];
  }
  return canon;
}

class BitWriter {
 public:
  explicit BitWriter(std::span<std::uint8_t> out) : out_(out) {}
  void put(std::uint64_t code, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      if ((code >> i) & 1) current_ |= static_cast<std::uint8_t>(0x80 >> fill_);
      if (++fill_ == 8) flush_byte();
    }
  }
  std::size_t finish() {
    if (fill_ > 0) flush_byte();
    return pos_;
  }

 private:
  void flush_byte() {
    out_[pos_++] = current_;
    current_ = 0;
    fill_ = 0;
  }
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
  std::uint8_t current_ = 0;
  int fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in) : in_(in) {}
  int next() {
    if (pos_ >= in_.size() * 8) return -1;
    const int bit = (in_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return bit;
  }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t HuffmanCodec::max_payload_size(std::size_t raw) const {
  // Optimal prefix codes never beat the trivial 8-bit code, plus header
  // and the final partial byte.
  return raw + kHeaderBytes + 8;
}

std::size_t HuffmanCodec::max_compressed_size(std::size_t raw) const {
  return 1 + 10 + max_payload_size(raw);
}

std::size_t HuffmanCodec::encode(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out) const {
  std::array<std::uint64_t, kSymbols> counts{};
  for (const std::uint8_t b : in) ++counts[b];
  const auto lengths = code_lengths(counts);
  const CanonicalCodes canon = build_canonical(lengths);

  std::copy(lengths.begin(), lengths.end(), out.begin());
  BitWriter writer(out.subspan(kHeaderBytes));
  for (const std::uint8_t b : in) writer.put(canon.code[b], lengths[b]);
  return kHeaderBytes + writer.finish();
}

void HuffmanCodec::decode(std::span<const std::uint8_t> in,
                          std::span<std::uint8_t> out) const {
  if (out.empty()) {
    if (in.size() < kHeaderBytes && !in.empty())
      throw CodecError("huffman: truncated header");
    return;
  }
  if (in.size() < kHeaderBytes) throw CodecError("huffman: truncated header");
  std::array<std::uint8_t, kSymbols> lengths{};
  std::copy_n(in.begin(), kHeaderBytes, lengths.begin());
  for (const std::uint8_t len : lengths)
    if (len > kMaxCodeLength) throw CodecError("huffman: bad code length");
  const CanonicalCodes canon = build_canonical(lengths);
  if (canon.sorted_symbols.empty())
    throw CodecError("huffman: empty code table with nonempty output");

  // Kraft check: a non-prefix-complete table means a corrupt header.
  double kraft = 0;
  for (const std::uint8_t s : canon.sorted_symbols)
    kraft += std::pow(2.0, -static_cast<double>(lengths[s]));
  if (kraft > 1.0 + 1e-9) throw CodecError("huffman: invalid code table");

  BitReader reader(in.subspan(kHeaderBytes));
  for (std::size_t produced = 0; produced < out.size(); ++produced) {
    std::uint64_t code = 0;
    int len = 0;
    while (true) {
      const int bit = reader.next();
      if (bit < 0) throw CodecError("huffman: truncated bitstream");
      code = (code << 1) | static_cast<std::uint64_t>(bit);
      if (++len > kMaxCodeLength) throw CodecError("huffman: code overrun");
      const auto l = static_cast<std::size_t>(len);
      if (canon.count[l] != 0 && code >= canon.first_code[l] &&
          code - canon.first_code[l] < canon.count[l]) {
        out[produced] = canon.sorted_symbols[canon.first_index[l] +
                                             (code - canon.first_code[l])];
        break;
      }
    }
  }
}

ChainedCodec::ChainedCodec(std::unique_ptr<Codec> inner,
                           std::unique_ptr<Codec> outer, std::string name,
                           std::uint8_t id)
    : inner_(std::move(inner)),
      outer_(std::move(outer)),
      name_(std::move(name)),
      id_(id) {}

std::size_t ChainedCodec::max_payload_size(std::size_t raw) const {
  return outer_->max_compressed_size(inner_->max_compressed_size(raw));
}

std::size_t ChainedCodec::max_compressed_size(std::size_t raw) const {
  return 1 + 10 + max_payload_size(raw);
}

std::size_t ChainedCodec::encode(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out) const {
  const Buffer stage1 = inner_->compress(in);
  return outer_->compress(stage1, out);
}

void ChainedCodec::decode(std::span<const std::uint8_t> in,
                          std::span<std::uint8_t> out) const {
  const Buffer stage1 = outer_->decompress(in);
  const std::size_t n = inner_->decompress(stage1, out);
  if (n != out.size()) throw CodecError(name_ + ": chained size mismatch");
}

}  // namespace swallow::codec
