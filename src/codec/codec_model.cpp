#include "codec/codec_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace swallow::codec {

using common::Bytes;
using common::kGB;
using common::kKB;
using common::kMB;
using common::mb_per_s;

Bytes CodecModel::delta_c(common::Seconds slice, double cpu_headroom) const {
  const double headroom = std::clamp(cpu_headroom, 0.0, 1.0);
  return compress_speed * headroom * slice * (1.0 - ratio);
}

bool CodecModel::beats_bandwidth(common::Bps bottleneck,
                                 double cpu_headroom) const {
  const double headroom = std::clamp(cpu_headroom, 0.0, 1.0);
  return compress_speed * headroom * (1.0 - ratio) > bottleneck;
}

const std::vector<CodecModel>& table2_codecs() {
  // Paper Table II, verbatim.
  static const std::vector<CodecModel> kModels = {
      {"LZ4", mb_per_s(785), mb_per_s(2601), 0.6215},
      {"LZO", mb_per_s(424), mb_per_s(560), 0.5030},
      {"Snappy", mb_per_s(327), mb_per_s(1075), 0.4819},
      {"LZF", mb_per_s(251), mb_per_s(565), 0.4814},
      {"Zstandard", mb_per_s(330), mb_per_s(930), 0.3477},
  };
  return kModels;
}

const CodecModel& default_codec_model() { return table2_codecs().front(); }

const CodecModel& codec_model_by_name(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  const std::string want = lower(name);
  for (const auto& model : table2_codecs())
    if (lower(model.name) == want) return model;
  throw std::out_of_range("codec_model_by_name: unknown codec " + name);
}

const std::vector<std::pair<Bytes, double>>& table3_points() {
  // Paper Table III (Sort application), verbatim.
  static const std::vector<std::pair<Bytes, double>> kPoints = {
      {10 * kKB, 0.6646},  {50 * kKB, 0.5870},  {100 * kKB, 0.5629},
      {1 * kMB, 0.4124},   {10 * kMB, 0.2744},  {100 * kMB, 0.2533},
      {1 * kGB, 0.2511},   {10 * kGB, 0.2507},
  };
  return kPoints;
}

double table3_ratio(Bytes flow_size) {
  const auto& pts = table3_points();
  if (flow_size <= pts.front().first) return pts.front().second;
  if (flow_size >= pts.back().first) return pts.back().second;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (flow_size <= pts[i].first) {
      // Interpolate linearly in log-size space: the measured curve is close
      // to straight between adjacent decade points on a log axis.
      const double x0 = std::log(pts[i - 1].first);
      const double x1 = std::log(pts[i].first);
      const double t = (std::log(flow_size) - x0) / (x1 - x0);
      return pts[i - 1].second +
             t * (pts[i].second - pts[i - 1].second);
    }
  }
  return pts.back().second;
}

}  // namespace swallow::codec
