#include "codec/codec.hpp"

#include "codec/huffman.hpp"
#include "codec/lz_codec.hpp"
#include "codec/null_codec.hpp"
#include "codec/rle_codec.hpp"
#include "codec/varint.hpp"
#include "obs/profile.hpp"

namespace swallow::codec {

std::size_t Codec::compress(std::span<const std::uint8_t> in,
                            std::span<std::uint8_t> out) const {
  // Codecs have no per-call plumbing, so profiling goes through the
  // process-global sink (one relaxed atomic load when tracing is off).
  obs::ProfileScope scope(obs::global_sink(), "codec.compress", "codec");
  if (out.size() < max_compressed_size(in.size()))
    throw CodecError(name() + ": output buffer too small for compress");
  out[0] = id();
  std::size_t pos = 1;
  pos += write_varint(in.size(), out, pos);
  const std::size_t payload = encode(in, out.subspan(pos));
  if (obs::Sink* sink = obs::global_sink()) {
    sink->registry().counter("codec.raw_bytes_in").add(in.size());
    sink->registry().counter("codec.container_bytes_out").add(pos + payload);
  }
  return pos + payload;
}

std::size_t Codec::decompressed_size(std::span<const std::uint8_t> in) const {
  if (in.empty()) throw CodecError(name() + ": empty container");
  if (in[0] != id())
    throw CodecError(name() + ": container codec id mismatch");
  std::size_t pos = 1;
  return static_cast<std::size_t>(read_varint(in, pos));
}

std::size_t Codec::decompress(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const {
  obs::ProfileScope scope(obs::global_sink(), "codec.decompress", "codec");
  if (in.empty()) throw CodecError(name() + ": empty container");
  if (in[0] != id())
    throw CodecError(name() + ": container codec id mismatch");
  std::size_t pos = 1;
  const auto raw = static_cast<std::size_t>(read_varint(in, pos));
  if (out.size() < raw)
    throw CodecError(name() + ": output buffer too small for decompress");
  decode(in.subspan(pos), out.first(raw));
  return raw;
}

Buffer Codec::compress(std::span<const std::uint8_t> in) const {
  Buffer out(max_compressed_size(in.size()));
  out.resize(compress(in, out));
  return out;
}

Buffer Codec::decompress(std::span<const std::uint8_t> in) const {
  Buffer out(decompressed_size(in));
  decompress(in, out);
  return out;
}

double compression_ratio(std::size_t raw, std::size_t compressed) {
  if (raw == 0) return 1.0;
  return static_cast<double>(compressed) / static_cast<double>(raw);
}

std::unique_ptr<Codec> make_codec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNull: return std::make_unique<NullCodec>();
    case CodecKind::kRle: return std::make_unique<RleCodec>();
    case CodecKind::kLzFast: return std::make_unique<LzCodec>(LzPreset::kFast);
    case CodecKind::kLzBalanced:
      return std::make_unique<LzCodec>(LzPreset::kBalanced);
    case CodecKind::kLzHigh: return std::make_unique<LzCodec>(LzPreset::kHigh);
    case CodecKind::kHuffman: return std::make_unique<HuffmanCodec>();
    case CodecKind::kLzHuff:
      return std::make_unique<ChainedCodec>(
          std::make_unique<LzCodec>(LzPreset::kHigh),
          std::make_unique<HuffmanCodec>(), "swlz-max", 6);
  }
  throw CodecError("make_codec: unknown codec kind");
}

std::vector<CodecKind> all_codec_kinds() {
  return {CodecKind::kNull,       CodecKind::kRle,
          CodecKind::kLzFast,     CodecKind::kLzBalanced,
          CodecKind::kLzHigh,     CodecKind::kHuffman,
          CodecKind::kLzHuff};
}

Buffer decompress_any(std::span<const std::uint8_t> container) {
  if (container.empty()) throw CodecError("decompress_any: empty container");
  const std::uint8_t id = container[0];
  for (const CodecKind kind : all_codec_kinds()) {
    const auto codec = make_codec(kind);
    if (codec->id() == id) return codec->decompress(container);
  }
  throw CodecError("decompress_any: unknown codec id " + std::to_string(id));
}

const char* codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNull: return "null";
    case CodecKind::kRle: return "rle";
    case CodecKind::kLzFast: return "swlz-fast";
    case CodecKind::kLzBalanced: return "swlz-balanced";
    case CodecKind::kLzHigh: return "swlz-high";
    case CodecKind::kHuffman: return "huffman";
    case CodecKind::kLzHuff: return "swlz-max";
  }
  return "?";
}

}  // namespace swallow::codec
