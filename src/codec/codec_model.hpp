// Parameterized codec models for simulation.
//
// The scheduler only needs a codec's (compression speed R, compression ratio
// xi); the paper's Table II measures these for five production codecs and we
// carry those numbers verbatim so simulated results are comparable. Table III
// additionally shows that the ratio depends on flow size (small flows
// compress worse per-byte framing overhead dominates); `ratio_for_size`
// interpolates the paper's measured curve.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace swallow::codec {

struct CodecModel {
  std::string name;
  common::Bps compress_speed;    ///< bytes/s consumed by the compressor
  common::Bps decompress_speed;  ///< bytes/s produced by the decompressor
  double ratio;                  ///< compressed/raw, e.g. LZ4 = 0.6215

  /// Volume disposal per slice when compressing (paper Eq. 1), with the
  /// effective speed scaled by available CPU headroom in [0, 1].
  common::Bytes delta_c(common::Seconds slice, double cpu_headroom) const;

  /// Eq. 3 gate: compression beats transmission iff R*(1-xi) > B.
  bool beats_bandwidth(common::Bps bottleneck, double cpu_headroom) const;
};

/// Table II rows: LZ4, LZO, Snappy, LZF, Zstandard.
const std::vector<CodecModel>& table2_codecs();

/// Table II's default codec in Swallow (LZ4).
const CodecModel& default_codec_model();

/// Lookup by case-insensitive name; throws std::out_of_range if unknown.
const CodecModel& codec_model_by_name(const std::string& name);

/// Table III: compression ratio as a function of flow size (log-linear
/// interpolation between the paper's measured points; clamped outside).
double table3_ratio(common::Bytes flow_size);

/// Table III's measured sample points (size, ratio), for benches/tests.
const std::vector<std::pair<common::Bytes, double>>& table3_points();

}  // namespace swallow::codec
