// Order-0 canonical Huffman codec.
//
// The LZ stage leaves literal bytes uncoded; an entropy stage squeezes the
// residual redundancy out (the same division of labour as DEFLATE and
// Zstandard). HuffmanCodec is usable standalone — it is the better choice
// for record-like payloads with skewed byte histograms but little
// repetition — and chained behind swlz-high it forms the repository's
// best-ratio preset (CodecKind::kLzHuff, "swlz-max").
//
// Payload layout: 256 code lengths (one byte each, 0 = absent symbol),
// then the MSB-first canonical bitstream. Because Huffman codes are
// optimal prefix codes, the bitstream never exceeds 8 bits/symbol, so the
// worst-case payload is raw + 256 + slack.
#pragma once

#include "codec/codec.hpp"

namespace swallow::codec {

class HuffmanCodec final : public Codec {
 public:
  std::string name() const override { return "huffman"; }
  std::uint8_t id() const override { return 5; }
  std::size_t max_compressed_size(std::size_t raw) const override;

 protected:
  std::size_t encode(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decode(std::span<const std::uint8_t> in,
              std::span<std::uint8_t> out) const override;
  std::size_t max_payload_size(std::size_t raw) const override;
};

/// Two-stage codec: `outer(inner(data))`. decompress() reverses the chain.
/// The container carries the chain's own id; the stages' containers nest
/// inside, so integrity checks apply at both levels.
class ChainedCodec final : public Codec {
 public:
  ChainedCodec(std::unique_ptr<Codec> inner, std::unique_ptr<Codec> outer,
               std::string name, std::uint8_t id);

  std::string name() const override { return name_; }
  std::uint8_t id() const override { return id_; }
  std::size_t max_compressed_size(std::size_t raw) const override;

 protected:
  std::size_t encode(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decode(std::span<const std::uint8_t> in,
              std::span<std::uint8_t> out) const override;
  std::size_t max_payload_size(std::size_t raw) const override;

 private:
  std::unique_ptr<Codec> inner_;
  std::unique_ptr<Codec> outer_;
  std::string name_;
  std::uint8_t id_;
};

}  // namespace swallow::codec
