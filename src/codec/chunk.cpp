#include "codec/chunk.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "codec/frame.hpp"
#include "codec/throughput.hpp"
#include "codec/varint.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace swallow::codec {

namespace {

constexpr std::uint8_t kChunkMagic[4] = {'S', 'W', 'F', '2'};

void write_u64le(std::uint64_t v, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t read_u64le(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[i]) << (8 * i);
  return v;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::size_t chunk_count(std::size_t raw, std::size_t chunk_bytes) {
  return raw == 0 ? 0 : (raw + chunk_bytes - 1) / chunk_bytes;
}

unsigned default_pool_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(4u, hw == 0 ? 1u : hw);
}

}  // namespace

// ---- ChunkPool ----

ChunkPool::ChunkPool(unsigned threads, obs::Sink* sink) : sink_(sink) {
  const unsigned n = default_pool_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { loop(); });
}

ChunkPool::~ChunkPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

void ChunkPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    ++inflight_;
    if (sink_ != nullptr)
      sink_->registry().gauge("codec.chunks_inflight").set(inflight_);
  }
  cv_.notify_one();
}

void ChunkPool::loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // jobs catch their own exceptions (exception_ptr per slot)
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
      if (sink_ != nullptr)
        sink_->registry().gauge("codec.chunks_inflight").set(inflight_);
    }
  }
}

// ---- ChunkEncoder ----

ChunkEncoder::ChunkEncoder(const Codec& codec,
                           std::span<const std::uint8_t> payload,
                           std::size_t chunk_bytes, ChunkPool* pool,
                           ThroughputLedger* ledger, std::size_t window)
    : codec_(&codec),
      payload_(payload),
      chunk_bytes_(chunk_bytes),
      num_chunks_(0),
      window_(window),
      pool_(pool),
      ledger_(ledger) {
  if (chunk_bytes_ == 0) throw CodecError("chunk: zero chunk size");
  num_chunks_ = chunk_count(payload_.size(), chunk_bytes_);
  if (pool_ != nullptr && pool_->size() > 0) {
    if (window_ == 0) window_ = std::max<std::size_t>(2, 2 * pool_->size());
    slots_.resize(num_chunks_);
  } else {
    pool_ = nullptr;  // inline serial path
  }
}

ChunkEncoder::~ChunkEncoder() {
  if (pool_ == nullptr) return;
  // Outstanding jobs reference our slots; wait for every submitted one.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    for (std::size_t i = next_emit_; i < next_submit_; ++i)
      if (!slots_[i].done) return false;
    return true;
  });
}

Buffer ChunkEncoder::encode_record(std::size_t index) const {
  obs::ProfileScope scope(obs::global_sink(), "codec.chunk_encode", "codec");
  const std::size_t off = index * chunk_bytes_;
  const std::size_t len = std::min(chunk_bytes_, payload_.size() - off);
  const std::span<const std::uint8_t> raw = payload_.subspan(off, len);

  const auto t0 = std::chrono::steady_clock::now();
  Buffer container(codec_->max_compressed_size(len));
  const std::size_t stored = codec_->compress(raw, container);

  Buffer record(1 + kMaxVarintBytes + 8 + stored);
  record[0] = codec_->id();
  std::size_t pos = 1;
  pos += write_varint(stored, record, pos);
  write_u64le(fnv1a64(raw), record.data() + pos);
  pos += 8;
  std::memcpy(record.data() + pos, container.data(), stored);
  record.resize(pos + stored);
  if (ledger_ != nullptr)
    ledger_->record_encode(len, record.size(), seconds_since(t0));
  return record;
}

void ChunkEncoder::submit_until(std::size_t hi) {
  hi = std::min(hi, num_chunks_);
  for (; next_submit_ < hi; ++next_submit_) {
    const std::size_t i = next_submit_;
    pool_->submit([this, i] {
      Slot& slot = slots_[i];
      Buffer record;
      std::exception_ptr error;
      try {
        record = encode_record(i);
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        slot.record = std::move(record);
        slot.error = error;
        slot.done = true;
        // Notify while still holding the lock: once `done` is visible the
        // destructor's wait may return and free *this, so an unlocked
        // notify would touch a dead condition variable.
        cv_.notify_all();
      }
    });
  }
}

Buffer ChunkEncoder::next() {
  if (!header_emitted_) {
    header_emitted_ = true;
    Buffer header(sizeof(kChunkMagic) + 2 * kMaxVarintBytes);
    std::memcpy(header.data(), kChunkMagic, sizeof(kChunkMagic));
    std::size_t pos = sizeof(kChunkMagic);
    pos += write_varint(payload_.size(), header, pos);
    pos += write_varint(chunk_bytes_, header, pos);
    header.resize(pos);
    if (pool_ != nullptr) {
      const std::size_t burst =
          window_ >= num_chunks_ ? num_chunks_ : window_;
      submit_until(burst);
    }
    return header;
  }
  if (next_emit_ >= num_chunks_)
    throw CodecError("chunk: next() past end of stream");
  const std::size_t i = next_emit_++;
  if (pool_ == nullptr) return encode_record(i);
  Buffer record;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return slots_[i].done; });
    if (slots_[i].error) std::rethrow_exception(slots_[i].error);
    record = std::move(slots_[i].record);
  }
  // Top the encode-ahead window back up while the caller transmits.
  if (window_ < num_chunks_) submit_until(next_emit_ + window_);
  return record;
}

// ---- one-shot helpers ----

Buffer chunk_compress(const Codec& codec, std::span<const std::uint8_t> payload,
                      std::size_t chunk_bytes, ChunkPool* pool,
                      ThroughputLedger* ledger) {
  ChunkEncoder enc(codec, payload, chunk_bytes, pool, ledger,
                   /*window=*/SIZE_MAX);
  Buffer out;
  out.reserve(payload.size() / 2 + 64);
  while (enc.has_next()) {
    const Buffer piece = enc.next();
    out.insert(out.end(), piece.begin(), piece.end());
  }
  return out;
}

namespace {

struct ChunkHeader {
  std::size_t raw_size = 0;
  std::size_t chunk_bytes = 0;
  std::size_t pos = 0;  // first byte past the header
};

ChunkHeader parse_chunk_header(std::span<const std::uint8_t> frame) {
  if (!is_chunk_frame(frame)) throw CodecError("chunk: bad magic");
  ChunkHeader h;
  h.pos = sizeof(kChunkMagic);
  h.raw_size = static_cast<std::size_t>(read_varint(frame, h.pos));
  h.chunk_bytes = static_cast<std::size_t>(read_varint(frame, h.pos));
  if (h.chunk_bytes == 0 && h.raw_size > 0)
    throw CodecError("chunk: zero chunk size in header");
  return h;
}

struct ChunkRef {
  std::size_t container_pos = 0;
  std::size_t container_size = 0;
  std::uint64_t checksum = 0;
  std::uint8_t codec_id = 0;
  std::size_t raw_off = 0;
  std::size_t raw_len = 0;
};

// Decodes one record's container into `out` and verifies the checksum.
// Shared by the one-shot walker and the streaming decoder.
void decode_chunk(std::span<const std::uint8_t> container,
                  std::uint8_t record_id, std::uint64_t checksum,
                  std::span<std::uint8_t> out, std::size_t index,
                  ThroughputLedger* ledger) {
  obs::ProfileScope scope(obs::global_sink(), "codec.chunk_decode", "codec");
  if (container.empty() || container[0] != record_id)
    throw CodecError("chunk: record codec id mismatch in chunk " +
                     std::to_string(index));
  const auto t0 = std::chrono::steady_clock::now();
  const Buffer raw = decompress_any(container);
  if (raw.size() != out.size())
    throw CodecError("chunk: size mismatch in chunk " + std::to_string(index));
  if (fnv1a64(raw) != checksum)
    throw CodecError("chunk: checksum mismatch in chunk " +
                     std::to_string(index));
  std::memcpy(out.data(), raw.data(), raw.size());
  if (ledger != nullptr)
    ledger->record_decode(raw.size(), seconds_since(t0));
}

}  // namespace

std::size_t chunk_decompress_into(std::span<const std::uint8_t> frame,
                                  std::span<std::uint8_t> out, ChunkPool* pool,
                                  ThroughputLedger* ledger) {
  const ChunkHeader h = parse_chunk_header(frame);
  if (out.size() < h.raw_size)
    throw CodecError("chunk: output buffer too small");
  const std::size_t chunks = chunk_count(h.raw_size, h.chunk_bytes);

  // Walk the records serially (headers are tiny), then decode in parallel.
  std::vector<ChunkRef> refs;
  refs.reserve(chunks);
  std::size_t pos = h.pos;
  std::size_t raw_off = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    if (pos >= frame.size()) throw CodecError("chunk: truncated record");
    ChunkRef ref;
    ref.codec_id = frame[pos++];
    ref.container_size = static_cast<std::size_t>(read_varint(frame, pos));
    if (pos + 8 > frame.size()) throw CodecError("chunk: truncated checksum");
    ref.checksum = read_u64le(frame.data() + pos);
    pos += 8;
    if (pos + ref.container_size > frame.size())
      throw CodecError("chunk: truncated record");
    ref.container_pos = pos;
    pos += ref.container_size;
    ref.raw_off = raw_off;
    ref.raw_len = std::min(h.chunk_bytes, h.raw_size - raw_off);
    raw_off += ref.raw_len;
    refs.push_back(ref);
  }
  if (pos != frame.size()) throw CodecError("chunk: trailing garbage");

  const auto decode_one = [&](const ChunkRef& ref, std::size_t index) {
    decode_chunk(frame.subspan(ref.container_pos, ref.container_size),
                 ref.codec_id, ref.checksum,
                 out.subspan(ref.raw_off, ref.raw_len), index, ledger);
  };

  if (pool == nullptr || pool->size() == 0 || refs.size() <= 1) {
    for (std::size_t i = 0; i < refs.size(); ++i) decode_one(refs[i], i);
    return h.raw_size;
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = refs.size();
  std::exception_ptr error;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    pool->submit([&, i] {
      std::exception_ptr e;
      try {
        decode_one(refs[i], i);
      } catch (...) {
        e = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (e && !error) error = e;
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return remaining == 0; });
  if (error) std::rethrow_exception(error);
  return h.raw_size;
}

Buffer chunk_decompress(std::span<const std::uint8_t> frame, ChunkPool* pool,
                        ThroughputLedger* ledger) {
  Buffer out(chunk_decompressed_size(frame));
  chunk_decompress_into(frame, out, pool, ledger);
  return out;
}

std::size_t chunk_decompressed_size(std::span<const std::uint8_t> frame) {
  return parse_chunk_header(frame).raw_size;
}

bool is_chunk_frame(std::span<const std::uint8_t> data) {
  return data.size() >= sizeof(kChunkMagic) &&
         std::memcmp(data.data(), kChunkMagic, sizeof(kChunkMagic)) == 0;
}

// ---- ChunkDecoder ----

ChunkDecoder::ChunkDecoder(ChunkPool* pool, ThroughputLedger* ledger)
    : pool_(pool), ledger_(ledger) {
  if (pool_ != nullptr && pool_->size() == 0) pool_ = nullptr;
}

ChunkDecoder::~ChunkDecoder() { wait_idle(); }

void ChunkDecoder::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ChunkDecoder::dispatch(std::size_t index, Buffer record,
                            std::size_t raw_off, std::size_t raw_len) {
  // Record layout past the id byte was already validated by the caller;
  // re-derive the container view here so the job owns its bytes.
  auto run = [this, index, raw_off, raw_len](const Buffer& rec) {
    std::size_t pos = 1;
    const auto stored = static_cast<std::size_t>(read_varint(rec, pos));
    const std::uint64_t checksum = read_u64le(rec.data() + pos);
    pos += 8;
    decode_chunk(std::span<const std::uint8_t>(rec).subspan(pos, stored),
                 rec[0], checksum,
                 std::span<std::uint8_t>(out_).subspan(raw_off, raw_len),
                 index, ledger_);
  };
  if (pool_ == nullptr) {
    run(record);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++inflight_;
  }
  pool_->submit([this, run = std::move(run), rec = std::move(record)] {
    std::exception_ptr e;
    try {
      run(rec);
    } catch (...) {
      e = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (e && !error_) error_ = e;
    if (--inflight_ == 0) cv_.notify_all();
  });
}

void ChunkDecoder::feed(std::span<const std::uint8_t> bytes) {
  pending_.insert(pending_.end(), bytes.begin(), bytes.end());

  if (!header_parsed_) {
    // The header needs at most magic + two max-size varints; parse as soon
    // as a full parse succeeds (varints are self-terminating).
    try {
      const ChunkHeader h = parse_chunk_header(pending_);
      raw_size_ = h.raw_size;
      chunk_bytes_ = h.chunk_bytes;
      num_chunks_ = chunk_count(raw_size_, chunk_bytes_);
      out_.assign(raw_size_, 0);
      pending_.erase(pending_.begin(), pending_.begin() + h.pos);
      header_parsed_ = true;
    } catch (const CodecError&) {
      // Distinguish "not enough bytes yet" from a genuinely bad magic.
      if (pending_.size() >= sizeof(kChunkMagic) && !is_chunk_frame(pending_))
        throw;
      if (pending_.size() >= sizeof(kChunkMagic) + 2 * kMaxVarintBytes) throw;
      return;
    }
  }

  // Extract complete records.
  while (next_chunk_ < num_chunks_) {
    std::size_t pos = 0;
    if (pending_.size() < 1) return;
    std::size_t stored = 0;
    try {
      pos = 1;
      stored = static_cast<std::size_t>(read_varint(pending_, pos));
    } catch (const CodecError&) {
      if (pending_.size() >= 1 + kMaxVarintBytes) throw;
      return;  // varint still arriving
    }
    const std::size_t record_size = pos + 8 + stored;
    if (pending_.size() < record_size) return;  // record still arriving

    Buffer record(pending_.begin(), pending_.begin() + record_size);
    pending_.erase(pending_.begin(), pending_.begin() + record_size);
    const std::size_t raw_off = next_chunk_ * chunk_bytes_;
    const std::size_t raw_len = std::min(chunk_bytes_, raw_size_ - raw_off);
    dispatch(next_chunk_, std::move(record), raw_off, raw_len);
    ++next_chunk_;
  }
  if (next_chunk_ == num_chunks_ && !pending_.empty())
    throw CodecError("chunk: trailing garbage");
}

bool ChunkDecoder::done() const {
  return header_parsed_ && next_chunk_ == num_chunks_ && pending_.empty();
}

Buffer ChunkDecoder::take() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_) std::rethrow_exception(error_);
  }
  if (!done()) throw CodecError("chunk: truncated record");
  return std::move(out_);
}

}  // namespace swallow::codec
